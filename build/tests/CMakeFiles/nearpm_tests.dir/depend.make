# Empty dependencies file for nearpm_tests.
# This may be replaced when dependencies are built.
