
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/nearpm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crash_property_test.cc" "tests/CMakeFiles/nearpm_tests.dir/crash_property_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/crash_property_test.cc.o.d"
  "/root/repo/tests/multidevice_test.cc" "tests/CMakeFiles/nearpm_tests.dir/multidevice_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/multidevice_test.cc.o.d"
  "/root/repo/tests/ndp_test.cc" "tests/CMakeFiles/nearpm_tests.dir/ndp_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/ndp_test.cc.o.d"
  "/root/repo/tests/pmem_test.cc" "tests/CMakeFiles/nearpm_tests.dir/pmem_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/pmem_test.cc.o.d"
  "/root/repo/tests/pmlib_test.cc" "tests/CMakeFiles/nearpm_tests.dir/pmlib_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/pmlib_test.cc.o.d"
  "/root/repo/tests/ppo_invariant_test.cc" "tests/CMakeFiles/nearpm_tests.dir/ppo_invariant_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/ppo_invariant_test.cc.o.d"
  "/root/repo/tests/provider_edge_test.cc" "tests/CMakeFiles/nearpm_tests.dir/provider_edge_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/provider_edge_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/nearpm_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/nearpm_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/workload_func_test.cc" "tests/CMakeFiles/nearpm_tests.dir/workload_func_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/workload_func_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/nearpm_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/nearpm_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/nearpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmlib/CMakeFiles/nearpm_pmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nearpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/nearpm_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
