file(REMOVE_RECURSE
  "CMakeFiles/nearpm_tests.dir/common_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/common_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/crash_property_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/crash_property_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/multidevice_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/multidevice_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/ndp_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/ndp_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/pmem_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/pmem_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/pmlib_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/pmlib_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/ppo_invariant_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/ppo_invariant_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/provider_edge_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/provider_edge_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/runtime_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/runtime_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/sim_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/sim_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/workload_func_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/workload_func_test.cc.o.d"
  "CMakeFiles/nearpm_tests.dir/workload_test.cc.o"
  "CMakeFiles/nearpm_tests.dir/workload_test.cc.o.d"
  "nearpm_tests"
  "nearpm_tests.pdb"
  "nearpm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
