
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmem/interleave.cc" "src/pmem/CMakeFiles/nearpm_pmem.dir/interleave.cc.o" "gcc" "src/pmem/CMakeFiles/nearpm_pmem.dir/interleave.cc.o.d"
  "/root/repo/src/pmem/pm_space.cc" "src/pmem/CMakeFiles/nearpm_pmem.dir/pm_space.cc.o" "gcc" "src/pmem/CMakeFiles/nearpm_pmem.dir/pm_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
