file(REMOVE_RECURSE
  "CMakeFiles/nearpm_pmem.dir/interleave.cc.o"
  "CMakeFiles/nearpm_pmem.dir/interleave.cc.o.d"
  "CMakeFiles/nearpm_pmem.dir/pm_space.cc.o"
  "CMakeFiles/nearpm_pmem.dir/pm_space.cc.o.d"
  "libnearpm_pmem.a"
  "libnearpm_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
