file(REMOVE_RECURSE
  "libnearpm_pmem.a"
)
