# Empty compiler generated dependencies file for nearpm_pmem.
# This may be replaced when dependencies are built.
