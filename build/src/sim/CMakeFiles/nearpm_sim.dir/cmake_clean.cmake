file(REMOVE_RECURSE
  "CMakeFiles/nearpm_sim.dir/cost_model.cc.o"
  "CMakeFiles/nearpm_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/nearpm_sim.dir/timeline.cc.o"
  "CMakeFiles/nearpm_sim.dir/timeline.cc.o.d"
  "libnearpm_sim.a"
  "libnearpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
