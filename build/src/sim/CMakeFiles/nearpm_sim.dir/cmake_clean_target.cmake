file(REMOVE_RECURSE
  "libnearpm_sim.a"
)
