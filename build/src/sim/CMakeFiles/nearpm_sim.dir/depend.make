# Empty dependencies file for nearpm_sim.
# This may be replaced when dependencies are built.
