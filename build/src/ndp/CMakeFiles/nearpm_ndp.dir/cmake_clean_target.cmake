file(REMOVE_RECURSE
  "libnearpm_ndp.a"
)
