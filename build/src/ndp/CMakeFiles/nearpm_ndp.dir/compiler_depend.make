# Empty compiler generated dependencies file for nearpm_ndp.
# This may be replaced when dependencies are built.
