file(REMOVE_RECURSE
  "CMakeFiles/nearpm_ndp.dir/address_map.cc.o"
  "CMakeFiles/nearpm_ndp.dir/address_map.cc.o.d"
  "CMakeFiles/nearpm_ndp.dir/device.cc.o"
  "CMakeFiles/nearpm_ndp.dir/device.cc.o.d"
  "CMakeFiles/nearpm_ndp.dir/inflight_table.cc.o"
  "CMakeFiles/nearpm_ndp.dir/inflight_table.cc.o.d"
  "CMakeFiles/nearpm_ndp.dir/recovery_journal.cc.o"
  "CMakeFiles/nearpm_ndp.dir/recovery_journal.cc.o.d"
  "CMakeFiles/nearpm_ndp.dir/request.cc.o"
  "CMakeFiles/nearpm_ndp.dir/request.cc.o.d"
  "CMakeFiles/nearpm_ndp.dir/sync_machine.cc.o"
  "CMakeFiles/nearpm_ndp.dir/sync_machine.cc.o.d"
  "libnearpm_ndp.a"
  "libnearpm_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
