
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndp/address_map.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/address_map.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/address_map.cc.o.d"
  "/root/repo/src/ndp/device.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/device.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/device.cc.o.d"
  "/root/repo/src/ndp/inflight_table.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/inflight_table.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/inflight_table.cc.o.d"
  "/root/repo/src/ndp/recovery_journal.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/recovery_journal.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/recovery_journal.cc.o.d"
  "/root/repo/src/ndp/request.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/request.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/request.cc.o.d"
  "/root/repo/src/ndp/sync_machine.cc" "src/ndp/CMakeFiles/nearpm_ndp.dir/sync_machine.cc.o" "gcc" "src/ndp/CMakeFiles/nearpm_ndp.dir/sync_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
