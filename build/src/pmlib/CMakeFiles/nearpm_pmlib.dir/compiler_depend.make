# Empty compiler generated dependencies file for nearpm_pmlib.
# This may be replaced when dependencies are built.
