file(REMOVE_RECURSE
  "libnearpm_pmlib.a"
)
