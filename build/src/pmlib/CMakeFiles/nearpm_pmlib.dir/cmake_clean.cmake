file(REMOVE_RECURSE
  "CMakeFiles/nearpm_pmlib.dir/alloc.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/alloc.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/ckpt_provider.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/ckpt_provider.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/heap.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/heap.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/pool.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/pool.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/redo_provider.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/redo_provider.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/shadow_provider.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/shadow_provider.cc.o.d"
  "CMakeFiles/nearpm_pmlib.dir/undo_provider.cc.o"
  "CMakeFiles/nearpm_pmlib.dir/undo_provider.cc.o.d"
  "libnearpm_pmlib.a"
  "libnearpm_pmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_pmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
