
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmlib/alloc.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/alloc.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/alloc.cc.o.d"
  "/root/repo/src/pmlib/ckpt_provider.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/ckpt_provider.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/ckpt_provider.cc.o.d"
  "/root/repo/src/pmlib/heap.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/heap.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/heap.cc.o.d"
  "/root/repo/src/pmlib/pool.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/pool.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/pool.cc.o.d"
  "/root/repo/src/pmlib/redo_provider.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/redo_provider.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/redo_provider.cc.o.d"
  "/root/repo/src/pmlib/shadow_provider.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/shadow_provider.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/shadow_provider.cc.o.d"
  "/root/repo/src/pmlib/undo_provider.cc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/undo_provider.cc.o" "gcc" "src/pmlib/CMakeFiles/nearpm_pmlib.dir/undo_provider.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nearpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/nearpm_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
