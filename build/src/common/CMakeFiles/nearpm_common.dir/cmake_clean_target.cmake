file(REMOVE_RECURSE
  "libnearpm_common.a"
)
