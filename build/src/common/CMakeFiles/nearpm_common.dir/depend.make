# Empty dependencies file for nearpm_common.
# This may be replaced when dependencies are built.
