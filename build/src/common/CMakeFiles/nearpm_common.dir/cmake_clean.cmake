file(REMOVE_RECURSE
  "CMakeFiles/nearpm_common.dir/stats.cc.o"
  "CMakeFiles/nearpm_common.dir/stats.cc.o.d"
  "CMakeFiles/nearpm_common.dir/status.cc.o"
  "CMakeFiles/nearpm_common.dir/status.cc.o.d"
  "libnearpm_common.a"
  "libnearpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
