
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cc_stats.cc" "src/core/CMakeFiles/nearpm_core.dir/cc_stats.cc.o" "gcc" "src/core/CMakeFiles/nearpm_core.dir/cc_stats.cc.o.d"
  "/root/repo/src/core/log_layout.cc" "src/core/CMakeFiles/nearpm_core.dir/log_layout.cc.o" "gcc" "src/core/CMakeFiles/nearpm_core.dir/log_layout.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/nearpm_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/nearpm_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/nearpm_ndp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
