# Empty compiler generated dependencies file for nearpm_core.
# This may be replaced when dependencies are built.
