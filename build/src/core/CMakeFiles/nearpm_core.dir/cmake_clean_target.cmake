file(REMOVE_RECURSE
  "libnearpm_core.a"
)
