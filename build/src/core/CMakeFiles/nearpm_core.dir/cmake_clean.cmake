file(REMOVE_RECURSE
  "CMakeFiles/nearpm_core.dir/cc_stats.cc.o"
  "CMakeFiles/nearpm_core.dir/cc_stats.cc.o.d"
  "CMakeFiles/nearpm_core.dir/log_layout.cc.o"
  "CMakeFiles/nearpm_core.dir/log_layout.cc.o.d"
  "CMakeFiles/nearpm_core.dir/runtime.cc.o"
  "CMakeFiles/nearpm_core.dir/runtime.cc.o.d"
  "libnearpm_core.a"
  "libnearpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
