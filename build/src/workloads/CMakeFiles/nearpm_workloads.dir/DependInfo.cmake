
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bplustree.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/bplustree.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/bplustree.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/hashmap.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/hashmap.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/hashmap.cc.o.d"
  "/root/repo/src/workloads/kvserver.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/kvserver.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/kvserver.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/skiplist.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/skiplist.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/skiplist.cc.o.d"
  "/root/repo/src/workloads/tatp.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/tatp.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/tatp.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/tpcc.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/tpcc.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/workloads/CMakeFiles/nearpm_workloads.dir/ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/nearpm_workloads.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmlib/CMakeFiles/nearpm_pmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nearpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/nearpm_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
