file(REMOVE_RECURSE
  "CMakeFiles/nearpm_workloads.dir/bplustree.cc.o"
  "CMakeFiles/nearpm_workloads.dir/bplustree.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/btree.cc.o"
  "CMakeFiles/nearpm_workloads.dir/btree.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/hashmap.cc.o"
  "CMakeFiles/nearpm_workloads.dir/hashmap.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/kvserver.cc.o"
  "CMakeFiles/nearpm_workloads.dir/kvserver.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/rbtree.cc.o"
  "CMakeFiles/nearpm_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/registry.cc.o"
  "CMakeFiles/nearpm_workloads.dir/registry.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/skiplist.cc.o"
  "CMakeFiles/nearpm_workloads.dir/skiplist.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/tatp.cc.o"
  "CMakeFiles/nearpm_workloads.dir/tatp.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/tpcc.cc.o"
  "CMakeFiles/nearpm_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/nearpm_workloads.dir/ycsb.cc.o"
  "CMakeFiles/nearpm_workloads.dir/ycsb.cc.o.d"
  "libnearpm_workloads.a"
  "libnearpm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
