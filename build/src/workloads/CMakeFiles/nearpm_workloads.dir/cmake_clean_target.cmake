file(REMOVE_RECURSE
  "libnearpm_workloads.a"
)
