# Empty dependencies file for nearpm_workloads.
# This may be replaced when dependencies are built.
