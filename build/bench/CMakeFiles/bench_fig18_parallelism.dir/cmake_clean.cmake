file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_parallelism.dir/bench_fig18_parallelism.cc.o"
  "CMakeFiles/bench_fig18_parallelism.dir/bench_fig18_parallelism.cc.o.d"
  "bench_fig18_parallelism"
  "bench_fig18_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
