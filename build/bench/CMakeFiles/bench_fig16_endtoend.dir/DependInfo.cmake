
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_endtoend.cc" "bench/CMakeFiles/bench_fig16_endtoend.dir/bench_fig16_endtoend.cc.o" "gcc" "bench/CMakeFiles/bench_fig16_endtoend.dir/bench_fig16_endtoend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nearpm_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/nearpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmlib/CMakeFiles/nearpm_pmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nearpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/nearpm_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/nearpm_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nearpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nearpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
