file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_endtoend.dir/bench_fig16_endtoend.cc.o"
  "CMakeFiles/bench_fig16_endtoend.dir/bench_fig16_endtoend.cc.o.d"
  "bench_fig16_endtoend"
  "bench_fig16_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
