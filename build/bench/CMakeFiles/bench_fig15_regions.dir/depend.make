# Empty dependencies file for bench_fig15_regions.
# This may be replaced when dependencies are built.
