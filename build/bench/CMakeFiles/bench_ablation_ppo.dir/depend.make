# Empty dependencies file for bench_ablation_ppo.
# This may be replaced when dependencies are built.
