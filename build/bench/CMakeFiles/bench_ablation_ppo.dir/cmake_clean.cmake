file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ppo.dir/bench_ablation_ppo.cc.o"
  "CMakeFiles/bench_ablation_ppo.dir/bench_ablation_ppo.cc.o.d"
  "bench_ablation_ppo"
  "bench_ablation_ppo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ppo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
