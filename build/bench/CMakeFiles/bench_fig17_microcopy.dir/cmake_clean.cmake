file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_microcopy.dir/bench_fig17_microcopy.cc.o"
  "CMakeFiles/bench_fig17_microcopy.dir/bench_fig17_microcopy.cc.o.d"
  "bench_fig17_microcopy"
  "bench_fig17_microcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_microcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
