# Empty dependencies file for bench_fig19_units.
# This may be replaced when dependencies are built.
