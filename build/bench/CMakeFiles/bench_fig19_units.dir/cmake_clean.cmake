file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_units.dir/bench_fig19_units.cc.o"
  "CMakeFiles/bench_fig19_units.dir/bench_fig19_units.cc.o.d"
  "bench_fig19_units"
  "bench_fig19_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
