file(REMOVE_RECURSE
  "CMakeFiles/nearpm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/nearpm_bench_harness.dir/harness.cc.o.d"
  "libnearpm_bench_harness.a"
  "libnearpm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nearpm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
