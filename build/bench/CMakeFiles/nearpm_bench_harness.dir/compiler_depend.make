# Empty compiler generated dependencies file for nearpm_bench_harness.
# This may be replaced when dependencies are built.
