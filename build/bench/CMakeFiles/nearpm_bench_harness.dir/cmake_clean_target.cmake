file(REMOVE_RECURSE
  "libnearpm_bench_harness.a"
)
