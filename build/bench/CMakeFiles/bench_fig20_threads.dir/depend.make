# Empty dependencies file for bench_fig20_threads.
# This may be replaced when dependencies are built.
