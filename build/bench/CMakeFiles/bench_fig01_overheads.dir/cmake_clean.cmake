file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_overheads.dir/bench_fig01_overheads.cc.o"
  "CMakeFiles/bench_fig01_overheads.dir/bench_fig01_overheads.cc.o.d"
  "bench_fig01_overheads"
  "bench_fig01_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
