# Empty dependencies file for kvstore_crash_recovery.
# This may be replaced when dependencies are built.
