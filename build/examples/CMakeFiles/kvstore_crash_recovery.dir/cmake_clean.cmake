file(REMOVE_RECURSE
  "CMakeFiles/kvstore_crash_recovery.dir/kvstore_crash_recovery.cpp.o"
  "CMakeFiles/kvstore_crash_recovery.dir/kvstore_crash_recovery.cpp.o.d"
  "kvstore_crash_recovery"
  "kvstore_crash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
