file(REMOVE_RECURSE
  "CMakeFiles/tpcc_offload.dir/tpcc_offload.cpp.o"
  "CMakeFiles/tpcc_offload.dir/tpcc_offload.cpp.o.d"
  "tpcc_offload"
  "tpcc_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
