# Empty compiler generated dependencies file for tpcc_offload.
# This may be replaced when dependencies are built.
