# Empty dependencies file for multidevice_ordering.
# This may be replaced when dependencies are built.
