file(REMOVE_RECURSE
  "CMakeFiles/multidevice_ordering.dir/multidevice_ordering.cpp.o"
  "CMakeFiles/multidevice_ordering.dir/multidevice_ordering.cpp.o.d"
  "multidevice_ordering"
  "multidevice_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidevice_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
