// Figure 18: fraction of execution parallelizable between CPU and NearPM --
// the share of time the CPU makes forward progress while NDP work is
// outstanding, in the NearPM MD configuration. Paper averages: 20.01%
// (logging), 17.25% (checkpointing), 24.68% (shadow paging).
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/common/stats.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig18(benchmark::State& state, const std::string& workload,
              Mechanism mechanism) {
  RunConfig cfg;
  cfg.workload = workload;
  cfg.mechanism = mechanism;
  cfg.mode = ExecMode::kNdpMultiDelayed;
  RunResult r;
  for (auto _ : state) {
    r = RunWorkload(cfg);
  }
  state.counters["parallel_pct"] =
      r.total_ns > 0 ? 100.0 * r.overlap_ns / r.total_ns : 0.0;
}

void BM_Fig18Mean(benchmark::State& state, Mechanism mechanism) {
  double mean = 0;
  for (auto _ : state) {
    std::vector<double> pcts;
    for (const std::string& w : EvaluatedWorkloads()) {
      RunConfig cfg;
      cfg.workload = w;
      cfg.mechanism = mechanism;
      cfg.mode = ExecMode::kNdpMultiDelayed;
      const RunResult r = RunWorkload(cfg);
      pcts.push_back(r.total_ns > 0 ? 100.0 * r.overlap_ns / r.total_ns : 0.0);
    }
    double sum = 0;
    for (double p : pcts) {
      sum += p;
    }
    mean = sum / static_cast<double>(pcts.size());
  }
  state.counters["mean_parallel_pct"] = mean;
}

void RegisterAll() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    for (const std::string& w : EvaluatedWorkloads()) {
      benchmark::RegisterBenchmark(
          (std::string("fig18/") + MechanismName(mech) + "/" + w).c_str(),
          [w, mech](benchmark::State& s) { BM_Fig18(s, w, mech); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("fig18/") + MechanismName(mech) + "/MEAN").c_str(),
        [mech](benchmark::State& s) { BM_Fig18Mean(s, mech); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig18_parallelism");
}
