// Shared benchmark harness: runs one workload configuration in the simulated
// platform and extracts the virtual-time metrics the paper's figures plot.
//
// Wall-clock time of these binaries is meaningless; every reported number is
// simulated nanoseconds from the runtime's cost model. Each binary prints a
// table mirroring one figure of the paper (see EXPERIMENTS.md).
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <string>

#include "src/hwmodel/hw_config.h"
#include "src/trace/recorder.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace bench {

struct RunConfig {
  std::string workload = "btree";
  Mechanism mechanism = Mechanism::kLogging;
  ExecMode mode = ExecMode::kCpuBaseline;
  int threads = 1;
  // > 0 overrides the geometry's unit count (bench_fig19_units sweeps it);
  // 0 inherits from the process-wide --hw-config geometry (the default).
  int units_per_device = 0;
  std::uint64_t ops = 400;  // total operations across all threads
  std::uint64_t initial_keys = 500;
  std::uint64_t data_size = 4ull << 20;
  std::uint64_t seed = 7;
};

struct RunResult {
  double total_ns = 0;       // end-to-end virtual time (max over threads)
  double cc_region_ns = 0;   // CPU time inside crash-consistency regions
  double app_ns = 0;         // CPU time outside them
  double overlap_ns = 0;     // CPU progress concurrent with NDP work
  double data_movement_ns = 0;
  double metadata_ns = 0;
  double ordering_ns = 0;
  double allocation_ns = 0;
  std::uint64_t ops = 0;
  double throughput_mops = 0;  // simulated ops per simulated second / 1e6

  double cc_fraction() const {
    return total_ns > 0 ? cc_region_ns / (cc_region_ns + app_ns) : 0;
  }
};

// Runs `config.ops` operations round-robin over the configured threads and
// returns metrics measured after the initial population (setup excluded).
RunResult RunWorkload(const RunConfig& config);

// Convenience: geometric-mean speedup of `mode` over the CPU baseline across
// all nine workloads for one mechanism, using region or end-to-end time.
double MeanSpeedup(Mechanism mechanism, ExecMode mode, bool region_time,
                   const RunConfig& base);

const char* ShortModeName(ExecMode mode);

// ---- Shared entry point ------------------------------------------------------
// Every bench binary funnels through BenchMain, which understands two flags
// of its own before handing the rest to google-benchmark:
//
//   --trace-out=<file>  capture a structured event trace of every simulated
//                       run and write it as Chrome trace-event JSON
//                       (chrome://tracing or https://ui.perfetto.dev)
//   --json-out=<file>   machine-readable per-figure results (the
//                       google-benchmark JSON schema; counters carry the
//                       figure's numbers). Defaults to BENCH_<figure>.json
//                       next to the binary's working directory; pass an
//                       empty value to disable.
//   --metrics-out=<file> Prometheus text-format exposition of every metric
//                       the runs produced: per-phase counters and latency
//                       quantiles from the trace stream, occupancy gauges,
//                       and whatever the benchmark added to BenchMetrics().
//                       Implies trace capture (without the Chrome file).
//   --hw-config=<file>  load a hwmodel::HwConfig geometry and apply it to
//                       every harness-built Runtime (BenchHwConfig()).
//                       Without the flag the seed geometry is used and all
//                       committed baselines reproduce bit-for-bit.
//
// Returns the process exit code.
int BenchMain(int argc, char** argv, const std::string& figure);

// The process-wide device geometry: the --hw-config file if one was given,
// the calibrated default otherwise.
const hwmodel::HwConfig& BenchHwConfig();

// Process-wide registry for metrics a benchmark computes itself (e.g.
// bench_serve_shards merges each KvService's registry and per-shard duty
// gauges here). Written to --metrics-out together with the bench
// recorder's own registry.
MetricsRegistry& BenchMetrics();

// The process-wide bench recorder; null unless --trace-out was given (so
// instrumentation stays a single branch in performance runs).
TraceRecorder* BenchTrace();

// Attaches the bench recorder (when active) to a freshly built Runtime and
// opens a new trace epoch, since each Runtime's virtual clocks start at zero.
// Harness-made runtimes do this automatically; benchmarks that construct
// their own Runtime call it by hand.
void AttachBenchTrace(Runtime& rt);

}  // namespace bench
}  // namespace nearpm

#endif  // BENCH_HARNESS_H_
