// Figure 20: multithreaded throughput of the two real-server workloads,
// Redis (threads share one PM pool) and Memcached (pool per thread), 1-16
// threads, NearPM MD over the CPU baseline at the same thread count. The
// speedup shrinks as threads contend for the four NearPM units per device
// but stays above 1x (Section 8.3.1).
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig20(benchmark::State& state, const std::string& workload,
              int threads) {
  RunConfig cfg;
  cfg.workload = workload;
  cfg.mechanism = Mechanism::kLogging;
  cfg.threads = threads;
  cfg.ops = static_cast<std::uint64_t>(threads) * 250;
  cfg.initial_keys = 300;
  double base_mops = 0;
  double ndp_mops = 0;
  for (auto _ : state) {
    cfg.mode = ExecMode::kCpuBaseline;
    base_mops = RunWorkload(cfg).throughput_mops;
    cfg.mode = ExecMode::kNdpMultiDelayed;
    ndp_mops = RunWorkload(cfg).throughput_mops;
  }
  state.counters["threads"] = threads;
  state.counters["baseline_mops"] = base_mops;
  state.counters["nearpm_mops"] = ndp_mops;
  state.counters["speedup"] = base_mops > 0 ? ndp_mops / base_mops : 0;
}

void RegisterAll() {
  for (const std::string& w : {std::string("redis"), std::string("memcached")}) {
    for (int threads : {1, 2, 4, 8, 16}) {
      benchmark::RegisterBenchmark(
          (std::string("fig20/") + w + "/threads:" + std::to_string(threads))
              .c_str(),
          [w, threads](benchmark::State& s) { BM_Fig20(s, w, threads); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig20_threads");
}
