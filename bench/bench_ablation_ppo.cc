// Ablation: what each PPO design choice buys.
//
// Not a paper figure -- this sweeps the design knobs DESIGN.md calls out:
//  * enforce_ppo off (the naive offload of Section 2.3) as the performance
//    upper bound that sacrifices recoverability;
//  * device count (PPO's delayed synchronization is what keeps adding
//    devices from adding synchronization cost, Section 9 Scalability);
//  * interleave granularity (how often commands are duplicated).
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/core/runtime.h"
#include "src/workloads/workload.h"

namespace nearpm {
namespace bench {
namespace {

struct AblationConfig {
  int devices = 2;
  std::uint64_t stripe = 256;
  bool enforce_ppo = true;
  ExecMode ndp_mode = ExecMode::kNdpMultiDelayed;
  int threads = 4;  // the knobs only bite under load
};

double Speedup(const std::string& workload, const AblationConfig& ac) {
  auto run = [&](ExecMode mode) {
    RuntimeOptions opts;
    opts.mode = mode;
    opts.num_devices = ac.devices;
    opts.interleave_stripe = ac.stripe;
    opts.enforce_ppo = ac.enforce_ppo;
    opts.max_threads = ac.threads;
    opts.pm_size = 512ull << 20;
    opts.retain_crash_state = false;
    Runtime rt(opts);
    AttachBenchTrace(rt);
    PoolArena arena;
    auto w = CreateWorkload(workload);
    WorkloadConfig config;
    config.mechanism = Mechanism::kLogging;
    config.threads = ac.threads;
    config.data_size = 4ull << 20;
    config.initial_keys = 400;
    if (!w->Setup(rt, arena, config).ok()) {
      std::abort();
    }
    rt.DrainDevices(0);
    const SimTime start = rt.stats().MaxThreadTime();
    Rng rng(9);
    for (int op = 0; op < 400 * ac.threads; ++op) {
      if (!w->RunOp(static_cast<ThreadId>(op % ac.threads), rng).ok()) {
        std::abort();
      }
    }
    for (int t = 0; t < ac.threads; ++t) {
      rt.DrainDevices(static_cast<ThreadId>(t));
    }
    return static_cast<double>(rt.stats().MaxThreadTime() - start);
  };
  return run(ExecMode::kCpuBaseline) / run(ac.ndp_mode);
}

void RegisterAll() {
  // Synchronization style: delayed (PPO), CPU-polled, and none (the naive
  // Section 2.3 offload, fast but unrecoverable).
  struct SyncStyle {
    const char* name;
    ExecMode mode;
    bool ppo;
  };
  for (const SyncStyle style :
       {SyncStyle{"delayed", ExecMode::kNdpMultiDelayed, true},
        SyncStyle{"sw_polled", ExecMode::kNdpMultiSwSync, true},
        SyncStyle{"none_unsafe", ExecMode::kNdpMultiDelayed, false}}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/sync:") + style.name).c_str(),
        [style](benchmark::State& state) {
          AblationConfig ac;
          ac.ndp_mode = style.mode;
          ac.enforce_ppo = style.ppo;
          double s = 0;
          for (auto _ : state) {
            s = Speedup("redis", ac);
          }
          state.counters["speedup"] = s;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int devices : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("ablation/devices:" + std::to_string(devices)).c_str(),
        [devices](benchmark::State& state) {
          AblationConfig ac;
          ac.devices = devices;
          double s = 0;
          for (auto _ : state) {
            s = Speedup("redis", ac);
          }
          state.counters["speedup"] = s;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (std::uint64_t stripe : {256ull, 1024ull, 4096ull}) {
    benchmark::RegisterBenchmark(
        ("ablation/stripe:" + std::to_string(stripe)).c_str(),
        [stripe](benchmark::State& state) {
          AblationConfig ac;
          ac.stripe = stripe;
          double s = 0;
          for (auto _ : state) {
            s = Speedup("redis", ac);
          }
          state.counters["speedup"] = s;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "ablation_ppo");
}
