// Figure 1: crash-consistency overhead on the CPU baseline.
//
// (a) fraction of execution time spent in crash-consistency code regions for
//     logging / checkpointing / shadow paging, and (b-d) the breakdown of
//     that overhead into data movement, metadata, ordering and allocation.
// Paper reference points: 37.7% / 48.6% / 67.2% overhead, of which 68.9% /
// 60.4% / 70.5% is data movement.
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig01(benchmark::State& state, const std::string& workload,
              Mechanism mechanism) {
  RunConfig cfg;
  cfg.workload = workload;
  cfg.mechanism = mechanism;
  cfg.mode = ExecMode::kCpuBaseline;
  RunResult r;
  for (auto _ : state) {
    r = RunWorkload(cfg);
  }
  state.counters["cc_pct"] = 100.0 * r.cc_fraction();
  const double cc = r.cc_region_ns > 0 ? r.cc_region_ns : 1.0;
  state.counters["data_movement_pct"] = 100.0 * r.data_movement_ns / cc;
  state.counters["metadata_pct"] = 100.0 * r.metadata_ns / cc;
  state.counters["ordering_pct"] = 100.0 * r.ordering_ns / cc;
  state.counters["allocation_pct"] = 100.0 * r.allocation_ns / cc;
}

void RegisterAll() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    for (const std::string& w : EvaluatedWorkloads()) {
      benchmark::RegisterBenchmark(
          (std::string("fig01/") + MechanismName(mech) + "/" + w).c_str(),
          [w, mech](benchmark::State& s) { BM_Fig01(s, w, mech); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig01_overheads");
}
