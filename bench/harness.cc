#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/stats.h"

namespace nearpm {
namespace bench {

const char* ShortModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kCpuBaseline:
      return "Baseline";
    case ExecMode::kNdpSingleDevice:
      return "NearPM SD";
    case ExecMode::kNdpMultiSwSync:
      return "NearPM MD SW-sync";
    case ExecMode::kNdpMultiDelayed:
      return "NearPM MD";
  }
  return "?";
}

RunResult RunWorkload(const RunConfig& config) {
  RuntimeOptions opts;
  opts.mode = config.mode;
  opts.units_per_device = config.units_per_device;
  opts.max_threads = config.threads;
  opts.pm_size = 512ull << 20;
  opts.retain_crash_state = false;  // pure-performance run
  Runtime rt(opts);
  PoolArena arena(0);

  auto workload = CreateWorkload(config.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", config.workload.c_str());
    std::abort();
  }
  WorkloadConfig wc;
  wc.mechanism = config.mechanism;
  wc.threads = config.threads;
  wc.data_size = config.data_size;
  wc.initial_keys = config.initial_keys;
  wc.seed = config.seed;
  Status st = workload->Setup(rt, arena, wc);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(%s) failed: %s\n", config.workload.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  rt.DrainDevices(0);

  // Measure from here: snapshot-and-subtract keeps clocks monotonic.
  const RuntimeStats before = rt.stats();
  Rng rng(config.seed * 31 + 1);
  for (std::uint64_t i = 0; i < config.ops; ++i) {
    const ThreadId t = static_cast<ThreadId>(i % config.threads);
    st = workload->RunOp(t, rng);
    if (!st.ok()) {
      std::fprintf(stderr, "op %llu (%s) failed: %s\n",
                   static_cast<unsigned long long>(i),
                   config.workload.c_str(), st.ToString().c_str());
      std::abort();
    }
  }
  for (int t = 0; t < config.threads; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  const RuntimeStats& after = rt.stats();

  RunResult r;
  r.total_ns = static_cast<double>(after.MaxThreadTime()) -
               static_cast<double>(before.MaxThreadTime());
  r.cc_region_ns = after.CcRegionNs() - before.CcRegionNs();
  r.app_ns = after.AppNs() - before.AppNs();
  r.overlap_ns = after.OverlapNs() - before.OverlapNs();
  r.data_movement_ns = after.CategoryNs(CcCategory::kDataMovement) -
                       before.CategoryNs(CcCategory::kDataMovement);
  r.metadata_ns = after.CategoryNs(CcCategory::kMetadata) -
                  before.CategoryNs(CcCategory::kMetadata);
  r.ordering_ns = after.CategoryNs(CcCategory::kOrdering) -
                  before.CategoryNs(CcCategory::kOrdering);
  r.allocation_ns = after.CategoryNs(CcCategory::kAllocation) -
                    before.CategoryNs(CcCategory::kAllocation);
  r.ops = config.ops;
  if (r.total_ns > 0) {
    r.throughput_mops = static_cast<double>(config.ops) * 1e3 / r.total_ns;
  }
  return r;
}

double MeanSpeedup(Mechanism mechanism, ExecMode mode, bool region_time,
                   const RunConfig& base) {
  std::vector<double> ratios;
  for (const std::string& name : EvaluatedWorkloads()) {
    RunConfig cfg = base;
    cfg.workload = name;
    cfg.mechanism = mechanism;
    cfg.mode = ExecMode::kCpuBaseline;
    const RunResult baseline = RunWorkload(cfg);
    cfg.mode = mode;
    const RunResult ndp = RunWorkload(cfg);
    const double num = region_time ? baseline.cc_region_ns : baseline.total_ns;
    const double den = region_time ? ndp.cc_region_ns : ndp.total_ns;
    if (den > 0) {
      ratios.push_back(num / den);
    }
  }
  return GeoMean(ratios);
}

}  // namespace bench
}  // namespace nearpm
