#include "bench/harness.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/trace/chrome_exporter.h"

namespace nearpm {
namespace bench {

const char* ShortModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kCpuBaseline:
      return "Baseline";
    case ExecMode::kNdpSingleDevice:
      return "NearPM SD";
    case ExecMode::kNdpMultiSwSync:
      return "NearPM MD SW-sync";
    case ExecMode::kNdpMultiDelayed:
      return "NearPM MD";
  }
  return "?";
}

RunResult RunWorkload(const RunConfig& config) {
  RuntimeOptions opts;
  opts.mode = config.mode;
  opts.hw = BenchHwConfig();
  if (config.units_per_device > 0) {
    opts.hw.units_per_device = config.units_per_device;
  }
  opts.max_threads = config.threads;
  opts.pm_size = 512ull << 20;
  opts.retain_crash_state = false;  // pure-performance run
  Runtime rt(opts);
  AttachBenchTrace(rt);
  PoolArena arena(0);

  auto workload = CreateWorkload(config.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload %s\n", config.workload.c_str());
    std::abort();
  }
  WorkloadConfig wc;
  wc.mechanism = config.mechanism;
  wc.threads = config.threads;
  wc.data_size = config.data_size;
  wc.initial_keys = config.initial_keys;
  wc.seed = config.seed;
  Status st = workload->Setup(rt, arena, wc);
  if (!st.ok()) {
    std::fprintf(stderr, "setup(%s) failed: %s\n", config.workload.c_str(),
                 st.ToString().c_str());
    std::abort();
  }
  rt.DrainDevices(0);

  // Measure from here: snapshot-and-subtract keeps clocks monotonic.
  const RuntimeStats before = rt.stats();
  Rng rng(config.seed * 31 + 1);
  for (std::uint64_t i = 0; i < config.ops; ++i) {
    const ThreadId t = static_cast<ThreadId>(i % config.threads);
    st = workload->RunOp(t, rng);
    if (!st.ok()) {
      std::fprintf(stderr, "op %llu (%s) failed: %s\n",
                   static_cast<unsigned long long>(i),
                   config.workload.c_str(), st.ToString().c_str());
      std::abort();
    }
  }
  for (int t = 0; t < config.threads; ++t) {
    rt.DrainDevices(static_cast<ThreadId>(t));
  }
  const RuntimeStats& after = rt.stats();

  RunResult r;
  r.total_ns = static_cast<double>(after.MaxThreadTime()) -
               static_cast<double>(before.MaxThreadTime());
  r.cc_region_ns = after.CcRegionNs() - before.CcRegionNs();
  r.app_ns = after.AppNs() - before.AppNs();
  r.overlap_ns = after.OverlapNs() - before.OverlapNs();
  r.data_movement_ns = after.CategoryNs(CcCategory::kDataMovement) -
                       before.CategoryNs(CcCategory::kDataMovement);
  r.metadata_ns = after.CategoryNs(CcCategory::kMetadata) -
                  before.CategoryNs(CcCategory::kMetadata);
  r.ordering_ns = after.CategoryNs(CcCategory::kOrdering) -
                  before.CategoryNs(CcCategory::kOrdering);
  r.allocation_ns = after.CategoryNs(CcCategory::kAllocation) -
                    before.CategoryNs(CcCategory::kAllocation);
  r.ops = config.ops;
  if (r.total_ns > 0) {
    r.throughput_mops = static_cast<double>(config.ops) * 1e3 / r.total_ns;
  }
  return r;
}

double MeanSpeedup(Mechanism mechanism, ExecMode mode, bool region_time,
                   const RunConfig& base) {
  std::vector<double> ratios;
  for (const std::string& name : EvaluatedWorkloads()) {
    RunConfig cfg = base;
    cfg.workload = name;
    cfg.mechanism = mechanism;
    cfg.mode = ExecMode::kCpuBaseline;
    const RunResult baseline = RunWorkload(cfg);
    cfg.mode = mode;
    const RunResult ndp = RunWorkload(cfg);
    const double num = region_time ? baseline.cc_region_ns : baseline.total_ns;
    const double den = region_time ? ndp.cc_region_ns : ndp.total_ns;
    if (den > 0) {
      ratios.push_back(num / den);
    }
  }
  return GeoMean(ratios);
}

// ---- Shared entry point ------------------------------------------------------

namespace {

std::unique_ptr<TraceRecorder> g_bench_trace;
hwmodel::HwConfig g_bench_hw;

}  // namespace

TraceRecorder* BenchTrace() { return g_bench_trace.get(); }

const hwmodel::HwConfig& BenchHwConfig() { return g_bench_hw; }

MetricsRegistry& BenchMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

void AttachBenchTrace(Runtime& rt) {
  if (g_bench_trace == nullptr) {
    return;
  }
  rt.AttachTrace(g_bench_trace.get());
  // This Runtime's virtual clocks start at zero; keep its timestamps from
  // aliasing the previous run's.
  g_bench_trace->NextEpoch();
}

int BenchMain(int argc, char** argv, const std::string& figure) {
  std::string trace_out;
  std::string metrics_out;
  std::string json_out = "BENCH_" + figure + ".json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(sizeof("--trace-out=") - 1);
    } else if (a.rfind("--metrics-out=", 0) == 0) {
      metrics_out = a.substr(sizeof("--metrics-out=") - 1);
    } else if (a.rfind("--json-out=", 0) == 0) {
      json_out = a.substr(sizeof("--json-out=") - 1);
    } else if (a.rfind("--hw-config=", 0) == 0) {
      auto hw = hwmodel::LoadHwConfigFile(a.substr(sizeof("--hw-config=") - 1));
      if (!hw.ok()) {
        std::fprintf(stderr, "--hw-config: %s\n",
                     hw.status().ToString().c_str());
        return 1;
      }
      g_bench_hw = *hw;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Per-figure machine-readable results ride google-benchmark's JSON file
  // reporter; the console table is unchanged.
  std::vector<std::string> extra;
  if (!json_out.empty()) {
    extra.push_back("--benchmark_out=" + json_out);
    extra.push_back("--benchmark_out_format=json");
  }
  for (std::string& e : extra) {
    args.push_back(e.data());
  }
  args.push_back(nullptr);

  if (!trace_out.empty() || !metrics_out.empty()) {
    g_bench_trace = std::make_unique<TraceRecorder>();
  }

  int n = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    if (!WriteChromeTraceFile(*g_bench_trace, trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "trace: %llu events on %zu tracks (%llu dropped) -> %s\n",
                 static_cast<unsigned long long>(g_bench_trace->recorded()),
                 g_bench_trace->track_count(),
                 static_cast<unsigned long long>(g_bench_trace->dropped()),
                 trace_out.c_str());
    std::fputs(g_bench_trace->metrics().Report().c_str(), stderr);
  }
  if (!metrics_out.empty()) {
    MetricsRegistry merged;
    merged.MergeFrom(g_bench_trace->metrics());
    merged.MergeFrom(BenchMetrics());
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    const std::string text = merged.ToPrometheus();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace bench
}  // namespace nearpm
