// Figure 17: data-movement micro-benchmark. One synchronous persistent copy
// of S bytes, CPU (cache hierarchy + clwb) versus NearPM (command path +
// near-memory DMA). Paper endpoints: 1.13x at 64 B rising to 5.57x at 16 kB
// -- the gain is pure proximity, there is no operation-level parallelism.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/core/runtime.h"

namespace nearpm {
namespace {

double CopyTimeNs(ExecMode mode, std::uint64_t size) {
  RuntimeOptions opts;
  opts.mode = mode;
  opts.pm_size = 64ull << 20;
  opts.retain_crash_state = false;
  Runtime rt(opts);
  bench::AttachBenchTrace(rt);
  auto pool = rt.RegisterPool(0, 32ull << 20);
  // Steady-state average over many back-to-back copies.
  constexpr int kReps = 64;
  const SimTime start = rt.Now(0);
  for (int i = 0; i < kReps; ++i) {
    const PmAddr src = static_cast<PmAddr>(i) * 32768;
    Status st = rt.RawCopy(*pool, 0, src, src + 16384, size, /*wait=*/true);
    if (!st.ok()) {
      std::abort();
    }
  }
  return static_cast<double>(rt.Now(0) - start) / kReps;
}

void BM_Fig17(benchmark::State& state) {
  const std::uint64_t size = static_cast<std::uint64_t>(state.range(0));
  double cpu_ns = 0;
  double ndp_ns = 0;
  for (auto _ : state) {
    cpu_ns = CopyTimeNs(ExecMode::kCpuBaseline, size);
    ndp_ns = CopyTimeNs(ExecMode::kNdpSingleDevice, size);
  }
  state.counters["cpu_ns"] = cpu_ns;
  state.counters["ndp_ns"] = ndp_ns;
  state.counters["speedup"] = cpu_ns / ndp_ns;
}

BENCHMARK(BM_Fig17)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace nearpm

int main(int argc, char** argv) {
  return nearpm::bench::BenchMain(argc, argv, "fig17_microcopy");
}
