// Figure 16: end-to-end (whole-application) speedup per workload and
// mechanism for the three NearPM configurations over the CPU baseline.
// Paper averages: SD 1.29/1.15/1.28, MD SW-sync 1.21/1.14/1.23,
// MD 1.35/1.22/1.33 for logging/checkpointing/shadow paging -- delayed
// synchronization beats CPU-polling synchronization, which trails the single
// device on synchronization overhead.
#include <benchmark/benchmark.h>

#include "bench/harness.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig16(benchmark::State& state, const std::string& workload,
              Mechanism mechanism) {
  RunConfig cfg;
  cfg.workload = workload;
  cfg.mechanism = mechanism;
  double sd = 0;
  double md_sw = 0;
  double md = 0;
  for (auto _ : state) {
    cfg.mode = ExecMode::kCpuBaseline;
    const RunResult base = RunWorkload(cfg);
    cfg.mode = ExecMode::kNdpSingleDevice;
    sd = base.total_ns / RunWorkload(cfg).total_ns;
    cfg.mode = ExecMode::kNdpMultiSwSync;
    md_sw = base.total_ns / RunWorkload(cfg).total_ns;
    cfg.mode = ExecMode::kNdpMultiDelayed;
    md = base.total_ns / RunWorkload(cfg).total_ns;
  }
  state.counters["speedup_sd"] = sd;
  state.counters["speedup_md_swsync"] = md_sw;
  state.counters["speedup_md"] = md;
}

void BM_Fig16Mean(benchmark::State& state, Mechanism mechanism,
                  ExecMode mode) {
  double mean = 0;
  for (auto _ : state) {
    RunConfig base;
    mean = MeanSpeedup(mechanism, mode, /*region_time=*/false, base);
  }
  state.counters["mean_speedup"] = mean;
}

void RegisterAll() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    for (const std::string& w : EvaluatedWorkloads()) {
      benchmark::RegisterBenchmark(
          (std::string("fig16/") + MechanismName(mech) + "/" + w).c_str(),
          [w, mech](benchmark::State& s) { BM_Fig16(s, w, mech); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (ExecMode mode :
         {ExecMode::kNdpSingleDevice, ExecMode::kNdpMultiSwSync,
          ExecMode::kNdpMultiDelayed}) {
      benchmark::RegisterBenchmark(
          (std::string("fig16/") + MechanismName(mech) + "/MEAN_" +
           ExecModeName(mode))
              .c_str(),
          [mech, mode](benchmark::State& s) { BM_Fig16Mean(s, mech, mode); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig16_endtoend");
}
