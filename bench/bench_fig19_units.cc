// Figure 19: sensitivity to the number of NearPM units per device. Average
// end-to-end speedup over the CPU baseline with 1, 2 and 4 units: more units
// exploit the operation-level parallelism of offloaded crash-consistency
// work (e.g., the cachelines of one page copy in parallel), so speedup grows
// with the unit count.
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/common/stats.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig19(benchmark::State& state, Mechanism mechanism, int units) {
  double mean = 0;
  for (auto _ : state) {
    std::vector<double> ratios;
    for (const std::string& w : EvaluatedWorkloads()) {
      RunConfig cfg;
      cfg.workload = w;
      cfg.mechanism = mechanism;
      // Unit sensitivity shows under load: four application threads keep
      // the NearPM units contended, as in the paper's loaded server setup.
      cfg.threads = 4;
      cfg.ops = 600;
      cfg.mode = ExecMode::kCpuBaseline;
      const RunResult base = RunWorkload(cfg);
      cfg.mode = ExecMode::kNdpMultiDelayed;
      cfg.units_per_device = units;
      const RunResult ndp = RunWorkload(cfg);
      ratios.push_back(base.total_ns / ndp.total_ns);
    }
    mean = GeoMean(ratios);
  }
  state.counters["units"] = units;
  state.counters["mean_speedup"] = mean;
}

void RegisterAll() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    for (int units : {1, 2, 4}) {
      benchmark::RegisterBenchmark(
          (std::string("fig19/") + MechanismName(mech) + "/units:" +
           std::to_string(units))
              .c_str(),
          [mech, units](benchmark::State& s) { BM_Fig19(s, mech, units); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig19_units");
}
