// Replicated-tier characterization: throughput, commit latency and fabric
// traffic of the replicated KV service as the replication factor grows and
// between the two commit protocols.
//
// Not a paper figure -- this measures the src/net + src/repl subsystems the
// repo adds on top of the paper's single-machine model. The interesting
// comparison is pb vs redo at fixed cluster shape: one-sided redo takes the
// backup CPU write off the replication path (the primary writes the
// backup's PM and the NDP unit replays locally), so its commit p99 should
// sit below primary-backup's at equal message counts. Every number is
// deterministic simulated time from the Pump path, so the committed
// baseline gates regressions exactly.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/repl/service.h"

namespace nearpm {
namespace bench {
namespace {

struct ReplRun {
  double throughput_ops_per_sec = 0;
  double makespan_ns = 0;
  double commit_p99_ns = 0;
  double net_messages = 0;
  double txns = 0;
};

ReplRun RunRepl(int groups, int replicas, repl::ReplProtocol protocol,
                std::uint64_t requests, std::uint64_t multiput_every) {
  repl::ReplOptions ro;
  ro.groups = groups;
  ro.replicas = replicas;
  ro.protocol = protocol;
  ro.workers_per_shard = 2;
  ro.queue_capacity = 128;
  ro.batch_max = 8;
  auto svc = repl::ReplicatedKvService::Create(ro);
  if (!svc.ok()) {
    std::abort();
  }

  for (std::uint64_t i = 0; i < requests; ++i) {
    serve::ServeRequest req;
    if (multiput_every > 0 && i % multiput_every == 0) {
      req.kind = serve::RequestKind::kMultiPut;
      for (std::uint64_t j = 0; j < 4; ++j) {
        const std::uint64_t key = 100000 + i + j * 31;
        req.pairs.push_back(
            serve::KvPair{key, std::vector<std::uint8_t>(8, 1)});
      }
    } else if (i % 3 == 2) {
      req.kind = serve::RequestKind::kGet;
      req.key = i / 2;
    } else {
      req.kind = serve::RequestKind::kPut;
      req.key = i;
      req.value = std::vector<std::uint8_t>(8, 2);
    }
    if (!(*svc)->Submit(std::move(req)).ok()) {
      (*svc)->Pump();  // backpressure: drain, then retry deterministically
      --i;
    }
  }
  (*svc)->Pump();

  const repl::ReplStats stats = (*svc)->Stats();
  ReplRun run;
  run.throughput_ops_per_sec = stats.throughput_ops_per_sec;
  run.makespan_ns = static_cast<double>(stats.makespan_ns);
  run.commit_p99_ns = static_cast<double>(stats.commit_p99_ns);
  run.net_messages = static_cast<double>(stats.net_messages);
  run.txns = static_cast<double>(stats.txns);
  if ((*svc)->PpoViolations() > 0) {
    std::abort();  // the bench must never trade correctness for speed
  }
  // Fold node + fabric observability into the process registry so
  // --metrics-out carries per-node duty cycles and per-link fabric duty
  // alongside the trace-derived metrics.
  (*svc)->ExportResourceMetrics();
  BenchMetrics().MergeFrom((*svc)->metrics());
  return run;
}

void RegisterAll() {
  // Replication factor at fixed group count: the cost of each extra copy.
  for (int replicas : {1, 2, 3}) {
    benchmark::RegisterBenchmark(
        ("repl/replicas:" + std::to_string(replicas)).c_str(),
        [replicas](benchmark::State& state) {
          ReplRun run;
          for (auto _ : state) {
            run = RunRepl(/*groups=*/2, replicas,
                          repl::ReplProtocol::kPrimaryBackup,
                          /*requests=*/400, /*multiput_every=*/50);
          }
          state.counters["throughput_ops_per_sec"] = run.throughput_ops_per_sec;
          state.counters["makespan_ns"] = run.makespan_ns;
          state.counters["commit_p99_ns"] = run.commit_p99_ns;
          state.counters["net_messages"] = run.net_messages;
          state.counters["txns"] = run.txns;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Protocol comparison at fixed cluster shape (2 groups x 2 replicas).
  for (const repl::ReplProtocol protocol :
       {repl::ReplProtocol::kPrimaryBackup,
        repl::ReplProtocol::kOneSidedRedo}) {
    benchmark::RegisterBenchmark(
        (std::string("repl/protocol:") + repl::ReplProtocolName(protocol))
            .c_str(),
        [protocol](benchmark::State& state) {
          ReplRun run;
          for (auto _ : state) {
            run = RunRepl(/*groups=*/2, /*replicas=*/2, protocol,
                          /*requests=*/400, /*multiput_every=*/50);
          }
          state.counters["throughput_ops_per_sec"] = run.throughput_ops_per_sec;
          state.counters["makespan_ns"] = run.makespan_ns;
          state.counters["commit_p99_ns"] = run.commit_p99_ns;
          state.counters["net_messages"] = run.net_messages;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "serve_repl");
}
