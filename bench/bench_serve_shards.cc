// Serving-layer scaling: throughput and latency of the sharded KV front end
// as independent NearPM machines are added.
//
// Not a paper figure -- this measures the src/serve subsystem the repo adds
// on top of the paper's single-machine model: N shards, bounded queues,
// request batching (one doorbell/fence per batch) and periodic cross-shard
// MultiPuts. Every number is deterministic simulated time from the Pump
// path, so the committed baseline gates regressions exactly.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/serve/service.h"

namespace nearpm {
namespace bench {
namespace {

struct ServeRun {
  double throughput_ops_per_sec = 0;
  double makespan_ns = 0;
  double p99_ns = 0;
  double txns = 0;
};

ServeRun RunServe(int shards, int batch_max, std::uint64_t requests,
                  std::uint64_t multiput_every) {
  serve::ServeOptions so;
  so.shards = shards;
  so.workers_per_shard = 2;
  so.queue_capacity = 128;
  so.batch_max = batch_max;
  auto svc = serve::KvService::Create(so);
  if (!svc.ok()) {
    std::abort();
  }

  std::uint64_t submitted = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    serve::ServeRequest req;
    if (multiput_every > 0 && i % multiput_every == 0) {
      req.kind = serve::RequestKind::kMultiPut;
      for (std::uint64_t j = 0; j < 4; ++j) {
        const std::uint64_t key = 100000 + i + j * 31;
        req.pairs.push_back(
            serve::KvPair{key, std::vector<std::uint8_t>(8, 1)});
      }
    } else if (i % 3 == 2) {
      req.kind = serve::RequestKind::kGet;
      req.key = i / 2;
    } else {
      req.kind = serve::RequestKind::kPut;
      req.key = i;
      req.value = std::vector<std::uint8_t>(8, 2);
    }
    if ((*svc)->Submit(std::move(req)).ok()) {
      ++submitted;
    } else {
      (*svc)->Pump();  // backpressure: drain, then retry deterministically
      --i;
    }
  }
  (*svc)->Pump();

  const serve::ServeStats stats = (*svc)->Stats();
  ServeRun run;
  run.throughput_ops_per_sec = stats.throughput_ops_per_sec;
  run.makespan_ns = static_cast<double>(stats.makespan_ns);
  run.p99_ns = static_cast<double>(stats.request_p99_ns);
  run.txns = static_cast<double>(stats.txns);
  if ((*svc)->PpoViolations() > 0) {
    std::abort();  // the bench must never trade correctness for speed
  }
  // Fold this service's observability into the process registry so
  // --metrics-out carries serve counters, latency quantiles and per-shard
  // per-unit duty cycles alongside the trace-derived metrics.
  (*svc)->ExportResourceMetrics();
  BenchMetrics().MergeFrom((*svc)->metrics());
  for (int s = 0; s < (*svc)->num_shards(); ++s) {
    BenchMetrics().MergeFrom((*svc)->shard(s).recorder().metrics());
  }
  return run;
}

// Threaded hot-path throughput: real OS worker threads draining the shard
// rings while `clients` submitter threads push puts/gets as fast as
// admission allows. Unlike the Pump entries this measures *wall-clock*
// ops/sec of the queue + metrics hot path, so it is nondeterministic and
// deliberately absent from the committed baseline; CI only asserts
// progress. It is the number the lock-free ring exists to move.
ServeRun RunThreadedServe(int shards, int clients,
                          std::uint64_t requests_per_client) {
  serve::ServeOptions so;
  so.shards = shards;
  so.workers_per_shard = 2;
  so.queue_capacity = 256;
  so.batch_max = 8;
  auto svc = serve::KvService::Create(so);
  if (!svc.ok()) {
    std::abort();
  }
  (*svc)->Start();

  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&svc, &completed, c, requests_per_client] {
      std::vector<std::future<serve::ServeResult>> futures;
      futures.reserve(requests_per_client);
      for (std::uint64_t i = 0; i < requests_per_client; ++i) {
        serve::ServeRequest req;
        const std::uint64_t key =
            static_cast<std::uint64_t>(c) * requests_per_client + i;
        if (i % 3 == 2) {
          req.kind = serve::RequestKind::kGet;
          req.key = key / 2;
        } else {
          req.kind = serve::RequestKind::kPut;
          req.key = key;
          req.value = std::vector<std::uint8_t>(8, 2);
        }
        // Backpressure: a full ring rejects; yield to the workers and retry.
        while (true) {
          serve::ServeRequest copy = req;
          if ((*svc)->Submit(std::move(copy)).ok()) {
            break;
          }
          std::this_thread::yield();
        }
      }
      completed.fetch_add(requests_per_client, std::memory_order_relaxed);
      for (auto& fut : futures) {
        fut.get();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  (*svc)->Stop();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const serve::ServeStats stats = (*svc)->Stats();
  ServeRun run;
  run.throughput_ops_per_sec =
      wall_s > 0 ? static_cast<double>(stats.completed) / wall_s : 0;
  run.makespan_ns = static_cast<double>(stats.makespan_ns);
  run.p99_ns = static_cast<double>(stats.request_p99_ns);
  if (stats.completed == 0 || (*svc)->PpoViolations() > 0) {
    std::abort();
  }
  return run;
}

void RegisterAll() {
  for (int shards : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("serve/shards:" + std::to_string(shards)).c_str(),
        [shards](benchmark::State& state) {
          ServeRun run;
          for (auto _ : state) {
            run = RunServe(shards, /*batch_max=*/8, /*requests=*/600,
                           /*multiput_every=*/50);
          }
          state.counters["throughput_ops_per_sec"] = run.throughput_ops_per_sec;
          state.counters["makespan_ns"] = run.makespan_ns;
          state.counters["p99_ns"] = run.p99_ns;
          state.counters["txns"] = run.txns;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Threaded wall-clock hot path (the acceptance number for the lock-free
  // ring): 4 shards x 4 submitter clients, 25k requests per client.
  benchmark::RegisterBenchmark(
      "serve/threaded:4x4",
      [](benchmark::State& state) {
        ServeRun run;
        for (auto _ : state) {
          run = RunThreadedServe(/*shards=*/4, /*clients=*/4,
                                 /*requests_per_client=*/25000);
        }
        state.counters["wall_ops_per_sec"] = run.throughput_ops_per_sec;
        state.counters["p99_ns"] = run.p99_ns;
      })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  // The amortization knob at fixed shard count: per-request doorbell/fence
  // versus one per batch of 8.
  for (int batch : {1, 8}) {
    benchmark::RegisterBenchmark(
        ("serve/batch:" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& state) {
          ServeRun run;
          for (auto _ : state) {
            run = RunServe(/*shards=*/2, batch, /*requests=*/600,
                           /*multiput_every=*/0);
          }
          state.counters["throughput_ops_per_sec"] = run.throughput_ops_per_sec;
          state.counters["makespan_ns"] = run.makespan_ns;
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "serve_shards");
}
