// Figure 15: speedup within the crash-consistency code regions, per workload
// and mechanism, for the three NearPM configurations over the CPU baseline.
// Paper averages: 6.9x (logging), 4.3x (checkpointing), 9.8x (shadow paging);
// TATP under logging is the outlier at ~1.2x (no operation-level
// parallelism: one log per transaction, committed immediately).
#include <benchmark/benchmark.h>

#include "bench/harness.h"
#include "src/common/stats.h"

namespace nearpm {
namespace bench {
namespace {

void BM_Fig15(benchmark::State& state, const std::string& workload,
              Mechanism mechanism) {
  RunConfig cfg;
  cfg.workload = workload;
  cfg.mechanism = mechanism;
  double sd = 0;
  double md_sw = 0;
  double md = 0;
  for (auto _ : state) {
    cfg.mode = ExecMode::kCpuBaseline;
    const RunResult base = RunWorkload(cfg);
    cfg.mode = ExecMode::kNdpSingleDevice;
    sd = base.cc_region_ns / RunWorkload(cfg).cc_region_ns;
    cfg.mode = ExecMode::kNdpMultiSwSync;
    md_sw = base.cc_region_ns / RunWorkload(cfg).cc_region_ns;
    cfg.mode = ExecMode::kNdpMultiDelayed;
    md = base.cc_region_ns / RunWorkload(cfg).cc_region_ns;
  }
  state.counters["speedup_sd"] = sd;
  state.counters["speedup_md_swsync"] = md_sw;
  state.counters["speedup_md"] = md;
}

void BM_Fig15Mean(benchmark::State& state, Mechanism mechanism,
                  ExecMode mode) {
  double mean = 0;
  for (auto _ : state) {
    RunConfig base;
    mean = MeanSpeedup(mechanism, mode, /*region_time=*/true, base);
  }
  state.counters["mean_speedup"] = mean;
}

void RegisterAll() {
  for (Mechanism mech : {Mechanism::kLogging, Mechanism::kCheckpointing,
                         Mechanism::kShadowPaging}) {
    for (const std::string& w : EvaluatedWorkloads()) {
      benchmark::RegisterBenchmark(
          (std::string("fig15/") + MechanismName(mech) + "/" + w).c_str(),
          [w, mech](benchmark::State& s) { BM_Fig15(s, w, mech); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("fig15/") + MechanismName(mech) + "/MEAN_md").c_str(),
        [mech](benchmark::State& s) {
          BM_Fig15Mean(s, mech, ExecMode::kNdpMultiDelayed);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nearpm

int main(int argc, char** argv) {
  nearpm::bench::RegisterAll();
  return nearpm::bench::BenchMain(argc, argv, "fig15_regions");
}
