// Offline trace analysis: replays a recorded TraceEvent stream through the
// same PmSanitizer rule engine that the live hooks feed, so a JSONL trace
// captured anywhere (CI artifact, user report) can be analyzed after the
// fact with identical rule IDs.
//
// Event timestamps only order events within one trace epoch; the analyzer
// replays in global record order (`TraceEvent::order`), which is the real
// issue order of the program. Beware ring-buffer truncation: a trace
// recorded with a small ring capacity can drop early writes/persists and
// produce spurious findings -- record with an ample ring when analyzing.
#ifndef NEARPM_ANALYZE_TRACE_ANALYZER_H_
#define NEARPM_ANALYZE_TRACE_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "src/analyze/sanitizer.h"
#include "src/trace/trace_event.h"

namespace nearpm {
namespace analyze {

struct TraceAnalysisStats {
  std::uint64_t events = 0;    // events replayed
  std::uint64_t ignored = 0;   // phases with no persistency meaning
};

// Replays `events` (any order; sorted internally by record order) through
// `san`. Calls san->Finish() at the end of the stream.
TraceAnalysisStats AnalyzeTrace(std::vector<TraceEvent> events,
                                PmSanitizer* san);

}  // namespace analyze
}  // namespace nearpm

#endif  // NEARPM_ANALYZE_TRACE_ANALYZER_H_
