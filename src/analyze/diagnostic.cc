#include "src/analyze/diagnostic.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace nearpm {
namespace analyze {
namespace {

// Folded findings are capped so a pathological run cannot grow the sink
// without bound; occurrence counters keep counting past the cap.
constexpr std::size_t kMaxFoldedDiagnostics = 4096;

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonString(std::string_view text) {
  std::string out = "\"";
  AppendJsonEscaped(&out, text);
  out += '"';
  return out;
}

}  // namespace

std::string_view TrimSourcePath(std::string_view path) {
  // Keep the path from the last occurrence of a top-level repo directory.
  static constexpr std::string_view kRoots[] = {"src/", "tools/", "tests/",
                                                "bench/", "examples/"};
  std::size_t best = std::string_view::npos;
  for (std::string_view root : kRoots) {
    for (std::size_t pos = path.find(root); pos != std::string_view::npos;
         pos = path.find(root, pos + 1)) {
      const bool at_boundary = pos == 0 || path[pos - 1] == '/';
      if (at_boundary && (best == std::string_view::npos || pos < best)) {
        best = pos;
      }
    }
  }
  return best == std::string_view::npos ? path : path.substr(best);
}

bool DiagnosticSink::Suppress(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view id =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  RuleId rule;
  if (!RuleFromString(id, &rule)) return false;
  Suppression s{rule, {}};
  if (colon != std::string_view::npos) {
    s.file_substr = std::string(spec.substr(colon + 1));
  }
  suppressions_.push_back(std::move(s));
  return true;
}

bool DiagnosticSink::IsSuppressed(RuleId rule, const SourceLoc& loc) const {
  const std::string_view file = TrimSourcePath(loc.file);
  return std::any_of(suppressions_.begin(), suppressions_.end(),
                     [&](const Suppression& s) {
                       if (s.rule != rule) return false;
                       return s.file_substr.empty() ||
                              file.find(s.file_substr) !=
                                  std::string_view::npos;
                     });
}

bool DiagnosticSink::Report(RuleId rule, const SourceLoc& loc, ThreadId tid,
                            SimTime when, AddrRange range,
                            std::string message) {
  const bool suppressed = IsSuppressed(rule, loc);
  auto& counter = suppressed ? suppressed_counts_ : counts_;
  ++counter[static_cast<std::size_t>(rule)];

  std::string key = RuleIdString(rule);
  key += '|';
  key += TrimSourcePath(loc.file);
  key += '|';
  key += std::to_string(loc.line);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++diags_[it->second].count;
  } else if (diags_.size() < kMaxFoldedDiagnostics) {
    index_.emplace(std::move(key), diags_.size());
    diags_.push_back(Diagnostic{rule, std::move(message), loc, tid, when,
                                range, 1, suppressed});
  }
  return !suppressed;
}

std::uint64_t DiagnosticSink::count(RuleId rule) const {
  return counts_[static_cast<std::size_t>(rule)];
}

std::uint64_t DiagnosticSink::suppressed_count(RuleId rule) const {
  return suppressed_counts_[static_cast<std::size_t>(rule)];
}

std::uint64_t DiagnosticSink::total_unsuppressed() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts_) total += c;
  return total;
}

std::uint64_t DiagnosticSink::total_suppressed() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : suppressed_counts_) total += c;
  return total;
}

std::string DiagnosticSink::RenderText() const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    const RuleInfo& info = RuleOf(d.rule);
    out << TrimSourcePath(d.loc.file) << ':' << d.loc.line << ": "
        << info.level << ": [" << info.id << "] " << d.message;
    if (d.count > 1) out << " (x" << d.count << ")";
    if (d.suppressed) out << " [suppressed]";
    out << '\n';
  }
  out << "pm-sanitizer: " << total_unsuppressed() << " finding(s), "
      << total_suppressed() << " suppressed\n";
  return out.str();
}

std::string DiagnosticSink::RenderJson() const {
  std::string out = "{\n  \"schema\": \"nearpm-analyze-v1\",\n"
                    "  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out += "    {\"rule\": ";
    out += JsonString(RuleIdString(d.rule));
    out += ", \"file\": ";
    out += JsonString(TrimSourcePath(d.loc.file));
    out += ", \"line\": " + std::to_string(d.loc.line);
    out += ", \"function\": ";
    out += JsonString(d.loc.function);
    out += ", \"tid\": " + std::to_string(d.tid);
    out += ", \"when_ns\": " + std::to_string(d.when);
    out += ", \"range\": [" + std::to_string(d.range.begin) + ", " +
           std::to_string(d.range.end) + "]";
    out += ", \"count\": " + std::to_string(d.count);
    out += std::string(", \"suppressed\": ") +
           (d.suppressed ? "true" : "false");
    out += ", \"message\": ";
    out += JsonString(d.message);
    out += i + 1 < diags_.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"counts\": {";
  for (int i = 0; i < kNumRules; ++i) {
    const auto rule = static_cast<RuleId>(i);
    if (i > 0) out += ", ";
    out += JsonString(RuleIdString(rule));
    out += ": " + std::to_string(count(rule));
  }
  out += "},\n  \"suppressed_counts\": {";
  for (int i = 0; i < kNumRules; ++i) {
    const auto rule = static_cast<RuleId>(i);
    if (i > 0) out += ", ";
    out += JsonString(RuleIdString(rule));
    out += ": " + std::to_string(suppressed_count(rule));
  }
  out += "},\n  \"total_unsuppressed\": " +
         std::to_string(total_unsuppressed());
  out += ",\n  \"total_suppressed\": " + std::to_string(total_suppressed());
  out += "\n}\n";
  return out;
}

std::string DiagnosticSink::RenderSarif() const {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"nearpm-analyze\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/nearpm/analyzer\",\n"
      "          \"rules\": [\n";
  for (int i = 0; i < kNumRules; ++i) {
    const RuleInfo& info = RuleOf(static_cast<RuleId>(i));
    out += "            {\"id\": ";
    out += JsonString(info.id);
    out += ", \"name\": ";
    out += JsonString(info.name);
    out += ", \"shortDescription\": {\"text\": ";
    out += JsonString(info.summary);
    out += "}, \"defaultConfiguration\": {\"level\": ";
    out += JsonString(info.level);
    out += i + 1 < kNumRules ? "}},\n" : "}}\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    const RuleInfo& info = RuleOf(d.rule);
    out += "        {\"ruleId\": ";
    out += JsonString(info.id);
    out += ", \"ruleIndex\": " +
           std::to_string(static_cast<std::size_t>(d.rule));
    out += ", \"level\": ";
    out += JsonString(info.level);
    out += ", \"message\": {\"text\": ";
    out += JsonString(d.message);
    out += "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": ";
    out += JsonString(TrimSourcePath(d.loc.file));
    out += "}, \"region\": {\"startLine\": " +
           std::to_string(d.loc.line == 0 ? 1 : d.loc.line);
    out += "}}}]";
    out += ", \"occurrenceCount\": " + std::to_string(d.count);
    if (d.suppressed) {
      out += ", \"suppressions\": [{\"kind\": \"inSource\"}]";
    }
    out += i + 1 < diags_.size() ? "},\n" : "}\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace analyze
}  // namespace nearpm
