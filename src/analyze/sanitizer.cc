#include "src/analyze/sanitizer.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace nearpm {
namespace analyze {
namespace {

PmAddr FirstLine(AddrRange range) {
  return AlignDown(range.begin, kCacheLineSize);
}

std::string DescribeRange(AddrRange range) {
  std::ostringstream out;
  out << "[0x" << std::hex << range.begin << ", 0x" << range.end << ")";
  return out.str();
}

}  // namespace

void PmSanitizer::SetInOp(ThreadId t, bool v) {
  if (t >= in_op_.size()) in_op_.resize(t + 1, false);
  in_op_[t] = v;
}

std::uint64_t PmSanitizer::UnpersistedLinesIn(AddrRange range) const {
  if (range.empty()) return 0;
  std::uint64_t n = 0;
  for (PmAddr a = FirstLine(range); a < range.end; a += kCacheLineSize) {
    n += lines_.count(a);
  }
  return n;
}

std::vector<PmSanitizer::LiveReq>& PmSanitizer::DeviceClock(DeviceId dev) {
  if (dev >= devices_.size()) devices_.resize(dev + 1);
  return devices_[dev];
}

void PmSanitizer::ResetVolatile() {
  lines_.clear();
  flushed_.clear();
  for (auto& clock : devices_) clock.clear();
  in_op_.assign(in_op_.size(), false);
  last_marker_ = 0;
}

void PmSanitizer::OnCpuWrite(ThreadId t, AddrRange range, SimTime now,
                             const SourceLoc& loc) {
  ++stats_.writes;
  if (range.empty()) return;
  const bool in_op = InOp(t);
  for (PmAddr a = FirstLine(range); a < range.end; a += kCacheLineSize) {
    lines_[a] = LineRec{LineState::kDirty, t, ++tick_, now, loc, in_op};
  }
  stats_.shadow_lines_peak =
      std::max<std::uint64_t>(stats_.shadow_lines_peak, lines_.size());
}

void PmSanitizer::OnCpuRead(ThreadId t, AddrRange range, SimTime now,
                            const SourceLoc& loc) {
  ++stats_.reads;
  if (range.empty()) return;
  if (durable_scope_ > 0) {
    for (PmAddr a = FirstLine(range); a < range.end; a += kCacheLineSize) {
      auto it = lines_.find(a);
      // scope_begin_tick_ is the last tick consumed before the scope opened,
      // so "written before the scope" is tick <= scope_begin_tick_.
      if (it == lines_.end() || it->second.tick > scope_begin_tick_) continue;
      std::ostringstream msg;
      msg << "durable-scope read of " << DescribeRange(range)
          << " observes a line written before the scope at "
          << TrimSourcePath(it->second.loc.file) << ':' << it->second.loc.line
          << " but never persisted; a crash would roll it back";
      sink_.Report(RuleId::kNpm001, loc, t, now, range, msg.str());
      break;
    }
  }
  for (std::size_t dev = 0; dev < devices_.size(); ++dev) {
    for (const LiveReq& req : devices_[dev]) {
      if (req.retired || req.completion <= now) continue;
      if (!req.write_range.Overlaps(range)) continue;
      std::ostringstream msg;
      msg << "CPU read of " << DescribeRange(range)
          << " overlaps in-flight NDP request seq=" << req.seq << " on device "
          << dev << " (completes at " << req.completion << " ns, now " << now
          << " ns) without a barrier; persist order is undefined";
      sink_.Report(RuleId::kNpm003, loc, t, now, range, msg.str());
      return;
    }
  }
}

void PmSanitizer::OnFlush(ThreadId t, AddrRange range, SimTime now,
                          const SourceLoc& loc) {
  ++stats_.flushes;
  if (range.empty()) return;
  std::uint64_t fresh = 0;
  for (PmAddr a = FirstLine(range); a < range.end; a += kCacheLineSize) {
    auto it = lines_.find(a);
    if (it == lines_.end() || it->second.state != LineState::kDirty) continue;
    it->second.state = LineState::kFlushed;
    flushed_.push_back(a);
    ++fresh;
  }
  if (fresh == 0) {
    std::ostringstream msg;
    msg << "persist of " << DescribeRange(range)
        << " covers no dirty cache line; the clwb/fence sequence is "
           "redundant";
    sink_.Report(RuleId::kNpm005, loc, t, now, range, msg.str());
  }
}

void PmSanitizer::OnFence(ThreadId) {
  ++stats_.fences;
  for (PmAddr a : flushed_) {
    auto it = lines_.find(a);
    if (it != lines_.end() && it->second.state == LineState::kFlushed) {
      lines_.erase(it);
    }
  }
  flushed_.clear();
}

void PmSanitizer::OnCoherenceWriteback(ThreadId, AddrRange range) {
  if (range.empty()) return;
  for (PmAddr a = FirstLine(range); a < range.end; a += kCacheLineSize) {
    lines_.erase(a);
  }
}

void PmSanitizer::OnReplDoorbell(ThreadId t, AddrRange range, SimTime now,
                                 const SourceLoc& loc) {
  const std::uint64_t unpersisted = UnpersistedLinesIn(range);
  if (unpersisted == 0) return;
  std::ostringstream msg;
  msg << "replica replay doorbell rung with " << unpersisted
      << " redo-record line(s) still un-persisted " << DescribeRange(range)
      << "; a crash can tear the record behind an acknowledged doorbell";
  sink_.Report(RuleId::kNpm007, loc, t, now, range, msg.str());
}

void PmSanitizer::OnNdpCommand(ThreadId t, AddrRange read_range,
                               AddrRange write_range, SimTime now,
                               bool commit_class,
                               std::uint32_t touched_devices,
                               const SourceLoc& loc) {
  ++stats_.ndp_commands;
  const std::uint64_t unpersisted =
      UnpersistedLinesIn(read_range) + UnpersistedLinesIn(write_range);
  if (unpersisted > 0) {
    std::ostringstream msg;
    msg << "NDP doorbell rung with " << unpersisted
        << " operand line(s) still un-persisted on the CPU (read "
        << DescribeRange(read_range) << ", write "
        << DescribeRange(write_range)
        << "); the device may observe pre-writeback bytes";
    sink_.Report(RuleId::kNpm002, loc, t, now,
                 read_range.empty() ? write_range : read_range, msg.str());
  }
  if (!commit_class) return;
  for (std::size_t dev = 0; dev < devices_.size(); ++dev) {
    if (dev < 32 && (touched_devices & (1u << dev)) != 0) continue;
    for (const LiveReq& req : devices_[dev]) {
      if (req.retired || req.deferred || req.after_sync != last_marker_) {
        continue;
      }
      std::ostringstream msg;
      msg << "commit-class command issued while device " << dev
          << " still has un-synchronized in-flight request seq=" << req.seq
          << "; a crash can persist the commit before its log slices";
      sink_.Report(RuleId::kNpm004, loc, t, now, write_range, msg.str());
      break;
    }
  }
}

void PmSanitizer::OnDeviceExecute(DeviceId dev, std::uint64_t seq,
                                  AddrRange write_range, SimTime completion,
                                  bool deferred) {
  std::vector<LiveReq>& clock = DeviceClock(dev);
  if (clock.size() > 64) {
    const auto retired = static_cast<std::size_t>(std::count_if(
        clock.begin(), clock.end(), [](const LiveReq& r) { return r.retired; }));
    if (retired * 2 > clock.size()) {
      std::erase_if(clock, [](const LiveReq& r) { return r.retired; });
    }
  }
  clock.push_back(
      LiveReq{seq, write_range, completion, last_marker_, false, deferred});
}

void PmSanitizer::OnRetire(DeviceId dev, std::uint64_t seq) {
  ++stats_.retires;
  if (dev >= devices_.size()) return;
  for (LiveReq& req : devices_[dev]) {
    if (req.seq == seq) req.retired = true;
  }
}

void PmSanitizer::OnSyncMarker(std::uint64_t sync_id) {
  last_marker_ = sync_id;
}

void PmSanitizer::OnSyncComplete(std::uint64_t sync_id) {
  for (auto& clock : devices_) {
    for (LiveReq& req : clock) {
      if (req.after_sync < sync_id) req.retired = true;
    }
  }
}

void PmSanitizer::OnOpBegin(ThreadId t) { SetInOp(t, true); }

void PmSanitizer::OnOpEnd(ThreadId t, bool durable, SimTime now,
                          const SourceLoc& loc) {
  SetInOp(t, false);
  if (!durable) return;
  std::uint64_t leaked = 0;
  const LineRec* first = nullptr;
  for (const auto& [addr, rec] : lines_) {
    // Only lines written inside an operation: the mechanism's durable point
    // promises nothing about stores made outside BeginOp/CommitOp (those are
    // checked at Finish instead).
    if (rec.writer != t || !rec.in_op) continue;
    ++leaked;
    if (first == nullptr || rec.tick < first->tick) first = &rec;
  }
  if (leaked == 0) return;
  std::ostringstream msg;
  msg << leaked << " cache line(s) written by thread " << t
      << " remain un-persisted at a durability point; first written at "
      << TrimSourcePath(first->loc.file) << ':' << first->loc.line;
  sink_.Report(RuleId::kNpm006, first->loc, t, now, AddrRange{}, msg.str());
  (void)loc;
}

void PmSanitizer::BeginDurableScope() {
  if (durable_scope_++ == 0) scope_begin_tick_ = tick_;
}

void PmSanitizer::EndDurableScope() {
  assert(durable_scope_ > 0);
  --durable_scope_;
}

void PmSanitizer::OnCrash() { ResetVolatile(); }

void PmSanitizer::OnQuiesce() { ResetVolatile(); }

void PmSanitizer::Finish(SimTime now) {
  for (const auto& [addr, rec] : lines_) {
    if (rec.in_op) continue;  // open op at exit: no durability was promised
    std::ostringstream msg;
    msg << "line 0x" << std::hex << addr << std::dec
        << " written outside any failure-atomic operation was never "
           "persisted before the end of the run";
    sink_.Report(RuleId::kNpm006, rec.loc, rec.writer, now,
                 AddrRange{addr, addr + kCacheLineSize}, msg.str());
  }
}

}  // namespace analyze
}  // namespace nearpm
