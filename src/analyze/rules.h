#ifndef NEARPM_ANALYZE_RULES_H_
#define NEARPM_ANALYZE_RULES_H_

#include <cstdint>
#include <string_view>

namespace nearpm {
namespace analyze {

// Stable rule identifiers for the PM-Sanitizer.  The numeric values are part
// of the external contract (SARIF ruleId, suppression specs, CI grep lines):
// never renumber an existing rule, only append.
enum class RuleId : std::uint8_t {
  kNpm001 = 0,  // durable read of unpersisted data
  kNpm002,      // doorbell rung before operands persisted
  kNpm003,      // CPU access overlaps an in-flight NDP request (PPO order)
  kNpm004,      // commit-class command without cross-device sync
  kNpm005,      // redundant clwb/fence (performance lint)
  kNpm006,      // unflushed lines at a durability point / end of run
  kNpm007,      // replica doorbell rung before the redo record persisted
  kCount,
};

inline constexpr int kNumRules = static_cast<int>(RuleId::kCount);

struct RuleInfo {
  const char* id;       // stable external name, e.g. "NPM001"
  const char* name;     // short kebab-case slug for SARIF rule metadata
  const char* summary;  // one-line description
  const char* level;    // SARIF level: "error" | "warning" | "note"
};

// Metadata for a rule; `rule` must be < RuleId::kCount.
const RuleInfo& RuleOf(RuleId rule);

// "NPM001" etc.  Never returns nullptr for a valid rule.
const char* RuleIdString(RuleId rule);

// Parses "NPM003" (case-insensitive) into a RuleId.  Returns false on
// unknown ids.
bool RuleFromString(std::string_view text, RuleId* out);

}  // namespace analyze
}  // namespace nearpm

#endif  // NEARPM_ANALYZE_RULES_H_
