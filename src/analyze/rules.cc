#include "src/analyze/rules.h"

#include <array>
#include <cassert>
#include <cctype>

namespace nearpm {
namespace analyze {
namespace {

constexpr std::array<RuleInfo, kNumRules> kRules = {{
    {"NPM001", "durable-read-of-unpersisted-data",
     "A recovery-path (durable-scope) read observed data that was written "
     "before the scope began but never persisted; after a crash the read "
     "would return stale bytes.",
     "error"},
    {"NPM002", "doorbell-before-operand-persist",
     "An NDP command was posted while cache lines inside its operand ranges "
     "were still dirty or un-fenced on the CPU; the device may read or "
     "log pre-writeback bytes.",
     "error"},
    {"NPM003", "ppo-order-violation",
     "A CPU access to persistent memory overlaps the write range of an "
     "in-flight, un-synchronized NDP request; persist order between host "
     "and device is undefined (PPO Invariant 1/2).",
     "error"},
    {"NPM004", "missing-cross-device-sync",
     "A commit-class command was issued while another device still had "
     "un-synchronized in-flight requests from the same logical operation; "
     "a crash can persist the commit before its log slices (PPO "
     "Invariant 3/4).",
     "error"},
    {"NPM005", "redundant-persist",
     "A clwb/fence sequence covered no dirty cache lines; the flush is "
     "pure overhead (performance lint).",
     "warning"},
    {"NPM006", "unflushed-lines-at-durability-point",
     "Cache lines written before a durability point (operation commit, "
     "epoch close, or end of run) were never flushed; their contents are "
     "not crash-consistent.",
     "error"},
    {"NPM007", "doorbell-before-redo-persist",
     "A replica's replay doorbell was rung while cache lines of the "
     "one-sided redo record were still un-persisted; a crash can leave a "
     "torn record behind an already-acknowledged doorbell.",
     "error"},
}};

}  // namespace

const RuleInfo& RuleOf(RuleId rule) {
  assert(rule < RuleId::kCount);
  return kRules[static_cast<std::size_t>(rule)];
}

const char* RuleIdString(RuleId rule) { return RuleOf(rule).id; }

bool RuleFromString(std::string_view text, RuleId* out) {
  for (int i = 0; i < kNumRules; ++i) {
    const std::string_view id = kRules[static_cast<std::size_t>(i)].id;
    if (text.size() != id.size()) continue;
    bool match = true;
    for (std::size_t j = 0; j < id.size(); ++j) {
      if (std::toupper(static_cast<unsigned char>(text[j])) != id[j]) {
        match = false;
        break;
      }
    }
    if (match) {
      *out = static_cast<RuleId>(i);
      return true;
    }
  }
  return false;
}

}  // namespace analyze
}  // namespace nearpm
