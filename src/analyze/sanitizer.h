// PmSanitizer: eager, call-site-precise persistency-bug detection.
//
// The sanitizer mirrors the persistency state of every touched cache line in
// a shadow map (dirty-in-store-buffer -> flushed-unfenced -> persisted) and
// keeps a per-device clock of in-flight NDP requests tagged with the last
// cross-device sync marker they were issued after. The runtime, PmSpace and
// NearPmDevice call the On* hooks through the zero-cost NEARPM_SAN_HOOK
// macro; each hook checks its rule *at the issuing call site* and reports
// into a DiagnosticSink, so a violation names the program point that created
// the hazard rather than the crash that exposed it (contrast: the
// trace-replay PpoChecker, which validates a recorded run after the fact).
//
// The sanitizer is single-threaded by design: attach it only to
// deterministic drivers (workloads, fuzzers, the nearpm_analyze CLI), never
// to the threaded serve Start/Stop path. It also requires
// retain_crash_state=true so that retire/sync bookkeeping reaches PmSpace.
//
// Layering: depends only on src/common, src/sim and the DiagnosticSink, so
// pmem and ndp can hook it without cycles.
#ifndef NEARPM_ANALYZE_SANITIZER_H_
#define NEARPM_ANALYZE_SANITIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/analyze/diagnostic.h"
#include "src/analyze/rules.h"
#include "src/common/types.h"
#include "src/sim/cost_model.h"

// Invokes `call` on sanitizer pointer `san` iff a sanitizer is attached.
// Mirrors NEARPM_TRACE_EVENT: compiles to a null check on the hot path.
#define NEARPM_SAN_HOOK(san, call)                         \
  do {                                                     \
    ::nearpm::analyze::PmSanitizer* nearpm_san_ = (san);   \
    if (nearpm_san_ != nullptr) {                          \
      nearpm_san_->call; /* NOLINT(bugprone-macro-parentheses) */ \
    }                                                      \
  } while (0)

namespace nearpm {
namespace analyze {

class PmSanitizer {
 public:
  // Hook-invocation counters: deterministic across runs of the same
  // workload, which makes them suitable as bench-gate counters.
  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t ndp_commands = 0;
    std::uint64_t retires = 0;
    std::uint64_t shadow_lines_peak = 0;
  };

  DiagnosticSink& sink() { return sink_; }
  const DiagnosticSink& sink() const { return sink_; }
  const Stats& stats() const { return stats_; }

  // ---- CPU-side hooks (core::Runtime).
  void OnCpuWrite(ThreadId t, AddrRange range, SimTime now,
                  const SourceLoc& loc);
  void OnCpuRead(ThreadId t, AddrRange range, SimTime now,
                 const SourceLoc& loc);
  // The clwb half of a Persist: dirty lines in `range` become flushed.
  // NPM005 fires when the range contains no dirty line at all.
  void OnFlush(ThreadId t, AddrRange range, SimTime now, const SourceLoc& loc);
  // The sfence half: every flushed line becomes persisted (leaves the map).
  void OnFence(ThreadId t);
  // Hardware write-back guard ahead of an NDP command: persists pending
  // lines without the redundancy lint (the hardware only writes back lines
  // that are actually pending).
  void OnCoherenceWriteback(ThreadId t, AddrRange range);

  // ---- Command-path hooks.
  // Called once per NDP command by the runtime, after the write-back guard
  // and after the per-device split, before any device executes.
  // `touched_devices` is a bitmask of participating device ids.
  // Checks NPM002 (operands not persisted) and, for commit-class commands,
  // NPM004 (other devices with un-synchronized in-flight requests).
  void OnNdpCommand(ThreadId t, AddrRange read_range, AddrRange write_range,
                    SimTime now, bool commit_class,
                    std::uint32_t touched_devices, const SourceLoc& loc);
  // Called by NearPmDevice when a slice starts executing: registers the
  // in-flight request on that device's clock. `deferred` marks maintenance
  // slices (log deletion behind a delayed sync): they are exempt from
  // NPM004, which targets commits racing un-synchronized *log-write*
  // requests, not each other.
  void OnDeviceExecute(DeviceId dev, std::uint64_t seq, AddrRange write_range,
                       SimTime completion, bool deferred = false);
  // Called by PmSpace whenever a request becomes architecturally ordered.
  void OnRetire(DeviceId dev, std::uint64_t seq);
  // Cross-device sync lifecycle (PmSpace::SyncMarker / RetireThroughSync).
  void OnSyncMarker(std::uint64_t sync_id);
  void OnSyncComplete(std::uint64_t sync_id);

  // ---- Replication hooks (src/serve + src/repl).
  // A backup's NDP replay doorbell was rung for the one-sided redo record
  // covering `range`. The record must be fully persisted first: the ack the
  // doorbell implies promises durability, so un-persisted lines fire NPM007.
  void OnReplDoorbell(ThreadId t, AddrRange range, SimTime now,
                      const SourceLoc& loc = {});

  // ---- Mechanism-level hooks (pmlib providers via the heap).
  void OnOpBegin(ThreadId t);
  // An operation ended; if `durable` the provider guarantees everything the
  // op wrote is crash-consistent, so un-flushed lines written by `t` fire
  // NPM006.
  void OnOpEnd(ThreadId t, bool durable, SimTime now, const SourceLoc& loc);
  // Recovery bracket: reads between Begin/EndDurableScope must only observe
  // data persisted before the scope opened (NPM001). Nestable.
  void BeginDurableScope();
  void EndDurableScope();

  // ---- Lifecycle.
  // Power failure: volatile shadow state (store buffers, in-flight clocks)
  // is gone by definition.
  void OnCrash();
  // Clean shutdown of a runtime: everything has been made durable.
  void OnQuiesce();
  // End of analysis: lines still dirty that were written outside any
  // failure-atomic operation fire NPM006.
  void Finish(SimTime now);

 private:
  enum class LineState : std::uint8_t { kDirty, kFlushed };

  struct LineRec {
    LineState state = LineState::kDirty;
    ThreadId writer = 0;
    std::uint64_t tick = 0;  // global write order
    SimTime when = 0;
    SourceLoc loc;
    bool in_op = false;  // written inside a failure-atomic operation
  };

  struct LiveReq {
    std::uint64_t seq = 0;
    AddrRange write_range{};
    SimTime completion = 0;
    std::uint64_t after_sync = 0;  // last sync marker at issue time
    bool retired = false;
    bool deferred = false;  // maintenance slice, exempt from NPM004
  };

  bool InOp(ThreadId t) const {
    return t < in_op_.size() && in_op_[t];
  }
  void SetInOp(ThreadId t, bool v);
  // Lines of `range` with an un-persisted shadow entry.
  std::uint64_t UnpersistedLinesIn(AddrRange range) const;
  std::vector<LiveReq>& DeviceClock(DeviceId dev);
  void ResetVolatile();

  DiagnosticSink sink_;
  Stats stats_;
  std::unordered_map<PmAddr, LineRec> lines_;  // key: line base address
  std::vector<PmAddr> flushed_;                // awaiting the next fence
  std::vector<std::vector<LiveReq>> devices_;
  std::vector<bool> in_op_;
  std::uint64_t tick_ = 0;
  std::uint64_t last_marker_ = 0;
  int durable_scope_ = 0;
  std::uint64_t scope_begin_tick_ = 0;
};

}  // namespace analyze
}  // namespace nearpm

#endif  // NEARPM_ANALYZE_SANITIZER_H_
