#include "src/analyze/trace_analyzer.h"

#include <algorithm>

namespace nearpm {
namespace analyze {
namespace {

// Offline findings anchor to the trace itself: the "file" is the literal
// <trace> and the "line" is the event's global record order, which makes
// every finding unique and reproducible against the exported JSONL.
SourceLoc TraceLoc(const TraceEvent& e) {
  return SourceLoc{"<trace>", static_cast<std::uint32_t>(e.order),
                   TracePhaseName(e.phase)};
}

bool IsDevicePid(std::uint32_t pid) { return pid >= kTraceDevicePidBase; }

DeviceId DevOf(std::uint32_t pid) {
  return static_cast<DeviceId>(pid - kTraceDevicePidBase);
}

}  // namespace

TraceAnalysisStats AnalyzeTrace(std::vector<TraceEvent> events,
                                PmSanitizer* san) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.order < b.order;
            });
  TraceAnalysisStats stats;
  bool in_recovery = false;
  SimTime last_ts = 0;
  for (const TraceEvent& e : events) {
    ++stats.events;
    last_ts = std::max(last_ts, e.end());
    const SourceLoc loc = TraceLoc(e);
    switch (e.phase) {
      case TracePhase::kCpuWrite:
        san->OnCpuWrite(e.tid, e.range, e.ts, loc);
        break;
      case TracePhase::kCpuRead:
        san->OnCpuRead(e.tid, e.range, e.ts, loc);
        break;
      case TracePhase::kCpuPersist:
        san->OnFlush(e.tid, e.range, e.ts, loc);
        san->OnFence(e.tid);
        break;
      case TracePhase::kCpuFence:
        san->OnFence(e.tid);
        break;
      case TracePhase::kCoherenceWb:
        san->OnCoherenceWriteback(e.tid, e.range);
        break;
      case TracePhase::kUnitExec:
        if (IsDevicePid(e.pid)) {
          // arg1 carries the CPU-side post time for exec spans.
          san->OnNdpCommand(0, e.range2, e.range, e.arg1,
                            /*commit_class=*/false,
                            1u << (DevOf(e.pid) & 31u), loc);
          san->OnDeviceExecute(DevOf(e.pid), e.seq, e.range, e.end());
        }
        break;
      case TracePhase::kDeferredExec:
        if (IsDevicePid(e.pid)) {
          san->OnNdpCommand(0, AddrRange{}, e.range, e.arg1,
                            /*commit_class=*/true, 1u << (DevOf(e.pid) & 31u),
                            loc);
          san->OnDeviceExecute(DevOf(e.pid), e.seq, e.range, e.end(),
                               /*deferred=*/true);
        }
        break;
      case TracePhase::kRetire:
        if (IsDevicePid(e.pid)) san->OnRetire(DevOf(e.pid), e.seq);
        break;
      case TracePhase::kSyncMarker:
        san->OnSyncMarker(e.seq);
        break;
      case TracePhase::kSyncComplete:
        san->OnSyncComplete(e.seq);
        break;
      case TracePhase::kCrash:
        if (in_recovery) {
          san->EndDurableScope();
          in_recovery = false;
        }
        san->OnCrash();
        break;
      case TracePhase::kMechRecover:
        if (!in_recovery) {
          san->BeginDurableScope();
          in_recovery = true;
        }
        break;
      case TracePhase::kOpBegin:
        if (in_recovery) {
          san->EndDurableScope();
          in_recovery = false;
        }
        san->OnOpBegin(e.tid);
        break;
      case TracePhase::kOpCommit:
        san->OnOpEnd(e.tid, e.arg0 != 0, e.ts, loc);
        break;
      case TracePhase::kReplDoorbell:
        // tid on kTraceReplPid is the node index, not a CPU thread; the
        // hook only needs the record range and the instant.
        san->OnReplDoorbell(0, e.range, e.ts, loc);
        break;
      // kNetXfer / kNetDeliver are pure timing (no PM effects) and fall
      // through to `ignored` with the other observability phases.
      default:
        ++stats.ignored;
        break;
    }
  }
  if (in_recovery) san->EndDurableScope();
  san->Finish(last_ts);
  return stats;
}

}  // namespace analyze
}  // namespace nearpm
