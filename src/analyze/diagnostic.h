// Diagnostic records and the multi-format DiagnosticSink of the PM-Sanitizer.
//
// Layering: depends only on src/common and src/sim so that pmem/ndp/core can
// report findings without new dependencies.
#ifndef NEARPM_ANALYZE_DIAGNOSTIC_H_
#define NEARPM_ANALYZE_DIAGNOSTIC_H_

#include <array>
#include <cstdint>
#include <source_location>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/analyze/rules.h"
#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace nearpm {
namespace analyze {

// Captured program point of a finding. For live (in-process) analysis this is
// a std::source_location of the issuing call site; for offline trace analysis
// the file is "<trace>" and the line is the event's global record order.
struct SourceLoc {
  const char* file = "<unknown>";
  std::uint32_t line = 0;
  const char* function = "";
};

// Converts a std::source_location into the sanitizer's light-weight form.
// The pointers stay valid for the program's lifetime (they point into the
// binary's string table).
inline SourceLoc FromStd(const std::source_location& loc) {
  return SourceLoc{loc.file_name(), loc.line(), loc.function_name()};
}

// Strips everything before the repo-relative component of a __FILE__ path so
// diagnostics and SARIF output are stable across build directories.
std::string_view TrimSourcePath(std::string_view path);

// One reported finding. Identical findings (same rule + call site) are folded
// into a single Diagnostic whose `count` tracks occurrences.
struct Diagnostic {
  RuleId rule = RuleId::kNpm001;
  std::string message;   // first occurrence's message
  SourceLoc loc;
  ThreadId tid = 0;
  SimTime when = 0;      // sim time of the first occurrence
  AddrRange range{};     // first offending range (may be empty)
  std::uint64_t count = 1;
  bool suppressed = false;
};

// Collects diagnostics, applies suppressions, and renders text / JSON / SARIF.
// Not thread-safe; attach one sink per single-threaded simulation driver.
class DiagnosticSink {
 public:
  // Adds a suppression. Spec forms:
  //   "NPM005"            suppress the rule everywhere
  //   "NPM005:heap.cc"    suppress where the trimmed file path contains the
  //                       substring after the colon
  // Returns false (and ignores the spec) if the rule id does not parse.
  bool Suppress(std::string_view spec);

  // Records a finding. Returns true if it counted as unsuppressed.
  bool Report(RuleId rule, const SourceLoc& loc, ThreadId tid, SimTime when,
              AddrRange range, std::string message);

  // Folded findings in first-report order.
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  // Occurrence counts (not folded) per rule.
  std::uint64_t count(RuleId rule) const;
  std::uint64_t suppressed_count(RuleId rule) const;
  std::uint64_t total_unsuppressed() const;
  std::uint64_t total_suppressed() const;

  // Human-readable report, one line per folded finding plus a summary.
  std::string RenderText() const;
  // {"diagnostics":[...], "counts":{...}} machine-readable report.
  std::string RenderJson() const;
  // SARIF 2.1.0 document with one run, full rule metadata, and suppressed
  // findings carried with a "suppressed in source" marker.
  std::string RenderSarif() const;

 private:
  struct Suppression {
    RuleId rule;
    std::string file_substr;  // empty = whole rule
  };

  bool IsSuppressed(RuleId rule, const SourceLoc& loc) const;

  std::vector<Diagnostic> diags_;
  std::unordered_map<std::string, std::size_t> index_;  // rule|file|line
  std::vector<Suppression> suppressions_;
  std::array<std::uint64_t, kNumRules> counts_{};
  std::array<std::uint64_t, kNumRules> suppressed_counts_{};
};

}  // namespace analyze
}  // namespace nearpm

#endif  // NEARPM_ANALYZE_DIAGNOSTIC_H_
