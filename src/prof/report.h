// Renderers for a Profile: a human-readable attribution report, a folded
// stack file for flamegraph tooling, and a deterministic profile JSON that
// CI diffs against committed baselines.
#ifndef SRC_PROF_REPORT_H_
#define SRC_PROF_REPORT_H_

#include <string>

#include "src/prof/profile.h"

namespace nearpm {

// Human-readable report: attribution totals, the slowest requests with
// their per-phase breakdown, resource duty cycles and occupancy stats.
std::string RenderReport(const Profile& profile);

// Folded-stack output, one "frame;frame;... count" line per aggregated
// stack, consumable by flamegraph.pl / inferno / speedscope. Request
// phases fold under request;<device>;<phase>; all other span phases fold
// under their resource track. Counts are nanoseconds.
std::string RenderFolded(const Profile& profile);

// Deterministic profile JSON (schema "nearpm-profile-v1"). `config_json`
// is embedded verbatim under "config" and must itself be valid JSON (pass
// "{}" when there is nothing to record). All numbers are integral
// nanoseconds or fixed six-decimal ratios, so the same simulation always
// renders byte-identical output.
std::string RenderProfileJson(const Profile& profile,
                              const std::string& config_json);

}  // namespace nearpm

#endif  // SRC_PROF_REPORT_H_
