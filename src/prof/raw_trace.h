// Raw trace serialization: a lossless JSONL form of the TraceEvent stream.
//
// The Chrome-trace export is lossy (microsecond rendering, per-viewer field
// mapping), so profiling tools that re-analyze a captured run need their own
// format. One event per line, every field present, fixed key order -- the
// reader parses with a fixed pattern and rejects anything else, keeping both
// sides trivial and the files byte-stable for a deterministic run.
#ifndef SRC_PROF_RAW_TRACE_H_
#define SRC_PROF_RAW_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"

namespace nearpm {

void WriteRawTrace(const std::vector<TraceEvent>& events, std::ostream& os);

// Parses a stream written by WriteRawTrace. Returns false (and says why in
// `error` when non-null) on the first malformed line; `out` then holds the
// events parsed so far.
bool ReadRawTrace(std::istream& is, std::vector<TraceEvent>* out,
                  std::string* error = nullptr);

}  // namespace nearpm

#endif  // SRC_PROF_RAW_TRACE_H_
