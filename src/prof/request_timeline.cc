#include "src/prof/request_timeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "src/trace/chrome_exporter.h"

namespace nearpm {

namespace {

// Chrome timestamps are microseconds; keep nanosecond precision as
// fractional microseconds (same convention as the chrome exporter).
std::string Micros(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

bool RequestTimeline::AttributionHolds() const {
  for (const RequestSlice& slice : slices) {
    if (slice.PhaseSum() != slice.span_ns()) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint64_t> ListTraceIds(
    const std::vector<TimelineSource>& sources) {
  std::set<std::uint64_t> ids;
  for (const TimelineSource& source : sources) {
    for (const TraceEvent& event : source.events) {
      if (event.trace != 0) {
        ids.insert(event.trace);
      }
    }
  }
  return {ids.begin(), ids.end()};
}

RequestTimeline BuildRequestTimeline(
    const std::vector<TimelineSource>& sources, std::uint64_t trace_id) {
  RequestTimeline timeline;
  timeline.trace = trace_id;
  bool first = true;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    const TimelineSource& source = sources[s];
    timeline.source_labels.push_back(source.label);
    for (const TraceEvent& event : source.events) {
      if (event.trace != trace_id) {
        continue;
      }
      timeline.hops.push_back({static_cast<int>(s), event});
      if (first || event.ts < timeline.start) {
        timeline.start = event.ts;
      }
      if (first || event.end() > timeline.end) {
        timeline.end = event.end();
      }
      first = false;
    }
    // Per-source profile: each source is one recorder stream, so its
    // `order` sequence is internally consistent (the profiler's contract).
    const Profile profile = BuildProfile(source.events);
    for (const RequestSlice& slice : profile.slices) {
      if (slice.trace == trace_id) {
        timeline.slices.push_back(slice);
      }
    }
  }
  std::sort(timeline.hops.begin(), timeline.hops.end(),
            [](const TimelineHop& a, const TimelineHop& b) {
              if (a.event.ts != b.event.ts) return a.event.ts < b.event.ts;
              if (a.event.end() != b.event.end())
                return a.event.end() < b.event.end();
              if (a.source != b.source) return a.source < b.source;
              return a.event.order < b.event.order;
            });
  std::sort(timeline.slices.begin(), timeline.slices.end(),
            [](const RequestSlice& a, const RequestSlice& b) {
              if (a.post_ts != b.post_ts) return a.post_ts < b.post_ts;
              if (a.device_pid != b.device_pid)
                return a.device_pid < b.device_pid;
              return a.seq < b.seq;
            });
  return timeline;
}

void RenderRequestTimeline(const RequestTimeline& timeline, std::ostream& os) {
  os << "request trace " << timeline.trace << ": " << timeline.hops.size()
     << " events across " << timeline.source_labels.size() << " sources, "
     << timeline.slices.size() << " device slices\n";
  if (timeline.empty()) {
    os << "  (no events carry this trace id)\n";
    return;
  }
  os << "  span: " << timeline.span_ns() << " ns [" << timeline.start
     << " .. " << timeline.end << "]\n";
  os << "  attribution invariant: "
     << (timeline.AttributionHolds() ? "holds" : "VIOLATED") << "\n";
  os << "  hops:\n";
  SimTime prev_end = timeline.start;
  for (const TimelineHop& hop : timeline.hops) {
    const TraceEvent& e = hop.event;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    [%12" PRIu64 " .. %12" PRIu64 "] %-8s %-18s",
                  e.ts, e.end(),
                  timeline.source_labels[static_cast<std::size_t>(hop.source)]
                      .c_str(),
                  TracePhaseName(e.phase));
    os << line << " " << TraceProcessName(e.pid) << " / "
       << TraceThreadName(e.pid, e.tid);
    if (e.seq != 0) {
      os << " seq=" << e.seq;
    }
    if (e.is_span()) {
      os << " dur=" << e.dur;
    }
    if (e.ts > prev_end) {
      os << " (+" << e.ts - prev_end << " ns gap)";
    }
    prev_end = std::max(prev_end, e.end());
    os << "\n";
  }
  if (!timeline.slices.empty()) {
    os << "  device slices (seven-phase attribution, ns):\n";
    for (const RequestSlice& slice : timeline.slices) {
      os << "    seq " << slice.seq << " pid " << slice.device_pid
         << " unit " << slice.unit_tid << ": span=" << slice.span_ns();
      for (int p = 0; p < kNumAttrPhases; ++p) {
        if (slice.phase_ns[p] > 0) {
          os << " " << AttrPhaseName(static_cast<AttrPhase>(p)) << "="
             << slice.phase_ns[p];
        }
      }
      os << "\n";
    }
  }
}

void WriteRequestTimelinePerfetto(const RequestTimeline& timeline,
                                  std::ostream& os) {
  // One Chrome process per source; within it, one thread per original
  // (pid, tid) track the request touched. Dense thread ids keep the JSON
  // small; the thread_name metadata keeps the lanes readable.
  std::map<std::pair<int, std::uint64_t>, int> tids;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&os, &first](const std::string& json) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n" << json;
  };
  for (std::size_t s = 0; s < timeline.source_labels.size(); ++s) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(s + 1) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"trace " +
         std::to_string(timeline.trace) + " / " + timeline.source_labels[s] +
         "\"}}");
  }
  for (const TimelineHop& hop : timeline.hops) {
    const TraceEvent& e = hop.event;
    const auto key = std::make_pair(
        hop.source, (static_cast<std::uint64_t>(e.pid) << 32) | e.tid);
    auto [it, inserted] = tids.emplace(key, static_cast<int>(tids.size()) + 1);
    const int tid = it->second;
    if (inserted) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(hop.source + 1) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           TraceProcessName(e.pid) + " / " + TraceThreadName(e.pid, e.tid) +
           "\"}}");
    }
    std::string json = "{\"ph\":\"";
    json += e.is_span() ? "X" : "i";
    json += "\",\"pid\":" + std::to_string(hop.source + 1) +
            ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + Micros(e.ts);
    if (e.is_span()) {
      json += ",\"dur\":" + Micros(e.dur);
    } else {
      json += ",\"s\":\"t\"";
    }
    json += ",\"name\":\"" + std::string(TracePhaseName(e.phase)) +
            "\",\"cat\":\"request\",\"args\":{\"seq\":" +
            std::to_string(e.seq) + ",\"trace\":" +
            std::to_string(e.trace) + ",\"arg0\":" + std::to_string(e.arg0) +
            "}}";
    emit(json);
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace nearpm
