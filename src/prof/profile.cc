#include "src/prof/profile.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/trace/chrome_exporter.h"
#include "src/trace/metrics.h"

namespace nearpm {

namespace {

// In-flight state of one request lifecycle while its events stream past.
// The device records kCmdPost, kFifoEnqueue, kDevPipeline, optional
// kConflictStall and kUnitExec contiguously (the simulator runs on one OS
// thread), so a builder opens at kCmdPost and closes at kUnitExec.
struct SliceBuilder {
  std::uint32_t epoch = 0;
  std::uint64_t op = 0;
  std::uint64_t trace = 0;
  SimTime post_ts = 0;
  SimTime post_end = 0;
  SimTime nominal_release = 0;  // kCmdPost arg1
  bool has_pipeline = false;
  SimTime pipe_ts = 0;
  SimTime pipe_end = 0;
  SimTime start_lb = 0;  // kDevPipeline arg1 (ordered start lower bound)
  bool has_stall = false;
  SimTime stall_ts = 0;
  SimTime stall_end = 0;
};

// Closes a builder against its kUnitExec event. Returns false when the
// recorded windows do not tile the span exactly -- an attribution
// violation, meaning instrumentation and profiler disagree.
bool FinalizeSlice(const SliceBuilder& b, const TraceEvent& exec,
                   RequestSlice* out) {
  // Continuity: each window must start where the previous one ended.
  if (!b.has_pipeline || b.pipe_ts != b.post_end) return false;
  if (b.nominal_release < b.post_ts || b.nominal_release > b.post_end) {
    return false;
  }
  if (b.start_lb < b.pipe_end) return false;
  if (b.has_stall && b.stall_ts != b.start_lb) return false;
  const SimTime ready = b.has_stall ? b.stall_end : b.start_lb;
  if (exec.ts < ready || exec.end() < exec.ts) return false;

  out->seq = exec.seq;
  out->trace = b.trace != 0 ? b.trace : exec.trace;
  out->epoch = b.epoch;
  out->device_pid = exec.pid;
  out->unit_tid = exec.tid;
  out->op = b.op;
  out->post_ts = b.post_ts;
  out->completion = exec.end();
  auto set = [out](AttrPhase p, SimTime v) {
    out->phase_ns[static_cast<int>(p)] = v;
  };
  set(AttrPhase::kCmdPost, b.nominal_release - b.post_ts);
  set(AttrPhase::kFifoBackpressure, b.post_end - b.nominal_release);
  set(AttrPhase::kDevPipeline, b.pipe_end - b.pipe_ts);
  set(AttrPhase::kSyncWait, b.start_lb - b.pipe_end);
  set(AttrPhase::kConflictStall, b.has_stall ? b.stall_end - b.stall_ts : 0);
  set(AttrPhase::kUnitWait, exec.ts - ready);
  set(AttrPhase::kUnitExec, exec.dur);
  return out->PhaseSum() == out->span_ns();
}

}  // namespace

const char* AttrPhaseName(AttrPhase phase) {
  switch (phase) {
    case AttrPhase::kCmdPost:
      return "cmd_post";
    case AttrPhase::kFifoBackpressure:
      return "fifo_backpressure";
    case AttrPhase::kDevPipeline:
      return "dev_pipeline";
    case AttrPhase::kSyncWait:
      return "sync_wait";
    case AttrPhase::kConflictStall:
      return "conflict_stall";
    case AttrPhase::kUnitWait:
      return "unit_wait";
    case AttrPhase::kUnitExec:
      return "unit_exec";
    case AttrPhase::kNumPhases:
      break;
  }
  return "?";
}

SimTime RequestSlice::PhaseSum() const {
  SimTime sum = 0;
  for (int i = 0; i < kNumAttrPhases; ++i) {
    sum += phase_ns[i];
  }
  return sum;
}

Profile BuildProfile(const std::vector<TraceEvent>& events,
                     const ProfileOptions& options) {
  std::vector<TraceEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.order < b.order;
            });

  Profile profile;
  profile.events = sorted.size();

  std::unordered_map<std::uint64_t, SliceBuilder> open;
  std::map<std::uint32_t, SimTime> epoch_end;
  struct Interval {
    std::uint32_t epoch;
    SimTime ts;
    SimTime end;
  };
  struct TrackAcc {
    std::uint64_t spans = 0;
    std::vector<Interval> intervals;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, TrackAcc> tracks;
  struct OccAcc {
    std::uint64_t samples = 0;
    std::uint64_t max = 0;
    double sum = 0.0;
  };
  std::map<std::tuple<TracePhase, std::uint32_t, std::uint32_t>, OccAcc> occ;
  std::set<std::uint32_t> epochs;

  for (const TraceEvent& e : sorted) {
    epochs.insert(e.epoch);
    SimTime& end = epoch_end[e.epoch];
    end = std::max(end, e.end());

    if (TracePhaseIsCounter(e.phase)) {
      OccAcc& acc = occ[{e.phase, e.pid, e.tid}];
      ++acc.samples;
      acc.max = std::max(acc.max, e.arg0);
      acc.sum += static_cast<double>(e.arg0);
      continue;
    }

    if (e.is_span()) {
      TrackAcc& acc = tracks[{e.pid, e.tid}];
      ++acc.spans;
      acc.intervals.push_back({e.epoch, e.ts, e.end()});
      // Pipeline-stage spans are keyed per stage so a sweep can compare
      // dispatch vs execute vs writeback residency directly. They nest
      // inside their request's kUnitExec span on the same unit track, so
      // the duty-cycle union above is unchanged by their presence.
      std::string key = TracePhaseName(e.phase);
      if (e.phase == TracePhase::kPipeStage) {
        key += '_';
        key += PipeStageName(static_cast<PipeStage>(e.arg0));
      }
      SpanTotal& total = profile.span_totals[key];
      ++total.count;
      total.total_ns += e.dur;
    }

    switch (e.phase) {
      case TracePhase::kCmdPost: {
        auto it = open.find(e.seq);
        if (it != open.end()) {
          // A lifecycle for this seq never reached kUnitExec: its tail was
          // evicted from a ring. Drop it and start over.
          ++profile.incomplete_slices;
          open.erase(it);
        }
        SliceBuilder& b = open[e.seq];
        b.epoch = e.epoch;
        b.op = e.arg0;
        b.trace = e.trace;
        b.post_ts = e.ts;
        b.post_end = e.end();
        b.nominal_release = e.arg1;
        break;
      }
      case TracePhase::kDevPipeline: {
        auto it = open.find(e.seq);
        if (it != open.end() && it->second.epoch == e.epoch &&
            !it->second.has_pipeline) {
          it->second.has_pipeline = true;
          it->second.pipe_ts = e.ts;
          it->second.pipe_end = e.end();
          it->second.start_lb = e.arg1;
        }
        break;
      }
      case TracePhase::kConflictStall: {
        auto it = open.find(e.seq);
        if (it != open.end() && it->second.epoch == e.epoch &&
            it->second.has_pipeline && !it->second.has_stall) {
          it->second.has_stall = true;
          it->second.stall_ts = e.ts;
          it->second.stall_end = e.end();
        }
        break;
      }
      case TracePhase::kUnitExec: {
        auto it = open.find(e.seq);
        if (it == open.end() || it->second.epoch != e.epoch) {
          // Head of the lifecycle was evicted from its ring.
          ++profile.incomplete_slices;
          if (it != open.end()) open.erase(it);
          break;
        }
        RequestSlice slice;
        if (FinalizeSlice(it->second, e, &slice)) {
          profile.total_span_ns += slice.span_ns();
          for (int i = 0; i < kNumAttrPhases; ++i) {
            profile.phase_total_ns[i] += slice.phase_ns[i];
          }
          profile.slices.push_back(slice);
        } else {
          ++profile.attribution_violations;
        }
        open.erase(it);
        break;
      }
      default:
        break;
    }
  }
  // Lifecycles still open at end of stream never completed.
  profile.incomplete_slices += open.size();
  profile.epochs = static_cast<std::uint32_t>(epochs.size());

  // Slowest slices, deterministically ordered: span descending, then
  // (epoch, seq, device) ascending as the tie break.
  profile.slowest.resize(profile.slices.size());
  for (std::size_t i = 0; i < profile.slowest.size(); ++i) {
    profile.slowest[i] = i;
  }
  std::sort(profile.slowest.begin(), profile.slowest.end(),
            [&](std::size_t a, std::size_t b) {
              const RequestSlice& sa = profile.slices[a];
              const RequestSlice& sb = profile.slices[b];
              if (sa.span_ns() != sb.span_ns()) {
                return sa.span_ns() > sb.span_ns();
              }
              return std::tie(sa.epoch, sa.seq, sa.device_pid) <
                     std::tie(sb.epoch, sb.seq, sb.device_pid);
            });
  if (options.top_slowest >= 0 &&
      profile.slowest.size() > static_cast<std::size_t>(options.top_slowest)) {
    profile.slowest.resize(static_cast<std::size_t>(options.top_slowest));
  }

  // The observation window is the same for every resource: the sum of the
  // per-epoch makespans (each epoch restarts the virtual clocks at zero).
  SimTime window = 0;
  for (const auto& [epoch, end] : epoch_end) {
    (void)epoch;
    window += end;
  }
  for (auto& [key, acc] : tracks) {
    ResourceUsage usage;
    usage.pid = key.first;
    usage.tid = key.second;
    usage.name = TraceProcessName(usage.pid) + " / " +
                 TraceThreadName(usage.pid, usage.tid);
    usage.spans = acc.spans;
    // Busy time is the union of the track's span intervals, not the sum of
    // their durations: spans overlap legitimately (per-thread virtual
    // clocks issue against one device concurrently, batch spans nest their
    // requests' spans), and a duty cycle must stay within [0, 1].
    std::sort(acc.intervals.begin(), acc.intervals.end(),
              [](const Interval& a, const Interval& b) {
                return std::tie(a.epoch, a.ts, a.end) <
                       std::tie(b.epoch, b.ts, b.end);
              });
    SimTime busy = 0;
    bool open_interval = false;
    Interval current{};
    for (const Interval& iv : acc.intervals) {
      if (open_interval && iv.epoch == current.epoch &&
          iv.ts <= current.end) {
        current.end = std::max(current.end, iv.end);
        continue;
      }
      if (open_interval) busy += current.end - current.ts;
      current = iv;
      open_interval = true;
    }
    if (open_interval) busy += current.end - current.ts;
    usage.busy_ns = busy;
    usage.window_ns = window;
    profile.resources.push_back(usage);
  }
  for (const auto& [key, acc] : occ) {
    OccupancySeries series;
    series.phase = std::get<0>(key);
    series.pid = std::get<1>(key);
    series.tid = std::get<2>(key);
    series.name = TraceProcessName(series.pid) + " / " +
                  TraceThreadName(series.pid, series.tid);
    series.samples = acc.samples;
    series.max = acc.max;
    series.mean =
        acc.samples == 0 ? 0.0 : acc.sum / static_cast<double>(acc.samples);
    profile.occupancy.push_back(series);
  }
  return profile;
}

Profile BuildProfile(const TraceRecorder& recorder,
                     const ProfileOptions& options) {
  return BuildProfile(recorder.Snapshot(), options);
}

void ExportResourceMetrics(const Profile& profile, MetricsRegistry* registry,
                           const std::string& prefix,
                           const std::string& extra_labels) {
  // Track names ("network fabric / link 0->1", "serve front end / worker")
  // are arbitrary strings; they ride as label values and must be escaped per
  // the Prometheus exposition rules.
  for (const ResourceUsage& usage : profile.resources) {
    const std::string labels =
        "{" + extra_labels + "resource=\"" + EscapeLabelValue(usage.name) +
        "\"}";
    registry->SetGauge(prefix + "duty" + labels, usage.duty());
    registry->SetGauge(prefix + "busy_ns" + labels,
                       static_cast<double>(usage.busy_ns));
  }
  for (const OccupancySeries& series : profile.occupancy) {
    const std::string labels = "{" + extra_labels + "series=\"" +
                               TracePhaseName(series.phase) +
                               "\",resource=\"" +
                               EscapeLabelValue(series.name) + "\"}";
    registry->SetGauge(prefix + "occupancy_mean" + labels, series.mean);
    registry->SetGauge(prefix + "occupancy_max" + labels,
                       static_cast<double>(series.max));
    registry->SetGauge(prefix + "occupancy_samples" + labels,
                       static_cast<double>(series.samples));
  }
}

}  // namespace nearpm
