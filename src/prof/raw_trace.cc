#include "src/prof/raw_trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

namespace nearpm {

namespace {

// Fixed line layout shared by writer and reader. The phase travels by name,
// not enum value, so files survive enum reordering. `trace` was appended
// when request-scoped tracing landed; the reader still accepts the earlier
// 14-field lines (trace = 0) so archived captures stay replayable.
constexpr char kLineFormat[] =
    "{\"phase\":\"%s\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu32 ",\"ts\":%" PRIu64
    ",\"dur\":%" PRIu64 ",\"seq\":%" PRIu64 ",\"range\":[%" PRIu64 ",%" PRIu64
    "],\"range2\":[%" PRIu64 ",%" PRIu64 "],\"arg0\":%" PRIu64
    ",\"arg1\":%" PRIu64 ",\"epoch\":%" PRIu32 ",\"order\":%" PRIu64
    ",\"trace\":%" PRIu64 "}";

constexpr char kScanFormat[] =
    "{\"phase\":\"%31[a-z_]\",\"pid\":%" SCNu32 ",\"tid\":%" SCNu32
    ",\"ts\":%" SCNu64 ",\"dur\":%" SCNu64 ",\"seq\":%" SCNu64
    ",\"range\":[%" SCNu64 ",%" SCNu64 "],\"range2\":[%" SCNu64 ",%" SCNu64
    "],\"arg0\":%" SCNu64 ",\"arg1\":%" SCNu64 ",\"epoch\":%" SCNu32
    ",\"order\":%" SCNu64 ",\"trace\":%" SCNu64 "}";

constexpr char kLegacyScanFormat[] =
    "{\"phase\":\"%31[a-z_]\",\"pid\":%" SCNu32 ",\"tid\":%" SCNu32
    ",\"ts\":%" SCNu64 ",\"dur\":%" SCNu64 ",\"seq\":%" SCNu64
    ",\"range\":[%" SCNu64 ",%" SCNu64 "],\"range2\":[%" SCNu64 ",%" SCNu64
    "],\"arg0\":%" SCNu64 ",\"arg1\":%" SCNu64 ",\"epoch\":%" SCNu32
    ",\"order\":%" SCNu64 "}";

bool PhaseFromName(const char* name, TracePhase* out) {
  for (int i = 0; i < static_cast<int>(TracePhase::kCount); ++i) {
    const TracePhase phase = static_cast<TracePhase>(i);
    if (std::strcmp(name, TracePhaseName(phase)) == 0) {
      *out = phase;
      return true;
    }
  }
  return false;
}

}  // namespace

void WriteRawTrace(const std::vector<TraceEvent>& events, std::ostream& os) {
  char buf[512];
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf), kLineFormat, TracePhaseName(e.phase),
                  e.pid, e.tid, e.ts, e.dur, e.seq, e.range.begin, e.range.end,
                  e.range2.begin, e.range2.end, e.arg0, e.arg1, e.epoch,
                  e.order, e.trace);
    os << buf << "\n";
  }
}

bool ReadRawTrace(std::istream& is, std::vector<TraceEvent>* out,
                  std::string* error) {
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    char phase_name[32] = {};
    TraceEvent e;
    int matched = std::sscanf(
        line.c_str(), kScanFormat, phase_name, &e.pid, &e.tid, &e.ts, &e.dur,
        &e.seq, &e.range.begin, &e.range.end, &e.range2.begin, &e.range2.end,
        &e.arg0, &e.arg1, &e.epoch, &e.order, &e.trace);
    if (matched != 15) {
      e.trace = 0;
      matched = std::sscanf(
          line.c_str(), kLegacyScanFormat, phase_name, &e.pid, &e.tid, &e.ts,
          &e.dur, &e.seq, &e.range.begin, &e.range.end, &e.range2.begin,
          &e.range2.end, &e.arg0, &e.arg1, &e.epoch, &e.order);
      matched = (matched == 14) ? 15 : matched;
    }
    if (matched != 15 || !PhaseFromName(phase_name, &e.phase)) {
      if (error != nullptr) {
        *error = "malformed raw trace line " + std::to_string(line_no) + ": " +
                 line;
      }
      return false;
    }
    out->push_back(e);
  }
  return true;
}

}  // namespace nearpm
