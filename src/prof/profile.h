// Sim-time profiler: folds a trace stream into per-request critical-path
// attribution, per-resource utilization, and sampled occupancy statistics.
//
// The simulator is deterministic and its clock is integral, so unlike a
// sampling profiler every number here is exact: the phases of a request
// slice tile its end-to-end window with no rounding, and BuildProfile
// checks that invariant (sum(phase_ns) == span_ns) per slice. Profiles of
// the same binary + workload are byte-identical, which lets CI diff a
// committed baseline instead of applying statistical tolerances.
//
// Layering: depends only on src/trace (and transitively src/common,
// src/sim); every trace producer (ndp, core, serve, bench) can be profiled
// without this library knowing about them.
#ifndef SRC_PROF_PROFILE_H_
#define SRC_PROF_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {

// Critical-path phases of one device request, in timeline order. Together
// they partition [command post, unit completion]:
//
//   cmd_post | fifo_backpressure | dev_pipeline | sync_wait |
//   conflict_stall | unit_wait | unit_exec
//
// The boundaries come from the trace events of the request (kCmdPost,
// kDevPipeline, kConflictStall, kUnitExec share one seq and are recorded
// contiguously) plus the split points the device publishes in arg1: the
// nominal MMIO release on kCmdPost and the ordered start lower bound on
// kDevPipeline.
enum class AttrPhase : int {
  kCmdPost = 0,       // nominal MMIO post on the control path
  kFifoBackpressure,  // CPU stalled on a full Request FIFO
  kDevPipeline,       // decode + translate in the dispatcher
  kSyncWait,          // held for cross-device synchronization ordering
  kConflictStall,     // buffered behind a conflicting in-flight request
  kUnitWait,          // every NearPM unit busy
  kUnitExec,          // metadata generation + load/store + media write
  kNumPhases,
};

inline constexpr int kNumAttrPhases = static_cast<int>(AttrPhase::kNumPhases);

const char* AttrPhaseName(AttrPhase phase);

// One NearPM command on one device, with its span decomposed into phases.
// A multi-device operation produces one slice per mirrored device (same
// seq, different device_pid).
struct RequestSlice {
  std::uint64_t seq = 0;
  std::uint64_t trace = 0;  // originating request trace id (0 = untraced)
  std::uint32_t epoch = 0;
  std::uint32_t device_pid = 0;  // TraceDevicePid(device)
  std::uint32_t unit_tid = 0;    // kTraceUnitTidBase + unit index
  std::uint64_t op = 0;          // NearPmOp, from the kCmdPost arg0
  SimTime post_ts = 0;           // CPU started the MMIO post
  SimTime completion = 0;        // unit finished executing
  SimTime phase_ns[kNumAttrPhases] = {};

  SimTime span_ns() const { return completion - post_ts; }
  SimTime PhaseSum() const;
};

// Busy/idle duty cycle of one simulated resource, i.e. one (pid, tid)
// trace track: a NearPM unit, the dispatcher, the PCIe link, a host
// thread, a serve worker. `window_ns` is the sum of per-epoch makespans
// (each epoch restarts the virtual clocks at zero), so duty cycles stay
// comparable across resources within one profile.
struct ResourceUsage {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;         // "NearPM device 0 / unit 1"
  std::uint64_t spans = 0;  // busy intervals recorded on the track
  SimTime busy_ns = 0;      // sum of span durations
  SimTime window_ns = 0;    // observation window (sum of epoch makespans)

  double duty() const {
    return window_ns == 0 ? 0.0
                          : static_cast<double>(busy_ns) /
                                static_cast<double>(window_ns);
  }
};

// Statistics over one sampled occupancy series (a counter phase on one
// track): Request-FIFO depth, In-flight Access Table population, or a
// serve-shard queue backlog.
struct OccupancySeries {
  TracePhase phase = TracePhase::kFifoDepth;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;  // "NearPM device 0 / dispatcher"
  std::uint64_t samples = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
};

// Aggregate over all span events sharing a phase name (the CPU-visible /
// serve-side half of the timeline that is not request attribution).
struct SpanTotal {
  std::uint64_t count = 0;
  SimTime total_ns = 0;
};

struct ProfileOptions {
  // How many of the slowest slices to keep in Profile::slowest.
  int top_slowest = 5;
};

struct Profile {
  std::uint64_t events = 0;  // trace events consumed
  std::uint32_t epochs = 0;  // distinct virtual-clock epochs seen

  // Per-request attribution. `slices` is in trace record order.
  std::vector<RequestSlice> slices;
  std::uint64_t incomplete_slices = 0;  // partial lifecycles (ring drops)
  // Slices whose phase sum failed to tile the span exactly. Always zero on
  // a healthy build; a nonzero value means the device instrumentation and
  // the profiler disagree about the timeline.
  std::uint64_t attribution_violations = 0;
  SimTime total_span_ns = 0;                     // sum of slice spans
  SimTime phase_total_ns[kNumAttrPhases] = {};   // per-phase sums
  std::vector<std::size_t> slowest;              // indices, span descending

  // Non-request span aggregation, keyed by phase name (cpu_persist,
  // serve_batch, deferred_exec, ...).
  std::map<std::string, SpanTotal> span_totals;

  // Per-resource duty cycles, sorted by (pid, tid).
  std::vector<ResourceUsage> resources;

  // Sampled occupancy series, sorted by (phase, pid, tid).
  std::vector<OccupancySeries> occupancy;
};

// Folds a trace into a profile. `events` may be in any order; they are
// processed in record (`order`) order. Events must come from a single
// recorder stream (one `order` sequence); to profile several recorders,
// build one profile each.
Profile BuildProfile(const std::vector<TraceEvent>& events,
                     const ProfileOptions& options = {});
Profile BuildProfile(const TraceRecorder& recorder,
                     const ProfileOptions& options = {});

// Publishes the profile's resource statistics into a metrics registry as
// gauges, using Prometheus-style label suffixes on the metric names:
//   <prefix>duty{resource="NearPM device 1 / unit 0"}
//   <prefix>occupancy_mean{series="fifo_depth",...} / _max / _samples
// `extra_labels` is spliced in front of the resource label and must be
// empty or end with a comma (e.g. "shard=\"0\","); the serving layer uses
// it to export per-shard per-unit duty cycles.
void ExportResourceMetrics(const Profile& profile, MetricsRegistry* registry,
                           const std::string& prefix,
                           const std::string& extra_labels = "");

}  // namespace nearpm

#endif  // SRC_PROF_PROFILE_H_
