#include "src/prof/report.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>

#include "src/trace/trace_event.h"

namespace nearpm {

namespace {

// Fixed six-decimal rendering keeps profile output byte-stable: the inputs
// are integral sim-time ratios, so the same run always prints the same
// digits.
std::string Fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string Percent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%6.2f%%", v * 100.0);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// "device 0" / "unit 1" labels for a slice; slices always come from a
// device pid + unit tid.
std::string SliceDevice(const RequestSlice& s) {
  return std::to_string(s.device_pid >= kTraceDevicePidBase
                            ? s.device_pid - kTraceDevicePidBase
                            : s.device_pid);
}

std::string SliceUnit(const RequestSlice& s) {
  return std::to_string(s.unit_tid >= kTraceUnitTidBase
                            ? s.unit_tid - kTraceUnitTidBase
                            : s.unit_tid);
}

// Request phases already folded into per-request attribution; everything
// else in span_totals is CPU / ordering / serve side.
bool IsRequestSpanPhase(const std::string& name) {
  return name == "cmd_post" || name == "dev_pipeline" ||
         name == "conflict_stall" || name == "unit_exec";
}

void AppendRow(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendRow(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string RenderReport(const Profile& profile) {
  std::string out;
  out += "=== NearPM sim-time profile ===\n";
  AppendRow(out, "events: %" PRIu64 " across %u epoch(s)\n", profile.events,
            profile.epochs);
  AppendRow(out,
            "request slices: %zu (incomplete: %" PRIu64
            ", attribution violations: %" PRIu64 ")\n",
            profile.slices.size(), profile.incomplete_slices,
            profile.attribution_violations);

  if (!profile.slices.empty()) {
    out += "\n-- critical-path attribution (phase sum == end-to-end span on "
           "every slice) --\n";
    AppendRow(out, "total request span: %" PRIu64 " ns\n",
              profile.total_span_ns);
    AppendRow(out, "  %-18s %14s %8s\n", "phase", "total_ns", "share");
    for (int i = 0; i < kNumAttrPhases; ++i) {
      const double share =
          profile.total_span_ns == 0
              ? 0.0
              : static_cast<double>(profile.phase_total_ns[i]) /
                    static_cast<double>(profile.total_span_ns);
      AppendRow(out, "  %-18s %14" PRIu64 " %s\n",
                AttrPhaseName(static_cast<AttrPhase>(i)),
                profile.phase_total_ns[i], Percent(share).c_str());
    }

    out += "\n-- slowest requests --\n";
    for (std::size_t index : profile.slowest) {
      const RequestSlice& s = profile.slices[index];
      AppendRow(out,
                "  seq %" PRIu64 " epoch %u device %s unit %s: %" PRIu64
                " ns (",
                s.seq, s.epoch, SliceDevice(s).c_str(), SliceUnit(s).c_str(),
                s.span_ns());
      bool first = true;
      for (int i = 0; i < kNumAttrPhases; ++i) {
        if (s.phase_ns[i] == 0) continue;
        if (!first) out += ", ";
        first = false;
        AppendRow(out, "%s %" PRIu64,
                  AttrPhaseName(static_cast<AttrPhase>(i)), s.phase_ns[i]);
      }
      out += ")\n";
    }
  }

  if (!profile.resources.empty()) {
    out += "\n-- resource duty cycles --\n";
    for (const ResourceUsage& usage : profile.resources) {
      AppendRow(out,
                "  %-34s busy %12" PRIu64 " ns  spans %6" PRIu64
                "  duty %s\n",
                usage.name.c_str(), usage.busy_ns, usage.spans,
                Percent(usage.duty()).c_str());
    }
  }

  if (!profile.occupancy.empty()) {
    out += "\n-- sampled occupancy --\n";
    for (const OccupancySeries& series : profile.occupancy) {
      AppendRow(out,
                "  %-18s @ %-34s samples %6" PRIu64 "  mean %s  max %" PRIu64
                "\n",
                TracePhaseName(series.phase), series.name.c_str(),
                series.samples, Fixed6(series.mean).c_str(), series.max);
    }
  }

  bool has_other = false;
  for (const auto& [name, total] : profile.span_totals) {
    if (!IsRequestSpanPhase(name)) {
      if (!has_other) {
        out += "\n-- other span phases --\n";
        has_other = true;
      }
      AppendRow(out, "  %-18s count %8" PRIu64 "  total %12" PRIu64 " ns\n",
                name.c_str(), total.count, total.total_ns);
    }
  }
  return out;
}

std::string RenderFolded(const Profile& profile) {
  // Aggregate first: folded-stack consumers expect one line per distinct
  // stack. std::map keys keep the output deterministic.
  std::map<std::string, std::uint64_t> stacks;
  for (const RequestSlice& s : profile.slices) {
    for (int i = 0; i < kNumAttrPhases; ++i) {
      if (s.phase_ns[i] == 0) continue;
      stacks["request;device " + SliceDevice(s) + ";" +
             AttrPhaseName(static_cast<AttrPhase>(i))] += s.phase_ns[i];
    }
  }
  for (const auto& [name, total] : profile.span_totals) {
    if (IsRequestSpanPhase(name)) continue;  // already under request;...
    stacks["other;" + name] += total.total_ns;
  }
  std::string out;
  for (const auto& [stack, ns] : stacks) {
    out += stack + " " + std::to_string(ns) + "\n";
  }
  return out;
}

std::string RenderProfileJson(const Profile& profile,
                              const std::string& config_json) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"nearpm-profile-v1\",\n";
  out += "  \"config\": " + config_json + ",\n";
  out += "  \"events\": " + std::to_string(profile.events) + ",\n";
  out += "  \"epochs\": " + std::to_string(profile.epochs) + ",\n";

  out += "  \"requests\": {\n";
  out += "    \"slices\": " + std::to_string(profile.slices.size()) + ",\n";
  out += "    \"incomplete\": " + std::to_string(profile.incomplete_slices) +
         ",\n";
  out += "    \"attribution_violations\": " +
         std::to_string(profile.attribution_violations) + ",\n";
  out += "    \"total_span_ns\": " + std::to_string(profile.total_span_ns) +
         ",\n";
  out += "    \"phases_ns\": {";
  for (int i = 0; i < kNumAttrPhases; ++i) {
    if (i != 0) out += ", ";
    out += "\"" + std::string(AttrPhaseName(static_cast<AttrPhase>(i))) +
           "\": " + std::to_string(profile.phase_total_ns[i]);
  }
  out += "},\n";
  out += "    \"phase_share\": {";
  for (int i = 0; i < kNumAttrPhases; ++i) {
    if (i != 0) out += ", ";
    const double share =
        profile.total_span_ns == 0
            ? 0.0
            : static_cast<double>(profile.phase_total_ns[i]) /
                  static_cast<double>(profile.total_span_ns);
    out += "\"" + std::string(AttrPhaseName(static_cast<AttrPhase>(i))) +
           "\": " + Fixed6(share);
  }
  out += "}\n";
  out += "  },\n";

  out += "  \"slowest\": [";
  bool first = true;
  for (std::size_t index : profile.slowest) {
    const RequestSlice& s = profile.slices[index];
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"seq\": " + std::to_string(s.seq) +
           ", \"epoch\": " + std::to_string(s.epoch) + ", \"device\": " +
           SliceDevice(s) + ", \"unit\": " + SliceUnit(s) +
           ", \"span_ns\": " + std::to_string(s.span_ns()) +
           ", \"phases_ns\": {";
    for (int i = 0; i < kNumAttrPhases; ++i) {
      if (i != 0) out += ", ";
      out += "\"" + std::string(AttrPhaseName(static_cast<AttrPhase>(i))) +
             "\": " + std::to_string(s.phase_ns[i]);
    }
    out += "}}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"resources\": [";
  first = true;
  for (const ResourceUsage& usage : profile.resources) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + JsonEscape(usage.name) +
           "\", \"pid\": " + std::to_string(usage.pid) +
           ", \"tid\": " + std::to_string(usage.tid) +
           ", \"spans\": " + std::to_string(usage.spans) +
           ", \"busy_ns\": " + std::to_string(usage.busy_ns) +
           ", \"window_ns\": " + std::to_string(usage.window_ns) +
           ", \"duty\": " + Fixed6(usage.duty()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"occupancy\": [";
  first = true;
  for (const OccupancySeries& series : profile.occupancy) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"series\": \"" + std::string(TracePhaseName(series.phase)) +
           "\", \"name\": \"" + JsonEscape(series.name) +
           "\", \"pid\": " + std::to_string(series.pid) +
           ", \"tid\": " + std::to_string(series.tid) +
           ", \"samples\": " + std::to_string(series.samples) +
           ", \"mean\": " + Fixed6(series.mean) +
           ", \"max\": " + std::to_string(series.max) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"span_totals_ns\": {";
  first = true;
  for (const auto& [name, total] : profile.span_totals) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": {\"count\": " + std::to_string(total.count) +
           ", \"total_ns\": " + std::to_string(total.total_ns) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace nearpm
