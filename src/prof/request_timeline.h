// Cross-node request timeline: every trace event carrying one request's
// trace id, merged across recorders into a single navigable story.
//
// A request that enters KvService::Submit touches many independent trace
// streams: the coordinator shard's recorder (queue, batch, device
// pipeline), the fabric recorder (kNetXfer frames carrying the intent to
// backups), and each backup shard's recorder (redo landing, NDP replay).
// Each recorder has its own `order` sequence, so the streams cannot be
// merged by order; they CAN be merged by simulated time, because every
// node's virtual clock advances in the same simulated nanoseconds and the
// fabric couples them at each delivery. BuildRequestTimeline filters each
// labeled source down to the request's events, runs the seven-phase
// profiler per source to recover the request's device slices, and stitches
// the result into one time-sorted timeline.
//
// Two renderers feed tools/nearpm_trace: a human-readable listing (span
// table, per-hop gaps, slice attribution) and a Chrome/Perfetto JSON
// export where each source becomes one per-request track, so one request's
// cross-replica journey renders as parallel lanes.
#ifndef SRC_PROF_REQUEST_TIMELINE_H_
#define SRC_PROF_REQUEST_TIMELINE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/prof/profile.h"
#include "src/trace/trace_event.h"

namespace nearpm {

// One labeled event stream (one recorder's snapshot). Events within a
// source share an `order` sequence; across sources only simulated time is
// comparable.
struct TimelineSource {
  std::string label;  // "shard0", "fabric", "node2", ...
  std::vector<TraceEvent> events;
};

// One event of the request, tagged with the source it came from.
struct TimelineHop {
  int source = 0;  // index into the sources passed to BuildRequestTimeline
  TraceEvent event;
};

struct RequestTimeline {
  std::uint64_t trace = 0;
  std::vector<std::string> source_labels;
  // All events carrying the trace id, sorted by (ts, end, source, order).
  std::vector<TimelineHop> hops;
  // Device slices belonging to the request (one per device command the
  // request issued, across every node), with the seven-phase attribution.
  std::vector<RequestSlice> slices;
  SimTime start = 0;  // earliest event start
  SimTime end = 0;    // latest event end

  SimTime span_ns() const { return end > start ? end - start : 0; }
  bool empty() const { return hops.empty(); }
  // True when every slice tiles its span exactly (the profiler invariant).
  bool AttributionHolds() const;
};

// Distinct nonzero trace ids present in `sources`, ascending.
std::vector<std::uint64_t> ListTraceIds(
    const std::vector<TimelineSource>& sources);

// Reconstructs the timeline of one request across all sources.
RequestTimeline BuildRequestTimeline(
    const std::vector<TimelineSource>& sources, std::uint64_t trace_id);

// Human-readable rendering: header, hop-by-hop listing with inter-hop
// gaps, and the per-slice seven-phase attribution table.
void RenderRequestTimeline(const RequestTimeline& timeline, std::ostream& os);

// Chrome trace-event JSON with one process per source ("trace <id> /
// <source>"), so Perfetto renders the request's journey as parallel
// per-source lanes. Events keep their in-source (pid, tid) as the thread
// dimension.
void WriteRequestTimelinePerfetto(const RequestTimeline& timeline,
                                  std::ostream& os);

}  // namespace nearpm

#endif  // SRC_PROF_REQUEST_TIMELINE_H_
