// Declarative SLO specification (schema v1).
//
// An SLO is the contract the watchdog enforces live: bounds over the
// sliding-window view of the service (src/obs/window.h), checked at batch
// boundaries. The spec is a small versioned JSON file so a load run can be
// pointed at configs/slo-default.json (or a deliberately tight variant in
// CI) without recompiling, in the same spirit as the hwmodel geometry
// configs: unknown keys, duplicate keys, malformed values and out-of-range
// bounds are hard errors, and WriteSloSpec(ParseSloSpec(text)) round-trips
// exactly.
#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/sim/cost_model.h"

namespace nearpm {
namespace obs {

inline constexpr int kSloSchemaVersion = 1;

struct SloSpec {
  int schema_version = kSloSchemaVersion;
  std::string name = "default";

  // Bounds. A bound <= 0 disables that rule.
  double p99_ns = 0.0;              // window p99 request latency, sim ns
  double max_error_rate = 0.0;      // failed / completed, in [0, 1]
  double max_stall_fraction = 0.0;  // rejected / submitted since last check

  // Window shape and arming thresholds.
  double window_ns = 1e9;           // sliding-window width, sim ns
  std::uint64_t min_requests = 32;  // window population before the latency
                                    // and error rules arm (noise floor)
  int slow_k = 4;                   // slowest request ids tagged per alert

  Status Validate() const;
};

// Parses a spec from its JSON text (flat object of numbers and strings).
// Schema:
//
//   {
//     "schema_version": 1,          // optional, must equal 1 when present
//     "name": "default",            // optional label
//     "p99_ns": 2000000,
//     "max_error_rate": 0.01,
//     "max_stall_fraction": 0.05,
//     "window_ns": 1000000000,
//     "min_requests": 32,
//     "slow_k": 4
//   }
StatusOr<SloSpec> ParseSloSpec(std::string_view text);

// Reads and parses `path`. Errors are prefixed with the file name.
StatusOr<SloSpec> LoadSloSpecFile(const std::string& path);

// Canonical serialization: every field explicit, key order fixed,
// Parse(Write(s)) == s.
std::string WriteSloSpec(const SloSpec& spec);

}  // namespace obs
}  // namespace nearpm

#endif  // SRC_OBS_SLO_H_
