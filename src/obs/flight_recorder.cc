#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace nearpm {
namespace obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

TraceSink* FlightRecorder::RegisterSource(const std::string& label) {
  const auto id = static_cast<std::uint32_t>(sources_.size());
  sources_.push_back(std::make_unique<SourceSink>(this, id));
  labels_.push_back(label);
  return sources_.back().get();
}

void FlightRecorder::Record(std::uint32_t source, const TraceEvent& event) {
  const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[t % capacity_];
  // Seqlock write: odd stamp while the fields are in flux, even stamp (from
  // which the ticket is recoverable) once the record is whole. A lapped
  // concurrent writer leaves the loser's stamp mismatched, so Snapshot()
  // rejects the slot instead of emitting a hybrid record.
  slot.stamp.store(2 * t + 1, std::memory_order_release);
  slot.source.store(source, std::memory_order_relaxed);
  slot.phase.store(static_cast<std::uint32_t>(event.phase),
                   std::memory_order_relaxed);
  slot.pid.store(event.pid, std::memory_order_relaxed);
  slot.tid.store(event.tid, std::memory_order_relaxed);
  slot.ts.store(event.ts, std::memory_order_relaxed);
  slot.dur.store(event.dur, std::memory_order_relaxed);
  slot.seq.store(event.seq, std::memory_order_relaxed);
  slot.arg0.store(event.arg0, std::memory_order_relaxed);
  slot.epoch.store(event.epoch, std::memory_order_relaxed);
  slot.order.store(event.order, std::memory_order_relaxed);
  slot.trace.store(event.trace, std::memory_order_relaxed);
  slot.stamp.store(2 * (t + 1), std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(std::min<std::uint64_t>(accepted(), capacity_));
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) {
      continue;  // never written, or a writer is inside
    }
    FlightRecord rec;
    rec.ticket = s1 / 2 - 1;
    rec.source = slot.source.load(std::memory_order_relaxed);
    rec.phase =
        static_cast<TracePhase>(slot.phase.load(std::memory_order_relaxed));
    rec.pid = slot.pid.load(std::memory_order_relaxed);
    rec.tid = slot.tid.load(std::memory_order_relaxed);
    rec.ts = slot.ts.load(std::memory_order_relaxed);
    rec.dur = slot.dur.load(std::memory_order_relaxed);
    rec.seq = slot.seq.load(std::memory_order_relaxed);
    rec.arg0 = slot.arg0.load(std::memory_order_relaxed);
    rec.epoch = slot.epoch.load(std::memory_order_relaxed);
    rec.order = slot.order.load(std::memory_order_relaxed);
    rec.trace = slot.trace.load(std::memory_order_relaxed);
    if (slot.stamp.load(std::memory_order_acquire) != s1) {
      continue;  // overwritten while we copied
    }
    out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ticket < b.ticket;
            });
  return out;
}

void FlightRecorder::WriteRecords(std::ostream& os) const {
  char buf[512];
  for (const FlightRecord& r : Snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ticket\":%" PRIu64 ",\"source\":%" PRIu32
                  ",\"phase\":\"%s\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu32
                  ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"seq\":%" PRIu64
                  ",\"arg0\":%" PRIu64 ",\"epoch\":%" PRIu32
                  ",\"order\":%" PRIu64 ",\"trace\":%" PRIu64 "}",
                  r.ticket, r.source, TracePhaseName(r.phase), r.pid, r.tid,
                  r.ts, r.dur, r.seq, r.arg0, r.epoch, r.order, r.trace);
    os << buf << "\n";
  }
}

void FlightRecorder::Clear() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].stamp.store(0, std::memory_order_relaxed);
  }
  ticket_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace nearpm
