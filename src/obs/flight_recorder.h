// Always-on flight recorder: one fixed-budget ring over compacted trace
// events, shared by every recorder in a service.
//
// The per-track rings inside TraceRecorder answer "what did this resource
// do recently", but their budget is per (pid, tid): a quiet track keeps
// hours of history while the busiest track wraps in milliseconds, and a
// post-incident snapshot is only as old as the busiest ring allows
// (Snapshot() then trims every other track to match). The flight recorder
// is the complementary shape: a single ring over the *global* event stream,
// sized in events rather than per track, so the last N things the whole
// service did are always reconstructible -- the black box an SLO watchdog
// dumps at breach time.
//
// Records are compacted TraceEvents: the address ranges and arg1 are
// dropped (the black box answers "what happened when, for which request",
// not "which bytes"), which roughly halves the slot size. Each registered
// source (one per shard recorder, one for the fabric) tags its events, so
// a dump distinguishes shard 0's kServeBatch from shard 3's.
//
// Concurrency: recording is one relaxed ticket fetch_add plus per-field
// relaxed stores under a per-slot stamp (seqlock discipline: odd while the
// writer is inside, even = 2*(ticket+1) when published). Snapshot() skips
// slots whose stamp changes under it, so a reader running concurrently
// with writers -- the watchdog dumping mid-overload -- sees only whole
// records. The structure is best-effort by design: a writer stalled
// between claiming a ticket and publishing can hide that one slot from a
// concurrent snapshot, never corrupt it.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"

namespace nearpm {
namespace obs {

// Schema tag of the JSONL dump (header line + one record per line).
inline constexpr char kFlightSchema[] = "nearpm-flight-v1";

// One compacted event as read back out of the ring.
struct FlightRecord {
  std::uint64_t ticket = 0;  // global arrival order in the flight ring
  std::uint32_t source = 0;  // registered source id
  TracePhase phase = TracePhase::kCpuRead;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  SimTime ts = 0;
  SimTime dur = 0;
  std::uint64_t seq = 0;
  std::uint64_t arg0 = 0;
  std::uint32_t epoch = 0;
  std::uint64_t order = 0;  // source recorder's order (per-source monotonic)
  std::uint64_t trace = 0;  // originating request id (0 = none)
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Registers a named event source and returns the sink to attach to its
  // TraceRecorder (AttachSink). The pointer stays valid for this recorder's
  // lifetime. Call during setup, not concurrently with recording.
  TraceSink* RegisterSource(const std::string& label);

  // Appends one compacted event. Lock-free; safe from concurrent threads.
  void Record(std::uint32_t source, const TraceEvent& event);

  // Whole records currently retained, sorted by ticket (arrival order).
  // Safe to call concurrently with writers; torn slots are skipped.
  std::vector<FlightRecord> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t accepted() const {
    return ticket_.load(std::memory_order_relaxed);
  }
  // Events overwritten by ring wrap (lower bound; torn slots excluded from
  // snapshots are not counted here).
  std::uint64_t dropped() const {
    const std::uint64_t a = accepted();
    return a > capacity_ ? a - capacity_ : 0;
  }
  const std::vector<std::string>& source_labels() const { return labels_; }

  // Serializes the retained records, one JSON object per line, oldest
  // first. The dump header (schema tag, alert context) is written by
  // WriteFlightDump in watchdog.h, which composes with this.
  void WriteRecords(std::ostream& os) const;

  // Forgets all retained records (setup/test helper; not thread-safe).
  void Clear();

 private:
  // Slot fields are individually relaxed atomics (not a plain struct under
  // the stamp) so concurrent snapshot reads stay race-free; the stamp alone
  // decides whether the field set is mutually consistent.
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 empty, odd writing,
                                          // even = 2 * (ticket + 1)
    std::atomic<std::uint32_t> source{0};
    std::atomic<std::uint32_t> phase{0};
    std::atomic<std::uint32_t> pid{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> dur{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> arg0{0};
    std::atomic<std::uint32_t> epoch{0};
    std::atomic<std::uint64_t> order{0};
    std::atomic<std::uint64_t> trace{0};
  };

  class SourceSink : public TraceSink {
   public:
    SourceSink(FlightRecorder* flight, std::uint32_t id)
        : flight_(flight), id_(id) {}
    void Consume(const TraceEvent& event) override {
      flight_->Record(id_, event);
    }

   private:
    FlightRecorder* flight_;
    std::uint32_t id_;
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> ticket_{0};
  std::vector<std::unique_ptr<SourceSink>> sources_;
  std::vector<std::string> labels_;
};

}  // namespace obs
}  // namespace nearpm

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
