#include "src/obs/window.h"

#include <algorithm>

namespace nearpm {
namespace obs {

namespace {

// True when bucket/entry content at absolute time `lo` (bucket start or
// sample timestamp) is still inside (now - window, now].
bool InWindow(SimTime lo, SimTime span, SimTime now, SimTime window) {
  if (lo > now) {
    return false;  // ahead of the snapshot point
  }
  if (now < window) {
    return true;  // the window still reaches back to t = 0
  }
  return lo + span > now - window;
}

}  // namespace

void WindowStats::MergeFrom(const WindowStats& other) {
  window_ns = std::max(window_ns, other.window_ns);
  now = std::max(now, other.now);
  count += other.count;
  errors += other.errors;
  depth_samples += other.depth_samples;
  depth_sum += other.depth_sum;
  depth_max = std::max(depth_max, other.depth_max);
  slow_k = std::max(slow_k, other.slow_k);
  latency.MergeFrom(other.latency);
  slowest.insert(slowest.end(), other.slowest.begin(), other.slowest.end());
  std::sort(slowest.begin(), slowest.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.latency_ns > b.latency_ns;
            });
  if (slow_k >= 0 && slowest.size() > static_cast<std::size_t>(slow_k)) {
    slowest.resize(static_cast<std::size_t>(slow_k));
  }
}

SlidingWindow::SlidingWindow(const WindowOptions& options)
    : options_(options) {
  if (options_.buckets < 1) {
    options_.buckets = 1;
  }
  if (options_.window_ns < static_cast<SimTime>(options_.buckets)) {
    options_.window_ns = static_cast<SimTime>(options_.buckets);
  }
  if (options_.slow_k < 0) {
    options_.slow_k = 0;
  }
  buckets_.reset(new Bucket[static_cast<std::size_t>(options_.buckets)]);
  if (options_.slow_k > 0) {
    slow_.reset(new SlowSlot[static_cast<std::size_t>(options_.slow_k)]);
  }
}

SlidingWindow::Bucket& SlidingWindow::TouchBucket(SimTime now) {
  const SimTime width = BucketWidth();
  const std::uint64_t abs = now / width;
  Bucket& bucket =
      buckets_[abs % static_cast<std::uint64_t>(options_.buckets)];
  const std::uint64_t tag = abs + 1;
  if (bucket.tag.load(std::memory_order_relaxed) != tag) {
    // The wheel came back around: recycle in place. Readers skip the bucket
    // while the tag is 0, so they never mix the old and new population.
    bucket.tag.store(0, std::memory_order_release);
    bucket.count.store(0, std::memory_order_relaxed);
    bucket.errors.store(0, std::memory_order_relaxed);
    bucket.depth_samples.store(0, std::memory_order_relaxed);
    bucket.depth_sum.store(0, std::memory_order_relaxed);
    bucket.depth_max.store(0, std::memory_order_relaxed);
    bucket.latency = Histogram();
    bucket.tag.store(tag, std::memory_order_release);
  }
  return bucket;
}

void SlidingWindow::RecordLatency(SimTime now, SimTime latency_ns, bool error,
                                  std::uint64_t trace) {
  Bucket& bucket = TouchBucket(now);
  bucket.count.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    bucket.errors.fetch_add(1, std::memory_order_relaxed);
  }
  bucket.latency.Add(latency_ns);
  NoteSlow(now, latency_ns, trace);
}

void SlidingWindow::RecordDepth(SimTime now, std::uint64_t depth) {
  Bucket& bucket = TouchBucket(now);
  bucket.depth_samples.fetch_add(1, std::memory_order_relaxed);
  bucket.depth_sum.fetch_add(depth, std::memory_order_relaxed);
  std::uint64_t seen = bucket.depth_max.load(std::memory_order_relaxed);
  while (depth > seen && !bucket.depth_max.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void SlidingWindow::NoteSlow(SimTime now, SimTime latency_ns,
                             std::uint64_t trace) {
  if (options_.slow_k == 0) {
    return;
  }
  // Pick the victim slot: any empty or decayed-out entry first, else the
  // fastest retained one -- and only displace that if we are slower.
  int victim = -1;
  SimTime victim_latency = 0;
  for (int i = 0; i < options_.slow_k; ++i) {
    SlowSlot& slot = slow_[i];
    if (slot.version.load(std::memory_order_relaxed) == 0 ||
        !InWindow(slot.ts.load(std::memory_order_relaxed), 1, now,
                  options_.window_ns)) {
      victim = i;
      victim_latency = 0;
      break;
    }
    const SimTime l = slot.latency_ns.load(std::memory_order_relaxed);
    if (victim < 0 || l < victim_latency) {
      victim = i;
      victim_latency = l;
    }
  }
  if (victim < 0 || latency_ns <= victim_latency) {
    return;
  }
  SlowSlot& slot = slow_[victim];
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v | 1, std::memory_order_release);  // mark in flux
  slot.trace.store(trace, std::memory_order_relaxed);
  slot.latency_ns.store(latency_ns, std::memory_order_relaxed);
  slot.ts.store(now, std::memory_order_relaxed);
  slot.version.store((v | 1) + 1, std::memory_order_release);
}

WindowStats SlidingWindow::Snapshot(SimTime now) const {
  WindowStats stats;
  stats.window_ns = options_.window_ns;
  stats.now = now;
  stats.slow_k = options_.slow_k;
  const SimTime width = BucketWidth();
  for (int i = 0; i < options_.buckets; ++i) {
    const Bucket& bucket = buckets_[i];
    const std::uint64_t t1 = bucket.tag.load(std::memory_order_acquire);
    if (t1 == 0) {
      continue;  // idle or mid-recycle
    }
    const SimTime lo = static_cast<SimTime>(t1 - 1) * width;
    if (!InWindow(lo, width, now, options_.window_ns)) {
      continue;  // decayed out (or ahead of `now`)
    }
    const std::uint64_t count = bucket.count.load(std::memory_order_relaxed);
    const std::uint64_t errors = bucket.errors.load(std::memory_order_relaxed);
    const std::uint64_t ds =
        bucket.depth_samples.load(std::memory_order_relaxed);
    const std::uint64_t dsum = bucket.depth_sum.load(std::memory_order_relaxed);
    const std::uint64_t dmax = bucket.depth_max.load(std::memory_order_relaxed);
    Histogram latency = bucket.latency;  // copy before the tag re-check
    if (bucket.tag.load(std::memory_order_acquire) != t1) {
      continue;  // recycled under us
    }
    stats.count += count;
    stats.errors += errors;
    stats.depth_samples += ds;
    stats.depth_sum += dsum;
    stats.depth_max = std::max(stats.depth_max, dmax);
    stats.latency.MergeFrom(latency);
  }
  for (int i = 0; i < options_.slow_k; ++i) {
    const SlowSlot& slot = slow_[i];
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) {
      continue;
    }
    SlowRequest entry;
    entry.trace = slot.trace.load(std::memory_order_relaxed);
    entry.latency_ns = slot.latency_ns.load(std::memory_order_relaxed);
    entry.ts = slot.ts.load(std::memory_order_relaxed);
    if (slot.version.load(std::memory_order_acquire) != v1) {
      continue;
    }
    if (InWindow(entry.ts, 1, now, options_.window_ns)) {
      stats.slowest.push_back(entry);
    }
  }
  std::sort(stats.slowest.begin(), stats.slowest.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.latency_ns > b.latency_ns;
            });
  return stats;
}

WindowStats SlidingWindow::Merge(
    const std::vector<const SlidingWindow*>& windows, SimTime now) {
  WindowStats merged;
  merged.now = now;
  for (const SlidingWindow* window : windows) {
    if (window != nullptr) {
      merged.MergeFrom(window->Snapshot(now));
    }
  }
  return merged;
}

}  // namespace obs
}  // namespace nearpm
