#include "src/obs/slo.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace nearpm {
namespace obs {

namespace {

// Tiny strict JSON-subset reader, same grammar discipline as the hwmodel
// config parser: one flat object of "key": number-or-string pairs, no
// arrays, booleans, nulls or escapes. Errors carry the byte offset, and
// unknown or duplicate keys are hard errors -- a CI gate must never
// silently enforce a bound the author did not write.

struct Scalar {
  bool is_string = false;
  double number = 0.0;
  std::string str;
};

using FlatObject = std::vector<std::pair<std::string, Scalar>>;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Expect(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return Fail("escape sequences are not supported");
      }
      out->push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      return Fail("unterminated string");
    }
    ++pos;
    return true;
  }

  bool ParseScalar(Scalar* out) {
    SkipWs();
    if (pos >= text.size()) {
      return Fail("expected value");
    }
    if (text[pos] == '"') {
      out->is_string = true;
      return ParseString(&out->str);
    }
    const char* begin = text.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      return Fail("expected number");
    }
    if (!std::isfinite(v)) {
      return Fail("number is not finite");
    }
    out->is_string = false;
    out->number = v;
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool ParseObject(FlatObject* out) {
    if (!Expect('{')) return false;
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Expect(':')) return false;
      Scalar value;
      if (!ParseScalar(&value)) return false;
      for (const auto& [existing, unused] : *out) {
        if (existing == key) {
          return Fail("duplicate key '" + key + "'");
        }
      }
      out->emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    return Expect('}');
  }
};

// Writes a double the way the canonical form expects: integers without a
// fraction, everything else with enough digits to round-trip.
std::string NumberText(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

Status RequireNumber(const std::string& key, const Scalar& value) {
  if (value.is_string) {
    return InvalidArgument("slo key '" + key + "' must be a number");
  }
  return Status::Ok();
}

Status RequireNonNegativeInteger(const std::string& key, const Scalar& value) {
  NEARPM_RETURN_IF_ERROR(RequireNumber(key, value));
  if (value.number < 0 || value.number != std::floor(value.number)) {
    return InvalidArgument("slo key '" + key +
                           "' must be a non-negative integer");
  }
  return Status::Ok();
}

}  // namespace

Status SloSpec::Validate() const {
  if (schema_version != kSloSchemaVersion) {
    return InvalidArgument("slo schema_version must be " +
                           std::to_string(kSloSchemaVersion) + ", got " +
                           std::to_string(schema_version));
  }
  if (!(window_ns >= 1.0 && window_ns <= 1e15)) {
    return InvalidArgument("slo window_ns must be in [1, 1e15]");
  }
  if (p99_ns < 0 || !std::isfinite(p99_ns)) {
    return InvalidArgument("slo p99_ns must be finite and >= 0");
  }
  if (max_error_rate < 0 || max_error_rate > 1) {
    return InvalidArgument("slo max_error_rate must be in [0, 1]");
  }
  if (max_stall_fraction < 0 || max_stall_fraction > 1) {
    return InvalidArgument("slo max_stall_fraction must be in [0, 1]");
  }
  if (slow_k < 0 || slow_k > 64) {
    return InvalidArgument("slo slow_k must be in [0, 64]");
  }
  return Status::Ok();
}

StatusOr<SloSpec> ParseSloSpec(std::string_view text) {
  Parser parser{text, 0, {}};
  FlatObject object;
  if (!parser.ParseObject(&object)) {
    return InvalidArgument("slo parse error: " + parser.error);
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    return InvalidArgument("slo parse error: trailing content at offset " +
                           std::to_string(parser.pos));
  }

  SloSpec spec;
  for (const auto& [key, value] : object) {
    if (key == "schema_version") {
      NEARPM_RETURN_IF_ERROR(RequireNonNegativeInteger(key, value));
      spec.schema_version = static_cast<int>(value.number);
    } else if (key == "name") {
      if (!value.is_string) {
        return InvalidArgument("slo key 'name' must be a string");
      }
      spec.name = value.str;
    } else if (key == "p99_ns") {
      NEARPM_RETURN_IF_ERROR(RequireNumber(key, value));
      spec.p99_ns = value.number;
    } else if (key == "max_error_rate") {
      NEARPM_RETURN_IF_ERROR(RequireNumber(key, value));
      spec.max_error_rate = value.number;
    } else if (key == "max_stall_fraction") {
      NEARPM_RETURN_IF_ERROR(RequireNumber(key, value));
      spec.max_stall_fraction = value.number;
    } else if (key == "window_ns") {
      NEARPM_RETURN_IF_ERROR(RequireNumber(key, value));
      spec.window_ns = value.number;
    } else if (key == "min_requests") {
      NEARPM_RETURN_IF_ERROR(RequireNonNegativeInteger(key, value));
      spec.min_requests = static_cast<std::uint64_t>(value.number);
    } else if (key == "slow_k") {
      NEARPM_RETURN_IF_ERROR(RequireNonNegativeInteger(key, value));
      spec.slow_k = static_cast<int>(value.number);
    } else {
      return InvalidArgument("unknown slo key '" + key + "'");
    }
  }
  NEARPM_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

StatusOr<SloSpec> LoadSloSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return InvalidArgument("cannot open slo spec file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto spec = ParseSloSpec(text.str());
  if (!spec.ok()) {
    return InvalidArgument(path + ": " + spec.status().message());
  }
  return spec;
}

std::string WriteSloSpec(const SloSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << spec.schema_version << ",\n";
  os << "  \"name\": \"" << spec.name << "\",\n";
  os << "  \"p99_ns\": " << NumberText(spec.p99_ns) << ",\n";
  os << "  \"max_error_rate\": " << NumberText(spec.max_error_rate) << ",\n";
  os << "  \"max_stall_fraction\": " << NumberText(spec.max_stall_fraction)
     << ",\n";
  os << "  \"window_ns\": " << NumberText(spec.window_ns) << ",\n";
  os << "  \"min_requests\": " << spec.min_requests << ",\n";
  os << "  \"slow_k\": " << spec.slow_k << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace obs
}  // namespace nearpm
