// Sliding-window live statistics over simulated time.
//
// The MetricsRegistry accumulates since process start, so a scrape taken
// three simulated seconds into an overload answers "what happened ever",
// not "what is happening now". SlidingWindow keeps the last window_ns of
// simulated time in a small wheel of buckets: each bucket owns
// window_ns / buckets of absolute sim time and is lazily recycled when the
// wheel comes back around, so decay is O(1) per sample with no timer.
//
// One window per writer (the serve layer keeps one per (shard, worker),
// matching its WorkerMetrics blocks): Record* calls are single-writer, but
// every counter is a relaxed atomic so a concurrent reader -- the SLO
// watchdog merging all windows mid-run -- reads torn-free values. The
// merge is statistical, not linearizable: a sample landing during a merge
// may or may not be counted, and a bucket mid-recycle is skipped. The
// deterministic Pump mode is single-threaded, so tests see exact counts.
//
// Alongside the aggregates, each window keeps the k slowest requests
// currently inside it (trace id + latency + completion time), the list an
// SLO alert publishes so `nearpm_trace --request` has somewhere to start.
#ifndef SRC_OBS_WINDOW_H_
#define SRC_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/sim/cost_model.h"

namespace nearpm {
namespace obs {

struct WindowOptions {
  SimTime window_ns = 1'000'000'000;  // 1 s of simulated time
  int buckets = 16;                   // wheel granularity
  int slow_k = 4;                     // slowest-request slots tracked
};

// One entry of the slow-request list.
struct SlowRequest {
  std::uint64_t trace = 0;   // request trace id (0 = untraced)
  SimTime latency_ns = 0;
  SimTime ts = 0;            // completion time (for window eviction)
};

// Merged view of one or more windows at a point in simulated time.
struct WindowStats {
  SimTime window_ns = 0;
  SimTime now = 0;
  std::uint64_t count = 0;   // requests completed in the window
  std::uint64_t errors = 0;  // of which failed
  std::uint64_t depth_samples = 0;
  std::uint64_t depth_sum = 0;
  std::uint64_t depth_max = 0;
  int slow_k = 0;
  Histogram latency;
  std::vector<SlowRequest> slowest;  // descending latency, <= slow_k entries

  double Qps() const {
    return window_ns > 0
               ? static_cast<double>(count) /
                     (static_cast<double>(window_ns) / 1e9)
               : 0.0;
  }
  double ErrorRate() const {
    return count > 0 ? static_cast<double>(errors) /
                           static_cast<double>(count)
                     : 0.0;
  }
  double MeanDepth() const {
    return depth_samples > 0 ? static_cast<double>(depth_sum) /
                                   static_cast<double>(depth_samples)
                             : 0.0;
  }

  // Folds `other` in: counts add, histograms merge, the slow lists merge
  // keeping the max(slow_k) slowest overall.
  void MergeFrom(const WindowStats& other);
};

class SlidingWindow {
 public:
  explicit SlidingWindow(const WindowOptions& options = {});

  SlidingWindow(SlidingWindow&&) = default;
  SlidingWindow(const SlidingWindow&) = delete;
  SlidingWindow& operator=(const SlidingWindow&) = delete;

  // One completed request at sim time `now`. Single-writer.
  void RecordLatency(SimTime now, SimTime latency_ns, bool error,
                     std::uint64_t trace = 0);
  // One queue-depth sample at batch pickup. Single-writer.
  void RecordDepth(SimTime now, std::uint64_t depth);

  // Aggregates over buckets overlapping (now - window_ns, now]. Safe
  // concurrently with the writer (statistical; see the header comment).
  WindowStats Snapshot(SimTime now) const;

  // Convenience: Snapshot each window and merge.
  static WindowStats Merge(const std::vector<const SlidingWindow*>& windows,
                           SimTime now);

  const WindowOptions& options() const { return options_; }

 private:
  // tag holds the absolute bucket index + 1 (0 = idle, never written);
  // the writer zeroes it while recycling so readers skip the reset.
  struct Bucket {
    std::atomic<std::uint64_t> tag{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> depth_samples{0};
    std::atomic<std::uint64_t> depth_sum{0};
    std::atomic<std::uint64_t> depth_max{0};
    Histogram latency;
  };

  // Seqlock-stamped slow-request slot (version odd while the writer is
  // inside), so the watchdog never publishes a trace id paired with another
  // request's latency.
  struct SlowSlot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::uint64_t> latency_ns{0};
    std::atomic<std::uint64_t> ts{0};
  };

  SimTime BucketWidth() const {
    return options_.window_ns / static_cast<SimTime>(options_.buckets);
  }
  // The writer-side find-or-recycle of the bucket owning `now`.
  Bucket& TouchBucket(SimTime now);
  void NoteSlow(SimTime now, SimTime latency_ns, std::uint64_t trace);

  WindowOptions options_;
  std::unique_ptr<Bucket[]> buckets_;
  std::unique_ptr<SlowSlot[]> slow_;
};

}  // namespace obs
}  // namespace nearpm

#endif  // SRC_OBS_WINDOW_H_
