#include "src/obs/watchdog.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace nearpm {
namespace obs {

namespace {

std::string DoubleText(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* SloRuleName(SloRule rule) {
  switch (rule) {
    case SloRule::kP99Latency:
      return "p99_latency";
    case SloRule::kErrorRate:
      return "error_rate";
    case SloRule::kStallFraction:
      return "stall_fraction";
  }
  return "?";
}

std::string SloAlertJson(const SloAlert& alert) {
  std::ostringstream os;
  os << "{\"id\":" << alert.id << ",\"sim_now\":" << alert.sim_now
     << ",\"rule\":\"" << SloRuleName(alert.rule) << "\""
     << ",\"observed\":" << DoubleText(alert.observed)
     << ",\"bound\":" << DoubleText(alert.bound) << ",\"window\":{"
     << "\"window_ns\":" << alert.window.window_ns
     << ",\"count\":" << alert.window.count
     << ",\"errors\":" << alert.window.errors
     << ",\"qps\":" << DoubleText(alert.window.Qps())
     << ",\"error_rate\":" << DoubleText(alert.window.ErrorRate())
     << ",\"p50_ns\":" << alert.window.latency.Percentile(0.5)
     << ",\"p99_ns\":" << alert.window.latency.Percentile(0.99)
     << ",\"depth_max\":" << alert.window.depth_max << "}"
     << ",\"stalled\":" << alert.stalled
     << ",\"attempted\":" << alert.attempted << ",\"slow\":[";
  for (std::size_t i = 0; i < alert.window.slowest.size(); ++i) {
    const SlowRequest& slow = alert.window.slowest[i];
    os << (i > 0 ? "," : "") << "{\"trace\":" << slow.trace
       << ",\"latency_ns\":" << slow.latency_ns << ",\"ts\":" << slow.ts
       << "}";
  }
  os << "]}";
  return os.str();
}

void WriteFlightDump(std::ostream& os, const FlightRecorder& flight,
                     const SloAlert* alert) {
  os << "{\"schema\":\"" << kFlightSchema << "\""
     << ",\"capacity\":" << flight.capacity()
     << ",\"accepted\":" << flight.accepted()
     << ",\"dropped\":" << flight.dropped() << ",\"sources\":[";
  const std::vector<std::string>& labels = flight.source_labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    os << (i > 0 ? "," : "") << "\"" << labels[i] << "\"";
  }
  os << "]";
  if (alert != nullptr) {
    os << ",\"alert\":" << SloAlertJson(*alert);
  }
  os << "}\n";
  flight.WriteRecords(os);
}

SloWatchdog::SloWatchdog(const WatchdogOptions& options)
    : options_(options),
      interval_ns_(options.check_interval_ns > 0
                       ? options.check_interval_ns
                       : static_cast<SimTime>(options.spec.window_ns) / 8) {
  if (interval_ns_ == 0) {
    interval_ns_ = 1;
  }
}

bool SloWatchdog::MaybeCheck(SimTime now,
                             const std::vector<const SlidingWindow*>& windows,
                             std::uint64_t stalled, std::uint64_t attempted,
                             TraceRecorder* recorder) {
  // Fast path: one relaxed load. Workers race to move next_check_ns_
  // forward; the mutex below serializes the losers.
  if (now < next_check_ns_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard lock(mu_);
  if (now < next_check_ns_.load(std::memory_order_relaxed)) {
    return false;  // another worker checked while we waited
  }
  next_check_ns_.store(now + interval_ns_, std::memory_order_relaxed);
  if (now < cooldown_until_ns_) {
    return false;
  }
  return Evaluate(now, windows, stalled, attempted, recorder);
}

bool SloWatchdog::ForceCheck(SimTime now,
                             const std::vector<const SlidingWindow*>& windows,
                             std::uint64_t stalled, std::uint64_t attempted,
                             TraceRecorder* recorder) {
  std::lock_guard lock(mu_);
  return Evaluate(now, windows, stalled, attempted, recorder);
}

bool SloWatchdog::Evaluate(SimTime now,
                           const std::vector<const SlidingWindow*>& windows,
                           std::uint64_t stalled, std::uint64_t attempted,
                           TraceRecorder* recorder) {
  checks_.fetch_add(1, std::memory_order_relaxed);
  const SloSpec& spec = options_.spec;
  const WindowStats stats = SlidingWindow::Merge(windows, now);

  const std::uint64_t stall_delta =
      stalled >= prev_stalled_ ? stalled - prev_stalled_ : 0;
  const std::uint64_t attempt_delta =
      attempted >= prev_attempted_ ? attempted - prev_attempted_ : 0;
  prev_stalled_ = stalled;
  prev_attempted_ = attempted;

  SloAlert alert;
  alert.sim_now = now;
  alert.window = stats;
  alert.stalled = stall_delta;
  alert.attempted = attempt_delta;
  bool breached = false;

  if (spec.p99_ns > 0 && stats.count >= spec.min_requests) {
    const double p99 =
        static_cast<double>(stats.latency.Percentile(0.99));
    if (p99 > spec.p99_ns) {
      alert.rule = SloRule::kP99Latency;
      alert.observed = p99;
      alert.bound = spec.p99_ns;
      breached = true;
    }
  }
  if (!breached && spec.max_error_rate > 0 &&
      stats.count >= spec.min_requests) {
    const double rate = stats.ErrorRate();
    if (rate > spec.max_error_rate) {
      alert.rule = SloRule::kErrorRate;
      alert.observed = rate;
      alert.bound = spec.max_error_rate;
      breached = true;
    }
  }
  if (!breached && spec.max_stall_fraction > 0 &&
      attempt_delta >= spec.min_requests) {
    const double fraction = static_cast<double>(stall_delta) /
                            static_cast<double>(attempt_delta);
    if (fraction > spec.max_stall_fraction) {
      alert.rule = SloRule::kStallFraction;
      alert.observed = fraction;
      alert.bound = spec.max_stall_fraction;
      breached = true;
    }
  }

  if (!breached) {
    return false;
  }
  alert.id = alert_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  cooldown_until_ns_ = now + static_cast<SimTime>(spec.window_ns);
  EmitAlert(alert, recorder);
  alerts_.push_back(std::move(alert));
  return true;
}

void SloWatchdog::EmitAlert(const SloAlert& alert, TraceRecorder* recorder) {
  NEARPM_TRACE_EVENT(recorder, .phase = TracePhase::kSloAlert,
                     .pid = kTraceObsPid, .tid = 0, .ts = alert.sim_now,
                     .seq = alert.id,
                     .arg0 = static_cast<std::uint64_t>(alert.rule),
                     .arg1 = static_cast<std::uint64_t>(alert.observed));
  if (options_.flight != nullptr && !options_.dump_path.empty()) {
    std::ofstream out(options_.dump_path, std::ios::trunc);
    if (out) {
      WriteFlightDump(out, *options_.flight, &alert);
    }
  }
}

std::vector<SloAlert> SloWatchdog::alerts() const {
  std::lock_guard lock(mu_);
  return alerts_;
}

}  // namespace obs
}  // namespace nearpm
