// Live SLO watchdog: evaluates a declarative SloSpec against the merged
// sliding-window view at batch boundaries, and turns a breach into three
// artifacts at the moment it happens:
//
//   1. a structured alert (rule, observed vs bound, window aggregates, the
//      k slowest in-window request trace ids) -- kept in memory, rendered
//      as one JSON object, and recorded as a kSloAlert instant on the
//      caller's trace;
//   2. a flight-record dump: the schema-versioned JSONL black box
//      (header line with the alert context, then the compacted event ring),
//      written to the configured path so "open the dump" replaces "rerun
//      and bisect";
//   3. a cooldown: further checks stay quiet for one window, so an ongoing
//      overload produces one dump per window, not one per batch.
//
// MaybeCheck is designed for the hot path's batch boundary: until the
// check interval elapses it is one relaxed load + compare; the full
// evaluation (window merge, rule checks) runs under an internal mutex, so
// concurrent workers of a threaded service never double-fire one breach.
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/slo.h"
#include "src/obs/window.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace obs {

enum class SloRule : std::uint8_t {
  kP99Latency = 0,
  kErrorRate,
  kStallFraction,
};

const char* SloRuleName(SloRule rule);

struct SloAlert {
  std::uint64_t id = 0;       // 1-based alert sequence
  SimTime sim_now = 0;        // evaluation point, sim ns
  SloRule rule = SloRule::kP99Latency;
  double observed = 0.0;
  double bound = 0.0;
  // Window aggregates at breach time (includes the slowest request ids).
  WindowStats window;
  // Stall-fraction inputs: deltas since the previous evaluation.
  std::uint64_t stalled = 0;
  std::uint64_t attempted = 0;
};

// One-line JSON rendering of an alert (embedded in the dump header).
std::string SloAlertJson(const SloAlert& alert);

// Writes the schema-versioned flight dump: a header object carrying the
// schema tag, ring statistics, source labels and (when non-null) the alert,
// followed by one compacted record per line. This is the DumpFlightRecord
// payload and must stay in sync with tools/nearpm_trace's reader.
void WriteFlightDump(std::ostream& os, const FlightRecorder& flight,
                     const SloAlert* alert);

struct WatchdogOptions {
  SloSpec spec;
  // Flight recorder to dump on breach (not owned; may be null).
  FlightRecorder* flight = nullptr;
  // Breach dump target. Empty = keep the alert in memory only. The file is
  // (re)written on each alert, so a clean run never creates it.
  std::string dump_path;
  // Minimum sim time between evaluations. 0 = spec.window_ns / 8.
  SimTime check_interval_ns = 0;
};

class SloWatchdog {
 public:
  explicit SloWatchdog(const WatchdogOptions& options);

  const SloSpec& spec() const { return options_.spec; }

  // Cheap-until-due breach check. `windows` is the per-worker window set to
  // merge; `stalled`/`attempted` are cumulative admission counters (the
  // watchdog differences them between evaluations). When `recorder` is
  // non-null and a breach fires, a kSloAlert instant is recorded on it (the
  // caller must hold whatever lock that recorder needs). Returns true when
  // an alert fired.
  bool MaybeCheck(SimTime now,
                  const std::vector<const SlidingWindow*>& windows,
                  std::uint64_t stalled, std::uint64_t attempted,
                  TraceRecorder* recorder = nullptr);

  // MaybeCheck without the interval/cooldown gates (tests, end-of-run
  // sweeps).
  bool ForceCheck(SimTime now,
                  const std::vector<const SlidingWindow*>& windows,
                  std::uint64_t stalled, std::uint64_t attempted,
                  TraceRecorder* recorder = nullptr);

  std::uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  // Alerts fired so far. Quiesce writers before iterating.
  std::vector<SloAlert> alerts() const;
  std::uint64_t alert_count() const {
    return alert_count_.load(std::memory_order_relaxed);
  }

 private:
  bool Evaluate(SimTime now, const std::vector<const SlidingWindow*>& windows,
                std::uint64_t stalled, std::uint64_t attempted,
                TraceRecorder* recorder);
  void EmitAlert(const SloAlert& alert, TraceRecorder* recorder);

  WatchdogOptions options_;
  SimTime interval_ns_;
  std::atomic<std::uint64_t> next_check_ns_{0};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> alert_count_{0};
  mutable std::mutex mu_;
  SimTime cooldown_until_ns_ = 0;
  std::uint64_t prev_stalled_ = 0;
  std::uint64_t prev_attempted_ = 0;
  std::vector<SloAlert> alerts_;
};

}  // namespace obs
}  // namespace nearpm

#endif  // SRC_OBS_WATCHDOG_H_
