#include "src/pmem/pm_space.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/analyze/sanitizer.h"

namespace nearpm {
namespace {

// Execution outcome of a request at the failure instant, derived from its
// execution window on the device timeline.
enum class ReqState { kDropped, kPartial, kDurable };

}  // namespace

PmSpace::PmSpace(const PmSpaceOptions& options)
    : options_(options),
      interleave_(options.num_devices, options.stripe),
      current_(options.size, 0),
      device_logs_(static_cast<size_t>(options.num_devices)) {}

void PmSpace::CheckRange(PmAddr addr, std::uint64_t len) const {
  assert(addr + len <= current_.size() && addr + len >= addr);
  (void)addr;
  (void)len;
}

void PmSpace::SnapshotPendingLine(PmAddr line_base) {
  auto it = pending_.find(line_base);
  if (it != pending_.end()) {
    return;  // pre-image already captured since the last persist
  }
  std::vector<std::uint8_t> old(kCacheLineSize);
  std::memcpy(old.data(), current_.data() + line_base, kCacheLineSize);
  pending_.emplace(line_base, std::move(old));
}

void PmSpace::ObserveRange(const AddrRange& range) {
  if (!options_.retain_crash_state || !options_.enforce_observation ||
      range.empty()) {
    return;
  }
  const PmAddr first = AlignDown(range.begin, kCacheLineSize);
  const PmAddr last = AlignDown(range.end - 1, kCacheLineSize);
  for (PmAddr line = first; line <= last; line += kCacheLineSize) {
    const DeviceId dev = interleave_.DeviceOf(line);
    DeviceLog& log = device_logs_[dev];
    if (log.last_writer.empty()) {
      continue;
    }
    auto w = log.last_writer.find(line);
    if (w != log.last_writer.end()) {
      RetireRequest(dev, w->second);
    }
  }
}

void PmSpace::CpuWrite(PmAddr addr, std::span<const std::uint8_t> data) {
  CheckRange(addr, data.size());
  // A blind store does not observe NDP writes to the same lines; crash
  // consistency of the overlap is handled by the write-back guard repair
  // (surviving line => last NDP writer durable) and by rollback ordering.
  if (options_.retain_crash_state && !data.empty()) {
    const PmAddr first = AlignDown(addr, kCacheLineSize);
    const PmAddr last = AlignDown(addr + data.size() - 1, kCacheLineSize);
    for (PmAddr line = first; line <= last; line += kCacheLineSize) {
      SnapshotPendingLine(line);
    }
  }
  std::memcpy(current_.data() + addr, data.data(), data.size());
}

void PmSpace::CpuRead(PmAddr addr, std::span<std::uint8_t> out) {
  CheckRange(addr, out.size());
  // Observation ordering: a load that returns an NDP request's write is
  // ordered after that request's completion.
  ObserveRange(AddrRange{addr, addr + out.size()});
  std::memcpy(out.data(), current_.data() + addr, out.size());
}

void PmSpace::CpuPersist(PmAddr addr, std::uint64_t size) {
  if (!options_.retain_crash_state || size == 0) {
    return;
  }
  CheckRange(addr, size);
  const PmAddr first = AlignDown(addr, kCacheLineSize);
  const PmAddr last = AlignDown(addr + size - 1, kCacheLineSize);
  for (PmAddr line = first; line <= last; line += kCacheLineSize) {
    pending_.erase(line);
  }
}

std::uint64_t PmSpace::PendingLinesIn(const AddrRange& range) const {
  if (range.empty() || pending_.empty()) {
    return 0;
  }
  std::uint64_t n = 0;
  const PmAddr first = AlignDown(range.begin, kCacheLineSize);
  const PmAddr last = AlignDown(range.end - 1, kCacheLineSize);
  for (PmAddr line = first; line <= last; line += kCacheLineSize) {
    n += pending_.count(line);
  }
  return n;
}

void PmSpace::BeginNdpRequest(DeviceId device, std::uint64_t request_seq,
                              std::uint64_t start_ns,
                              std::uint64_t completion_ns) {
  if (!options_.retain_crash_state) {
    return;
  }
  assert(device < device_logs_.size());
  DeviceLog& log = device_logs_[device];
  assert(log.by_seq.find(request_seq) == log.by_seq.end() &&
         "request already declared on this device");
  log.by_seq.emplace(request_seq, log.base + log.records.size());
  log.records.push_back(RequestRecord{});
  RequestRecord& rec = log.records.back();
  rec.seq = request_seq;
  rec.after_sync = last_sync_id_;
  rec.start_ns = start_ns;
  rec.completion_ns = completion_ns;
}

void PmSpace::NdpWrite(DeviceId device, std::uint64_t request_seq, PmAddr addr,
                       std::span<const std::uint8_t> data) {
  CheckRange(addr, data.size());
  assert(device < device_logs_.size());
  if (!options_.retain_crash_state) {
    std::memcpy(current_.data() + addr, data.data(), data.size());
    return;
  }
  // The runtime persists CPU pending lines before issuing any NDP request
  // that touches them (software-managed coherence, Section 7); an overlap
  // here is a PPO violation in the caller (legal in the ablation mode).
  assert(!options_.enforce_observation ||
         PendingLinesIn(AddrRange{addr, addr + data.size()}) == 0);

  DeviceLog& log = device_logs_[device];
  RequestRecord* rec = nullptr;
  if (!log.records.empty() && log.records.back().seq == request_seq &&
      !log.records.back().retired) {
    rec = &log.records.back();
  } else {
    // Undeclared request (e.g. hardware recovery replay): executes at time
    // zero, i.e. durable at any later crash.
    BeginNdpRequest(device, request_seq, 0, 0);
    rec = &log.records.back();
  }

  // Record one event per cacheline so a crash can truncate a copy mid-way,
  // and collect dependency edges to earlier live requests on the same lines.
  std::uint64_t off = 0;
  while (off < data.size()) {
    const PmAddr cur = addr + off;
    const PmAddr line_base = AlignDown(cur, kCacheLineSize);
    const PmAddr line_end = line_base + kCacheLineSize;
    const std::uint64_t n =
        std::min<std::uint64_t>(line_end - cur, data.size() - off);

    auto w = log.last_writer.find(line_base);
    if (w != log.last_writer.end() && w->second != request_seq) {
      auto pos = log.by_seq.find(w->second);
      if (pos != log.by_seq.end() &&
          !log.records[pos->second - log.base].retired) {
        rec->deps.push_back(w->second);
      }
    }
    log.last_writer[line_base] = request_seq;

    LineEvent ev;
    ev.addr = cur;
    ev.len = static_cast<std::uint8_t>(n);
    ev.old_bytes.assign(current_.begin() + static_cast<std::ptrdiff_t>(cur),
                        current_.begin() + static_cast<std::ptrdiff_t>(cur + n));
    rec->lines.push_back(std::move(ev));
    std::memcpy(current_.data() + cur, data.data() + off, n);
    off += n;
  }
}

void PmSpace::GuardRange(DeviceId device, std::uint64_t request_seq,
                         const AddrRange& range) {
  if (!options_.retain_crash_state || range.empty()) {
    return;
  }
  const PmAddr first = AlignDown(range.begin, kCacheLineSize);
  const PmAddr last = AlignDown(range.end - 1, kCacheLineSize);
  for (PmAddr line = first; line <= last; line += kCacheLineSize) {
    read_guards_[line] = {device, request_seq};
  }
}

void PmSpace::SyncMarker(std::uint64_t sync_id) {
  NEARPM_SAN_HOOK(san_, OnSyncMarker(sync_id));
  if (!options_.retain_crash_state) {
    return;
  }
  assert(sync_id > last_sync_id_);
  last_sync_id_ = sync_id;
  for (auto& log : device_logs_) {
    log.sync_positions.emplace_back(sync_id, log.base + log.records.size());
  }
}

void PmSpace::RetireRecord(DeviceLog& log, RequestRecord& rec) {
  if (rec.retired) {
    return;
  }
  rec.retired = true;
  for (const LineEvent& ev : rec.lines) {
    auto w = log.last_writer.find(AlignDown(ev.addr, kCacheLineSize));
    if (w != log.last_writer.end() && w->second == rec.seq) {
      log.last_writer.erase(w);
    }
  }
  rec.lines.clear();
  rec.lines.shrink_to_fit();
  rec.deps.clear();
}

void PmSpace::RetireRequest(DeviceId device, std::uint64_t request_seq) {
  NEARPM_SAN_HOOK(san_, OnRetire(device, request_seq));
  if (!options_.retain_crash_state) {
    return;
  }
  DeviceLog& log = device_logs_[device];
  auto it = log.by_seq.find(request_seq);
  if (it == log.by_seq.end()) {
    return;  // never wrote anything on this device, or already compacted
  }
  RequestRecord& rec = log.records[it->second - log.base];
  // A request completes only after everything it was ordered behind.
  for (std::uint64_t dep : rec.deps) {
    RetireRequest(device, dep);
  }
  RetireRecord(log, rec);
  CompactLogs();
}

void PmSpace::RetireThroughSync(std::uint64_t sync_id) {
  NEARPM_SAN_HOOK(san_, OnSyncComplete(sync_id));
  if (!options_.retain_crash_state) {
    return;
  }
  for (auto& log : device_logs_) {
    std::size_t pos = 0;
    for (const auto& [id, p] : log.sync_positions) {
      if (id <= sync_id) {
        pos = p;
      }
    }
    for (std::size_t i = log.base; i < pos; ++i) {
      RetireRecord(log, log.records[i - log.base]);
    }
  }
  CompactLogs();
}

void PmSpace::CompactLogs() {
  for (auto& log : device_logs_) {
    while (!log.records.empty() && log.records.front().retired) {
      log.by_seq.erase(log.records.front().seq);
      log.records.pop_front();
      ++log.base;
    }
    // Markers older than every live record can go as soon as no live record
    // precedes them.
    while (log.sync_positions.size() > 1 &&
           log.sync_positions[1].second <= log.base) {
      log.sync_positions.erase(log.sync_positions.begin());
    }
  }
}

std::uint64_t PmSpace::live_request_count(DeviceId device) const {
  const DeviceLog& log = device_logs_.at(device);
  std::uint64_t n = 0;
  for (const auto& rec : log.records) {
    n += rec.retired ? 0 : 1;
  }
  return n;
}

std::vector<PmAddr> PmSpace::PendingLineAddrs() const {
  std::vector<PmAddr> lines;
  lines.reserve(pending_.size());
  for (const auto& [line, old_bytes] : pending_) {
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

CrashReport PmSpace::Crash(Rng& rng, std::uint64_t crash_time) {
  // Keeps the historical sampling order (map iteration) so seeded test
  // sweeps reproduce the same crash states as before the plan API existed.
  return CrashWith(crash_time, [&](PmAddr) {
    return rng.NextBool(options_.pending_line_survival);
  });
}

CrashReport PmSpace::Crash(const CrashPlan& plan) {
  const std::vector<PmAddr> ranked = PendingLineAddrs();
  std::unordered_map<PmAddr, bool> survive_by_line;
  survive_by_line.reserve(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    survive_by_line[ranked[i]] =
        i < plan.line_survival.size() && plan.line_survival[i];
  }
  return CrashWith(plan.crash_time, [&](PmAddr line) {
    return survive_by_line[line];
  });
}

template <typename SurviveFn>
CrashReport PmSpace::CrashWith(std::uint64_t crash_time, SurviveFn&& survive) {
  CrashReport report;
  assert(options_.retain_crash_state);

  const std::size_t num_devices = device_logs_.size();
  report.outcomes.resize(num_devices);

  // 1. Resolve pending CPU lines: each independently survived (was evicted
  //    to PM on its own) or is lost with the cache. Survivors' lines are
  //    collected for the write-back guard repair below.
  std::vector<PmAddr> survivor_lines;
  for (auto& [line, old_bytes] : pending_) {
    if (survive(line)) {
      ++report.cpu_lines_survived;
      survivor_lines.push_back(line);
    } else {
      std::memcpy(current_.data() + line, old_bytes.data(), old_bytes.size());
      ++report.cpu_lines_dropped;
    }
  }
  pending_.clear();

  // 2. Derive each request's outcome from its execution window: completed
  //    before the failure -> durable; mid-execution -> truncated; not yet
  //    started -> dropped. Outcome per live record, indexed per device by
  //    record index.
  std::vector<std::vector<ReqState>> state(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    auto& recs = device_logs_[d].records;
    state[d].resize(recs.size(), ReqState::kDurable);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].retired || recs[i].completion_ns <= crash_time) {
        continue;
      }
      state[d][i] = recs[i].start_ns >= crash_time ? ReqState::kDropped
                                                   : ReqState::kPartial;
    }
  }

  // 3. Write-back guard repair: a surviving un-persisted line reached PM
  //    through the device's host queue, which orders it behind every
  //    in-flight request reading or writing the line -- those requests must
  //    have completed. (Skipped in the enforce_ppo=false ablation: naive
  //    hardware provides no such ordering.)
  if (options_.enforce_observation) {
    // The write-back goes through the memory controller, which orders it
    // behind the guarded request on *every* device the (possibly duplicated)
    // command runs on -- the same all-device barrier an explicit persist
    // takes. Forcing only one device's slice durable could keep a slot
    // header whose payload half on the sibling device was lost.
    auto force_durable = [&](std::uint64_t seq) {
      for (std::size_t dev = 0; dev < num_devices; ++dev) {
        DeviceLog& log = device_logs_[dev];
        auto it = log.by_seq.find(seq);
        if (it != log.by_seq.end()) {
          state[dev][it->second - log.base] = ReqState::kDurable;
        }
      }
    };
    for (PmAddr line : survivor_lines) {
      auto guard = read_guards_.find(line);
      if (guard != read_guards_.end()) {
        force_durable(guard->second.second);
      }
      const DeviceId dev = interleave_.DeviceOf(line);
      auto writer = device_logs_[dev].last_writer.find(line);
      if (writer != device_logs_[dev].last_writer.end()) {
        force_durable(writer->second);
      }
    }
  }

  // 4. Dependency repair: a request observed (even partially) implies its
  //    conflicting predecessors fully executed (the Dispatcher serialized
  //    them). Reverse pass gives transitivity since deps point backwards.
  for (std::size_t d = 0; d < num_devices; ++d) {
    DeviceLog& log = device_logs_[d];
    for (std::size_t i = log.records.size(); i > 0; --i) {
      const RequestRecord& rec = log.records[i - 1];
      if (rec.retired || state[d][i - 1] == ReqState::kDropped) {
        continue;
      }
      for (std::uint64_t dep : rec.deps) {
        auto it = log.by_seq.find(dep);
        if (it != log.by_seq.end()) {
          state[d][it->second - log.base] = ReqState::kDurable;
        }
      }
    }
  }

  // 5. Synchronization repair (Invariant 3): if anything issued after sync S
  //    is durable anywhere, everything issued before S is durable everywhere.
  std::uint64_t frontier = 0;
  for (std::size_t d = 0; d < num_devices; ++d) {
    const auto& recs = device_logs_[d].records;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (!recs[i].retired && state[d][i] != ReqState::kDropped) {
        frontier = std::max(frontier, recs[i].after_sync);
      }
      if (recs[i].retired) {
        frontier = std::max(frontier, recs[i].after_sync);
      }
    }
  }
  report.frontier_sync = frontier;
  if (frontier != 0 && !options_.skip_frontier_replay) {
    for (std::size_t d = 0; d < num_devices; ++d) {
      DeviceLog& log = device_logs_[d];
      std::size_t pos = 0;
      for (const auto& [id, p] : log.sync_positions) {
        if (id <= frontier) {
          pos = p;
        }
      }
      for (std::size_t i = log.base; i < pos; ++i) {
        const std::size_t idx = i - log.base;
        if (!log.records[idx].retired &&
            state[d][idx] != ReqState::kDurable) {
          state[d][idx] = ReqState::kDurable;
          ++report.forced_by_sync;
        }
      }
    }
  }

  // 6. Roll back, newest first within each device. Dropped requests restore
  //    all pre-images; partial requests keep a random prefix of their line
  //    writes (the DMA engine copies in address order) and restore the rest.
  for (std::size_t d = 0; d < num_devices; ++d) {
    DeviceLog& log = device_logs_[d];
    for (std::size_t i = log.records.size(); i > 0; --i) {
      RequestRecord& rec = log.records[i - 1];
      if (rec.retired) {
        ++report.requests_durable;
        report.outcomes[d][rec.seq] = CrashOutcome::kDurable;
        continue;
      }
      std::size_t keep = rec.lines.size();
      switch (state[d][i - 1]) {
        case ReqState::kDurable:
          ++report.requests_durable;
          report.outcomes[d][rec.seq] = CrashOutcome::kDurable;
          continue;
        case ReqState::kPartial: {
          // The DMA engine writes lines in order; keep the prefix matching
          // the elapsed fraction of the execution window.
          const double span_ns =
              static_cast<double>(rec.completion_ns - rec.start_ns);
          const double frac =
              span_ns <= 0.0 ? 0.0
                             : static_cast<double>(crash_time - rec.start_ns) /
                                   span_ns;
          keep = static_cast<std::size_t>(
              frac * static_cast<double>(rec.lines.size()));
          ++report.requests_truncated;
          report.outcomes[d][rec.seq] = CrashOutcome::kPartial;
          break;
        }
        case ReqState::kDropped:
          keep = 0;
          ++report.requests_dropped;
          report.outcomes[d][rec.seq] = CrashOutcome::kDropped;
          break;
      }
      for (std::size_t j = rec.lines.size(); j > keep; --j) {
        const LineEvent& ev = rec.lines[j - 1];
        std::memcpy(current_.data() + ev.addr, ev.old_bytes.data(), ev.len);
      }
    }
    log.records.clear();
    log.by_seq.clear();
    log.last_writer.clear();
    log.sync_positions.clear();
    log.base = 0;
  }

  if (NEARPM_TRACE_ENABLED(trace_)) {
    for (std::size_t d = 0; d < report.outcomes.size(); ++d) {
      for (const auto& [seq, outcome] : report.outcomes[d]) {
        NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCrashOutcome,
                           .pid = TraceDevicePid(static_cast<DeviceId>(d)),
                           .tid = kTraceDispatcherTid, .ts = crash_time,
                           .seq = seq,
                           .arg0 = static_cast<std::uint64_t>(outcome));
      }
    }
  }

  read_guards_.clear();
  last_sync_id_ = 0;
  return report;
}

void PmSpace::Quiesce() {
  NEARPM_SAN_HOOK(san_, OnQuiesce());
  pending_.clear();
  read_guards_.clear();
  for (auto& log : device_logs_) {
    log.records.clear();
    log.by_seq.clear();
    log.last_writer.clear();
    log.sync_positions.clear();
    log.base = 0;
  }
}

}  // namespace nearpm
