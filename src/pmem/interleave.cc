#include "src/pmem/interleave.h"

#include <cassert>

namespace nearpm {

InterleaveMap::InterleaveMap(int num_devices, std::uint64_t stripe)
    : num_devices_(num_devices), stripe_(stripe) {
  assert(num_devices_ >= 1);
  assert(stripe_ > 0 && (stripe_ & (stripe_ - 1)) == 0);
}

DeviceId InterleaveMap::DeviceOf(PmAddr addr) const {
  return static_cast<DeviceId>((addr / stripe_) %
                               static_cast<std::uint64_t>(num_devices_));
}

PmAddr InterleaveMap::LocalOffsetOf(PmAddr addr) const {
  const std::uint64_t stripe_index = addr / stripe_;
  const std::uint64_t local_stripe =
      stripe_index / static_cast<std::uint64_t>(num_devices_);
  return local_stripe * stripe_ + (addr % stripe_);
}

std::vector<DeviceSlice> InterleaveMap::Split(const AddrRange& range) const {
  std::vector<DeviceSlice> out;
  if (range.empty()) {
    return out;
  }
  PmAddr cur = range.begin;
  while (cur < range.end) {
    const PmAddr stripe_end = AlignDown(cur, stripe_) + stripe_;
    const PmAddr piece_end = stripe_end < range.end ? stripe_end : range.end;
    out.push_back(DeviceSlice{
        .device = DeviceOf(cur),
        .global = AddrRange{cur, piece_end},
        .local_offset = LocalOffsetOf(cur),
    });
    cur = piece_end;
  }
  return out;
}

bool InterleaveMap::Spans(const AddrRange& range) const {
  if (range.empty() || num_devices_ == 1) {
    return false;
  }
  const DeviceId first = DeviceOf(range.begin);
  for (PmAddr a = AlignDown(range.begin, stripe_) + stripe_; a < range.end;
       a += stripe_) {
    if (DeviceOf(a) != first) {
      return true;
    }
  }
  return false;
}

}  // namespace nearpm
