// Functional model of the persistent-memory address space.
//
// PmSpace answers the one question crash consistency is about: *which bytes
// are durable at the instant of a failure*. It tracks three classes of state:
//
//  * `current_` -- the bytes program execution observes (loads return these).
//  * CPU pending lines -- stores the CPU has issued but not yet persisted
//    with clwb+fence. At a crash each pending line independently survives
//    (happened to be written back on its own) or is dropped, modeling a real
//    cache hierarchy losing volatile contents on power failure.
//  * NDP request records -- writes performed by NearPM units enter the
//    persistence domain as soon as they reach the media (the device has no
//    write cache, Section 5.3.1), but at the instant of failure a device may
//    not have executed everything the program issued: requests may still sit
//    in the FIFO, and a DMA copy may be half done. Each request's writes are
//    recorded (cacheline granularity, with pre-images) together with the
//    request's execution window on the device timeline. A crash at virtual
//    time T keeps a request that completed before T, truncates one whose DMA
//    was mid-flight at T (prefix of its line writes, proportional to the
//    elapsed fraction), and drops one that had not started. Two structural
//    rules are additionally enforced as repairs (they hold by construction
//    under PPO, and matter for the enforce_ppo=false ablation):
//
//      - requests serialized by the Dispatcher's in-flight access table can
//        only be durable if their predecessors are (dependency edges), and
//      - a cross-device synchronization marker (Invariant 3) forbids
//        anything after the marker being durable anywhere unless everything
//        before the marker is durable everywhere.
//
// The runtime *retires* a request once its completion is architecturally
// ordered before subsequent CPU execution (a conflict stall, a polled
// completion, a passed synchronization): retired requests are durable at any
// later crash and their pre-images are released.
#ifndef SRC_PMEM_PM_SPACE_H_
#define SRC_PMEM_PM_SPACE_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/pmem/interleave.h"
#include "src/trace/recorder.h"

namespace nearpm {

namespace analyze {
class PmSanitizer;
}  // namespace analyze

// Execution outcome of one NDP request on one device at the failure instant.
enum class CrashOutcome { kDropped, kPartial, kDurable };

struct CrashReport {
  std::uint64_t requests_dropped = 0;
  std::uint64_t requests_truncated = 0;
  std::uint64_t requests_durable = 0;
  std::uint64_t cpu_lines_dropped = 0;
  std::uint64_t cpu_lines_survived = 0;
  std::uint64_t forced_by_sync = 0;  // records force-durable by sync repair
  // The latest synchronization point all devices had reached: hardware
  // recovery replays in-flight requests up to (and only up to) this sync.
  std::uint64_t frontier_sync = 0;
  // Per device: request seq -> sampled outcome, for every request that was
  // still tracked (not yet compacted) at the failure.
  std::vector<std::unordered_map<std::uint64_t, CrashOutcome>> outcomes;
};

// Fully deterministic crash specification, the unit the crash fuzzer
// explores and replays. `crash_time` is the failure instant on the device
// timeline (clamped to "now" by the caller); `line_survival` decides, for
// every pending CPU cacheline in ascending address order, whether the line
// happened to be written back before the power failed. Lines beyond the
// vector's length are dropped, so an empty plan is "all caches lost".
struct CrashPlan {
  std::uint64_t crash_time = 0;
  std::vector<bool> line_survival;
};

struct PmSpaceOptions {
  std::uint64_t size = 64ull << 20;
  int num_devices = 2;
  std::uint64_t stripe = kPmPageSize;
  // When false, no crash bookkeeping is kept (fast path for benchmarks that
  // never inject failures).
  bool retain_crash_state = true;
  // Probability that a pending (un-persisted) CPU cacheline happens to have
  // been written back before the failure.
  double pending_line_survival = 0.5;
  // When false (the enforce_ppo=false ablation), CPU accesses do not retire
  // the NDP requests they observe -- modeling hardware without the ordering
  // guarantees of PPO, so crashes can produce the inconsistent images of
  // Section 2.3.
  bool enforce_observation = true;
  // Fault injection for the crash fuzzer's self-test: disables the
  // synchronization repair (Invariant 3) that models hardware recovery's
  // replay of the journalled in-flight window, producing the broken images
  // a forgotten frontier replay would leave behind.
  bool skip_frontier_replay = false;
};

class PmSpace {
 public:
  explicit PmSpace(const PmSpaceOptions& options);

  std::uint64_t size() const { return current_.size(); }
  const InterleaveMap& interleave() const { return interleave_; }
  bool retain_crash_state() const { return options_.retain_crash_state; }

  // ---- CPU-side accesses (volatile until persisted).
  void CpuWrite(PmAddr addr, std::span<const std::uint8_t> data);
  // Non-const: a load that observes an NDP write retires that request.
  void CpuRead(PmAddr addr, std::span<std::uint8_t> out);
  // clwb+fence over [addr, addr+size): pending lines in range become durable.
  void CpuPersist(PmAddr addr, std::uint64_t size);
  // Number of pending lines overlapping the range (0 = range is durable).
  std::uint64_t PendingLinesIn(const AddrRange& range) const;

  // ---- NDP-side accesses. All writes of one request on one device must be
  // issued contiguously (no interleaving of request_seq values per device).
  // BeginNdpRequest declares the request's execution window on the device
  // timeline before its writes are applied; without it the request is
  // treated as executing at time zero (always durable).
  void BeginNdpRequest(DeviceId device, std::uint64_t request_seq,
                       std::uint64_t start_ns, std::uint64_t completion_ns);
  void NdpWrite(DeviceId device, std::uint64_t request_seq, PmAddr addr,
                std::span<const std::uint8_t> data);
  // NDP reads do not retire the last writer themselves; the device's
  // dispatcher orders conflicting requests and calls ObserveRange for the
  // read set explicitly before execution.
  void NdpRead(PmAddr addr, std::span<std::uint8_t> out) const {
    CheckRange(addr, out.size());
    std::memcpy(out.data(), current_.data() + addr, out.size());
  }

  // Declares that `request_seq` on `device` reads `range`. Guards crash
  // consistency against natural cache evictions: a CPU line that was never
  // explicitly persisted can only reach PM through the device's host queue,
  // which orders the write-back behind in-flight requests reading the line.
  // If such a line turns out durable at a crash, the guarding request must
  // have completed first.
  void GuardRange(DeviceId device, std::uint64_t request_seq,
                  const AddrRange& range);

  // Records a cross-device synchronization point (monotonically increasing
  // nonzero ids).
  void SyncMarker(std::uint64_t sync_id);

  // The request's completion is now ordered before future CPU execution;
  // it is durable at any later crash.
  void RetireRequest(DeviceId device, std::uint64_t request_seq);
  // An agent (CPU load/store, or a later NDP request's read) observed the
  // current contents of `range`: any live NDP request that last wrote a line
  // in the range is ordered before the observer and is retired. CpuRead and
  // CpuWrite apply this implicitly.
  void ObserveRange(const AddrRange& range);
  // The synchronization `sync_id` is known complete: everything issued
  // before it, on every device, is durable.
  void RetireThroughSync(std::uint64_t sync_id);

  // ---- Failure.
  // Collapses state to the durable image of a power failure at virtual time
  // `crash_time` per the rules above (rng resolves CPU pending lines). After
  // the call `current_` equals the durable image and all bookkeeping is
  // empty.
  CrashReport Crash(Rng& rng, std::uint64_t crash_time);
  // Deterministic variant: pending-line survival comes from the plan's mask
  // instead of coin flips, so a crash state can be re-created exactly.
  CrashReport Crash(const CrashPlan& plan);

  // Pending CPU line base addresses in ascending order -- the rank order
  // CrashPlan::line_survival indexes.
  std::vector<PmAddr> PendingLineAddrs() const;

  // Clean shutdown / quiesce: everything recorded is durable.
  void Quiesce();

  // Bookkeeping introspection for tests.
  std::uint64_t pending_line_count() const { return pending_.size(); }
  std::uint64_t live_request_count(DeviceId device) const;

  // Attaches (or detaches, with nullptr) the event recorder; Crash() then
  // stamps each tracked request's sampled outcome into the trace.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // Attaches (or detaches) the PM-Sanitizer; retire/sync bookkeeping is then
  // mirrored into its per-device clocks. Requires retain_crash_state=true
  // (enforced by Runtime::AttachSanitizer, which also wires the devices).
  void set_sanitizer(analyze::PmSanitizer* san) { san_ = san; }

 private:
  struct LineEvent {
    PmAddr addr = 0;
    std::uint8_t len = 0;
    std::vector<std::uint8_t> old_bytes;
  };
  struct RequestRecord {
    std::uint64_t seq = 0;
    std::uint64_t after_sync = 0;  // latest sync id issued before this request
    std::uint64_t start_ns = 0;     // execution window on the device timeline
    std::uint64_t completion_ns = 0;
    bool retired = false;
    std::vector<LineEvent> lines;
    std::vector<std::uint64_t> deps;  // conflicting same-device predecessors
  };
  struct DeviceLog {
    std::deque<RequestRecord> records;
    // Absolute position of records.front(); retired prefixes are compacted
    // away, so positions stay stable as the deque shrinks from the front.
    std::size_t base = 0;
    // seq -> absolute position
    std::unordered_map<std::uint64_t, std::size_t> by_seq;
    // line base -> seq of last live request writing it (dependency tracking)
    std::unordered_map<PmAddr, std::uint64_t> last_writer;
    // (sync_id, absolute record position at marker time)
    std::vector<std::pair<std::uint64_t, std::size_t>> sync_positions;
  };

  // Shared crash core; `survive` answers whether a given pending line was
  // written back before the failure (called once per line).
  template <typename SurviveFn>
  CrashReport CrashWith(std::uint64_t crash_time, SurviveFn&& survive);

  void CheckRange(PmAddr addr, std::uint64_t len) const;
  void SnapshotPendingLine(PmAddr line_base);
  void RetireRecord(DeviceLog& log, RequestRecord& rec);
  void CompactLogs();

  PmSpaceOptions options_;
  InterleaveMap interleave_;
  std::vector<std::uint8_t> current_;
  // line base address -> durable pre-image of the 64-byte line
  std::unordered_map<PmAddr, std::vector<std::uint8_t>> pending_;
  // line base -> latest in-flight request reading it (eviction ordering)
  std::unordered_map<PmAddr, std::pair<DeviceId, std::uint64_t>> read_guards_;
  std::vector<DeviceLog> device_logs_;
  std::uint64_t last_sync_id_ = 0;
  TraceRecorder* trace_ = nullptr;
  analyze::PmSanitizer* san_ = nullptr;
};

}  // namespace nearpm

#endif  // SRC_PMEM_PM_SPACE_H_
