// Device interleaving of the global PM address space.
//
// Following Section 7 of the paper, a set of NearPM devices is interleaved at
// a fixed stripe granularity: consecutive stripes of the global address space
// map to consecutive devices round-robin, and within one stripe the block is
// contiguous on one device (NearPM supports no scatter/gather). A persistent
// object larger than one stripe therefore spans multiple devices, which is
// exactly the situation PPO's multi-device synchronization exists for.
#ifndef SRC_PMEM_INTERLEAVE_H_
#define SRC_PMEM_INTERLEAVE_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace nearpm {

struct DeviceSlice {
  DeviceId device = 0;
  AddrRange global;       // the piece of the request in global address space
  PmAddr local_offset = 0;  // device-local physical offset of global.begin
};

class InterleaveMap {
 public:
  // `num_devices` >= 1; `stripe` must be a power of two (default 4 KB, the
  // page granularity the paper's checkpointing/shadow paging operate at).
  InterleaveMap(int num_devices, std::uint64_t stripe = kPmPageSize);

  int num_devices() const { return num_devices_; }
  std::uint64_t stripe() const { return stripe_; }

  DeviceId DeviceOf(PmAddr addr) const;
  PmAddr LocalOffsetOf(PmAddr addr) const;

  // Splits a global range into per-device contiguous slices, in address
  // order. Used by the memory-controller model to duplicate a NearPM command
  // to every device the operand touches.
  std::vector<DeviceSlice> Split(const AddrRange& range) const;

  // True if the range maps to more than one device.
  bool Spans(const AddrRange& range) const;

 private:
  int num_devices_;
  std::uint64_t stripe_;
};

}  // namespace nearpm

#endif  // SRC_PMEM_INTERLEAVE_H_
