// Virtual-time accounting of where execution time goes.
//
// Reproduces the measurements behind Figure 1 (crash-consistency overhead and
// its breakdown), Figures 15/16 (region and end-to-end speedups) and
// Figure 18 (CPU/NDP overlap).
#ifndef SRC_CORE_CC_STATS_H_
#define SRC_CORE_CC_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace nearpm {

// Cost categories inside a crash-consistency region (Figure 1b-d).
enum class CcCategory : std::uint8_t {
  kApp = 0,          // outside any crash-consistency region
  kDataMovement,     // log/checkpoint/shadow copies
  kMetadata,         // metadata generation and log deletion
  kOrdering,         // fences, conflict stalls, synchronization waits
  kAllocation,       // persistent allocation bookkeeping
  kCount,
};

const char* CcCategoryName(CcCategory c);

struct ThreadClock {
  SimTime now = 0;
  bool in_cc = false;
  CcCategory category = CcCategory::kApp;
};

class RuntimeStats {
 public:
  explicit RuntimeStats(int max_threads);

  // Charges `ns` of CPU time on thread `t` under its current category.
  void Charge(ThreadId t, double ns);
  // Charges time under an explicit category (primitives use this).
  void ChargeAs(ThreadId t, double ns, CcCategory category);
  // Advances thread time to `until` (a stall), charged as ordering.
  void StallUntil(ThreadId t, SimTime until);

  void BeginCc(ThreadId t) { clocks_[t].in_cc = true; }
  void EndCc(ThreadId t) {
    clocks_[t].in_cc = false;
    clocks_[t].category = CcCategory::kApp;
  }
  bool InCc(ThreadId t) const { return clocks_[t].in_cc; }
  void SetCategory(ThreadId t, CcCategory c) { clocks_[t].category = c; }
  CcCategory Category(ThreadId t) const { return clocks_[t].category; }

  SimTime now(ThreadId t) const { return clocks_[t].now; }
  void SetNow(ThreadId t, SimTime when) { clocks_[t].now = when; }

  // NDP busy interval observed beyond the CPU release point (for overlap).
  void AddNdpBusy(SimTime cpu_release, SimTime completion);

  // ---- Aggregates -----------------------------------------------------------
  // Latest CPU time across threads.
  SimTime MaxThreadTime() const;
  // Total CPU time in crash-consistency regions (all threads).
  double CcRegionNs() const;
  double AppNs() const;
  double TotalNs() const { return CcRegionNs() + AppNs(); }
  double CategoryNs(CcCategory c) const { return category_ns_[static_cast<int>(c)]; }
  // Time during which the CPU made progress while NDP work was outstanding.
  double OverlapNs() const { return overlap_ns_; }

  void Reset();
  std::string Summary() const;

 private:
  std::vector<ThreadClock> clocks_;
  double category_ns_[static_cast<int>(CcCategory::kCount)] = {};
  double overlap_ns_ = 0.0;
};

}  // namespace nearpm

#endif  // SRC_CORE_CC_STATS_H_
