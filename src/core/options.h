// Runtime configuration: execution modes and platform parameters.
#ifndef SRC_CORE_OPTIONS_H_
#define SRC_CORE_OPTIONS_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/hwmodel/hw_config.h"

namespace nearpm {

// The four comparison points of Section 8.1.
enum class ExecMode : std::uint8_t {
  kCpuBaseline,      // crash consistency executes entirely on the CPU
  kNdpSingleDevice,  // offloaded to one NearPM device
  kNdpMultiSwSync,   // two devices, CPU-polling software synchronization
  kNdpMultiDelayed,  // two devices, PPO delayed synchronization
};

const char* ExecModeName(ExecMode mode);

struct RuntimeOptions {
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  // Devices used in multi-device modes (single-device modes use 1).
  int num_devices = 2;
  std::uint64_t pm_size = 64ull << 20;
  // Devices interleave at DIMM-like granularity, so persistent objects and
  // pages span devices (the multi-device scenario of Sections 2.3/3.2).
  std::uint64_t interleave_stripe = 256;
  int max_threads = 16;
  // PPO enforcement. Setting this to false reproduces the unsound "naive
  // offload" of Section 2.3: CPU accesses do not stall behind conflicting
  // in-flight NDP work and commits are not synchronized across devices.
  bool enforce_ppo = true;
  // Functional crash bookkeeping (disable for pure-performance benchmarks).
  bool retain_crash_state = true;
  double pending_line_survival = 0.5;
  // Fault injection for the crash fuzzer's self-test: when true, recovery
  // skips every journalled replay pass -- the hardware side (the recovery
  // journal's in-flight replay and the crash model's sync-frontier repair,
  // Section 5.3.3) and the mechanism side (undo rollback, redo reapply,
  // checkpoint restore, shadow switch roll-forward), which scrub their logs
  // without applying them. A deliberately broken recovery the fuzzer must
  // catch. Never set in production configurations.
  bool skip_recovery_replay = false;
  // Device geometry and platform cost constants. The default reproduces the
  // seed platform (Table 3 geometry, VCU118 calibration) bit-for-bit; load a
  // config file into it to evaluate a different design point. Per-device
  // unit count and FIFO depth live here (hw.units_per_device, hw.fifo_depth)
  // so the runtime, the fabric and the sweep tool all read one geometry.
  hwmodel::HwConfig hw;

  // Effective device count for the selected mode.
  int EffectiveDevices() const {
    switch (mode) {
      case ExecMode::kCpuBaseline:
      case ExecMode::kNdpSingleDevice:
        return 1;
      case ExecMode::kNdpMultiSwSync:
      case ExecMode::kNdpMultiDelayed:
        return num_devices;
    }
    return 1;
  }

  bool UsesNdp() const { return mode != ExecMode::kCpuBaseline; }
  bool MultiDevice() const { return EffectiveDevices() > 1; }
};

}  // namespace nearpm

#endif  // SRC_CORE_OPTIONS_H_
