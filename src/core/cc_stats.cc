#include "src/core/cc_stats.h"

#include <algorithm>

#include "src/sim/timeline.h"

namespace nearpm {

const char* CcCategoryName(CcCategory c) {
  switch (c) {
    case CcCategory::kApp:
      return "app";
    case CcCategory::kDataMovement:
      return "data_movement";
    case CcCategory::kMetadata:
      return "metadata";
    case CcCategory::kOrdering:
      return "ordering";
    case CcCategory::kAllocation:
      return "allocation";
    case CcCategory::kCount:
      break;
  }
  return "?";
}

RuntimeStats::RuntimeStats(int max_threads)
    : clocks_(static_cast<size_t>(max_threads)) {}

void RuntimeStats::Charge(ThreadId t, double ns) {
  ThreadClock& c = clocks_[t];
  ChargeAs(t, ns, c.in_cc ? c.category : CcCategory::kApp);
}

void RuntimeStats::ChargeAs(ThreadId t, double ns, CcCategory category) {
  clocks_[t].now += NsToTime(ns);
  category_ns_[static_cast<int>(category)] += ns;
}

void RuntimeStats::StallUntil(ThreadId t, SimTime until) {
  ThreadClock& c = clocks_[t];
  if (until <= c.now) {
    return;
  }
  const double ns = static_cast<double>(until - c.now);
  c.now = until;
  // A stall inside a crash-consistency region is ordering overhead of the
  // mechanism; a stall in application code is an app-side slowdown (the
  // paper's region measurements bracket only the mechanism's code).
  category_ns_[static_cast<int>(c.in_cc ? CcCategory::kOrdering
                                        : CcCategory::kApp)] += ns;
  // The CPU was idle waiting on NDP work: that interval is not overlap.
  overlap_ns_ = std::max(0.0, overlap_ns_ - ns);
}

void RuntimeStats::AddNdpBusy(SimTime cpu_release, SimTime completion) {
  if (completion > cpu_release) {
    overlap_ns_ += static_cast<double>(completion - cpu_release);
  }
}

SimTime RuntimeStats::MaxThreadTime() const {
  SimTime t = 0;
  for (const ThreadClock& c : clocks_) {
    t = std::max(t, c.now);
  }
  return t;
}

double RuntimeStats::CcRegionNs() const {
  double ns = 0.0;
  for (int i = 1; i < static_cast<int>(CcCategory::kCount); ++i) {
    ns += category_ns_[i];
  }
  return ns;
}

double RuntimeStats::AppNs() const {
  return category_ns_[static_cast<int>(CcCategory::kApp)];
}

void RuntimeStats::Reset() {
  for (ThreadClock& c : clocks_) {
    c = ThreadClock{};
  }
  for (double& ns : category_ns_) {
    ns = 0.0;
  }
  overlap_ns_ = 0.0;
}

std::string RuntimeStats::Summary() const {
  std::string out;
  out += "total=" + std::to_string(TotalNs() / 1e6) + "ms";
  out += " app=" + std::to_string(AppNs() / 1e6) + "ms";
  out += " cc=" + std::to_string(CcRegionNs() / 1e6) + "ms";
  for (int i = 1; i < static_cast<int>(CcCategory::kCount); ++i) {
    out += std::string(" ") + CcCategoryName(static_cast<CcCategory>(i)) +
           "=" + std::to_string(category_ns_[i] / 1e6) + "ms";
  }
  out += " overlap=" + std::to_string(overlap_ns_ / 1e6) + "ms";
  return out;
}

}  // namespace nearpm
