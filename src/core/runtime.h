// The NearPM runtime: the software interface of Table 2 plus the simulated
// platform behind it.
//
// A Runtime owns the PM address space, the NearPM devices, the recovery
// journal and the virtual clocks of every application thread. PM libraries
// (src/pmlib) express crash-consistency mechanisms in terms of the Table 2
// primitives; the runtime dispatches each primitive either to the CPU
// (baseline mode) or to the NearPM devices, enforcing Partitioned Persist
// Ordering along the way:
//
//  * Invariant 1/2 (CPU-NDP): every CPU load/store consults the devices'
//    in-flight access tables and stalls behind conflicting NDP work; CPU
//    pending lines overlapping a request's operands are written back before
//    the command is posted (software-managed coherence).
//  * Invariant 3/4 (NDP-NDP): commands on operands spanning devices are
//    duplicated per device slice; commits in delayed-sync mode are ordered
//    behind a synchronization event that is itself off the CPU's critical
//    path.
#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <source_location>
#include <span>
#include <vector>

#include "src/analyze/sanitizer.h"

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/cc_stats.h"
#include "src/core/log_layout.h"
#include "src/core/options.h"
#include "src/ndp/address_map.h"
#include "src/ndp/device.h"
#include "src/ndp/recovery_journal.h"
#include "src/ndp/request.h"
#include "src/pmem/pm_space.h"
#include "src/trace/recorder.h"

namespace nearpm {

struct PrimitiveCounters {
  std::uint64_t undolog_create = 0;
  std::uint64_t applylog = 0;
  std::uint64_t commit_log = 0;
  std::uint64_t ckpoint_create = 0;
  std::uint64_t shadowcpy = 0;
  std::uint64_t raw_copy = 0;
  std::uint64_t duplicated_commands = 0;  // commands spanning devices
  std::uint64_t delayed_syncs = 0;
  std::uint64_t sw_sync_polls = 0;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeOptions& options);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const RuntimeOptions& options() const { return options_; }
  PmSpace& space() { return space_; }
  RuntimeStats& stats() { return stats_; }
  const PrimitiveCounters& counters() const { return counters_; }
  const NearPmDevice& device(DeviceId d) const { return *devices_[d]; }
  int num_devices() const { return static_cast<int>(devices_.size()); }
  SimTime Now(ThreadId t) const { return stats_.now(t); }

  // ---- Pool management ------------------------------------------------------
  // Registers [base, base+size) as a pool; the translation is installed in
  // every device's address mapping table.
  StatusOr<PoolId> RegisterPool(PmAddr base, std::uint64_t size);
  Status UnregisterPool(PoolId pool);

  // ---- CPU-side PM access (timing + function + Invariant 1/2) ---------------
  // The defaulted source_location parameters capture the issuing call site
  // for the PM-Sanitizer; they cost nothing when no sanitizer is attached.
  void Write(ThreadId t, PmAddr addr, std::span<const std::uint8_t> data,
             const std::source_location& loc = std::source_location::current());
  void Read(ThreadId t, PmAddr addr, std::span<std::uint8_t> out,
            const std::source_location& loc = std::source_location::current());
  // clwb + sfence over the range.
  void Persist(ThreadId t, PmAddr addr, std::uint64_t size,
               const std::source_location& loc = std::source_location::current());
  void Fence(ThreadId t);
  // Pure CPU work (hashing, comparisons, request parsing...).
  void Compute(ThreadId t, double ns);

  template <typename T>
  T Load(ThreadId t, PmAddr addr,
         const std::source_location& loc = std::source_location::current()) {
    T value{};
    Read(t, addr, {reinterpret_cast<std::uint8_t*>(&value), sizeof(T)}, loc);
    return value;
  }
  template <typename T>
  void Store(ThreadId t, PmAddr addr, const T& value,
             const std::source_location& loc = std::source_location::current()) {
    Write(t, addr, AsBytes(value), loc);
  }

  // ---- Crash-consistency region bracketing (Figures 1, 15, 18) --------------
  void BeginCc(ThreadId t) { stats_.BeginCc(t); }
  void EndCc(ThreadId t) { stats_.EndCc(t); }
  class CcRegion {
   public:
    CcRegion(Runtime& rt, ThreadId t) : rt_(rt), t_(t) { rt_.BeginCc(t_); }
    ~CcRegion() { rt_.EndCc(t_); }
    CcRegion(const CcRegion&) = delete;
    CcRegion& operator=(const CcRegion&) = delete;

   private:
    Runtime& rt_;
    ThreadId t_;
  };

  // ---- Table 2 primitives ----------------------------------------------------
  // NearPM_undolog_create: copy `size` bytes at `old_data` into `slot`'s
  // payload and write the slot header (tagged with tx_id) last.
  Status UndologCreate(PoolId pool, ThreadId t, std::uint64_t tx_id,
                       PmAddr old_data, std::uint64_t size, PmAddr slot,
                       const std::source_location& loc =
                           std::source_location::current());
  // NearPM_applylog: copy a redo slot's payload onto its target.
  Status ApplyLog(PoolId pool, ThreadId t, PmAddr slot, std::uint64_t size,
                  PmAddr target,
                  const std::source_location& loc =
                      std::source_location::current());
  // NearPM_commit_log: invalidate the given slot headers. In multi-device
  // delayed mode the invalidations are ordered behind a cross-device
  // synchronization that stays off the CPU's critical path; in SW-sync mode
  // the CPU polls all devices to completion first.
  Status CommitLog(PoolId pool, ThreadId t, std::span<const PmAddr> slots,
                   const std::source_location& loc =
                       std::source_location::current());
  // NearPM_ckpoint_create: copy a page into a checkpoint slot, header last.
  // Returns the device completion time so the caller can synchronize on the
  // snapshot (checkpointing confirms its pre-images; see CheckpointProvider).
  StatusOr<SimTime> CkpointCreate(PoolId pool, ThreadId t, std::uint64_t epoch,
                                  PmAddr page, std::uint64_t size, PmAddr slot,
                                  const std::source_location& loc =
                                      std::source_location::current());
  // NearPM_shadowcpy: copy an existing page to a freshly allocated one.
  Status ShadowCpy(PoolId pool, ThreadId t, PmAddr src_page, PmAddr dst_page,
                   std::uint64_t size,
                   const std::source_location& loc =
                       std::source_location::current());
  // Generic near-memory copy (micro-benchmark). `wait` makes the call
  // synchronous (the CPU polls for completion).
  Status RawCopy(PoolId pool, ThreadId t, PmAddr src, PmAddr dst,
                 std::uint64_t size, bool wait,
                 const std::source_location& loc =
                     std::source_location::current());

  // CPU-polls until every device drained and all delayed syncs completed.
  void DrainDevices(ThreadId t);

  // Stalls thread `t` until virtual time `when` (ordering overhead).
  void WaitUntil(ThreadId t, SimTime when) { stats_.StallUntil(t, when); }

  // Fresh transaction id.
  std::uint64_t NextTxId() { return ++tx_counter_; }

  // ---- Failure injection and hardware recovery (Section 5.3.3) --------------
  // Collapses the functional state to a legal durable image, then performs
  // the hardware recovery procedure: journalled in-flight requests issued
  // before the last fully-reached synchronization point are re-executed.
  // Device pipelines and virtual clocks restart from zero. The *software*
  // mechanism recovery (undo rollback, checkpoint restore, ...) is the
  // caller's job, as in the paper.
  CrashReport InjectCrash(Rng& rng);
  // Deterministic variant for the crash fuzzer: the failure instant and the
  // fate of every pending CPU line come from `plan` (crash_time is clamped
  // to the latest point any thread reached), so the resulting durable image
  // is a pure function of the execution prefix and the plan.
  CrashReport InjectCrashAt(const CrashPlan& plan);

  // ---- Observability ---------------------------------------------------------
  // Attaches `trace` (or detaches, with nullptr) to the runtime and every
  // component underneath it: the devices and the PM space record through the
  // same recorder, so one stream carries the full request lifecycle. A crash
  // starts a new trace epoch (virtual clocks restart from zero).
  void AttachTrace(TraceRecorder* trace);
  TraceRecorder* trace() const { return trace_; }

  // Attaches the PM-Sanitizer (or detaches, with nullptr) to the runtime,
  // the PM space and every device. Requires retain_crash_state=true (the
  // sanitizer's retire/sync mirror feeds off PmSpace bookkeeping) and a
  // single-threaded driver.
  void AttachSanitizer(analyze::PmSanitizer* san);
  analyze::PmSanitizer* sanitizer() const { return san_; }

 private:
  struct PendingSync {
    std::uint64_t id = 0;
    SimTime done_at = 0;
  };

  // Splits `work` (global addresses) per destination device and issues the
  // command, duplicated across the participating devices. Returns overall
  // completion time. Updates clocks and journal.
  SimTime IssueNdp(const NearPmRequest& request,
                   const AddrRange& read_range, const AddrRange& write_range,
                   const std::vector<NdpWorkItem>& work, SimTime earliest,
                   bool synchronous, bool deferred = false,
                   const analyze::SourceLoc& loc = {});

  // Builds the functional work decomposition of a request (used at issue
  // time and again by hardware recovery replay).
  std::vector<NdpWorkItem> BuildWork(const NearPmRequest& request);

  // Shared post-failure path: hardware recovery replay, pipeline and clock
  // resets, trace epoch advance.
  CrashReport FinishCrash(CrashReport report, SimTime crash_time);

  // CPU access ordering against in-flight NDP work (Invariant 1/2).
  void HostBarrier(ThreadId t, const AddrRange& range, bool is_write);
  // Write back pending CPU lines overlapping `range` before NDP reads them.
  void CoherenceWriteback(ThreadId t, const AddrRange& range);
  // Retires delayed syncs whose completion time has passed.
  void HarvestSyncs(SimTime now);

  Status CheckPool(PoolId pool, PmAddr addr, std::uint64_t size) const;

  RuntimeOptions options_;
  PmSpace space_;
  AddressMappingTable addr_map_;
  std::vector<std::unique_ptr<NearPmDevice>> devices_;
  RecoveryJournal journal_;
  RuntimeStats stats_;
  PrimitiveCounters counters_;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t sync_counter_ = 0;
  std::uint64_t tx_counter_ = 0;
  std::vector<PendingSync> pending_syncs_;
  PoolId next_pool_ = 1;
  std::vector<std::uint8_t> scratch_;
  TraceRecorder* trace_ = nullptr;
  analyze::PmSanitizer* san_ = nullptr;
};

}  // namespace nearpm

#endif  // SRC_CORE_RUNTIME_H_
