#include "src/core/runtime.h"

#include <algorithm>
#include <cassert>

#include "src/sim/timeline.h"

namespace nearpm {

const char* ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kCpuBaseline:
      return "baseline";
    case ExecMode::kNdpSingleDevice:
      return "nearpm_sd";
    case ExecMode::kNdpMultiSwSync:
      return "nearpm_md_swsync";
    case ExecMode::kNdpMultiDelayed:
      return "nearpm_md";
  }
  return "?";
}

namespace {

PmSpaceOptions SpaceOptionsFor(const RuntimeOptions& o) {
  PmSpaceOptions s;
  s.size = o.pm_size;
  s.num_devices = o.EffectiveDevices();
  s.stripe = o.interleave_stripe;
  s.retain_crash_state = o.retain_crash_state;
  s.pending_line_survival = o.pending_line_survival;
  s.enforce_observation = o.enforce_ppo;
  s.skip_frontier_replay = o.skip_recovery_replay;
  return s;
}

}  // namespace

Runtime::Runtime(const RuntimeOptions& options)
    : options_(options),
      space_(SpaceOptionsFor(options)),
      addr_map_(&space_.interleave()),
      stats_(options.max_threads) {
  const int devices = options_.EffectiveDevices();
  for (int d = 0; d < devices; ++d) {
    devices_.push_back(std::make_unique<NearPmDevice>(
        static_cast<DeviceId>(d), &options_.hw, &space_));
  }
}

// ---- Pools ------------------------------------------------------------------

StatusOr<PoolId> Runtime::RegisterPool(PmAddr base, std::uint64_t size) {
  if (base + size > space_.size() || base + size < base) {
    return OutOfRange("pool escapes PM space");
  }
  const PoolId id = next_pool_++;
  // Identity virtual mapping: commands carry global addresses; devices still
  // validate pool bounds and derive local offsets through the table.
  NEARPM_RETURN_IF_ERROR(addr_map_.RegisterPool(id, base, base, size));
  return id;
}

Status Runtime::UnregisterPool(PoolId pool) {
  return addr_map_.UnregisterPool(pool);
}

Status Runtime::CheckPool(PoolId pool, PmAddr addr, std::uint64_t size) const {
  auto tr = addr_map_.Translate(pool, addr, size);
  if (!tr.ok()) {
    return tr.status();
  }
  return Status::Ok();
}

// ---- CPU-side access --------------------------------------------------------

void Runtime::HostBarrier(ThreadId t, const AddrRange& range, bool is_write) {
  if (!options_.UsesNdp() || !options_.enforce_ppo) {
    return;
  }
  const SimTime begin = stats_.now(t);
  for (auto& dev : devices_) {
    const SimTime free_at =
        dev->HostAccessBarrier(range, is_write, stats_.now(t));
    stats_.StallUntil(t, free_at);
  }
  if (stats_.now(t) > begin) {
    NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kCpuStall, .tid = t,
                      .ts = begin, .dur = stats_.now(t) - begin,
                      .range = range, .arg0 = is_write ? 1u : 0u);
  }
}

void Runtime::CoherenceWriteback(ThreadId t, const AddrRange& range) {
  if (!options_.enforce_ppo || range.empty()) {
    return;
  }
  // The hardware guard persists any pending operand line before the command
  // executes: mirror that in the sanitizer's shadow state ahead of the
  // fast-path bailout, without the NPM005 redundancy lint (the guard only
  // touches lines that are actually pending).
  NEARPM_SAN_HOOK(san_, OnCoherenceWriteback(t, range));
  if (!space_.retain_crash_state()) {
    return;
  }
  const std::uint64_t n = space_.PendingLinesIn(range);
  if (n == 0) {
    return;
  }
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCoherenceWb, .tid = t,
                     .ts = stats_.now(t), .range = range, .arg0 = n);
  stats_.ChargeAs(t,
                  static_cast<double>(n) * options_.hw.cost.cpu_flush_line_ns +
                      options_.hw.cost.cpu_fence_ns,
                  CcCategory::kOrdering);
  space_.CpuPersist(range.begin, range.size());
}

void Runtime::Write(ThreadId t, PmAddr addr,
                    std::span<const std::uint8_t> data,
                    const std::source_location& loc) {
  if (data.empty()) {
    return;
  }
  // Stores land in the cache hierarchy and do not reach the PM device, so
  // they need no ordering against in-flight NDP work (the relaxation at the
  // heart of PPO): only the later persist -- or a natural eviction, handled
  // by the crash model's write-back guards -- is ordered by the device.
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCpuWrite, .tid = t,
                     .ts = stats_.now(t),
                     .range = AddrRange{addr, addr + data.size()});
  stats_.Charge(t, static_cast<double>(CostModel::Lines(data.size())) *
                       options_.hw.cost.cpu_store_line_ns);
  NEARPM_SAN_HOOK(san_, OnCpuWrite(t, AddrRange{addr, addr + data.size()},
                                   stats_.now(t), analyze::FromStd(loc)));
  space_.CpuWrite(addr, data);
}

void Runtime::Read(ThreadId t, PmAddr addr, std::span<std::uint8_t> out,
                   const std::source_location& loc) {
  if (out.empty()) {
    return;
  }
  const AddrRange range{addr, addr + out.size()};
  HostBarrier(t, range, /*is_write=*/false);
  // Recorded post-stall: Invariant 1 says the load's architectural time must
  // fall outside every conflicting request's execution window.
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCpuRead, .tid = t,
                     .ts = stats_.now(t), .range = range);
  stats_.Charge(t, static_cast<double>(CostModel::Lines(out.size())) *
                       options_.hw.cost.cpu_cached_read_ns);
  NEARPM_SAN_HOOK(san_, OnCpuRead(t, range, stats_.now(t),
                                  analyze::FromStd(loc)));
  space_.CpuRead(addr, out);
}

void Runtime::Persist(ThreadId t, PmAddr addr, std::uint64_t size,
                      const std::source_location& loc) {
  if (size == 0) {
    return;
  }
  NEARPM_SAN_HOOK(san_, OnFlush(t, AddrRange{addr, addr + size},
                                stats_.now(t), analyze::FromStd(loc)));
  // The write-back enters the device's host read/write queue, which lives
  // inside the persistence domain: the fence waits for queue *acceptance*
  // only. The queue drains behind conflicting in-flight NDP requests
  // (Invariants 1/2, Figure 10), so those requests are durable at any later
  // crash -- but the CPU does not stall.
  if (options_.UsesNdp() && options_.enforce_ppo) {
    const AddrRange range{addr, addr + size};
    for (auto& dev : devices_) {
      dev->HostWritebackAccepted(range, stats_.now(t));
    }
  }
  // Recorded after queue acceptance so the devices' kRetire events order
  // before the persist (Invariant 2 reads the stream in record order).
  NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kCpuPersist, .tid = t,
                    .ts = stats_.now(t),
                    .dur = NsToTime(options_.hw.cost.CpuPersistNs(size)),
                    .range = AddrRange{addr, addr + size});
  stats_.Charge(t, options_.hw.cost.CpuPersistNs(size));
  space_.CpuPersist(addr, size);
  NEARPM_SAN_HOOK(san_, OnFence(t));
}

void Runtime::Fence(ThreadId t) {
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCpuFence, .tid = t,
                     .ts = stats_.now(t));
  stats_.Charge(t, options_.hw.cost.cpu_fence_ns);
  NEARPM_SAN_HOOK(san_, OnFence(t));
}

void Runtime::Compute(ThreadId t, double ns) { stats_.Charge(t, ns); }

// ---- NDP issue machinery ----------------------------------------------------

std::vector<NdpWorkItem> Runtime::BuildWork(const NearPmRequest& request) {
  std::vector<NdpWorkItem> work;
  switch (request.op) {
    case NearPmOp::kUndologCreate:
    case NearPmOp::kCkpointCreate: {
      // Payload copy first, validity header last.
      work.push_back(NdpWorkItem{NdpWorkItem::Kind::kCopy, request.addr,
                                 CcArea::SlotData(request.dst), request.size,
                                 {}});
      scratch_.resize(request.size);
      space_.NdpRead(request.addr, scratch_);
      SlotHeader header;
      header.magic = request.op == NearPmOp::kUndologCreate ? kUndoMagic
                                                            : kCkptMagic;
      header.tag = request.tag;
      header.target = request.addr;
      header.size = request.size;
      header.checksum = Checksum64(scratch_);
      NdpWorkItem lit;
      lit.kind = NdpWorkItem::Kind::kLiteral;
      lit.dst = request.dst;
      const auto bytes = AsBytes(header);
      lit.literal.assign(bytes.begin(), bytes.end());
      work.push_back(std::move(lit));
      break;
    }
    case NearPmOp::kApplyLog:
      work.push_back(NdpWorkItem{NdpWorkItem::Kind::kCopy,
                                 CcArea::SlotData(request.addr), request.dst,
                                 request.size,
                                 {}});
      break;
    case NearPmOp::kCommitLog: {
      NdpWorkItem lit;
      lit.kind = NdpWorkItem::Kind::kLiteral;
      lit.dst = request.addr;
      lit.literal.assign(kSlotHeaderSize, 0);
      work.push_back(std::move(lit));
      break;
    }
    case NearPmOp::kShadowCpy:
    case NearPmOp::kRawCopy:
      work.push_back(NdpWorkItem{NdpWorkItem::Kind::kCopy, request.addr,
                                 request.dst, request.size,
                                 {}});
      break;
  }
  return work;
}

SimTime Runtime::IssueNdp(const NearPmRequest& request,
                          const AddrRange& read_range,
                          const AddrRange& write_range,
                          const std::vector<NdpWorkItem>& work,
                          SimTime earliest, bool synchronous, bool deferred,
                          const analyze::SourceLoc& loc) {
  const ThreadId t = request.thread;
  HarvestSyncs(stats_.now(t));
  CoherenceWriteback(t, read_range);
  CoherenceWriteback(t, write_range);

  // Split every work item by the destination device; the memory controller
  // duplicates the command to all devices the operand touches.
  const InterleaveMap& il = space_.interleave();
  std::vector<std::vector<NdpWorkItem>> per_dev(devices_.size());
  for (const NdpWorkItem& item : work) {
    const std::uint64_t len =
        item.kind == NdpWorkItem::Kind::kCopy ? item.size : item.literal.size();
    for (const DeviceSlice& slice :
         il.Split(AddrRange{item.dst, item.dst + len})) {
      NdpWorkItem piece;
      piece.kind = item.kind;
      piece.dst = slice.global.begin;
      const std::uint64_t offset = slice.global.begin - item.dst;
      if (item.kind == NdpWorkItem::Kind::kCopy) {
        piece.src = item.src + offset;
        piece.size = slice.global.size();
      } else {
        piece.literal.assign(
            item.literal.begin() + static_cast<std::ptrdiff_t>(offset),
            item.literal.begin() +
                static_cast<std::ptrdiff_t>(offset + slice.global.size()));
      }
      per_dev[slice.device].push_back(std::move(piece));
    }
  }

  // Checked at the doorbell, after the write-back guard: any operand line
  // still in the sanitizer's shadow store buffer is an NPM002; commit-class
  // (deferred) commands additionally check cross-device sync (NPM004).
  if (san_ != nullptr) {
    std::uint32_t touched_mask = 0;
    for (std::size_t d = 0; d < per_dev.size() && d < 32; ++d) {
      if (!per_dev[d].empty()) {
        touched_mask |= 1u << d;
      }
    }
    san_->OnNdpCommand(t, read_range, write_range, stats_.now(t), deferred,
                       touched_mask, loc);
  }

  // The CPU posts one command; the memory controller duplicates it to every
  // device the operand touches (Section 6.1), so the devices receive it in
  // parallel and the CPU pays a single MMIO write (plus any FIFO
  // backpressure, whichever device is worst).
  const SimTime post_time = stats_.now(t);
  SimTime cpu_now = post_time;
  SimTime completion = 0;
  int participants = 0;
  std::vector<DeviceId> touched;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (per_dev[d].empty()) {
      continue;
    }
    const NearPmDevice::IssueResult res =
        deferred ? devices_[d]->IssueDeferred(request.seq, post_time,
                                              write_range, per_dev[d],
                                              earliest, request.op)
                 : devices_[d]->Issue(request.seq, post_time, read_range,
                                      write_range, per_dev[d], earliest,
                                      request.op);
    cpu_now = std::max(cpu_now, res.cpu_release);
    completion = std::max(completion, res.completion);
    ++participants;
    touched.push_back(static_cast<DeviceId>(d));
  }
  assert(participants > 0);
  if (participants > 1) {
    // Multi-device handler: peers exchange status bits before the duplicated
    // command counts as complete (Figure 11).
    completion += NsToTime(options_.hw.cost.ndp_remote_status_ns);
    ++counters_.duplicated_commands;
  }

  // The command sits in the persistence-domain Request FIFO until it
  // finishes executing; a crash in that window replays it.
  journal_.Add(request, sync_counter_, completion);

  const double post_ns = static_cast<double>(cpu_now - stats_.now(t));
  stats_.ChargeAs(t, post_ns, stats_.Category(t));
  stats_.AddNdpBusy(cpu_now, completion);

  if (synchronous) {
    stats_.StallUntil(t, completion);
    for (DeviceId d : touched) {
      space_.RetireRequest(d, request.seq);
    }
    journal_.Remove(request.seq);
  }
  return completion;
}

void Runtime::HarvestSyncs(SimTime now) {
  journal_.RemoveCompletedBefore(now);
  while (!pending_syncs_.empty() && pending_syncs_.front().done_at <= now) {
    const std::uint64_t id = pending_syncs_.front().id;
    space_.RetireThroughSync(id);
    journal_.RemoveThroughSync(id);
    pending_syncs_.erase(pending_syncs_.begin());
  }
}

// ---- Table 2 primitives -----------------------------------------------------

namespace {

AddrRange RangeOf(PmAddr addr, std::uint64_t size) {
  return AddrRange{addr, addr + size};
}

}  // namespace

Status Runtime::UndologCreate(PoolId pool, ThreadId t, std::uint64_t tx_id,
                              PmAddr old_data, std::uint64_t size, PmAddr slot,
                              const std::source_location& loc) {
  if (size == 0 || size > kMaxLogData) {
    return InvalidArgument("undo log payload size out of range");
  }
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, old_data, size));
  ++counters_.undolog_create;
  NearPmRequest req{++seq_counter_, NearPmOp::kUndologCreate, pool, t,
                    old_data,       size,                     slot, tx_id};
  const auto work = BuildWork(req);
  if (!options_.UsesNdp()) {
    // CPU path: metadata generation + persist-copy of the old data.
    stats_.SetCategory(t, CcCategory::kDataMovement);
    stats_.ChargeAs(t, options_.hw.cost.CpuCopyNs(size),
                    CcCategory::kDataMovement);
    stats_.ChargeAs(t, options_.hw.cost.cpu_metadata_ns, CcCategory::kMetadata);
    for (const NdpWorkItem& item : work) {
      if (item.kind == NdpWorkItem::Kind::kCopy) {
        scratch_.resize(item.size);
        space_.CpuRead(item.src, scratch_);
        space_.CpuWrite(item.dst, scratch_);
        space_.CpuPersist(item.dst, item.size);
      } else {
        space_.CpuWrite(item.dst, item.literal);
        space_.CpuPersist(item.dst, item.literal.size());
      }
    }
    return Status::Ok();
  }
  stats_.SetCategory(t, CcCategory::kDataMovement);
  IssueNdp(req, RangeOf(old_data, size), RangeOf(slot, kSlotSize), work,
           /*earliest=*/0, /*synchronous=*/false, /*deferred=*/false,
           analyze::FromStd(loc));
  return Status::Ok();
}

Status Runtime::ApplyLog(PoolId pool, ThreadId t, PmAddr slot,
                         std::uint64_t size, PmAddr target,
                         const std::source_location& loc) {
  if (size == 0 || size > kMaxLogData) {
    return InvalidArgument("redo log payload size out of range");
  }
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, target, size));
  ++counters_.applylog;
  NearPmRequest req{++seq_counter_, NearPmOp::kApplyLog, pool, t,
                    slot,           size,                target, 0};
  const auto work = BuildWork(req);
  if (!options_.UsesNdp()) {
    stats_.ChargeAs(t, options_.hw.cost.CpuCopyNs(size),
                    CcCategory::kDataMovement);
    for (const NdpWorkItem& item : work) {
      scratch_.resize(item.size);
      space_.CpuRead(item.src, scratch_);
      space_.CpuWrite(item.dst, scratch_);
      space_.CpuPersist(item.dst, item.size);
    }
    return Status::Ok();
  }
  stats_.SetCategory(t, CcCategory::kDataMovement);
  IssueNdp(req, RangeOf(CcArea::SlotData(slot), size), RangeOf(target, size),
           work, /*earliest=*/0, /*synchronous=*/false, /*deferred=*/false,
           analyze::FromStd(loc));
  return Status::Ok();
}

Status Runtime::CommitLog(PoolId pool, ThreadId t,
                          std::span<const PmAddr> slots,
                          const std::source_location& loc) {
  ++counters_.commit_log;
  stats_.SetCategory(t, CcCategory::kMetadata);
  if (!options_.UsesNdp()) {
    for (PmAddr slot : slots) {
      stats_.ChargeAs(t, options_.hw.cost.cpu_log_delete_ns,
                      CcCategory::kMetadata);
      std::vector<std::uint8_t> zero(kSlotHeaderSize, 0);
      space_.CpuWrite(slot, zero);
      space_.CpuPersist(slot, kSlotHeaderSize);
    }
    return Status::Ok();
  }

  SimTime earliest = 0;
  const bool multi = options_.MultiDevice() && options_.enforce_ppo;
  if (multi && options_.mode == ExecMode::kNdpMultiSwSync) {
    // Software synchronization: the CPU polls every device's completion
    // status before it allows the logs to be deleted.
    const SimTime poll_begin = stats_.now(t);
    SimTime target = stats_.now(t);
    for (auto& dev : devices_) {
      target = std::max(target, dev->last_completion());
    }
    stats_.StallUntil(t, target);
    stats_.ChargeAs(t,
                    options_.hw.cost.cpu_poll_round_ns *
                        static_cast<double>(devices_.size()),
                    CcCategory::kOrdering);
    ++counters_.sw_sync_polls;
    NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kSwSyncPoll, .tid = t,
                      .ts = poll_begin, .dur = stats_.now(t) - poll_begin);
    if (space_.retain_crash_state()) {
      const std::uint64_t sync_id = ++sync_counter_;
      space_.SyncMarker(sync_id);
      space_.RetireThroughSync(sync_id);
      journal_.RemoveThroughSync(sync_id);
      NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kSyncMarker,
                         .pid = kTraceSyncPid, .ts = poll_begin,
                         .seq = sync_id);
      NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kSyncComplete,
                         .pid = kTraceSyncPid, .ts = stats_.now(t),
                         .seq = sync_id);
    }
  } else if (multi && options_.mode == ExecMode::kNdpMultiDelayed) {
    // Delayed synchronization (PPO): the deletes are ordered behind a
    // cross-device sync event that completes off the CPU's critical path.
    const std::uint64_t sync_id = ++sync_counter_;
    if (space_.retain_crash_state()) {
      space_.SyncMarker(sync_id);
    }
    SimTime done = 0;
    for (auto& dev : devices_) {
      done = std::max(done, dev->last_completion());
    }
    done += NsToTime(options_.hw.cost.ndp_remote_status_ns);
    pending_syncs_.push_back(PendingSync{sync_id, done});
    ++counters_.delayed_syncs;
    earliest = done;
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kSyncMarker,
                       .pid = kTraceSyncPid, .ts = stats_.now(t),
                       .seq = sync_id);
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kSyncComplete,
                       .pid = kTraceSyncPid, .ts = done, .seq = sync_id);
  }

  for (PmAddr slot : slots) {
    NearPmRequest req{++seq_counter_, NearPmOp::kCommitLog, pool, t,
                      slot,           kSlotHeaderSize,      0,    0};
    // Log deletion runs on the maintenance path: off the units, off the
    // critical path (Section 5.3.2).
    IssueNdp(req, AddrRange{}, RangeOf(slot, kSlotHeaderSize), BuildWork(req),
             earliest, /*synchronous=*/false, /*deferred=*/true,
             analyze::FromStd(loc));
  }
  return Status::Ok();
}

StatusOr<SimTime> Runtime::CkpointCreate(PoolId pool, ThreadId t,
                                         std::uint64_t epoch, PmAddr page,
                                         std::uint64_t size, PmAddr slot,
                                         const std::source_location& loc) {
  if (size == 0 || size > kMaxLogData) {
    return InvalidArgument("checkpoint payload size out of range");
  }
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, page, size));
  ++counters_.ckpoint_create;
  NearPmRequest req{++seq_counter_, NearPmOp::kCkpointCreate, pool, t,
                    page,           size,                     slot, epoch};
  const auto work = BuildWork(req);
  if (!options_.UsesNdp()) {
    stats_.ChargeAs(t, options_.hw.cost.CpuCopyNs(size),
                    CcCategory::kDataMovement);
    stats_.ChargeAs(t, options_.hw.cost.cpu_metadata_ns, CcCategory::kMetadata);
    for (const NdpWorkItem& item : work) {
      if (item.kind == NdpWorkItem::Kind::kCopy) {
        scratch_.resize(item.size);
        space_.CpuRead(item.src, scratch_);
        space_.CpuWrite(item.dst, scratch_);
        space_.CpuPersist(item.dst, item.size);
      } else {
        space_.CpuWrite(item.dst, item.literal);
        space_.CpuPersist(item.dst, item.literal.size());
      }
    }
    return stats_.now(t);
  }
  stats_.SetCategory(t, CcCategory::kDataMovement);
  return IssueNdp(req, RangeOf(page, size), RangeOf(slot, kSlotSize), work,
                  /*earliest=*/0, /*synchronous=*/false, /*deferred=*/false,
                  analyze::FromStd(loc));
}

Status Runtime::ShadowCpy(PoolId pool, ThreadId t, PmAddr src_page,
                          PmAddr dst_page, std::uint64_t size,
                          const std::source_location& loc) {
  if (size == 0 || size > kPmPageSize) {
    return InvalidArgument("shadow copy size out of range");
  }
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, src_page, size));
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, dst_page, size));
  ++counters_.shadowcpy;
  NearPmRequest req{++seq_counter_, NearPmOp::kShadowCpy, pool, t,
                    src_page,       size,                 dst_page, 0};
  const auto work = BuildWork(req);
  if (!options_.UsesNdp()) {
    stats_.ChargeAs(t, options_.hw.cost.CpuCopyNs(size),
                    CcCategory::kDataMovement);
    for (const NdpWorkItem& item : work) {
      scratch_.resize(item.size);
      space_.CpuRead(item.src, scratch_);
      space_.CpuWrite(item.dst, scratch_);
      space_.CpuPersist(item.dst, item.size);
    }
    return Status::Ok();
  }
  stats_.SetCategory(t, CcCategory::kDataMovement);
  IssueNdp(req, RangeOf(src_page, size), RangeOf(dst_page, size), work,
           /*earliest=*/0, /*synchronous=*/false, /*deferred=*/false,
           analyze::FromStd(loc));
  return Status::Ok();
}

Status Runtime::RawCopy(PoolId pool, ThreadId t, PmAddr src, PmAddr dst,
                        std::uint64_t size, bool wait,
                        const std::source_location& loc) {
  if (size == 0) {
    return InvalidArgument("copy size must be nonzero");
  }
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, src, size));
  NEARPM_RETURN_IF_ERROR(CheckPool(pool, dst, size));
  ++counters_.raw_copy;
  NearPmRequest req{++seq_counter_, NearPmOp::kRawCopy, pool, t,
                    src,            size,               dst,  0};
  const auto work = BuildWork(req);
  if (!options_.UsesNdp()) {
    stats_.ChargeAs(t, options_.hw.cost.CpuCopyNs(size),
                    CcCategory::kDataMovement);
    for (const NdpWorkItem& item : work) {
      scratch_.resize(item.size);
      space_.CpuRead(item.src, scratch_);
      space_.CpuWrite(item.dst, scratch_);
      space_.CpuPersist(item.dst, item.size);
    }
    return Status::Ok();
  }
  stats_.SetCategory(t, CcCategory::kDataMovement);
  IssueNdp(req, RangeOf(src, size), RangeOf(dst, size), work, /*earliest=*/0,
           wait, /*deferred=*/false, analyze::FromStd(loc));
  return Status::Ok();
}

void Runtime::DrainDevices(ThreadId t) {
  if (!options_.UsesNdp()) {
    return;
  }
  const SimTime drain_begin = stats_.now(t);
  SimTime target = stats_.now(t);
  for (auto& dev : devices_) {
    target = std::max(target, dev->last_any_completion());
  }
  for (const PendingSync& s : pending_syncs_) {
    target = std::max(target, s.done_at);
  }
  stats_.StallUntil(t, target);
  stats_.ChargeAs(t, options_.hw.cost.cpu_poll_round_ns, CcCategory::kOrdering);
  NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kCpuDrain, .tid = t,
                    .ts = drain_begin, .dur = stats_.now(t) - drain_begin);
  if (space_.retain_crash_state()) {
    const std::uint64_t sync_id = ++sync_counter_;
    space_.SyncMarker(sync_id);
    space_.RetireThroughSync(sync_id);
  }
  journal_.Clear();
  pending_syncs_.clear();
}

// ---- Failure ----------------------------------------------------------------

CrashReport Runtime::InjectCrash(Rng& rng) {
  // The power fails "now" -- at the latest point any CPU thread reached.
  // NDP work still executing past this instant is truncated or lost.
  const SimTime crash_time = stats_.MaxThreadTime();
  return FinishCrash(space_.Crash(rng, crash_time), crash_time);
}

CrashReport Runtime::InjectCrashAt(const CrashPlan& plan) {
  CrashPlan clamped = plan;
  clamped.crash_time =
      std::max<std::uint64_t>(plan.crash_time, stats_.MaxThreadTime());
  // Delayed syncs that genuinely completed before the (possibly later)
  // failure instant retire their windows first, exactly as live execution
  // would have at the next issue.
  HarvestSyncs(clamped.crash_time);
  return FinishCrash(space_.Crash(clamped), clamped.crash_time);
}

CrashReport Runtime::FinishCrash(CrashReport report, SimTime crash_time) {
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCrash, .ts = crash_time,
                     .arg0 = report.frontier_sync);
  // Store buffers and in-flight clocks are volatile: a power failure clears
  // the sanitizer's shadow state with them.
  NEARPM_SAN_HOOK(san_, OnCrash());

  // Hardware recovery (Section 5.3.3): reload the persistence-domain
  // structures and replay the requests that were still in flight -- in the
  // FIFO, i.e. not yet complete at the failure -- up to the latest
  // synchronization point all devices had reached.
  journal_.RemoveCompletedBefore(crash_time);
  // A request whose effects are already durable (completed, or retired
  // because a dependent write-back was accepted behind it) has left the
  // FIFO: replaying it would re-execute against post-crash data.
  auto already_durable = [&report](std::uint64_t seq) {
    for (const auto& outcomes : report.outcomes) {
      auto it = outcomes.find(seq);
      if (it != outcomes.end() && it->second != CrashOutcome::kDurable) {
        return false;
      }
    }
    return true;  // durable everywhere, or compacted away after retirement
  };
  const InterleaveMap& il = space_.interleave();
  // The skip is the fuzzer's planted bug (see RuntimeOptions): recovery
  // forgets the in-flight window entirely.
  const std::vector<RecoveryJournal::Entry> replay_set =
      options_.skip_recovery_replay
          ? std::vector<RecoveryJournal::Entry>{}
          : journal_.ReplaySet(report.frontier_sync);
  for (const RecoveryJournal::Entry& e : replay_set) {
    if (already_durable(e.request.seq)) {
      continue;
    }
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kRecoveryReplay,
                       .ts = crash_time, .seq = e.request.seq,
                       .arg0 = static_cast<std::uint64_t>(e.request.op));
    for (const NdpWorkItem& item : BuildWork(e.request)) {
      const std::uint64_t len = item.kind == NdpWorkItem::Kind::kCopy
                                    ? item.size
                                    : item.literal.size();
      for (const DeviceSlice& slice :
           il.Split(AddrRange{item.dst, item.dst + len})) {
        const std::uint64_t offset = slice.global.begin - item.dst;
        if (item.kind == NdpWorkItem::Kind::kCopy) {
          scratch_.resize(slice.global.size());
          space_.NdpRead(item.src + offset, scratch_);
          space_.NdpWrite(slice.device, e.request.seq, slice.global.begin,
                          scratch_);
        } else {
          space_.NdpWrite(
              slice.device, e.request.seq, slice.global.begin,
              std::span<const std::uint8_t>(item.literal)
                  .subspan(offset, slice.global.size()));
        }
      }
    }
  }
  // Replayed writes persisted before software recovery starts.
  space_.Quiesce();

  journal_.Clear();
  pending_syncs_.clear();
  for (auto& dev : devices_) {
    dev->Reset();
  }
  stats_.Reset();
  // Virtual clocks restart from zero: later timestamps alias pre-crash ones,
  // so the trace moves to a fresh epoch.
  if (trace_ != nullptr) {
    trace_->NextEpoch();
  }
  return report;
}

void Runtime::AttachTrace(TraceRecorder* trace) {
  trace_ = trace;
  space_.set_trace(trace);
  for (auto& dev : devices_) {
    dev->set_trace(trace);
  }
}

void Runtime::AttachSanitizer(analyze::PmSanitizer* san) {
  // The sanitizer mirrors retire/sync bookkeeping that PmSpace only performs
  // with crash-state retention on.
  assert(san == nullptr || options_.retain_crash_state);
  san_ = san;
  space_.set_sanitizer(san);
  for (auto& dev : devices_) {
    dev->set_sanitizer(san);
  }
}

}  // namespace nearpm
