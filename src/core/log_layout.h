// On-PM layout of the crash-consistency metadata NearPM manipulates.
//
// Every pool reserves one *CC area* per application thread, holding the
// transaction state record, undo/redo log slots, checkpoint page slots and
// the shadow-paging switch record. These areas are NDP-managed memory in PPO
// terms: the CPU only touches them during recovery, so NDP writes to them
// follow relaxed persist ordering (Section 4.1, Invariant 2).
//
// Validity discipline: a slot's data payload is always written *before* its
// header (the header literal is the last work item of the request), and the
// header carries a checksum of the payload. A crash that truncates a slot
// write therefore leaves either no header (magic mismatch) or a checksum
// mismatch -- never a silently half-applied log record.
#ifndef SRC_CORE_LOG_LAYOUT_H_
#define SRC_CORE_LOG_LAYOUT_H_

#include <cstdint>
#include <span>

#include "src/common/types.h"

namespace nearpm {

inline constexpr std::uint64_t kUndoMagic = 0x4e50554c4f473101ULL;
inline constexpr std::uint64_t kRedoMagic = 0x4e5052444f473102ULL;
inline constexpr std::uint64_t kCkptMagic = 0x4e50434b50543103ULL;
inline constexpr std::uint64_t kSwitchMagic = 0x4e50535754433104ULL;

inline constexpr std::size_t kLogSlots = 64;      // per thread, undo and redo
inline constexpr std::size_t kCkptSlots = 64;     // per thread
inline constexpr std::size_t kMaxLogData = kPmPageSize;  // payload cap (4 kB)
inline constexpr std::size_t kSlotHeaderSize = 64;
inline constexpr std::size_t kSlotSize = kSlotHeaderSize + kMaxLogData;
inline constexpr std::size_t kMaxSwitchEntries = 30;

// Header of an undo/redo log slot or a checkpoint page slot (one cacheline,
// written atomically as the final work item of the producing request).
struct alignas(64) SlotHeader {
  std::uint64_t magic = 0;     // kUndoMagic / kRedoMagic / kCkptMagic, 0=free
  std::uint64_t tag = 0;       // transaction id or checkpoint epoch
  std::uint64_t target = 0;    // address the payload restores to / applies to
  std::uint64_t size = 0;      // payload bytes
  std::uint64_t checksum = 0;  // FNV-1a over the payload
  std::uint8_t pad[24] = {};
};
static_assert(sizeof(SlotHeader) == 64);

// Per-(pool, thread) transaction state record (one cacheline, atomic).
enum class TxState : std::uint64_t { kIdle = 0, kActive = 1, kCommitted = 2 };

struct alignas(64) TxRecord {
  std::uint64_t state = 0;  // TxState
  std::uint64_t tx_id = 0;
  std::uint64_t committed_epoch = 0;  // checkpointing: last durable epoch
  std::uint8_t pad[40] = {};
};
static_assert(sizeof(TxRecord) == 64);

// Shadow paging switch record: the atomic multi-page commit. Lists the page
// table entries to flip; recovery rolls the switch forward if the record is
// valid (redo on page-table entries).
struct alignas(64) SwitchRecord {
  std::uint64_t magic = 0;  // kSwitchMagic when armed
  std::uint64_t count = 0;
  std::uint64_t checksum = 0;  // over the entry array
  std::uint8_t pad[40] = {};
  struct Entry {
    std::uint64_t vpage = 0;
    std::uint64_t new_ppage = 0;
  };
  Entry entries[kMaxSwitchEntries] = {};
};
static_assert(sizeof(SwitchRecord) == AlignUp(64 + kMaxSwitchEntries * 16, 64));

// Address calculator for one thread's CC area.
class CcArea {
 public:
  CcArea() = default;
  explicit CcArea(PmAddr base) : base_(base) {}

  PmAddr base() const { return base_; }
  PmAddr TxRecordAddr() const { return base_; }
  PmAddr SwitchRecordAddr() const { return base_ + 64; }
  PmAddr UndoSlotAddr(std::size_t i) const {
    return base_ + kFixedHeader + i * kSlotSize;
  }
  PmAddr RedoSlotAddr(std::size_t i) const {
    return UndoSlotAddr(kLogSlots) + i * kSlotSize;
  }
  PmAddr CkptSlotAddr(std::size_t i) const {
    return RedoSlotAddr(kLogSlots) + i * kSlotSize;
  }

  // Payload address of a slot (header is at the slot address itself).
  static PmAddr SlotData(PmAddr slot) { return slot + kSlotHeaderSize; }

  static constexpr std::uint64_t kFixedHeader =
      AlignUp(64 + sizeof(SwitchRecord), 64);
  static constexpr std::uint64_t kSize =
      kFixedHeader + (2 * kLogSlots + kCkptSlots) * kSlotSize;

 private:
  PmAddr base_ = 0;
};

// FNV-1a, the payload checksum the metadata generator computes near memory.
std::uint64_t Checksum64(std::span<const std::uint8_t> data);

// Serializes a SlotHeader / TxRecord / SwitchRecord into raw bytes (they are
// trivially copyable; helpers keep call sites tidy).
template <typename T>
std::span<const std::uint8_t> AsBytes(const T& value) {
  return {reinterpret_cast<const std::uint8_t*>(&value), sizeof(T)};
}

}  // namespace nearpm

#endif  // SRC_CORE_LOG_LAYOUT_H_
