#include "src/core/log_layout.h"

namespace nearpm {

std::uint64_t Checksum64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  // Never return 0 so "checksum present" is distinguishable from a zeroed
  // slot even for empty payloads.
  return h == 0 ? 1 : h;
}

}  // namespace nearpm
