#include "src/pmlib/pool.h"

namespace nearpm {
namespace {

std::uint64_t ChunkHeaderBytes(const PoolLayoutOptions& opts) {
  return AlignUp((opts.data_size / kPmPageSize) * 64, kPmPageSize);
}

std::uint64_t PageTableBytes(const PoolLayoutOptions& opts) {
  return AlignUp((opts.data_size / kPmPageSize) * 8, kPmPageSize);
}

}  // namespace

std::uint64_t PmPool::Footprint(const PoolLayoutOptions& opts) {
  std::uint64_t bytes = kPmPageSize;  // pool header
  bytes += ChunkHeaderBytes(opts);
  bytes += PageTableBytes(opts);
  bytes += opts.data_size;  // data window
  if (opts.shadow_physical_area) {
    bytes += 2 * opts.data_size;  // physical pages
  }
  bytes += static_cast<std::uint64_t>(opts.threads) * CcArea::kSize;
  return AlignUp(bytes, kPmPageSize);
}

StatusOr<PmPool> PmPool::Create(Runtime& rt, PmAddr base,
                                const PoolLayoutOptions& opts) {
  if (opts.data_size == 0 || opts.data_size % kPmPageSize != 0) {
    return InvalidArgument("data_size must be a nonzero multiple of 4 kB");
  }
  if (base % kPmPageSize != 0) {
    return InvalidArgument("pool base must be page aligned");
  }
  if (opts.threads < 1 || opts.threads > rt.options().max_threads) {
    return InvalidArgument("thread count out of range");
  }
  auto id = rt.RegisterPool(base, Footprint(opts));
  if (!id.ok()) {
    return id.status();
  }
  return PmPool(&rt, base, *id, opts);
}

PmAddr PmPool::data_base() const {
  return base_ + kPmPageSize + ChunkHeaderBytes(opts_) + PageTableBytes(opts_);
}

PmAddr PmPool::phys_base() const { return data_base() + opts_.data_size; }

PmAddr PmPool::page_table() const {
  return base_ + kPmPageSize + ChunkHeaderBytes(opts_);
}

CcArea PmPool::cc_area(ThreadId t) const {
  const PmAddr cc_base = opts_.shadow_physical_area
                             ? phys_base() + 2 * opts_.data_size
                             : data_base() + opts_.data_size;
  return CcArea(cc_base + static_cast<std::uint64_t>(t) * CcArea::kSize);
}

}  // namespace nearpm
