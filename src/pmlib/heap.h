// PersistentHeap: the application-facing facade of pmlib.
//
// Combines a pool, the persistent allocator and one crash-consistency
// provider behind a typed load/store interface. Workloads express failure-
// atomic operations as
//
//   heap.BeginOp(t);
//   auto node = heap.Alloc(t, sizeof(Node));
//   heap.Store(t, parent + offsetof(Node, next), *node);
//   heap.CommitOp(t);
//
// and every store is automatically routed through the provider's
// PrepareStore (undo snapshot / checkpoint / shadow copy / redo redirect).
#ifndef SRC_PMLIB_HEAP_H_
#define SRC_PMLIB_HEAP_H_

#include <cstdint>
#include <memory>
#include <source_location>
#include <span>
#include <vector>

#include "src/pmlib/alloc.h"
#include "src/pmlib/ckpt_provider.h"
#include "src/pmlib/pool.h"
#include "src/pmlib/provider.h"
#include "src/pmlib/redo_provider.h"
#include "src/pmlib/shadow_provider.h"
#include "src/pmlib/undo_provider.h"

namespace nearpm {

// Rounds every range to cacheline granularity, sorts, and coalesces
// overlapping or adjacent entries. Operations that touch the same line many
// times (field-by-field stores into one struct) otherwise hand the provider
// one dirty entry per store, and the commit-time persist loop re-flushes the
// same line repeatedly -- exactly the redundancy NPM005 flags.
std::vector<AddrRange> MergeDirtyRanges(std::span<const AddrRange> dirty);

struct HeapOptions {
  Mechanism mechanism = Mechanism::kLogging;
  std::uint64_t data_size = 4ull << 20;
  int threads = 1;
  int ckpt_epoch_ops = 8;  // checkpointing interval (ops per epoch)
};

// Hands out page-aligned pool placements within the PM space.
class PoolArena {
 public:
  explicit PoolArena(PmAddr base = 0) : next_(AlignUp(base, kPmPageSize)) {}
  PmAddr Take(std::uint64_t bytes) {
    const PmAddr at = next_;
    next_ = AlignUp(next_ + bytes, kPmPageSize);
    return at;
  }
  PmAddr next() const { return next_; }

 private:
  PmAddr next_;
};

class PersistentHeap {
 public:
  static StatusOr<std::unique_ptr<PersistentHeap>> Create(
      Runtime& rt, PoolArena& arena, const HeapOptions& options);

  Runtime& rt() const { return pool_.rt(); }
  const PmPool& pool() const { return pool_; }
  Mechanism mechanism() const { return provider_->mechanism(); }
  ConsistencyProvider& provider() { return *provider_; }
  PmAllocator& allocator() { return alloc_; }

  // Fixed root page of the data window (vpage 0): workloads keep their
  // entry-point struct here.
  PmAddr root() const { return pool_.data_base(); }

  // ---- Failure-atomic operations -------------------------------------------
  Status BeginOp(ThreadId t);
  Status CommitOp(ThreadId t);

  // ---- Data access (data-window addresses) ----------------------------------
  Status Write(ThreadId t, PmAddr addr, std::span<const std::uint8_t> data,
               const std::source_location& loc = std::source_location::current());
  Status Read(ThreadId t, PmAddr addr, std::span<std::uint8_t> out,
              const std::source_location& loc = std::source_location::current());

  template <typename T>
  StatusOr<T> Load(
      ThreadId t, PmAddr addr,
      const std::source_location& loc = std::source_location::current()) {
    T value{};
    NEARPM_RETURN_IF_ERROR(Read(
        t, addr, {reinterpret_cast<std::uint8_t*>(&value), sizeof(T)}, loc));
    return value;
  }
  template <typename T>
  Status Store(
      ThreadId t, PmAddr addr, const T& value,
      const std::source_location& loc = std::source_location::current()) {
    return Write(t, addr, AsBytes(value), loc);
  }

  // ---- Allocation (inside an operation) -------------------------------------
  StatusOr<PmAddr> Alloc(ThreadId t, std::uint64_t size);
  // Deferred until the mechanism's next durable point.
  Status Free(ThreadId t, PmAddr addr, std::uint64_t size);

  // ---- Recovery --------------------------------------------------------------
  // Simulates process death: volatile state is dropped (PM state untouched).
  void DropVolatile();
  // Software recovery after Runtime::InjectCrash: mechanism recovery, then
  // allocator/page-table rebuild.
  Status Recover();

 private:
  PersistentHeap(PmPool pool, const HeapOptions& options);

  struct ThreadState {
    bool in_op = false;
    std::vector<AddrRange> dirty;                       // translated ranges
    std::vector<std::pair<PmAddr, std::uint64_t>> deferred_frees;
  };

  PmPool pool_;
  HeapOptions options_;
  PmAllocator alloc_;
  std::unique_ptr<ConsistencyProvider> provider_;
  std::vector<ThreadState> threads_;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_HEAP_H_
