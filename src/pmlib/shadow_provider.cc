#include "src/pmlib/shadow_provider.h"

#include <cassert>

#include "src/core/cc_stats.h"

namespace nearpm {

ShadowPagingProvider::ShadowPagingProvider(const PmPool* pool)
    : pool_(pool),
      threads_(static_cast<size_t>(pool->layout().threads)) {
  assert(pool_->layout().shadow_physical_area &&
         "pool must reserve the physical page area for shadow paging");
}

Status ShadowPagingProvider::Format(ThreadId t) {
  Runtime& rt = pool_->rt();
  const std::uint64_t pages = NumPages();
  pte_cache_.assign(pages, 0);
  page_used_.assign(pool_->phys_pages(), false);
  for (std::uint64_t v = 0; v < pages; ++v) {
    rt.Store<std::uint64_t>(t, PteAddr(v), v);
    pte_cache_[v] = v;
    page_used_[v] = true;
  }
  rt.Persist(t, PteAddr(0), pages * 8);
  // Disarm the switch records of every thread.
  for (ThreadId th = 0; th < threads_.size(); ++th) {
    const PmAddr rec = pool_->cc_area(th).SwitchRecordAddr();
    rt.Store<std::uint64_t>(t, rec, 0);
    rt.Persist(t, rec, 8);
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> ShadowPagingProvider::AllocPhysPage() {
  for (std::uint64_t p = 0; p < page_used_.size(); ++p) {
    if (!page_used_[p]) {
      page_used_[p] = true;
      return p;
    }
  }
  return ResourceExhausted("no free physical pages for shadowing");
}

Status ShadowPagingProvider::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.active) {
    return FailedPrecondition("operation already open on this thread");
  }
  ts.active = true;
  ts.shadowed.clear();
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kOpBegin,
                     .tid = t, .ts = pool_->rt().Now(t));
  return Status::Ok();
}

StatusOr<PmAddr> ShadowPagingProvider::PrepareStore(ThreadId t, PmAddr addr,
                                                    std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("PrepareStore outside an operation");
  }
  const std::uint64_t vpage = (addr - pool_->data_base()) / kPmPageSize;
  const std::uint64_t vlast = (addr + size - 1 - pool_->data_base()) / kPmPageSize;
  Runtime& rt = pool_->rt();
  for (std::uint64_t v = vpage; v <= vlast; ++v) {
    if (ts.shadowed.contains(v)) {
      continue;
    }
    if (ts.shadowed.size() >= kMaxSwitchEntries) {
      return ResourceExhausted("too many pages shadowed in one operation");
    }
    Runtime::CcRegion cc(rt, t);
    const std::uint64_t old_ppage = pte_cache_[v];
    auto new_ppage = AllocPhysPage();
    if (!new_ppage.ok()) {
      return new_ppage.status();
    }
    NEARPM_RETURN_IF_ERROR(rt.ShadowCpy(pool_->id(), t, PhysAddr(old_ppage),
                                        PhysAddr(*new_ppage), kPmPageSize));
    ts.shadowed.emplace(v, std::make_pair(old_ppage, *new_ppage));
  }
  // Redirect the store into the shadow page. A store never spans pages
  // (allocator blocks are page-bounded), so translating by the first page is
  // exact; assert in case a caller violates that.
  assert(vpage == vlast);
  const std::uint64_t offset = (addr - pool_->data_base()) % kPmPageSize;
  return PhysAddr(ts.shadowed.at(vpage).second) + offset;
}

StatusOr<PmAddr> ShadowPagingProvider::TranslateLoad(ThreadId t, PmAddr addr,
                                                     std::uint64_t size) {
  const std::uint64_t vpage = (addr - pool_->data_base()) / kPmPageSize;
  assert(vpage == (addr + size - 1 - pool_->data_base()) / kPmPageSize);
  (void)size;
  const std::uint64_t offset = (addr - pool_->data_base()) % kPmPageSize;
  const ThreadState& ts = threads_[t];
  if (ts.active) {
    auto it = ts.shadowed.find(vpage);
    if (it != ts.shadowed.end()) {
      return PhysAddr(it->second.second) + offset;  // own uncommitted writes
    }
  }
  return PhysAddr(pte_cache_[vpage]) + offset;
}

StatusOr<bool> ShadowPagingProvider::CommitOp(ThreadId t,
                                              std::span<const AddrRange> dirty) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("CommitOp outside an operation");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  if (ts.shadowed.empty()) {
    ts.active = false;
    return true;
  }
  // 1. Persist the shadow pages the operation wrote.
  rt.stats().SetCategory(t, CcCategory::kOrdering);
  for (const AddrRange& range : dirty) {
    rt.Persist(t, range.begin, range.size());
  }
  // 2. Arm the switch record (atomic multi-page commit point).
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  SwitchRecord rec;
  rec.count = ts.shadowed.size();
  std::size_t i = 0;
  for (const auto& [vpage, pages] : ts.shadowed) {
    rec.entries[i].vpage = vpage;
    rec.entries[i].new_ppage = pages.second;
    ++i;
  }
  rec.checksum = Checksum64(
      {reinterpret_cast<const std::uint8_t*>(rec.entries), rec.count * 16});
  rec.magic = kSwitchMagic;
  const PmAddr rec_addr = pool_->cc_area(t).SwitchRecordAddr();
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  // 3. Switch the page-table entries ("switch page" in the paper).
  for (const auto& [vpage, pages] : ts.shadowed) {
    rt.Store<std::uint64_t>(t, PteAddr(vpage), pages.second);
    rt.Persist(t, PteAddr(vpage), 8);
    rt.Compute(t, rt.options().hw.cost.cpu_page_switch_ns);
    pte_cache_[vpage] = pages.second;
  }
  // 4. Disarm and recycle the old pages.
  rt.Store<std::uint64_t>(t, rec_addr, 0);
  rt.Persist(t, rec_addr, 8);
  for (const auto& [vpage, pages] : ts.shadowed) {
    page_used_[pages.first] = false;
  }
  ts.shadowed.clear();
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpCommit, .tid = t,
                     .ts = rt.Now(t), .arg0 = 1);
  ts.active = false;
  return true;
}

Status ShadowPagingProvider::RecoverThread(ThreadId t) {
  Runtime& rt = pool_->rt();
  const PmAddr rec_addr = pool_->cc_area(t).SwitchRecordAddr();
  const SwitchRecord rec = rt.Load<SwitchRecord>(t, rec_addr);
  // skip_recovery_replay: fault injection -- disarm without rolling forward.
  if (rec.magic == kSwitchMagic && rec.count <= kMaxSwitchEntries &&
      Checksum64({reinterpret_cast<const std::uint8_t*>(rec.entries),
                  rec.count * 16}) == rec.checksum &&
      !rt.options().skip_recovery_replay) {
    // Roll the switch forward: shadow pages were persisted before arming.
    for (std::uint64_t i = 0; i < rec.count; ++i) {
      rt.Store<std::uint64_t>(t, PteAddr(rec.entries[i].vpage),
                              rec.entries[i].new_ppage);
      rt.Persist(t, PteAddr(rec.entries[i].vpage), 8);
    }
    ++rolled_forward_;
  }
  rt.Store<std::uint64_t>(t, rec_addr, 0);
  rt.Persist(t, rec_addr, 8);
  return Status::Ok();
}

Status ShadowPagingProvider::Recover() {
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kMechRecover,
                     .ts = pool_->rt().Now(0));
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    NEARPM_RETURN_IF_ERROR(RecoverThread(t));
    threads_[t] = ThreadState{};
  }
  RebuildFreeBitmap();
  return Status::Ok();
}

void ShadowPagingProvider::RebuildFreeBitmap() {
  Runtime& rt = pool_->rt();
  const std::uint64_t pages = NumPages();
  pte_cache_.assign(pages, 0);
  page_used_.assign(pool_->phys_pages(), false);
  for (std::uint64_t v = 0; v < pages; ++v) {
    const auto ppage = rt.Load<std::uint64_t>(0, PteAddr(v));
    pte_cache_[v] = ppage;
    page_used_[ppage] = true;
  }
}

void ShadowPagingProvider::DropVolatile() {
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
  // pte_cache_ / page_used_ are rebuilt by Recover.
}

}  // namespace nearpm
