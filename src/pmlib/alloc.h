// Persistent size-class block allocator.
//
// The data window is divided into 4 kB chunks. Each chunk is assigned to one
// size class (64 B .. 4096 B, powers of two) on first use and carries a
// persistent header (one cacheline in the pool's chunk-header array): magic,
// class size, and an occupancy bitmap. Blocks never cross a page boundary,
// which the shadow-paging provider relies on for per-page translation.
//
// Crash discipline: a bitmap update is persisted before the block is handed
// out (allocation) and the caller defers frees to the mechanism's durable
// point (see PersistentHeap). A crash can therefore leak blocks whose
// transaction never committed -- the same policy PMDK implements with
// redo-logged allocator metadata; leaks are reclaimable by an offline scan
// and are bounded by one transaction's allocations.
#ifndef SRC_PMLIB_ALLOC_H_
#define SRC_PMLIB_ALLOC_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/pmlib/pool.h"

namespace nearpm {

inline constexpr std::uint64_t kChunkMagic = 0x4e50414c4c4f4331ULL;
inline constexpr std::uint64_t kMinBlock = 64;
inline constexpr std::uint64_t kMaxBlock = kPmPageSize;
inline constexpr int kNumClasses = 7;  // 64,128,256,512,1024,2048,4096

struct alignas(64) ChunkHeader {
  std::uint64_t magic = 0;       // kChunkMagic once assigned
  std::uint64_t class_size = 0;  // block size in bytes
  std::uint64_t bitmap = 0;      // bit i set = block i allocated
  std::uint8_t pad[40] = {};
};
static_assert(sizeof(ChunkHeader) == 64);

class PmAllocator {
 public:
  explicit PmAllocator(const PmPool* pool);

  // Zeroes all chunk headers (fresh pool).
  void Format(ThreadId t);
  // Rebuilds the volatile free index from the persistent headers (recovery).
  void RebuildVolatile();

  // Returns a block address inside the data window. Charged to the
  // allocation category of the crash-consistency accounting.
  StatusOr<PmAddr> Alloc(ThreadId t, std::uint64_t size);
  Status Free(ThreadId t, PmAddr addr, std::uint64_t size);

  std::uint64_t allocated_blocks() const { return allocated_; }
  static int ClassIndex(std::uint64_t size);
  static std::uint64_t ClassSize(int index) { return kMinBlock << index; }

 private:
  PmAddr HeaderAddr(std::uint64_t chunk) const;
  ChunkHeader LoadHeader(ThreadId t, std::uint64_t chunk) const;
  void StoreHeader(ThreadId t, std::uint64_t chunk, const ChunkHeader& h);

  const PmPool* pool_;
  // Volatile index: chunks with free blocks, per class; plus the next
  // never-assigned chunk.
  std::vector<std::vector<std::uint64_t>> free_chunks_;
  std::uint64_t next_fresh_chunk_ = 0;
  std::uint64_t allocated_ = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_ALLOC_H_
