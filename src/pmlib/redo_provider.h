// Redo-logging provider (Figure 14 c/d).
//
// Stores inside an operation are redirected into redo slots (intention
// records written by the CPU, as in PMDK); loads see the thread's own
// uncommitted writes through the redirect map. Commit persists the log,
// marks the transaction COMMITTED, and then applies every slot to its target
// near memory (NearPM_applylog) -- the data-movement half redo logging
// offloads. Recovery re-applies the log of a COMMITTED transaction
// (idempotent) and discards the log of an ACTIVE one.
#ifndef SRC_PMLIB_REDO_PROVIDER_H_
#define SRC_PMLIB_REDO_PROVIDER_H_

#include <cstdint>
#include <vector>

#include "src/pmlib/pool.h"
#include "src/pmlib/provider.h"

namespace nearpm {

class RedoLogProvider : public ConsistencyProvider {
 public:
  explicit RedoLogProvider(const PmPool* pool);

  Mechanism mechanism() const override { return Mechanism::kRedoLogging; }
  Status BeginOp(ThreadId t) override;
  StatusOr<PmAddr> PrepareStore(ThreadId t, PmAddr addr,
                                std::uint64_t size) override;
  StatusOr<PmAddr> TranslateLoad(ThreadId t, PmAddr addr,
                                 std::uint64_t size) override;
  StatusOr<bool> CommitOp(ThreadId t,
                          std::span<const AddrRange> dirty) override;
  Status Recover() override;
  void DropVolatile() override;

  std::uint64_t reapplied() const { return reapplied_; }

 private:
  struct Redirect {
    AddrRange target;  // data-window range the slot will apply to
    PmAddr slot = 0;
  };
  struct ThreadState {
    bool active = false;
    std::uint64_t tx_id = 0;
    std::vector<Redirect> redirects;
  };

  Status RecoverThread(ThreadId t);

  const PmPool* pool_;
  std::vector<ThreadState> threads_;
  std::uint64_t reapplied_ = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_REDO_PROVIDER_H_
