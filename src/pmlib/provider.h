// Crash-consistency mechanism interface.
//
// A provider turns the Table 2 primitives into one of the mechanisms of
// Table 1. PersistentHeap routes every application store through
// PrepareStore (which performs the mechanism's pre-update work and possibly
// redirects the write) and every load through TranslateLoad; CommitOp closes
// the operation. Recover() is the software half of failure recovery, run
// after the hardware recovery of Runtime::InjectCrash.
#ifndef SRC_PMLIB_PROVIDER_H_
#define SRC_PMLIB_PROVIDER_H_

#include <cstdint>
#include <span>

#include "src/common/status.h"
#include "src/common/types.h"

namespace nearpm {

enum class Mechanism : std::uint8_t {
  kLogging,        // undo logging (the workloads' original mechanism)
  kRedoLogging,    // redo logging variant
  kCheckpointing,  // page-granularity, epoch-batched
  kShadowPaging,   // page-granularity copy-on-write with atomic switch
};

const char* MechanismName(Mechanism m);

class ConsistencyProvider {
 public:
  virtual ~ConsistencyProvider() = default;

  virtual Mechanism mechanism() const = 0;

  // Starts one failure-atomic operation on thread `t`.
  virtual Status BeginOp(ThreadId t) = 0;

  // Declares that [addr, addr+size) (data-window address) is about to be
  // overwritten. Performs the mechanism's pre-update work (undo log /
  // checkpoint / shadow copy / redo redirect) and returns the address the
  // store must actually be issued to.
  virtual StatusOr<PmAddr> PrepareStore(ThreadId t, PmAddr addr,
                                        std::uint64_t size) = 0;

  // Translates a load of [addr, addr+size). Identity for in-place
  // mechanisms; redirected for redo logging (own uncommitted writes) and
  // shadow paging (page table).
  virtual StatusOr<PmAddr> TranslateLoad(ThreadId t, PmAddr addr,
                                         std::uint64_t size) = 0;

  // Ends the operation. `dirty` lists the (translated) ranges written since
  // BeginOp. Returns true when the mechanism reached a durable point --
  // per-operation for logging and shadow paging, per-epoch for
  // checkpointing -- at which deferred frees may be executed.
  virtual StatusOr<bool> CommitOp(ThreadId t,
                                  std::span<const AddrRange> dirty) = 0;

  // Software recovery after a failure: restores the data window to the last
  // durable point and clears mechanism state. Must be idempotent.
  virtual Status Recover() = 0;

  // Forgets volatile state without touching PM (used by tests to simulate
  // the process dying with the machine).
  virtual void DropVolatile() = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_PROVIDER_H_
