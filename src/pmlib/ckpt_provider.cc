#include "src/pmlib/ckpt_provider.h"

#include <algorithm>

#include "src/core/cc_stats.h"

namespace nearpm {

CheckpointProvider::CheckpointProvider(const PmPool* pool, int epoch_ops)
    : pool_(pool),
      epoch_ops_(epoch_ops),
      threads_(static_cast<size_t>(pool->layout().threads)) {}

std::uint64_t CheckpointProvider::PageOf(PmAddr addr) const {
  return (addr - pool_->data_base()) / kPmPageSize;
}

Status CheckpointProvider::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.active) {
    return FailedPrecondition("operation already open on this thread");
  }
  ts.active = true;
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kOpBegin,
                     .tid = t, .ts = pool_->rt().Now(t), .seq = ts.epoch);
  return Status::Ok();
}

StatusOr<PmAddr> CheckpointProvider::PrepareStore(ThreadId t, PmAddr addr,
                                                  std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("PrepareStore outside an operation");
  }
  Runtime& rt = pool_->rt();
  const std::uint64_t first = PageOf(addr);
  const std::uint64_t last = PageOf(addr + size - 1);
  for (std::uint64_t page = first; page <= last; ++page) {
    if (ts.pages_this_epoch.contains(page)) {
      continue;
    }
    if (ts.used_slots >= kCkptSlots) {
      // CommitOp closes the epoch before slots can run out; hitting this
      // means a single operation touched more pages than the slot margin.
      return ResourceExhausted("checkpoint slots exhausted within one op");
    }
    Runtime::CcRegion cc(rt, t);
    const PmAddr page_addr = pool_->data_base() + page * kPmPageSize;
    const PmAddr slot = pool_->cc_area(t).CkptSlotAddr(ts.used_slots);
    auto done = rt.CkpointCreate(pool_->id(), t, ts.epoch, page_addr,
                                 kPmPageSize, slot);
    if (!done.ok()) {
      return done.status();
    }
    ts.snapshot_done = std::max(ts.snapshot_done, *done);
    ++ts.used_slots;
    ts.pages_this_epoch.insert(page);
  }
  return addr;
}

StatusOr<PmAddr> CheckpointProvider::TranslateLoad(ThreadId /*t*/, PmAddr addr,
                                                   std::uint64_t /*size*/) {
  return addr;
}

Status CheckpointProvider::CloseEpoch(ThreadId t) {
  ThreadState& ts = threads_[t];
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  // 1. Persist every page touched in the epoch.
  rt.stats().SetCategory(t, CcCategory::kOrdering);
  for (std::uint64_t page : ts.pages_this_epoch) {
    rt.Persist(t, pool_->data_base() + page * kPmPageSize, kPmPageSize);
  }
  // 2. Advance the committed epoch.
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  const PmAddr rec_addr = pool_->cc_area(t).TxRecordAddr();
  TxRecord rec = rt.Load<TxRecord>(t, rec_addr);
  rec.committed_epoch = ts.epoch;
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  // 3. Invalidate the checkpoint slots.
  std::vector<PmAddr> slots;
  slots.reserve(ts.used_slots);
  for (std::size_t i = 0; i < ts.used_slots; ++i) {
    slots.push_back(pool_->cc_area(t).CkptSlotAddr(i));
  }
  if (!slots.empty()) {
    NEARPM_RETURN_IF_ERROR(rt.CommitLog(pool_->id(), t, slots));
  }
  ++ts.epoch;
  ts.ops_in_epoch = 0;
  ts.used_slots = 0;
  ts.pages_this_epoch.clear();
  ++epochs_closed_;
  return Status::Ok();
}

StatusOr<bool> CheckpointProvider::CommitOp(ThreadId t,
                                            std::span<const AddrRange> dirty) {
  (void)dirty;  // pages persist at epoch close, not per operation
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("CommitOp outside an operation");
  }
  // Confirm this operation's snapshots: the checkpoint manager exposes no
  // later commit point to defer the confirmation to (unlike a transaction's
  // log deletion), so the operation closes once its pre-images are in PM.
  Runtime& rt = pool_->rt();
  {
    Runtime::CcRegion cc(rt, t);
    rt.stats().SetCategory(t, CcCategory::kOrdering);
    rt.WaitUntil(t, ts.snapshot_done);
  }
  // Close at the interval, or early under slot pressure (epoch boundaries
  // only ever fall between operations so each op stays failure-atomic).
  // arg0 records whether this commit reaches a durable point (epoch close);
  // until then the op's pages live only in CPU caches.
  constexpr std::size_t kSlotMargin = 16;
  const bool will_close = ts.ops_in_epoch + 1 >= epoch_ops_ ||
                          ts.used_slots + kSlotMargin >= kCkptSlots;
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpCommit, .tid = t,
                     .ts = rt.Now(t), .seq = ts.epoch,
                     .arg0 = will_close ? 1 : 0);
  ts.active = false;
  ++ts.ops_in_epoch;
  if (will_close) {
    NEARPM_RETURN_IF_ERROR(CloseEpoch(t));
    return true;
  }
  return false;
}

Status CheckpointProvider::RecoverThread(ThreadId t) {
  Runtime& rt = pool_->rt();
  const CcArea area = pool_->cc_area(t);
  const TxRecord rec = rt.Load<TxRecord>(t, area.TxRecordAddr());
  const std::uint64_t open_epoch = rec.committed_epoch + 1;

  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < kCkptSlots; ++i) {
    const PmAddr slot = area.CkptSlotAddr(i);
    const SlotHeader header = rt.Load<SlotHeader>(t, slot);
    if (header.magic != kCkptMagic) {
      continue;
    }
    bool valid = header.size > 0 && header.size <= kMaxLogData;
    if (valid) {
      payload.resize(header.size);
      rt.Read(t, CcArea::SlotData(slot), payload);
      valid = Checksum64(payload) == header.checksum;
    }
    // Only pre-images of the open (uncommitted) epoch roll back. A slot with
    // an invalid checksum means its page was never modified afterwards (the
    // copy is ordered before the first update), so skipping it is safe.
    // skip_recovery_replay: fault injection -- scrub without restoring.
    if (valid && header.tag == open_epoch &&
        !rt.options().skip_recovery_replay) {
      rt.Write(t, header.target, payload);
      rt.Persist(t, header.target, header.size);
      ++pages_restored_;
    }
    const SlotHeader zero;
    rt.Store(t, slot, zero);
    rt.Persist(t, slot, sizeof(zero));
  }
  return Status::Ok();
}

Status CheckpointProvider::Recover() {
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kMechRecover,
                     .ts = pool_->rt().Now(0));
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    NEARPM_RETURN_IF_ERROR(RecoverThread(t));
    const TxRecord rec =
        pool_->rt().Load<TxRecord>(t, pool_->cc_area(t).TxRecordAddr());
    ThreadState fresh;
    fresh.epoch = rec.committed_epoch + 1;
    threads_[t] = fresh;
  }
  return Status::Ok();
}

void CheckpointProvider::DropVolatile() {
  for (ThreadState& ts : threads_) {
    const std::uint64_t epoch = ts.epoch;
    ts = ThreadState{};
    ts.epoch = epoch;
  }
}

}  // namespace nearpm
