// Shadow-paging provider (Figure 2c, Figure 14 g/h).
//
// The pool's data window is virtual: a persistent page table maps each
// window page to a physical page in the pool's page area. The first store to
// a page within an operation allocates a fresh physical page, copies the
// current contents near memory (NearPM_shadowcpy), and redirects the rest of
// the operation's accesses to the shadow. Commit persists the shadow pages
// and switches the page-table entries atomically through a small persistent
// switch record (redo on PTEs), then recycles the old pages.
//
// Recovery: an armed, checksummed switch record rolls forward (re-applies
// the PTE flips); otherwise the table still points at the old pages and the
// operation never happened. The free-page bitmap is volatile and is rebuilt
// by scanning the page table.
#ifndef SRC_PMLIB_SHADOW_PROVIDER_H_
#define SRC_PMLIB_SHADOW_PROVIDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/pmlib/pool.h"
#include "src/pmlib/provider.h"

namespace nearpm {

class ShadowPagingProvider : public ConsistencyProvider {
 public:
  explicit ShadowPagingProvider(const PmPool* pool);

  // Writes the identity page table of a fresh pool. Call once after
  // PmPool::Create (not after recovery).
  Status Format(ThreadId t);

  Mechanism mechanism() const override { return Mechanism::kShadowPaging; }
  Status BeginOp(ThreadId t) override;
  StatusOr<PmAddr> PrepareStore(ThreadId t, PmAddr addr,
                                std::uint64_t size) override;
  StatusOr<PmAddr> TranslateLoad(ThreadId t, PmAddr addr,
                                 std::uint64_t size) override;
  StatusOr<bool> CommitOp(ThreadId t,
                          std::span<const AddrRange> dirty) override;
  Status Recover() override;
  void DropVolatile() override;

  std::uint64_t switches_rolled_forward() const { return rolled_forward_; }

 private:
  struct ThreadState {
    bool active = false;
    // vpage -> (old ppage, new ppage) for pages shadowed in this op.
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        shadowed;
  };

  std::uint64_t NumPages() const { return pool_->data_size() / kPmPageSize; }
  PmAddr PteAddr(std::uint64_t vpage) const {
    return pool_->page_table() + vpage * 8;
  }
  PmAddr PhysAddr(std::uint64_t ppage) const {
    return pool_->phys_base() + ppage * kPmPageSize;
  }
  StatusOr<std::uint64_t> AllocPhysPage();
  void RebuildFreeBitmap();
  Status RecoverThread(ThreadId t);

  const PmPool* pool_;
  std::vector<ThreadState> threads_;
  //

  // Volatile caches of persistent state.
  std::vector<std::uint64_t> pte_cache_;   // committed vpage -> ppage
  std::vector<bool> page_used_;
  std::uint64_t rolled_forward_ = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_SHADOW_PROVIDER_H_
