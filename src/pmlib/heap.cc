#include "src/pmlib/heap.h"

#include "src/core/cc_stats.h"

namespace nearpm {

PersistentHeap::PersistentHeap(PmPool pool, const HeapOptions& options)
    : pool_(pool),
      options_(options),
      alloc_(&pool_),
      threads_(static_cast<size_t>(options.threads)) {
  switch (options.mechanism) {
    case Mechanism::kLogging:
      provider_ = std::make_unique<UndoLogProvider>(&pool_);
      break;
    case Mechanism::kRedoLogging:
      provider_ = std::make_unique<RedoLogProvider>(&pool_);
      break;
    case Mechanism::kCheckpointing:
      provider_ =
          std::make_unique<CheckpointProvider>(&pool_, options.ckpt_epoch_ops);
      break;
    case Mechanism::kShadowPaging:
      provider_ = std::make_unique<ShadowPagingProvider>(&pool_);
      break;
  }
}

StatusOr<std::unique_ptr<PersistentHeap>> PersistentHeap::Create(
    Runtime& rt, PoolArena& arena, const HeapOptions& options) {
  PoolLayoutOptions layout;
  layout.data_size = options.data_size;
  layout.threads = options.threads;
  layout.shadow_physical_area = options.mechanism == Mechanism::kShadowPaging;
  const PmAddr base = arena.Take(PmPool::Footprint(layout));
  auto pool = PmPool::Create(rt, base, layout);
  if (!pool.ok()) {
    return pool.status();
  }
  auto heap =
      std::unique_ptr<PersistentHeap>(new PersistentHeap(*pool, options));
  heap->alloc_.Format(0);
  if (options.mechanism == Mechanism::kShadowPaging) {
    NEARPM_RETURN_IF_ERROR(
        static_cast<ShadowPagingProvider*>(heap->provider_.get())->Format(0));
  }
  return heap;
}

Status PersistentHeap::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.in_op) {
    return FailedPrecondition("operation already open");
  }
  NEARPM_RETURN_IF_ERROR(provider_->BeginOp(t));
  ts.in_op = true;
  ts.dirty.clear();
  return Status::Ok();
}

Status PersistentHeap::CommitOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (!ts.in_op) {
    return FailedPrecondition("no open operation");
  }
  auto durable = provider_->CommitOp(t, ts.dirty);
  if (!durable.ok()) {
    return durable.status();
  }
  ts.in_op = false;
  ts.dirty.clear();
  if (*durable && !ts.deferred_frees.empty()) {
    Runtime::CcRegion cc(pool_.rt(), t);
    for (const auto& [addr, size] : ts.deferred_frees) {
      NEARPM_RETURN_IF_ERROR(alloc_.Free(t, addr, size));
    }
    ts.deferred_frees.clear();
  }
  return Status::Ok();
}

Status PersistentHeap::Write(ThreadId t, PmAddr addr,
                             std::span<const std::uint8_t> data) {
  ThreadState& ts = threads_[t];
  Runtime& rt = pool_.rt();
  PmAddr target = addr;
  if (ts.in_op) {
    auto prepared = provider_->PrepareStore(t, addr, data.size());
    if (!prepared.ok()) {
      return prepared.status();
    }
    target = *prepared;
    ts.dirty.push_back(AddrRange{target, target + data.size()});
  }
  rt.Write(t, target, data);
  return Status::Ok();
}

Status PersistentHeap::Read(ThreadId t, PmAddr addr,
                            std::span<std::uint8_t> out) {
  auto translated = provider_->TranslateLoad(t, addr, out.size());
  if (!translated.ok()) {
    return translated.status();
  }
  pool_.rt().Read(t, *translated, out);
  return Status::Ok();
}

StatusOr<PmAddr> PersistentHeap::Alloc(ThreadId t, std::uint64_t size) {
  Runtime::CcRegion cc(pool_.rt(), t);
  return alloc_.Alloc(t, size);
}

Status PersistentHeap::Free(ThreadId t, PmAddr addr, std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.in_op) {
    Runtime::CcRegion cc(pool_.rt(), t);
    return alloc_.Free(t, addr, size);
  }
  // Deferred: reusing the block before the operation's durable point would
  // let a rollback resurrect a dangling reference into reused memory.
  ts.deferred_frees.emplace_back(addr, size);
  return Status::Ok();
}

void PersistentHeap::DropVolatile() {
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
  provider_->DropVolatile();
}

Status PersistentHeap::Recover() {
  NEARPM_RETURN_IF_ERROR(provider_->Recover());
  alloc_.RebuildVolatile();
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
  return Status::Ok();
}

}  // namespace nearpm
