#include "src/pmlib/heap.h"

#include <algorithm>

#include "src/analyze/sanitizer.h"
#include "src/core/cc_stats.h"

namespace nearpm {

std::vector<AddrRange> MergeDirtyRanges(std::span<const AddrRange> dirty) {
  std::vector<AddrRange> merged;
  merged.reserve(dirty.size());
  for (const AddrRange& r : dirty) {
    if (r.empty()) {
      continue;
    }
    merged.push_back(AddrRange{AlignDown(r.begin, kCacheLineSize),
                               AlignUp(r.end, kCacheLineSize)});
  }
  std::sort(merged.begin(), merged.end(),
            [](const AddrRange& a, const AddrRange& b) {
              return a.begin < b.begin;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (out > 0 && merged[i].begin <= merged[out - 1].end) {
      merged[out - 1].end = std::max(merged[out - 1].end, merged[i].end);
    } else {
      merged[out++] = merged[i];
    }
  }
  merged.resize(out);
  return merged;
}

PersistentHeap::PersistentHeap(PmPool pool, const HeapOptions& options)
    : pool_(pool),
      options_(options),
      alloc_(&pool_),
      threads_(static_cast<size_t>(options.threads)) {
  switch (options.mechanism) {
    case Mechanism::kLogging:
      provider_ = std::make_unique<UndoLogProvider>(&pool_);
      break;
    case Mechanism::kRedoLogging:
      provider_ = std::make_unique<RedoLogProvider>(&pool_);
      break;
    case Mechanism::kCheckpointing:
      provider_ =
          std::make_unique<CheckpointProvider>(&pool_, options.ckpt_epoch_ops);
      break;
    case Mechanism::kShadowPaging:
      provider_ = std::make_unique<ShadowPagingProvider>(&pool_);
      break;
  }
}

StatusOr<std::unique_ptr<PersistentHeap>> PersistentHeap::Create(
    Runtime& rt, PoolArena& arena, const HeapOptions& options) {
  PoolLayoutOptions layout;
  layout.data_size = options.data_size;
  layout.threads = options.threads;
  layout.shadow_physical_area = options.mechanism == Mechanism::kShadowPaging;
  const PmAddr base = arena.Take(PmPool::Footprint(layout));
  auto pool = PmPool::Create(rt, base, layout);
  if (!pool.ok()) {
    return pool.status();
  }
  auto heap =
      std::unique_ptr<PersistentHeap>(new PersistentHeap(*pool, options));
  heap->alloc_.Format(0);
  if (options.mechanism == Mechanism::kShadowPaging) {
    NEARPM_RETURN_IF_ERROR(
        static_cast<ShadowPagingProvider*>(heap->provider_.get())->Format(0));
  }
  return heap;
}

Status PersistentHeap::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.in_op) {
    return FailedPrecondition("operation already open");
  }
  NEARPM_SAN_HOOK(pool_.rt().sanitizer(), OnOpBegin(t));
  NEARPM_RETURN_IF_ERROR(provider_->BeginOp(t));
  ts.in_op = true;
  ts.dirty.clear();
  return Status::Ok();
}

Status PersistentHeap::CommitOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (!ts.in_op) {
    return FailedPrecondition("no open operation");
  }
  const std::vector<AddrRange> merged = MergeDirtyRanges(ts.dirty);
  auto durable = provider_->CommitOp(t, merged);
  if (!durable.ok()) {
    return durable.status();
  }
  NEARPM_SAN_HOOK(pool_.rt().sanitizer(),
                  OnOpEnd(t, *durable, pool_.rt().Now(t), {}));
  ts.in_op = false;
  ts.dirty.clear();
  if (*durable && !ts.deferred_frees.empty()) {
    Runtime::CcRegion cc(pool_.rt(), t);
    for (const auto& [addr, size] : ts.deferred_frees) {
      NEARPM_RETURN_IF_ERROR(alloc_.Free(t, addr, size));
    }
    ts.deferred_frees.clear();
  }
  return Status::Ok();
}

Status PersistentHeap::Write(ThreadId t, PmAddr addr,
                             std::span<const std::uint8_t> data,
                             const std::source_location& loc) {
  ThreadState& ts = threads_[t];
  Runtime& rt = pool_.rt();
  PmAddr target = addr;
  if (ts.in_op) {
    auto prepared = provider_->PrepareStore(t, addr, data.size());
    if (!prepared.ok()) {
      return prepared.status();
    }
    target = *prepared;
    ts.dirty.push_back(AddrRange{target, target + data.size()});
  }
  rt.Write(t, target, data, loc);
  return Status::Ok();
}

Status PersistentHeap::Read(ThreadId t, PmAddr addr,
                            std::span<std::uint8_t> out,
                            const std::source_location& loc) {
  auto translated = provider_->TranslateLoad(t, addr, out.size());
  if (!translated.ok()) {
    return translated.status();
  }
  pool_.rt().Read(t, *translated, out, loc);
  return Status::Ok();
}

StatusOr<PmAddr> PersistentHeap::Alloc(ThreadId t, std::uint64_t size) {
  Runtime::CcRegion cc(pool_.rt(), t);
  return alloc_.Alloc(t, size);
}

Status PersistentHeap::Free(ThreadId t, PmAddr addr, std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.in_op) {
    Runtime::CcRegion cc(pool_.rt(), t);
    return alloc_.Free(t, addr, size);
  }
  // Deferred: reusing the block before the operation's durable point would
  // let a rollback resurrect a dangling reference into reused memory.
  ts.deferred_frees.emplace_back(addr, size);
  return Status::Ok();
}

void PersistentHeap::DropVolatile() {
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
  provider_->DropVolatile();
}

Status PersistentHeap::Recover() {
  // Recovery reads the durable image a crash left behind: everything it
  // loads must be persisted state, so the whole pass runs inside the
  // sanitizer's durable scope (reads of unpersisted lines become NPM001).
  analyze::PmSanitizer* san = pool_.rt().sanitizer();
  NEARPM_SAN_HOOK(san, BeginDurableScope());
  Status st = provider_->Recover();
  if (st.ok()) {
    alloc_.RebuildVolatile();
    for (ThreadState& ts : threads_) {
      ts = ThreadState{};
    }
  }
  NEARPM_SAN_HOOK(san, EndDurableScope());
  return st;
}

}  // namespace nearpm
