#include "src/pmlib/redo_provider.h"

#include "src/core/cc_stats.h"

namespace nearpm {

RedoLogProvider::RedoLogProvider(const PmPool* pool)
    : pool_(pool),
      threads_(static_cast<size_t>(pool->layout().threads)) {}

Status RedoLogProvider::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.active) {
    return FailedPrecondition("operation already open on this thread");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  ts.active = true;
  ts.tx_id = rt.NextTxId();
  ts.redirects.clear();
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpBegin, .tid = t,
                     .ts = rt.Now(t), .seq = ts.tx_id);

  TxRecord rec;
  rec.state = static_cast<std::uint64_t>(TxState::kActive);
  rec.tx_id = ts.tx_id;
  const PmAddr rec_addr = pool_->cc_area(t).TxRecordAddr();
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  return Status::Ok();
}

StatusOr<PmAddr> RedoLogProvider::PrepareStore(ThreadId t, PmAddr addr,
                                               std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("PrepareStore outside an operation");
  }
  const AddrRange range{addr, addr + size};
  // Same range already redirected: overwrite the slot payload in place.
  for (const Redirect& r : ts.redirects) {
    if (r.target == range) {
      return CcArea::SlotData(r.slot);
    }
  }
  if (ts.redirects.size() >= kLogSlots) {
    return ResourceExhausted("redo log slots exhausted in one operation");
  }
  if (size > kMaxLogData) {
    return InvalidArgument("redo entry larger than a log slot");
  }
  const PmAddr slot = pool_->cc_area(t).RedoSlotAddr(ts.redirects.size());
  ts.redirects.push_back(Redirect{range, slot});
  return CcArea::SlotData(slot);
}

StatusOr<PmAddr> RedoLogProvider::TranslateLoad(ThreadId t, PmAddr addr,
                                                std::uint64_t size) {
  const ThreadState& ts = threads_[t];
  if (!ts.active) {
    return addr;
  }
  const AddrRange range{addr, addr + size};
  // Newest redirect wins (ranges equal-or-disjoint in practice).
  for (auto it = ts.redirects.rbegin(); it != ts.redirects.rend(); ++it) {
    if (it->target.begin <= range.begin && range.end <= it->target.end) {
      return CcArea::SlotData(it->slot) + (range.begin - it->target.begin);
    }
    if (it->target.Overlaps(range)) {
      return FailedPrecondition(
          "load partially overlaps an uncommitted redo entry");
    }
  }
  return addr;
}

StatusOr<bool> RedoLogProvider::CommitOp(ThreadId t,
                                         std::span<const AddrRange> dirty) {
  (void)dirty;  // the slots are persisted below; targets update near memory
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("CommitOp outside an operation");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);

  // 1. Seal each redo entry: header (target, size, checksum) after payload.
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  std::vector<std::uint8_t> payload;
  for (const Redirect& r : ts.redirects) {
    payload.resize(r.target.size());
    rt.Read(t, CcArea::SlotData(r.slot), payload);
    SlotHeader header;
    header.magic = kRedoMagic;
    header.tag = ts.tx_id;
    header.target = r.target.begin;
    header.size = r.target.size();
    header.checksum = Checksum64(payload);
    rt.Store(t, r.slot, header);
    rt.Persist(t, r.slot, kSlotHeaderSize + header.size);
  }
  // 2. Commit marker.
  const PmAddr rec_addr = pool_->cc_area(t).TxRecordAddr();
  TxRecord rec;
  rec.state = static_cast<std::uint64_t>(TxState::kCommitted);
  rec.tx_id = ts.tx_id;
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  // 3. Apply the log near memory.
  rt.stats().SetCategory(t, CcCategory::kDataMovement);
  for (const Redirect& r : ts.redirects) {
    NEARPM_RETURN_IF_ERROR(
        rt.ApplyLog(pool_->id(), t, r.slot, r.target.size(), r.target.begin));
  }
  // 4. Confirm the applies before deleting the log: an invalidated slot must
  //    imply an applied target, and apply/delete touch different slot lines,
  //    so ordering cannot come from address conflicts alone.
  rt.stats().SetCategory(t, CcCategory::kOrdering);
  rt.DrainDevices(t);
  // 5. Delete the log and return to IDLE.
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  std::vector<PmAddr> slots;
  slots.reserve(ts.redirects.size());
  for (const Redirect& r : ts.redirects) {
    slots.push_back(r.slot);
  }
  if (!slots.empty()) {
    NEARPM_RETURN_IF_ERROR(rt.CommitLog(pool_->id(), t, slots));
  }
  // COMMITTED persists until the next BeginOp; re-applying a committed log
  // at recovery is idempotent.
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpCommit, .tid = t,
                     .ts = rt.Now(t), .seq = ts.tx_id, .arg0 = 1);
  ts.active = false;
  return true;
}

Status RedoLogProvider::RecoverThread(ThreadId t) {
  Runtime& rt = pool_->rt();
  const CcArea area = pool_->cc_area(t);
  const TxRecord rec = rt.Load<TxRecord>(t, area.TxRecordAddr());
  // skip_recovery_replay: fault injection -- scrub without reapplying.
  const bool reapply =
      rec.state == static_cast<std::uint64_t>(TxState::kCommitted) &&
      !rt.options().skip_recovery_replay;

  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < kLogSlots; ++i) {
    const PmAddr slot = area.RedoSlotAddr(i);
    const SlotHeader header = rt.Load<SlotHeader>(t, slot);
    if (header.magic != kRedoMagic) {
      continue;
    }
    bool valid = header.size > 0 && header.size <= kMaxLogData;
    if (valid) {
      payload.resize(header.size);
      rt.Read(t, CcArea::SlotData(slot), payload);
      valid = Checksum64(payload) == header.checksum;
    }
    if (reapply && valid && header.tag == rec.tx_id) {
      rt.Write(t, header.target, payload);
      rt.Persist(t, header.target, header.size);
      ++reapplied_;
    }
    const SlotHeader zero;
    rt.Store(t, slot, zero);
    rt.Persist(t, slot, sizeof(zero));
  }

  TxRecord idle;
  idle.state = static_cast<std::uint64_t>(TxState::kIdle);
  rt.Store(t, area.TxRecordAddr(), idle);
  rt.Persist(t, area.TxRecordAddr(), sizeof(idle));
  return Status::Ok();
}

Status RedoLogProvider::Recover() {
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kMechRecover,
                     .ts = pool_->rt().Now(0));
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    NEARPM_RETURN_IF_ERROR(RecoverThread(t));
    threads_[t] = ThreadState{};
  }
  return Status::Ok();
}

void RedoLogProvider::DropVolatile() {
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
}

}  // namespace nearpm
