#include "src/pmlib/undo_provider.h"

#include <algorithm>

#include "src/core/cc_stats.h"

namespace nearpm {

const char* MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kLogging:
      return "logging";
    case Mechanism::kRedoLogging:
      return "redo_logging";
    case Mechanism::kCheckpointing:
      return "checkpointing";
    case Mechanism::kShadowPaging:
      return "shadow_paging";
  }
  return "?";
}

UndoLogProvider::UndoLogProvider(const PmPool* pool)
    : pool_(pool),
      threads_(static_cast<size_t>(pool->layout().threads)) {}

Status UndoLogProvider::BeginOp(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.active) {
    return FailedPrecondition("operation already open on this thread");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  ts.active = true;
  ts.tx_id = rt.NextTxId();
  ts.used_slots = 0;
  ts.logged.clear();
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpBegin, .tid = t,
                     .ts = rt.Now(t), .seq = ts.tx_id);

  TxRecord rec;
  rec.state = static_cast<std::uint64_t>(TxState::kActive);
  rec.tx_id = ts.tx_id;
  const PmAddr rec_addr = pool_->cc_area(t).TxRecordAddr();
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  return Status::Ok();
}

StatusOr<PmAddr> UndoLogProvider::PrepareStore(ThreadId t, PmAddr addr,
                                               std::uint64_t size) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("PrepareStore outside an operation");
  }
  const AddrRange range{addr, addr + size};
  // Already snapshotted this transaction?
  for (const AddrRange& logged : ts.logged) {
    if (logged.begin <= range.begin && range.end <= logged.end) {
      return addr;
    }
  }
  if (ts.used_slots >= kLogSlots) {
    return ResourceExhausted("undo log slots exhausted in one operation");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  const PmAddr slot = pool_->cc_area(t).UndoSlotAddr(ts.used_slots);
  NEARPM_RETURN_IF_ERROR(
      rt.UndologCreate(pool_->id(), t, ts.tx_id, addr, size, slot));
  ++ts.used_slots;
  ts.logged.push_back(range);
  return addr;
}

StatusOr<PmAddr> UndoLogProvider::TranslateLoad(ThreadId /*t*/, PmAddr addr,
                                                std::uint64_t /*size*/) {
  return addr;
}

StatusOr<bool> UndoLogProvider::CommitOp(ThreadId t,
                                         std::span<const AddrRange> dirty) {
  ThreadState& ts = threads_[t];
  if (!ts.active) {
    return FailedPrecondition("CommitOp outside an operation");
  }
  Runtime& rt = pool_->rt();
  Runtime::CcRegion cc(rt, t);
  // 1. Persist the in-place updates (ordering category: flush + fence).
  rt.stats().SetCategory(t, CcCategory::kOrdering);
  for (const AddrRange& range : dirty) {
    rt.Persist(t, range.begin, range.size());
  }
  // 2. Commit marker.
  rt.stats().SetCategory(t, CcCategory::kMetadata);
  const PmAddr rec_addr = pool_->cc_area(t).TxRecordAddr();
  TxRecord rec;
  rec.state = static_cast<std::uint64_t>(TxState::kCommitted);
  rec.tx_id = ts.tx_id;
  rt.Store(t, rec_addr, rec);
  rt.Persist(t, rec_addr, sizeof(rec));
  // 3. Delete the logs (off the critical path under delayed sync).
  std::vector<PmAddr> slots;
  slots.reserve(ts.used_slots);
  for (std::size_t i = 0; i < ts.used_slots; ++i) {
    slots.push_back(pool_->cc_area(t).UndoSlotAddr(i));
  }
  if (!slots.empty()) {
    NEARPM_RETURN_IF_ERROR(rt.CommitLog(pool_->id(), t, slots));
  }
  // The record stays COMMITTED until the next BeginOp overwrites it: a crash
  // in between scrubs any leftover slots without applying them (state is not
  // ACTIVE), so an explicit IDLE write would buy nothing.
  NEARPM_TRACE_EVENT(rt.trace(), .phase = TracePhase::kOpCommit, .tid = t,
                     .ts = rt.Now(t), .seq = ts.tx_id, .arg0 = 1);
  ts.active = false;
  return true;
}

Status UndoLogProvider::RecoverThread(ThreadId t) {
  Runtime& rt = pool_->rt();
  const CcArea area = pool_->cc_area(t);
  const TxRecord rec = rt.Load<TxRecord>(t, area.TxRecordAddr());
  // skip_recovery_replay is the fuzzer's fault injection: scrub the journal
  // without replaying it, as a recovery that forgot the frontier would.
  const bool rollback =
      rec.state == static_cast<std::uint64_t>(TxState::kActive) &&
      !rt.options().skip_recovery_replay;

  // Walk the slots newest-first so overlapping snapshots restore the oldest
  // pre-image last.
  std::vector<std::uint8_t> payload;
  bool rolled_any = false;
  for (std::size_t i = kLogSlots; i > 0; --i) {
    const PmAddr slot = area.UndoSlotAddr(i - 1);
    const SlotHeader header = rt.Load<SlotHeader>(t, slot);
    if (header.magic != kUndoMagic) {
      continue;
    }
    bool valid = header.size > 0 && header.size <= kMaxLogData;
    if (valid) {
      payload.resize(header.size);
      rt.Read(t, CcArea::SlotData(slot), payload);
      valid = Checksum64(payload) == header.checksum;
    }
    if (rollback && valid && header.tag == rec.tx_id) {
      rt.Write(t, header.target, payload);
      rt.Persist(t, header.target, header.size);
      rolled_any = true;
    }
    // Scrub the slot either way: it belongs to a finished or rolled-back tx.
    const SlotHeader zero;
    rt.Store(t, slot, zero);
    rt.Persist(t, slot, sizeof(zero));
  }
  if (rolled_any) {
    ++rollbacks_;
  }

  TxRecord idle;
  idle.state = static_cast<std::uint64_t>(TxState::kIdle);
  rt.Store(t, area.TxRecordAddr(), idle);
  rt.Persist(t, area.TxRecordAddr(), sizeof(idle));
  return Status::Ok();
}

Status UndoLogProvider::Recover() {
  NEARPM_TRACE_EVENT(pool_->rt().trace(), .phase = TracePhase::kMechRecover,
                     .ts = pool_->rt().Now(0));
  for (ThreadId t = 0; t < threads_.size(); ++t) {
    NEARPM_RETURN_IF_ERROR(RecoverThread(t));
    threads_[t] = ThreadState{};
  }
  return Status::Ok();
}

void UndoLogProvider::DropVolatile() {
  for (ThreadState& ts : threads_) {
    ts = ThreadState{};
  }
}

}  // namespace nearpm
