// Undo-logging provider (PMDK-transaction style, Figure 14 a/b).
//
// Per operation: mark the thread's TxRecord ACTIVE, snapshot every
// to-be-written range into an undo slot (NearPM_undolog_create), update in
// place, persist the updates, mark COMMITTED, then delete the logs
// (NearPM_commit_log -- ordered behind a cross-device sync in multi-device
// delayed mode) and return to IDLE.
//
// Recovery: ACTIVE -> roll back valid slots of the interrupted transaction in
// reverse order; COMMITTED/IDLE -> the updates stand, stale slots are
// scrubbed.
#ifndef SRC_PMLIB_UNDO_PROVIDER_H_
#define SRC_PMLIB_UNDO_PROVIDER_H_

#include <cstdint>
#include <vector>

#include "src/pmlib/pool.h"
#include "src/pmlib/provider.h"

namespace nearpm {

class UndoLogProvider : public ConsistencyProvider {
 public:
  explicit UndoLogProvider(const PmPool* pool);

  Mechanism mechanism() const override { return Mechanism::kLogging; }
  Status BeginOp(ThreadId t) override;
  StatusOr<PmAddr> PrepareStore(ThreadId t, PmAddr addr,
                                std::uint64_t size) override;
  StatusOr<PmAddr> TranslateLoad(ThreadId t, PmAddr addr,
                                 std::uint64_t size) override;
  StatusOr<bool> CommitOp(ThreadId t,
                          std::span<const AddrRange> dirty) override;
  Status Recover() override;
  void DropVolatile() override;

  std::uint64_t rollbacks() const { return rollbacks_; }

 private:
  struct ThreadState {
    bool active = false;
    std::uint64_t tx_id = 0;
    std::size_t used_slots = 0;
    std::vector<AddrRange> logged;  // ranges already snapshotted this tx
  };

  Status RecoverThread(ThreadId t);

  const PmPool* pool_;
  std::vector<ThreadState> threads_;
  std::uint64_t rollbacks_ = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_UNDO_PROVIDER_H_
