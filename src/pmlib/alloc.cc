#include "src/pmlib/alloc.h"

#include <bit>
#include <cassert>

#include "src/core/cc_stats.h"

namespace nearpm {

PmAllocator::PmAllocator(const PmPool* pool)
    : pool_(pool), free_chunks_(kNumClasses) {}

int PmAllocator::ClassIndex(std::uint64_t size) {
  if (size == 0 || size > kMaxBlock) {
    return -1;
  }
  const std::uint64_t rounded = std::bit_ceil(size < kMinBlock ? kMinBlock : size);
  return std::countr_zero(rounded) - std::countr_zero(kMinBlock);
}

PmAddr PmAllocator::HeaderAddr(std::uint64_t chunk) const {
  return pool_->chunk_headers() + chunk * sizeof(ChunkHeader);
}

ChunkHeader PmAllocator::LoadHeader(ThreadId t, std::uint64_t chunk) const {
  return pool_->rt().Load<ChunkHeader>(t, HeaderAddr(chunk));
}

void PmAllocator::StoreHeader(ThreadId t, std::uint64_t chunk,
                              const ChunkHeader& h) {
  Runtime& rt = pool_->rt();
  rt.Store(t, HeaderAddr(chunk), h);
  rt.Persist(t, HeaderAddr(chunk), sizeof(ChunkHeader));
}

void PmAllocator::Format(ThreadId t) {
  const ChunkHeader empty;
  for (std::uint64_t c = 0; c < pool_->num_chunks(); ++c) {
    StoreHeader(t, c, empty);
  }
  // Chunk 0 is the heap's root page: reserve it by marking it a full
  // 4096-byte-class chunk so it is never handed out.
  ChunkHeader root;
  root.magic = kChunkMagic;
  root.class_size = kPmPageSize;
  root.bitmap = 1;
  StoreHeader(t, 0, root);
  for (auto& list : free_chunks_) {
    list.clear();
  }
  next_fresh_chunk_ = 1;
  allocated_ = 0;
}

void PmAllocator::RebuildVolatile() {
  for (auto& list : free_chunks_) {
    list.clear();
  }
  next_fresh_chunk_ = pool_->num_chunks();
  allocated_ = 0;
  std::uint64_t first_fresh = pool_->num_chunks();
  // Chunk 0 is the reserved root page; it stays out of the free index and
  // the allocation count.
  for (std::uint64_t c = 1; c < pool_->num_chunks(); ++c) {
    const ChunkHeader h = pool_->rt().Load<ChunkHeader>(0, HeaderAddr(c));
    if (h.magic != kChunkMagic) {
      if (first_fresh == pool_->num_chunks()) {
        first_fresh = c;
      }
      continue;
    }
    const int cls = ClassIndex(h.class_size);
    assert(cls >= 0);
    const std::uint64_t blocks = kPmPageSize / h.class_size;
    const std::uint64_t used = std::popcount(h.bitmap);
    allocated_ += used;
    if (used < blocks) {
      free_chunks_[cls].push_back(c);
    }
  }
  next_fresh_chunk_ = first_fresh;
}

StatusOr<PmAddr> PmAllocator::Alloc(ThreadId t, std::uint64_t size) {
  const int cls = ClassIndex(size);
  if (cls < 0) {
    return InvalidArgument("allocation size out of range");
  }
  Runtime& rt = pool_->rt();
  rt.stats().SetCategory(t, CcCategory::kAllocation);
  rt.Compute(t, rt.options().hw.cost.cpu_alloc_ns);

  std::uint64_t chunk;
  ChunkHeader h;
  if (!free_chunks_[cls].empty()) {
    chunk = free_chunks_[cls].back();
    h = LoadHeader(t, chunk);
  } else {
    if (next_fresh_chunk_ >= pool_->num_chunks()) {
      return ResourceExhausted("pool data window full");
    }
    chunk = next_fresh_chunk_++;
    h = ChunkHeader{};
    h.magic = kChunkMagic;
    h.class_size = ClassSize(cls);
    free_chunks_[cls].push_back(chunk);
  }

  const std::uint64_t blocks = kPmPageSize / h.class_size;
  const std::uint64_t mask =
      blocks == 64 ? ~0ULL : ((1ULL << blocks) - 1);
  const std::uint64_t free_bits = ~h.bitmap & mask;
  assert(free_bits != 0);
  const int bit = std::countr_zero(free_bits);
  h.bitmap |= (1ULL << bit);
  StoreHeader(t, chunk, h);
  if ((h.bitmap & mask) == mask) {
    free_chunks_[cls].pop_back();
  }
  ++allocated_;
  return pool_->data_base() + chunk * kPmPageSize +
         static_cast<std::uint64_t>(bit) * h.class_size;
}

Status PmAllocator::Free(ThreadId t, PmAddr addr, std::uint64_t size) {
  const int cls = ClassIndex(size);
  if (cls < 0) {
    return InvalidArgument("free size out of range");
  }
  if (addr < pool_->data_base() ||
      addr >= pool_->data_base() + pool_->data_size()) {
    return OutOfRange("free outside data window");
  }
  Runtime& rt = pool_->rt();
  rt.stats().SetCategory(t, CcCategory::kAllocation);
  const std::uint64_t offset = addr - pool_->data_base();
  const std::uint64_t chunk = offset / kPmPageSize;
  ChunkHeader h = LoadHeader(t, chunk);
  if (h.magic != kChunkMagic || h.class_size != ClassSize(cls)) {
    return InvalidArgument("free size does not match chunk class");
  }
  const std::uint64_t bit = (offset % kPmPageSize) / h.class_size;
  if ((h.bitmap & (1ULL << bit)) == 0) {
    return FailedPrecondition("double free");
  }
  const std::uint64_t blocks = kPmPageSize / h.class_size;
  const std::uint64_t mask = blocks == 64 ? ~0ULL : ((1ULL << blocks) - 1);
  const bool was_full = (h.bitmap & mask) == mask;
  h.bitmap &= ~(1ULL << bit);
  StoreHeader(t, chunk, h);
  if (was_full) {
    free_chunks_[cls].push_back(chunk);
  }
  --allocated_;
  return Status::Ok();
}

}  // namespace nearpm
