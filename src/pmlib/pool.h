// PM pool: the libpmemobj-style container all pmlib state lives in.
//
// A pool is one contiguous region of the global PM space, carved into:
//
//   [ pool header | allocator chunk headers | data window
//     | physical page area (shadow paging only) | per-thread CC areas ]
//
// The data window is what applications address. Under logging and
// checkpointing it is backed one-to-one; under shadow paging it is a virtual
// window whose pages map to the physical page area through the shadow page
// table. The CC areas are the NDP-managed log/checkpoint regions described in
// src/core/log_layout.h.
#ifndef SRC_PMLIB_POOL_H_
#define SRC_PMLIB_POOL_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/log_layout.h"
#include "src/core/runtime.h"

namespace nearpm {

struct PoolLayoutOptions {
  std::uint64_t data_size = 4ull << 20;  // size of the data window
  int threads = 1;
  bool shadow_physical_area = false;  // reserve 2x pages for shadow paging
};

class PmPool {
 public:
  // Carves the pool at [base, base + Footprint(opts)) and registers it with
  // the runtime. The caller owns placement (see PoolArena in heap.h).
  static StatusOr<PmPool> Create(Runtime& rt, PmAddr base,
                                 const PoolLayoutOptions& opts);

  static std::uint64_t Footprint(const PoolLayoutOptions& opts);

  PoolId id() const { return id_; }
  Runtime& rt() const { return *rt_; }
  const PoolLayoutOptions& layout() const { return opts_; }

  PmAddr base() const { return base_; }
  // Allocator chunk header array.
  PmAddr chunk_headers() const { return base_ + kPmPageSize; }
  std::uint64_t num_chunks() const { return opts_.data_size / kPmPageSize; }
  // Application-visible data window.
  PmAddr data_base() const;
  std::uint64_t data_size() const { return opts_.data_size; }
  // Physical page area for shadow paging (2x the window's page count).
  PmAddr phys_base() const;
  std::uint64_t phys_pages() const {
    return opts_.shadow_physical_area ? 2 * num_chunks() : 0;
  }
  // Shadow page table (persistent): one 8-byte entry per window page.
  PmAddr page_table() const;
  // Per-thread crash-consistency area.
  CcArea cc_area(ThreadId t) const;

 private:
  PmPool(Runtime* rt, PmAddr base, PoolId id, const PoolLayoutOptions& opts)
      : rt_(rt), base_(base), id_(id), opts_(opts) {}

  Runtime* rt_;
  PmAddr base_ = 0;
  PoolId id_ = 0;
  PoolLayoutOptions opts_;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_POOL_H_
