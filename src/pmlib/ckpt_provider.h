// Checkpointing provider (Figure 2b, Figure 14 e/f).
//
// Page-granularity, epoch-batched: the first time a page is written within
// an epoch, its pre-image is copied into a checkpoint slot
// (NearPM_ckpoint_create). Every `epoch_ops` operations the epoch closes:
// all pages touched during the epoch are persisted, the committed-epoch
// counter advances, and the slots are invalidated. A failure inside an epoch
// rolls the touched pages back to the epoch start -- operations are atomic
// at epoch granularity, the durability model inherent to checkpointing.
#ifndef SRC_PMLIB_CKPT_PROVIDER_H_
#define SRC_PMLIB_CKPT_PROVIDER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/pmlib/pool.h"
#include "src/pmlib/provider.h"

namespace nearpm {

class CheckpointProvider : public ConsistencyProvider {
 public:
  // `epoch_ops`: operations per epoch (the checkpoint interval).
  CheckpointProvider(const PmPool* pool, int epoch_ops = 4);

  Mechanism mechanism() const override { return Mechanism::kCheckpointing; }
  Status BeginOp(ThreadId t) override;
  StatusOr<PmAddr> PrepareStore(ThreadId t, PmAddr addr,
                                std::uint64_t size) override;
  StatusOr<PmAddr> TranslateLoad(ThreadId t, PmAddr addr,
                                 std::uint64_t size) override;
  StatusOr<bool> CommitOp(ThreadId t,
                          std::span<const AddrRange> dirty) override;
  Status Recover() override;
  void DropVolatile() override;

  std::uint64_t epochs_closed() const { return epochs_closed_; }
  std::uint64_t pages_restored() const { return pages_restored_; }

 private:
  struct ThreadState {
    bool active = false;
    std::uint64_t epoch = 1;  // current (uncommitted) epoch
    int ops_in_epoch = 0;
    std::size_t used_slots = 0;
    std::unordered_set<std::uint64_t> pages_this_epoch;  // page indices
    // Completion of the newest snapshot copy: the operation confirms its
    // pre-images before it returns (snapshots of one operation still overlap
    // each other and the CPU's work).
    std::uint64_t snapshot_done = 0;
  };

  Status CloseEpoch(ThreadId t);
  Status RecoverThread(ThreadId t);
  std::uint64_t PageOf(PmAddr addr) const;

  const PmPool* pool_;
  int epoch_ops_;
  std::vector<ThreadState> threads_;
  std::uint64_t epochs_closed_ = 0;
  std::uint64_t pages_restored_ = 0;
};

}  // namespace nearpm

#endif  // SRC_PMLIB_CKPT_PROVIDER_H_
