#include "src/trace/crash_cursor.h"

#include <algorithm>

namespace nearpm {
namespace {

bool PersistRelevant(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCmdPost:
    case TracePhase::kFifoEnqueue:
    case TracePhase::kUnitExec:
    case TracePhase::kDeferredExec:
    case TracePhase::kSyncMarker:
    case TracePhase::kSyncComplete:
    case TracePhase::kWritebackAccepted:
    case TracePhase::kRetire:
    case TracePhase::kCpuPersist:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<SimTime> EnumerateCrashPoints(const std::vector<TraceEvent>& events,
                                          const CrashCursorOptions& options) {
  std::vector<SimTime> points;
  points.push_back(options.min_time);
  for (const TraceEvent& ev : events) {
    if (ev.epoch != options.epoch || !PersistRelevant(ev.phase)) {
      continue;
    }
    points.push_back(ev.ts);
    points.push_back(ev.ts + 1);
    if (ev.is_span()) {
      points.push_back(ev.end());
      points.push_back(ev.end() + 1);
      if (options.midpoints) {
        points.push_back(ev.ts + ev.dur / 2);
      }
    }
  }
  std::erase_if(points, [&](SimTime t) { return t < options.min_time; });
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace nearpm
