// Crash-point enumeration over a recorded trace epoch.
//
// The crash fuzzer's systematic mode wants to fail the power "after every
// persist-relevant event" rather than at one sampled instant. This cursor
// derives the candidate failure instants from the trace itself: every
// boundary at which the durable image can change -- a command post reaching
// the FIFO, a unit starting or finishing execution, a DMA caught mid-copy,
// a synchronization issued or completed, a write-back accepted -- yields one
// or two candidate times. Crashing at two times between which no candidate
// lies produces the same durable image, so sweeping the candidates covers
// the whole reachable crash-state space of one execution prefix (up to the
// pending-line survival mask, which CrashPlan explores separately).
#ifndef SRC_TRACE_CRASH_CURSOR_H_
#define SRC_TRACE_CRASH_CURSOR_H_

#include <vector>

#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {

struct CrashCursorOptions {
  // Only events of this trace epoch are considered (virtual clocks restart
  // at a crash, so timestamps from different epochs are incomparable).
  std::uint32_t epoch = 0;
  // Candidates strictly below this are clamped away (times before "now" on
  // the CPU clock cannot be failed at anymore); min_time itself is always a
  // candidate -- the classic "power fails right now".
  SimTime min_time = 0;
  // Include the midpoint of every execution span (a DMA mid-copy state).
  bool midpoints = true;
};

// Sorted, deduplicated candidate crash instants derived from
// persist-relevant events: kCmdPost, kFifoEnqueue, kUnitExec, kDeferredExec,
// kSyncMarker, kSyncComplete, kWritebackAccepted, kRetire, kCpuPersist.
// Span phases contribute begin, end and end+1 (the instants just inside and
// just past the boundary); instants contribute ts and ts+1.
std::vector<SimTime> EnumerateCrashPoints(const std::vector<TraceEvent>& events,
                                          const CrashCursorOptions& options);

inline std::vector<SimTime> EnumerateCrashPoints(
    const TraceRecorder& recorder, const CrashCursorOptions& options) {
  return EnumerateCrashPoints(recorder.Snapshot(), options);
}

}  // namespace nearpm

#endif  // SRC_TRACE_CRASH_CURSOR_H_
