#include "src/trace/ppo_checker.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace nearpm {

namespace {

// CrashOutcome::kDurable from src/pmem -- mirrored here as an integer so the
// trace layer stays below pmem (the producer records the enum value).
constexpr std::uint64_t kOutcomeDurable = 2;

struct EpochChecker {
  EpochChecker(std::size_t max, std::uint32_t disabled)
      : max_violations(max), disabled_mask(disabled) {}

  std::size_t max_violations;
  std::uint32_t disabled_mask;
  std::vector<PpoViolation> violations;
  // Exec spans seen so far, in issue (record) order.
  std::vector<const TraceEvent*> spans;
  // (seq << 8 | pid-low) retire keys seen so far.
  std::unordered_set<std::uint64_t> retired;
  std::set<std::uint32_t> device_pids;
  const TraceEvent* crash = nullptr;
  std::unordered_set<std::uint64_t> replayed;
  // seq -> true iff some device sampled a non-durable outcome at the crash.
  std::unordered_map<std::uint64_t, bool> any_non_durable;

  bool Full() const { return violations.size() >= max_violations; }

  void Add(int invariant, const TraceEvent& at, std::uint64_t seq,
           std::string detail) {
    if (Full()) {
      return;
    }
    if (invariant >= 1 &&
        (disabled_mask & (1u << (invariant - 1))) != 0) {
      return;
    }
    violations.push_back(
        PpoViolation{invariant, seq, at.epoch, at.ts, std::move(detail)});
  }

  static std::uint64_t RetireKey(std::uint64_t seq, std::uint32_t pid) {
    return (seq << 8) ^ pid;
  }

  void Consume(const TraceEvent& e) {
    switch (e.phase) {
      case TracePhase::kUnitExec:
      case TracePhase::kDeferredExec:
        device_pids.insert(e.pid);
        if (e.phase == TracePhase::kDeferredExec) {
          CheckInvariant3(e);
        }
        spans.push_back(&e);
        break;
      case TracePhase::kRetire:
        retired.insert(RetireKey(e.seq, e.pid));
        break;
      case TracePhase::kCpuRead:
        CheckInvariant1(e);
        break;
      case TracePhase::kCpuPersist:
        CheckInvariant2(e);
        break;
      case TracePhase::kCrash:
        crash = &e;
        break;
      case TracePhase::kCrashOutcome:
        if (e.arg0 != kOutcomeDurable) {
          any_non_durable[e.seq] = true;
        } else {
          any_non_durable.emplace(e.seq, false);
        }
        break;
      case TracePhase::kRecoveryReplay:
        CheckInvariant4(e);
        break;
      default:
        break;
    }
  }

  // Invariant 1: the load must not land inside the execution window of an
  // earlier-issued request that writes an overlapping range.
  void CheckInvariant1(const TraceEvent& read) {
    for (const TraceEvent* s : spans) {
      if (s->range.Overlaps(read.range) && read.ts < s->end()) {
        Add(1, read, s->seq,
            "CPU load at t=" + std::to_string(read.ts) +
                " observes addresses request seq=" + std::to_string(s->seq) +
                " is still writing until t=" + std::to_string(s->end()));
        if (Full()) return;
      }
    }
  }

  // Invariant 2: a persist overlapping an in-flight request's operands must
  // have been ordered behind it (the request retired at queue acceptance).
  void CheckInvariant2(const TraceEvent& persist) {
    for (const TraceEvent* s : spans) {
      const bool overlap = s->range.Overlaps(persist.range) ||
                           s->range2.Overlaps(persist.range);
      if (overlap && persist.ts < s->end() &&
          retired.find(RetireKey(s->seq, s->pid)) == retired.end()) {
        Add(2, persist, s->seq,
            "CPU persist at t=" + std::to_string(persist.ts) +
                " overlaps in-flight request seq=" + std::to_string(s->seq) +
                " (completes t=" + std::to_string(s->end()) +
                ") without ordering it first");
        if (Full()) return;
      }
    }
  }

  // Invariant 3: in a multi-device epoch, maintenance work (log deletion)
  // begins only after everything issued before it has completed everywhere.
  void CheckInvariant3(const TraceEvent& del) {
    // The check is cross-device by nature; a single device orders same-
    // address work through its in-flight table already.
    if (device_pids.size() < 2) {
      return;
    }
    for (const TraceEvent* s : spans) {
      if (s->phase != TracePhase::kUnitExec) {
        continue;
      }
      if (del.ts < s->end()) {
        Add(3, del, del.seq,
            "log deletion seq=" + std::to_string(del.seq) + " executes at t=" +
                std::to_string(del.ts) + " before earlier request seq=" +
                std::to_string(s->seq) + " completes at t=" +
                std::to_string(s->end()) +
                " (commit not ordered behind synchronization)");
        if (Full()) return;
      }
    }
  }

  // Invariant 4: replay only after a crash, only of requests issued before
  // it, never of requests already durable everywhere, never twice.
  void CheckInvariant4(const TraceEvent& replay) {
    if (crash == nullptr) {
      Add(4, replay, replay.seq, "recovery replay without a preceding crash");
      return;
    }
    if (!replayed.insert(replay.seq).second) {
      Add(4, replay, replay.seq,
          "request seq=" + std::to_string(replay.seq) + " replayed twice");
      return;
    }
    const TraceEvent* issued = nullptr;
    for (const TraceEvent* s : spans) {
      if (s->seq == replay.seq && s->order < crash->order) {
        issued = s;
        break;
      }
    }
    if (issued == nullptr) {
      Add(4, replay, replay.seq,
          "replayed request seq=" + std::to_string(replay.seq) +
              " was never issued before the crash");
      return;
    }
    auto it = any_non_durable.find(replay.seq);
    if (it != any_non_durable.end() && !it->second) {
      Add(4, replay, replay.seq,
          "request seq=" + std::to_string(replay.seq) +
              " was already durable on every device yet was replayed");
    }
  }
};

}  // namespace

std::vector<PpoViolation> PpoChecker::Check(
    const std::vector<TraceEvent>& events) const {
  std::vector<PpoViolation> all;
  // A wrapped recorder ring drops the oldest events; the surviving snapshot
  // then starts at some global order > 1, and any invariant verdict would
  // rest on spans we never saw.
  if (require_full_history && !events.empty() && events.front().order != 1) {
    all.push_back(PpoViolation{
        0, 0, events.front().epoch, events.front().ts,
        "insufficient history: trace ring wrapped (first surviving event has "
        "order " + std::to_string(events.front().order) +
        "); invariants cannot be established"});
    return all;
  }
  // Events arrive sorted by global order; epochs are contiguous runs.
  std::size_t i = 0;
  while (i < events.size() && all.size() < max_violations) {
    const std::uint32_t epoch = events[i].epoch;
    EpochChecker checker(max_violations - all.size(), disable_invariants);
    for (; i < events.size() && events[i].epoch == epoch; ++i) {
      if (!checker.Full()) {
        checker.Consume(events[i]);
      }
    }
    all.insert(all.end(), checker.violations.begin(),
               checker.violations.end());
  }
  return all;
}

std::string PpoChecker::Report(const std::vector<PpoViolation>& violations) {
  if (violations.empty()) {
    return "PPO invariants 1-4 hold over the trace\n";
  }
  std::string out = "PPO violations (" + std::to_string(violations.size()) +
                    "):\n";
  for (const PpoViolation& v : violations) {
    out += "  [invariant " + std::to_string(v.invariant) + "] epoch " +
           std::to_string(v.epoch) + " t=" + std::to_string(v.ts) + " seq=" +
           std::to_string(v.seq) + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace nearpm
