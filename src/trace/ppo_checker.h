// Trace-driven checker for the Partitioned Persist Ordering invariants
// (Section 4 of the paper), closing the loop DESIGN.md section 4 promises:
// the invariants are asserted against the *observed* memory-event trace, not
// just against end states.
//
// The checker replays a recorded event stream (TraceRecorder::Snapshot) and
// verifies, per trace epoch (virtual clocks restart at a crash):
//
//  * Invariant 1 -- a CPU load of an address an in-flight NDP request is
//    writing happens-after that request completes: no kCpuRead instant may
//    fall inside the execution window of an earlier-issued, overlapping
//    kUnitExec/kDeferredExec span.
//  * Invariant 2 -- a CPU persist that overlaps an in-flight request's read
//    or write set orders that request before itself: the request must carry
//    a kRetire (acceptance into the persistence-domain host queue orders the
//    write-back behind it) recorded before the persist.
//  * Invariant 3 -- commits follow synchronization: in a multi-device epoch,
//    maintenance-path work (deferred log deletion, the only kDeferredExec
//    producer) may only begin executing after every earlier-issued unit
//    request -- on every device -- has completed. Deleting recovery data
//    while the work it covers is still in flight is exactly the Section 2.3
//    inconsistency, which this check flags when enforce_ppo=false.
//  * Invariant 4 -- recovery replays exactly the in-flight window: every
//    kRecoveryReplay follows a kCrash, names a request issued before the
//    crash, never a request whose effects were already durable everywhere,
//    and never replays the same request twice.
//
// "Issued before" always means the recorder's global order field (real
// program order), never timestamp comparison -- per-thread virtual clocks
// are mutually skewed by design.
#ifndef SRC_TRACE_PPO_CHECKER_H_
#define SRC_TRACE_PPO_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {

struct PpoViolation {
  int invariant = 0;        // 1..4; 0 = insufficient history (trimmed ring)
  std::uint64_t seq = 0;    // offending request seq (0 when not applicable)
  std::uint32_t epoch = 0;
  SimTime ts = 0;           // virtual time of the violating event
  std::string detail;
};

class PpoChecker {
 public:
  // Stops collecting after this many violations (the ablation produces one
  // per unordered access; a handful is plenty to diagnose).
  std::size_t max_violations = 64;

  // When true, a snapshot whose prefix was trimmed by ring wrap-around (the
  // first surviving event's global order is not 1) yields an invariant-0
  // "insufficient history" violation instead of silently checking only the
  // tail: a load or persist may race work whose exec span was trimmed away.
  // Off by default -- long-running audits (nearpm_load) intentionally check
  // trimmed tails -- but conformance runs must demand the full trace.
  bool require_full_history = false;

  // Bitmask of invariants (bit i-1 = invariant i) to *skip*. Exists solely
  // for the conformance harness's teeth mode: a deliberately weakened
  // checker must be caught by the differential spec comparison.
  std::uint32_t disable_invariants = 0;

  std::vector<PpoViolation> Check(const std::vector<TraceEvent>& events) const;
  std::vector<PpoViolation> Check(const TraceRecorder& recorder) const {
    return Check(recorder.Snapshot());
  }

  static std::string Report(const std::vector<PpoViolation>& violations);
};

}  // namespace nearpm

#endif  // SRC_TRACE_PPO_CHECKER_H_
