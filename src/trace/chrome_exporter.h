// Chrome trace-event JSON exporter (the format Perfetto and about://tracing
// load). One track per simulated resource: host CPU threads, the PCIe link,
// each NearPM device's dispatcher / units / maintenance engine, and the
// multi-device synchronization lane.
//
// Virtual clocks restart from zero at a crash (and when several Runtimes
// share one recorder), so each trace epoch is laid out after the previous
// one on the exported timeline with a visible gap, keeping Perfetto's view
// monotonic while preserving in-epoch timing exactly.
#ifndef SRC_TRACE_CHROME_EXPORTER_H_
#define SRC_TRACE_CHROME_EXPORTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {

struct ChromeTraceOptions {
  // Gap inserted between epochs on the exported timeline (ns).
  std::uint64_t epoch_gap_ns = 10000;
};

// Writes the full JSON object {"traceEvents": [...], ...} for the events.
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os,
                      const ChromeTraceOptions& options = {});
void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os,
                      const ChromeTraceOptions& options = {});

// Convenience: export straight to a file. Returns false on I/O failure.
bool WriteChromeTraceFile(const TraceRecorder& recorder,
                          const std::string& path,
                          const ChromeTraceOptions& options = {});

// Human-readable names used for the metadata events (exposed for tests).
std::string TraceProcessName(std::uint32_t pid);
std::string TraceThreadName(std::uint32_t pid, std::uint32_t tid);

}  // namespace nearpm

#endif  // SRC_TRACE_CHROME_EXPORTER_H_
