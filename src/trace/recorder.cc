#include "src/trace/recorder.h"

#include <algorithm>

namespace nearpm {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCpuRead:
      return "cpu_read";
    case TracePhase::kCpuWrite:
      return "cpu_write";
    case TracePhase::kCpuPersist:
      return "cpu_persist";
    case TracePhase::kCpuFence:
      return "cpu_fence";
    case TracePhase::kCpuStall:
      return "cpu_stall";
    case TracePhase::kCpuDrain:
      return "cpu_drain";
    case TracePhase::kCmdPost:
      return "cmd_post";
    case TracePhase::kFifoEnqueue:
      return "fifo_enqueue";
    case TracePhase::kDevPipeline:
      return "dev_pipeline";
    case TracePhase::kConflictStall:
      return "conflict_stall";
    case TracePhase::kUnitExec:
      return "unit_exec";
    case TracePhase::kDeferredExec:
      return "deferred_exec";
    case TracePhase::kRetire:
      return "retire";
    case TracePhase::kWritebackAccepted:
      return "writeback_accepted";
    case TracePhase::kSyncMarker:
      return "sync_marker";
    case TracePhase::kSyncComplete:
      return "sync_complete";
    case TracePhase::kSwSyncPoll:
      return "swsync_poll";
    case TracePhase::kCrash:
      return "crash";
    case TracePhase::kCrashOutcome:
      return "crash_outcome";
    case TracePhase::kRecoveryReplay:
      return "recovery_replay";
    case TracePhase::kOpBegin:
      return "op_begin";
    case TracePhase::kOpCommit:
      return "op_commit";
    case TracePhase::kMechRecover:
      return "mech_recover";
    case TracePhase::kServeEnqueue:
      return "serve_enqueue";
    case TracePhase::kServeReject:
      return "serve_reject";
    case TracePhase::kServeBatch:
      return "serve_batch";
    case TracePhase::kServeRequest:
      return "serve_request";
    case TracePhase::kServeTxn:
      return "serve_txn";
    case TracePhase::kFifoDepth:
      return "fifo_depth";
    case TracePhase::kInflightDepth:
      return "inflight_depth";
    case TracePhase::kServeQueueDepth:
      return "serve_queue_depth";
    case TracePhase::kCoherenceWb:
      return "coherence_wb";
    case TracePhase::kNetXfer:
      return "net_xfer";
    case TracePhase::kNetDeliver:
      return "net_deliver";
    case TracePhase::kReplDoorbell:
      return "repl_doorbell";
    case TracePhase::kCount:
      break;
  }
  return "?";
}

bool TracePhaseIsCounter(TracePhase phase) {
  return phase == TracePhase::kFifoDepth ||
         phase == TracePhase::kInflightDepth ||
         phase == TracePhase::kServeQueueDepth;
}

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options)
    : options_(options) {
  if (options_.ring_capacity == 0) {
    options_.ring_capacity = 1;
  }
}

void TraceRecorder::Record(TraceEvent event) {
  event.epoch = epoch_;
  event.order = ++order_;
  ++recorded_;
  Ring& ring = tracks_[TrackKey(event.pid, event.tid)];
  if (ring.events.size() < options_.ring_capacity) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.next] = event;
    ring.next = (ring.next + 1) % options_.ring_capacity;
    ++dropped_;
  }
  if (options_.feed_metrics) {
    if (TracePhaseIsCounter(event.phase)) {
      // Counter samples track a level, not an occurrence: the registry
      // keeps the last sampled value as a gauge.
      metrics_.SetGauge(TracePhaseName(event.phase),
                        static_cast<double>(event.arg0));
    } else {
      metrics_.Increment(TracePhaseName(event.phase));
      if (event.is_span()) {
        metrics_.AddLatency(TracePhaseName(event.phase), event.dur);
      }
    }
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(recorded_ > dropped_ ? recorded_ - dropped_ : 0);
  for (const auto& [key, ring] : tracks_) {
    (void)key;
    out.insert(out.end(), ring.events.begin(), ring.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.order < b.order;  // order is globally monotonic
            });
  return out;
}

void TraceRecorder::Clear() {
  tracks_.clear();
  recorded_ = 0;
  dropped_ = 0;
  order_ = 0;
  epoch_ = 0;
  metrics_.Reset();
}

}  // namespace nearpm
