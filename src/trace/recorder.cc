#include "src/trace/recorder.h"

#include <algorithm>

namespace nearpm {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCpuRead:
      return "cpu_read";
    case TracePhase::kCpuWrite:
      return "cpu_write";
    case TracePhase::kCpuPersist:
      return "cpu_persist";
    case TracePhase::kCpuFence:
      return "cpu_fence";
    case TracePhase::kCpuStall:
      return "cpu_stall";
    case TracePhase::kCpuDrain:
      return "cpu_drain";
    case TracePhase::kCmdPost:
      return "cmd_post";
    case TracePhase::kFifoEnqueue:
      return "fifo_enqueue";
    case TracePhase::kDevPipeline:
      return "dev_pipeline";
    case TracePhase::kConflictStall:
      return "conflict_stall";
    case TracePhase::kUnitExec:
      return "unit_exec";
    case TracePhase::kDeferredExec:
      return "deferred_exec";
    case TracePhase::kRetire:
      return "retire";
    case TracePhase::kWritebackAccepted:
      return "writeback_accepted";
    case TracePhase::kSyncMarker:
      return "sync_marker";
    case TracePhase::kSyncComplete:
      return "sync_complete";
    case TracePhase::kSwSyncPoll:
      return "swsync_poll";
    case TracePhase::kCrash:
      return "crash";
    case TracePhase::kCrashOutcome:
      return "crash_outcome";
    case TracePhase::kRecoveryReplay:
      return "recovery_replay";
    case TracePhase::kOpBegin:
      return "op_begin";
    case TracePhase::kOpCommit:
      return "op_commit";
    case TracePhase::kMechRecover:
      return "mech_recover";
    case TracePhase::kServeEnqueue:
      return "serve_enqueue";
    case TracePhase::kServeReject:
      return "serve_reject";
    case TracePhase::kServeBatch:
      return "serve_batch";
    case TracePhase::kServeRequest:
      return "serve_request";
    case TracePhase::kServeTxn:
      return "serve_txn";
    case TracePhase::kFifoDepth:
      return "fifo_depth";
    case TracePhase::kInflightDepth:
      return "inflight_depth";
    case TracePhase::kServeQueueDepth:
      return "serve_queue_depth";
    case TracePhase::kCoherenceWb:
      return "coherence_wb";
    case TracePhase::kNetXfer:
      return "net_xfer";
    case TracePhase::kNetDeliver:
      return "net_deliver";
    case TracePhase::kReplDoorbell:
      return "repl_doorbell";
    case TracePhase::kPipeStage:
      return "pipe_stage";
    case TracePhase::kLsqDepth:
      return "lsq_depth";
    case TracePhase::kSloAlert:
      return "slo_alert";
    case TracePhase::kCount:
      break;
  }
  return "?";
}

const char* PipeStageName(PipeStage stage) {
  switch (stage) {
    case PipeStage::kDispatch:
      return "dispatch";
    case PipeStage::kExecute:
      return "execute";
    case PipeStage::kWriteback:
      return "writeback";
  }
  return "?";
}

bool TracePhaseIsCounter(TracePhase phase) {
  return phase == TracePhase::kFifoDepth ||
         phase == TracePhase::kInflightDepth ||
         phase == TracePhase::kServeQueueDepth ||
         phase == TracePhase::kLsqDepth;
}

TraceRecorder::TraceRecorder(const TraceRecorderOptions& options)
    : options_(options) {
  if (options_.ring_capacity == 0) {
    options_.ring_capacity = 1;
  }
}

void TraceRecorder::Record(TraceEvent event) {
  event.epoch = epoch_;
  event.order = ++order_;
  if (event.trace == 0) {
    event.trace = active_trace_;
  }
  ++recorded_;
  const std::uint64_t key = TrackKey(event.pid, event.tid);
  if (key != cached_track_key_) {
    cached_track_ = &tracks_[key];
    cached_track_key_ = key;
  }
  Ring& ring = *cached_track_;
  if (ring.events.size() < options_.ring_capacity) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.next] = event;
    ring.next = (ring.next + 1) % options_.ring_capacity;
    ++ring.dropped;
    ++dropped_;
  }
  if (sink_ != nullptr) {
    sink_->Consume(event);
  }
  if (options_.feed_metrics) {
    // O(1) array bumps; the string-keyed registry is only touched when
    // metrics() folds these in at scrape time.
    const auto phase = static_cast<std::size_t>(event.phase);
    if (TracePhaseIsCounter(event.phase)) {
      // Counter samples track a level, not an occurrence: keep the last
      // sampled value (exported as a gauge).
      phase_gauge_[phase] = static_cast<double>(event.arg0);
      phase_gauge_set_[phase] = true;
    } else {
      ++phase_counts_[phase];
      if (event.is_span()) {
        phase_latency_[phase].Add(event.dur);
      }
    }
  }
}

void TraceRecorder::SyncPhaseMetrics() const {
  // Fold the per-phase accumulators into the registry, storing (not adding)
  // so repeated scrapes are idempotent. Entries are only created for phases
  // that actually occurred, preserving empty() for untouched recorders.
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<TracePhase>(i);
    if (phase_counts_[i] > 0) {
      metrics_.Counter(TracePhaseName(phase)).store(phase_counts_[i]);
    }
    if (phase_latency_[i].count() > 0) {
      metrics_.Latency(TracePhaseName(phase)) = phase_latency_[i];
    }
    if (phase_gauge_set_[i]) {
      metrics_.SetGauge(TracePhaseName(phase), phase_gauge_[i]);
    }
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  // Tracks wrap independently, so the merged rings are not automatically a
  // suffix of the global record stream: the busiest track may have
  // overwritten events that calmer tracks' retained entries depend on
  // (a dropped kRetire whose kUnitExec span survives reads as a PPO
  // violation). Cut everything before the *latest* "oldest retained"
  // position among wrapped tracks -- past that order, every track is
  // complete, so the suffix replays exactly like the live stream did.
  std::uint64_t cutoff = 0;
  for (const auto& [key, ring] : tracks_) {
    (void)key;
    if (ring.dropped > 0) {
      cutoff = std::max(cutoff, ring.events[ring.next].order);
    }
  }
  std::vector<TraceEvent> out;
  out.reserve(recorded_ > dropped_ ? recorded_ - dropped_ : 0);
  for (const auto& [key, ring] : tracks_) {
    (void)key;
    for (const TraceEvent& event : ring.events) {
      if (event.order >= cutoff) {
        out.push_back(event);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.order < b.order;  // order is globally monotonic
            });
  return out;
}

void TraceRecorder::Clear() {
  tracks_.clear();
  cached_track_key_ = ~0ull;
  cached_track_ = nullptr;
  recorded_ = 0;
  dropped_ = 0;
  order_ = 0;
  epoch_ = 0;
  phase_counts_.fill(0);
  for (Histogram& histogram : phase_latency_) {
    histogram = Histogram();
  }
  phase_gauge_.fill(0.0);
  phase_gauge_set_.fill(false);
  metrics_.Reset();
}

}  // namespace nearpm
