// Structured event vocabulary of the simulated platform.
//
// Every observable step of a request's life -- FIFO enqueue, dispatcher
// decode/translate, conflict-check stall, unit execution, DMA -- and every
// CPU-side ordering action -- persist, fence, stall -- is one TraceEvent on
// the timeline of the resource that performed it. The same stream feeds
// three consumers: the MetricsRegistry (per-phase counters and latency
// histograms), the Chrome-trace exporter (one Perfetto track per resource)
// and the PpoChecker (replay-based assertion of the Section 4 invariants).
//
// Layering: this header depends only on src/common and src/sim so that every
// layer above (pmem, ndp, core, pmlib) can record events.
#ifndef SRC_TRACE_TRACE_EVENT_H_
#define SRC_TRACE_TRACE_EVENT_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace nearpm {

// What happened. Span phases carry a duration; instant phases have dur == 0.
enum class TracePhase : std::uint8_t {
  // ---- CPU-side PM interface (host track, one tid per application thread).
  kCpuRead = 0,   // instant: architectural load (post Invariant-1 stall)
  kCpuWrite,      // instant: store into the cache hierarchy
  kCpuPersist,    // span: clwb per line + drain over a range
  kCpuFence,      // instant: bare sfence
  kCpuStall,      // span: thread stalled behind conflicting NDP work
  kCpuDrain,      // span: explicit drain of all devices
  // ---- Command path (PCIe link track, dispatcher track).
  kCmdPost,       // span: MMIO post, incl. Request-FIFO backpressure
  kFifoEnqueue,   // instant: request entered the Request FIFO
  kDevPipeline,   // span: decode + translate + conflict check (Fig. 8 1a-5a)
  kConflictStall, // span: buffered behind a conflicting in-flight request
  // ---- Execution (one track per NearPM unit, one for the maintenance
  // engine of the Multi-device handler).
  kUnitExec,      // span: metadata generation + load/store + DMA on a unit
  kDeferredExec,  // span: maintenance-path work (deferred log deletion)
  // ---- Ordering lifecycle.
  kRetire,            // instant: request architecturally ordered (durable)
  kWritebackAccepted, // instant: clwb accepted into the host r/w queue
  kSyncMarker,        // instant: cross-device synchronization issued
  kSyncComplete,      // instant: synchronization reached on every device
  kSwSyncPoll,        // span: CPU polling completion status (SW-sync mode)
  // ---- Failure and recovery.
  kCrash,          // instant: power failure (arg0 = frontier sync id)
  kCrashOutcome,   // instant: per-request sampled outcome (arg0 = outcome)
  kRecoveryReplay, // instant: hardware recovery re-executed a request
  // ---- Mechanism level (pmlib providers).
  kOpBegin,     // instant: failure-atomic operation opened (seq = tx id)
  kOpCommit,    // instant: operation committed
  kMechRecover, // instant: software recovery pass of a provider
  // ---- Serving layer (src/serve, one serve track per shard).
  kServeEnqueue, // instant: request admitted to a shard queue (arg0 = depth)
  kServeReject,  // instant: request rejected by admission control
  kServeBatch,   // span: one worker batch against a shard (arg0 = batch size)
  kServeRequest, // span: one request executing inside a batch
  kServeTxn,     // span: cross-shard MultiPut (intent, apply, sync, retire)
  // ---- Counter samples (arg0 = sampled value). Rendered as Chrome counter
  // tracks by the exporter, folded into occupancy statistics by the
  // profiler, and mirrored into a registry gauge by the recorder.
  kFifoDepth,       // Request-FIFO occupancy after an enqueue
  kInflightDepth,   // In-flight Access Table population after an insert
  kServeQueueDepth, // shard queue backlog at batch pickup
  // ---- Coherence (appended; values above are a stable external contract).
  kCoherenceWb,     // instant: write-back guard persisted pending CPU lines
                    // ahead of an NDP command (Section 4 coherence handler)
  // ---- Replication fabric (src/net + src/repl; appended for the same
  // stable-contract reason).
  kNetXfer,      // span: one framed message occupying a directed link
                 // (seq = message seq, arg0 = MsgKind, arg1 = payload bytes)
  kNetDeliver,   // instant: message handed to the destination node
  kReplDoorbell, // instant: one-sided redo doorbell rung on a backup
                 // (range = redo record; NPM007 audits persistence)
  // ---- Pipelined NDP units (src/hwmodel geometry; appended for the same
  // stable-contract reason). Only emitted when the configured pipeline is
  // enabled, so default-geometry traces are byte-identical to the seed.
  kPipeStage, // span: one pipeline stage's residency on a unit
              // (arg0 = PipeStage, nested inside the request's kUnitExec)
  kLsqDepth,  // counter: unit in-flight (LSQ) population after a dispatch
  // ---- Live observability (src/obs; appended for the same stable-contract
  // reason).
  kSloAlert,  // instant: SLO watchdog breach (seq = alert id, arg0 = rule
              // index, arg1 = observed value in the rule's unit)
  kCount,
};

// arg0 of a kPipeStage span.
enum class PipeStage : std::uint8_t { kDispatch = 0, kExecute, kWriteback };
const char* PipeStageName(PipeStage stage);

const char* TracePhaseName(TracePhase phase);
// True for the counter-sample phases above: instants whose arg0 is a
// sampled series value rather than a phase-specific annotation.
bool TracePhaseIsCounter(TracePhase phase);

// Track addressing: Chrome trace events live on a (pid, tid) pair; we give
// every simulated resource its own pair so Perfetto renders one lane each.
inline constexpr std::uint32_t kTraceHostPid = 1;      // tid = ThreadId
inline constexpr std::uint32_t kTracePciePid = 2;      // tid = 0, the link
inline constexpr std::uint32_t kTraceSyncPid = 3;      // tid = 0, MD sync
inline constexpr std::uint32_t kTraceServePid = 4;     // tid = worker index
inline constexpr std::uint32_t kTraceNetPid = 5;       // tid = link index
inline constexpr std::uint32_t kTraceReplPid = 6;      // tid = node index
inline constexpr std::uint32_t kTraceObsPid = 7;       // tid = 0, watchdog
inline constexpr std::uint32_t kTraceDevicePidBase = 16;  // + DeviceId
// Tids inside a device pid.
inline constexpr std::uint32_t kTraceDispatcherTid = 0;
inline constexpr std::uint32_t kTraceUnitTidBase = 1;  // + unit index
inline constexpr std::uint32_t kTraceMaintenanceTid = 98;

inline constexpr std::uint32_t TraceDevicePid(DeviceId d) {
  return kTraceDevicePidBase + static_cast<std::uint32_t>(d);
}

// One recorded event. `epoch` separates runs of the virtual clocks: crash
// recovery (and each fresh Runtime sharing a recorder) restarts simulated
// time from zero, so timestamps only order events within one epoch. `order`
// is the global record sequence -- the real issue order of the program --
// which stays monotonic across clock resets; the PpoChecker uses it for
// every "issued before" relation. `trace` ties an event to one end-to-end
// request: ids are allocated at service entry and either stamped explicitly
// (fabric messages carry them across nodes) or inherited from the
// recorder's active trace scope; 0 means "not request-scoped".
struct TraceEvent {
  TracePhase phase = TracePhase::kCpuRead;
  std::uint32_t pid = kTraceHostPid;
  std::uint32_t tid = 0;
  SimTime ts = 0;
  SimTime dur = 0;            // 0 = instant
  std::uint64_t seq = 0;      // request seq / sync id / tx id (0 = none)
  AddrRange range{};          // primary range (write set for requests)
  AddrRange range2{};         // secondary range (read set for requests)
  std::uint64_t arg0 = 0;     // phase-specific (opcode, outcome, frontier...)
  std::uint64_t arg1 = 0;     // phase-specific (post time for exec spans)
  std::uint32_t epoch = 0;    // filled by the recorder
  std::uint64_t order = 0;    // filled by the recorder
  std::uint64_t trace = 0;    // request trace id (0 = none; filled from the
                              // recorder's active scope when unset)

  SimTime end() const { return ts + dur; }
  bool is_span() const { return dur > 0; }
};

// Consumer of the live event stream, invoked synchronously from
// TraceRecorder::Record after epoch/order/trace are filled. The one
// in-tree implementation is the obs-layer FlightRecorder; the indirection
// keeps src/trace below src/obs in the layering. Implementations attached
// to recorders that are pumped from multiple OS threads (the serve layer's
// per-shard recorders in threaded mode) must be internally thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Consume(const TraceEvent& event) = 0;
};

}  // namespace nearpm

#endif  // SRC_TRACE_TRACE_EVENT_H_
