#include "src/trace/metrics.h"

namespace nearpm {

void MetricsRegistry::Reset() {
  std::unique_lock lock(mu_);
  counters_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::Report() const {
  std::shared_lock lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " +
           std::to_string(value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += name + ": n=" + std::to_string(hist.count()) +
           " p50<=" + std::to_string(hist.Percentile(0.5)) +
           "ns p99<=" + std::to_string(hist.Percentile(0.99)) +
           "ns max<=" + std::to_string(hist.Percentile(1.0)) + "ns\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::shared_lock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name +
           "\": " + std::to_string(value.load(std::memory_order_relaxed));
  }
  out += "}, \"latencies_ns\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(hist.count()) +
           ", \"p50\": " + std::to_string(hist.Percentile(0.5)) +
           ", \"p90\": " + std::to_string(hist.Percentile(0.9)) +
           ", \"p99\": " + std::to_string(hist.Percentile(0.99)) +
           ", \"max\": " + std::to_string(hist.Percentile(1.0)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace nearpm
