#include "src/trace/metrics.h"

#include <cstdio>

namespace nearpm {

namespace {

// Formats a gauge deterministically: integral values print without a
// fractional part so byte-stable snapshots stay diff-friendly.
std::string FormatDouble(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  }
  return buf;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
// A '{' starts a label suffix: its quoting is preserved, but raw newlines
// (which would break the line-oriented exposition format if a caller built a
// label value without EscapeLabelValue) are escaped defensively.
std::string SanitizePrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '{') {
      for (; i < name.size(); ++i) {
        if (name[i] == '\n') {
          out += "\\n";
        } else {
          out.push_back(name[i]);
        }
      }
      break;
    }
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

// Base name of a (possibly label-suffixed) series: everything before '{'.
std::string BaseName(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Label suffix including braces ("{a=\"b\"}"), or empty.
std::string LabelSuffix(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

void EmitTypeOnce(std::string& out, std::string& last_base,
                  const std::string& base, const char* type) {
  if (base == last_base) {
    return;
  }
  last_base = base;
  out += "# TYPE " + base + " " + type + "\n";
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // `other` is quiesced by contract; taking its lock shared still guards
  // against a concurrent find-or-create on it.
  std::shared_lock other_lock(other.mu_);
  for (const auto& [name, value] : other.counters_) {
    Increment(name, value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, gauge] : other.gauges_) {
    SetGauge(name, gauge.value());
  }
  for (const auto& [name, hist] : other.histograms_) {
    Latency(name).MergeFrom(hist);
  }
}

void MetricsRegistry::Reset() {
  std::unique_lock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::Report() const {
  std::shared_lock lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " = " +
           std::to_string(value.load(std::memory_order_relaxed)) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += name + " = " + FormatDouble(gauge.value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out += name + ": n=" + std::to_string(hist.count()) +
           " p50<=" + std::to_string(hist.Percentile(0.5)) +
           "ns p99<=" + std::to_string(hist.Percentile(0.99)) +
           "ns max<=" + std::to_string(hist.Percentile(1.0)) + "ns\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::shared_lock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name +
           "\": " + std::to_string(value.load(std::memory_order_relaxed));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + FormatDouble(gauge.value());
  }
  out += "}, \"latencies_ns\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " + std::to_string(hist.count()) +
           ", \"p50\": " + std::to_string(hist.Percentile(0.5)) +
           ", \"p90\": " + std::to_string(hist.Percentile(0.9)) +
           ", \"p99\": " + std::to_string(hist.Percentile(0.99)) +
           ", \"max\": " + std::to_string(hist.Percentile(1.0)) + "}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheus(const std::string& prefix) const {
  std::shared_lock lock(mu_);
  std::string out;
  std::string last_base;
  // std::map iteration is sorted, so label-suffixed series sharing a base
  // name are adjacent and get exactly one # TYPE header.
  for (const auto& [name, value] : counters_) {
    const std::string series = prefix + "_" + SanitizePrometheusName(name);
    EmitTypeOnce(out, last_base, BaseName(series), "counter");
    out += series + " " +
           std::to_string(value.load(std::memory_order_relaxed)) + "\n";
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    const std::string series = prefix + "_" + SanitizePrometheusName(name);
    EmitTypeOnce(out, last_base, BaseName(series), "gauge");
    out += series + " " + FormatDouble(gauge.value()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, hist] : histograms_) {
    // The latency histogram shares its registry key with the phase counter;
    // a Prometheus name must have exactly one type, so the histogram gets
    // its own _latency_ns base. A label suffix on the registry key is
    // preserved on every emitted series (the le label joins the caller's).
    const std::string series = prefix + "_" + SanitizePrometheusName(name);
    const std::string base = BaseName(series) + "_latency_ns";
    const std::string labels = LabelSuffix(series);
    const std::string inner =  // caller labels without braces, "," appended
        labels.empty() ? std::string()
                       : labels.substr(1, labels.size() - 2) + ",";
    EmitTypeOnce(out, last_base, base, "histogram");
    // Real cumulative buckets (not summary quantiles): bucket i's inclusive
    // upper bound is 2^i - 1, bucket 0 holds exactly-zero samples. Empty
    // tail buckets are elided; +Inf always closes the series so PromQL's
    // histogram_quantile sees the full count.
    int top = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.bucket(i) > 0) {
        top = i;
      }
    }
    std::uint64_t cumulative = 0;
    for (int i = 0; i <= top; ++i) {
      cumulative += hist.bucket(i);
      const std::uint64_t le = i == 0 ? 0 : (1ull << i) - 1;
      out += base + "_bucket{" + inner + "le=\"" + std::to_string(le) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += base + "_bucket{" + inner + "le=\"+Inf\"} " +
           std::to_string(hist.count()) + "\n";
    out += base + "_sum" + labels + " " + std::to_string(hist.sum()) + "\n";
    out += base + "_count" + labels + " " + std::to_string(hist.count()) +
           "\n";
  }
  return out;
}

}  // namespace nearpm
