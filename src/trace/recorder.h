// Low-overhead event recorder: one bounded ring buffer per resource track.
//
// Recording is a single branch + struct copy into a preallocated ring; when
// the ring fills, the oldest events on that track are overwritten (the drop
// count is kept, so consumers know the window is partial). Instrumentation
// sites go through the NEARPM_TRACE_* macros below, which compile to a
// null-check when no recorder is attached -- the disabled cost is one
// predictable branch, so performance runs are unaffected (checked by the
// Figure 16/17 benchmarks).
//
// Per-phase metrics (feed_metrics) are accumulated into plain arrays indexed
// by TracePhase -- no string lookup, no registry lock on the record path --
// and folded into the MetricsRegistry lazily when metrics() is accessed.
// Callers already read metrics() only once writers have quiesced (the
// registry's own contract), so the deferred sync is invisible to them.
//
// The simulator is single-OS-threaded (application "threads" are virtual
// clocks), so the recorder needs no synchronization.
#ifndef SRC_TRACE_RECORDER_H_
#define SRC_TRACE_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/metrics.h"
#include "src/trace/trace_event.h"

namespace nearpm {

struct TraceRecorderOptions {
  // Events retained per (pid, tid) track before the ring wraps.
  std::size_t ring_capacity = 1 << 16;
  // Feed span durations into MetricsRegistry latency histograms keyed by
  // phase name (and count every phase).
  bool feed_metrics = true;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderOptions& options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Records one event (fills epoch and order, and stamps the active trace
  // id on events that don't carry one). Call through the macros so argument
  // evaluation is skipped when tracing is off.
  void Record(TraceEvent event);

  // Request-scoped tracing: while a trace id is active, every event recorded
  // with trace == 0 inherits it. Serve workers set the scope around each
  // request's execution (always under the shard lock in threaded mode, so a
  // plain member is race-free); cross-node propagation stamps the id
  // explicitly on fabric events instead.
  void set_active_trace(std::uint64_t id) { active_trace_ = id; }
  std::uint64_t active_trace() const { return active_trace_; }

  // Optional synchronous consumer of the stamped event stream (the obs
  // layer's flight recorder). Null detaches.
  void AttachSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  // Starts a new epoch: virtual clocks restarted (a crash, or a fresh
  // Runtime attached to a shared recorder). Returns the new epoch id.
  std::uint32_t NextEpoch() { return ++epoch_; }
  std::uint32_t epoch() const { return epoch_; }

  // Retained events, sorted by order -- i.e. real record order. When any
  // track's ring has wrapped, the result is trimmed to the newest
  // *globally consistent* suffix of the record stream: tracks wrap at
  // different rates, and a merge of raw ring contents would keep effects
  // (exec spans, persists) from un-wrapped tracks whose causes (retires)
  // the busiest track has already overwritten -- the PPO checker would
  // report phantom violations on such a stream.
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t track_count() const { return tracks_.size(); }

  // Phase metrics accumulated so far, folded into the registry on access
  // (store, not add -- syncing twice never double-counts). Like every other
  // registry read, call once writers have quiesced.
  MetricsRegistry& metrics() {
    SyncPhaseMetrics();
    return metrics_;
  }
  const MetricsRegistry& metrics() const {
    SyncPhaseMetrics();
    return metrics_;
  }

  void Clear();

 private:
  static constexpr std::size_t kPhaseCount =
      static_cast<std::size_t>(TracePhase::kCount);

  struct Ring {
    std::vector<TraceEvent> events;  // capacity-bounded, wrap-around
    std::size_t next = 0;            // write cursor once full
    std::uint64_t dropped = 0;       // overwrites; >0 means events[next] is
                                     // the oldest retained entry
  };

  static std::uint64_t TrackKey(std::uint32_t pid, std::uint32_t tid) {
    return (static_cast<std::uint64_t>(pid) << 32) | tid;
  }

  void SyncPhaseMetrics() const;

  TraceRecorderOptions options_;
  bool enabled_ = true;
  std::uint32_t epoch_ = 0;
  std::uint64_t order_ = 0;
  std::uint64_t active_trace_ = 0;
  TraceSink* sink_ = nullptr;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::unordered_map<std::uint64_t, Ring> tracks_;
  // One-entry track cache: consecutive events land on the same (pid, tid)
  // often enough that skipping the hash lookup pays.
  std::uint64_t cached_track_key_ = ~0ull;
  Ring* cached_track_ = nullptr;
  // Hot-path phase accumulators (single-threaded, plain loads/stores; the
  // Histogram's relaxed atomics cost nothing uncontended).
  std::array<std::uint64_t, kPhaseCount> phase_counts_{};
  std::array<Histogram, kPhaseCount> phase_latency_;
  std::array<double, kPhaseCount> phase_gauge_{};
  std::array<bool, kPhaseCount> phase_gauge_set_{};
  mutable MetricsRegistry metrics_;
};

// Instrumentation entry points. `rec` is a TraceRecorder* (may be null);
// the variadic part is designated initializers of TraceEvent, e.g.
//   NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCpuFence,
//                      .tid = t, .ts = now);
// Both macros expand to nothing costlier than a pointer test when tracing
// is detached; NEARPM_TRACE_SPAN is the same operation, named so call sites
// read as "this is an interval, not an instant".
#define NEARPM_TRACE_EVENT(rec, ...)                              \
  do {                                                            \
    ::nearpm::TraceRecorder* nearpm_trace_rec_ = (rec);           \
    if (nearpm_trace_rec_ != nullptr && nearpm_trace_rec_->enabled()) { \
      nearpm_trace_rec_->Record(::nearpm::TraceEvent{__VA_ARGS__}); \
    }                                                             \
  } while (0)

#define NEARPM_TRACE_SPAN(rec, ...) NEARPM_TRACE_EVENT(rec, __VA_ARGS__)

// True when events would actually be recorded (for guarding pre-computation
// that only feeds tracing).
#define NEARPM_TRACE_ENABLED(rec) ((rec) != nullptr && (rec)->enabled())

// RAII trace-id scope: events recorded while the scope is live inherit the
// request's trace id. Nestable (restores the previous id), null-tolerant.
class TraceIdScope {
 public:
  TraceIdScope(TraceRecorder* recorder, std::uint64_t id)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      previous_ = recorder_->active_trace();
      recorder_->set_active_trace(id);
    }
  }
  ~TraceIdScope() {
    if (recorder_ != nullptr) {
      recorder_->set_active_trace(previous_);
    }
  }
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  TraceRecorder* recorder_;
  std::uint64_t previous_ = 0;
};

}  // namespace nearpm

#endif  // SRC_TRACE_RECORDER_H_
