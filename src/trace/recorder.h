// Low-overhead event recorder: one bounded ring buffer per resource track.
//
// Recording is a single branch + struct copy into a preallocated ring; when
// the ring fills, the oldest events on that track are overwritten (the drop
// count is kept, so consumers know the window is partial). Instrumentation
// sites go through the NEARPM_TRACE_* macros below, which compile to a
// null-check when no recorder is attached -- the disabled cost is one
// predictable branch, so performance runs are unaffected (checked by the
// Figure 16/17 benchmarks).
//
// Per-phase metrics (feed_metrics) are accumulated into plain arrays indexed
// by TracePhase -- no string lookup, no registry lock on the record path --
// and folded into the MetricsRegistry lazily when metrics() is accessed.
// Callers already read metrics() only once writers have quiesced (the
// registry's own contract), so the deferred sync is invisible to them.
//
// The simulator is single-OS-threaded (application "threads" are virtual
// clocks), so the recorder needs no synchronization.
#ifndef SRC_TRACE_RECORDER_H_
#define SRC_TRACE_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/trace/metrics.h"
#include "src/trace/trace_event.h"

namespace nearpm {

struct TraceRecorderOptions {
  // Events retained per (pid, tid) track before the ring wraps.
  std::size_t ring_capacity = 1 << 16;
  // Feed span durations into MetricsRegistry latency histograms keyed by
  // phase name (and count every phase).
  bool feed_metrics = true;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderOptions& options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Records one event (fills epoch and order). Call through the macros so
  // argument evaluation is skipped when tracing is off.
  void Record(TraceEvent event);

  // Starts a new epoch: virtual clocks restarted (a crash, or a fresh
  // Runtime attached to a shared recorder). Returns the new epoch id.
  std::uint32_t NextEpoch() { return ++epoch_; }
  std::uint32_t epoch() const { return epoch_; }

  // Retained events, sorted by order -- i.e. real record order. When any
  // track's ring has wrapped, the result is trimmed to the newest
  // *globally consistent* suffix of the record stream: tracks wrap at
  // different rates, and a merge of raw ring contents would keep effects
  // (exec spans, persists) from un-wrapped tracks whose causes (retires)
  // the busiest track has already overwritten -- the PPO checker would
  // report phantom violations on such a stream.
  std::vector<TraceEvent> Snapshot() const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t track_count() const { return tracks_.size(); }

  // Phase metrics accumulated so far, folded into the registry on access
  // (store, not add -- syncing twice never double-counts). Like every other
  // registry read, call once writers have quiesced.
  MetricsRegistry& metrics() {
    SyncPhaseMetrics();
    return metrics_;
  }
  const MetricsRegistry& metrics() const {
    SyncPhaseMetrics();
    return metrics_;
  }

  void Clear();

 private:
  static constexpr std::size_t kPhaseCount =
      static_cast<std::size_t>(TracePhase::kCount);

  struct Ring {
    std::vector<TraceEvent> events;  // capacity-bounded, wrap-around
    std::size_t next = 0;            // write cursor once full
    std::uint64_t dropped = 0;       // overwrites; >0 means events[next] is
                                     // the oldest retained entry
  };

  static std::uint64_t TrackKey(std::uint32_t pid, std::uint32_t tid) {
    return (static_cast<std::uint64_t>(pid) << 32) | tid;
  }

  void SyncPhaseMetrics() const;

  TraceRecorderOptions options_;
  bool enabled_ = true;
  std::uint32_t epoch_ = 0;
  std::uint64_t order_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::unordered_map<std::uint64_t, Ring> tracks_;
  // One-entry track cache: consecutive events land on the same (pid, tid)
  // often enough that skipping the hash lookup pays.
  std::uint64_t cached_track_key_ = ~0ull;
  Ring* cached_track_ = nullptr;
  // Hot-path phase accumulators (single-threaded, plain loads/stores; the
  // Histogram's relaxed atomics cost nothing uncontended).
  std::array<std::uint64_t, kPhaseCount> phase_counts_{};
  std::array<Histogram, kPhaseCount> phase_latency_;
  std::array<double, kPhaseCount> phase_gauge_{};
  std::array<bool, kPhaseCount> phase_gauge_set_{};
  mutable MetricsRegistry metrics_;
};

// Instrumentation entry points. `rec` is a TraceRecorder* (may be null);
// the variadic part is designated initializers of TraceEvent, e.g.
//   NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kCpuFence,
//                      .tid = t, .ts = now);
// Both macros expand to nothing costlier than a pointer test when tracing
// is detached; NEARPM_TRACE_SPAN is the same operation, named so call sites
// read as "this is an interval, not an instant".
#define NEARPM_TRACE_EVENT(rec, ...)                              \
  do {                                                            \
    ::nearpm::TraceRecorder* nearpm_trace_rec_ = (rec);           \
    if (nearpm_trace_rec_ != nullptr && nearpm_trace_rec_->enabled()) { \
      nearpm_trace_rec_->Record(::nearpm::TraceEvent{__VA_ARGS__}); \
    }                                                             \
  } while (0)

#define NEARPM_TRACE_SPAN(rec, ...) NEARPM_TRACE_EVENT(rec, __VA_ARGS__)

// True when events would actually be recorded (for guarding pre-computation
// that only feeds tracing).
#define NEARPM_TRACE_ENABLED(rec) ((rec) != nullptr && (rec)->enabled())

}  // namespace nearpm

#endif  // SRC_TRACE_RECORDER_H_
