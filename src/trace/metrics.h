// Registry of named counters and latency histograms.
//
// The trace recorder feeds every span's duration into a histogram named
// after its phase, giving a per-phase latency breakdown of the request
// lifecycle for free; subsystems can additionally register their own
// counters (requests issued, conflicts, bytes moved...). The registry is a
// plain single-threaded structure -- the simulator runs on one OS thread --
// and reports either as human-readable text or as JSON for trajectory
// tracking across runs.
#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/stats.h"

namespace nearpm {

class MetricsRegistry {
 public:
  // Named monotonic counter (created on first use).
  std::uint64_t& Counter(const std::string& name) { return counters_[name]; }
  // Named latency histogram in simulated nanoseconds (created on first use).
  Histogram& Latency(const std::string& name) { return histograms_[name]; }

  void AddLatency(const std::string& name, std::uint64_t ns) {
    histograms_[name].Add(ns);
  }
  void Increment(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void Reset();

  // One line per metric: counters, then histograms with count/p50/p99/max.
  std::string Report() const;
  // {"counters": {...}, "latencies_ns": {"phase": {"count":..,"p50":..}}}
  std::string ToJson() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace nearpm

#endif  // SRC_TRACE_METRICS_H_
