// Registry of named counters, gauges and latency histograms.
//
// The trace recorder feeds every span's duration into a histogram named
// after its phase, giving a per-phase latency breakdown of the request
// lifecycle for free; subsystems can additionally register their own
// counters (requests issued, conflicts, bytes moved...) and gauges
// (last-sampled queue depths, duty cycles). Recording is safe from
// concurrent threads: counters and gauges are atomics and histogram buckets
// are atomic, with a shared mutex taken only to find-or-create the map node
// (std::map nodes are stable, so the returned references stay valid for the
// registry's lifetime and can be cached by hot paths for lock-free
// recording). Reports are accurate once writers have quiesced and render
// as human-readable text, as JSON for trajectory tracking, or as the
// Prometheus text exposition format for standard scrape tooling.
//
// Metric names may carry a Prometheus label suffix, e.g.
// `unit_duty_cycle{shard="0",unit="2"}`: the maps treat the whole string as
// the key, and the Prometheus writer groups series sharing the base name
// (up to the '{') under one # TYPE header.
#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/stats.h"

namespace nearpm {

// Escapes a Prometheus label value per the text exposition format: backslash,
// double quote and newline must be written as \\, \" and \n. Everything else
// (including '/', ':' and spaces, which replica track names carry) is legal
// inside a quoted label value and passes through. Call this when building a
// label-suffixed metric name, e.g.
//   "duty{resource=\"" + EscapeLabelValue(track) + "\"}".
std::string EscapeLabelValue(const std::string& value);

// A settable point-in-time value (queue depth, duty cycle, occupancy). The
// double payload rides one atomic word via bit_cast so Set/value are
// lock-free and safe from concurrent threads.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 bits == 0.0
};

class MetricsRegistry {
 public:
  using CounterMap = std::map<std::string, std::atomic<std::uint64_t>>;
  using GaugeMap = std::map<std::string, Gauge>;
  using HistogramMap = std::map<std::string, Histogram>;

  // Named monotonic counter (created on first use). The reference stays
  // valid until Reset()/destruction; cache it to increment without any lock.
  std::atomic<std::uint64_t>& Counter(const std::string& name) {
    {
      std::shared_lock lock(mu_);
      auto it = counters_.find(name);
      if (it != counters_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    return counters_[name];
  }
  // Named latency histogram in simulated nanoseconds (created on first use).
  // Same lifetime/caching contract as Counter().
  Histogram& Latency(const std::string& name) {
    {
      std::shared_lock lock(mu_);
      auto it = histograms_.find(name);
      if (it != histograms_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    return histograms_[name];
  }

  // Named gauge (created on first use). Same lifetime/caching contract as
  // Counter().
  Gauge& GaugeRef(const std::string& name) {
    {
      std::shared_lock lock(mu_);
      auto it = gauges_.find(name);
      if (it != gauges_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    return gauges_[name];
  }

  void AddLatency(const std::string& name, std::uint64_t ns) {
    Latency(name).Add(ns);
  }
  void Increment(const std::string& name, std::uint64_t by = 1) {
    Counter(name).fetch_add(by, std::memory_order_relaxed);
  }
  void SetGauge(const std::string& name, double value) {
    GaugeRef(name).Set(value);
  }

  bool empty() const {
    std::shared_lock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  // Direct views for tests and exporters. Only safe while no thread can be
  // creating new metrics (values may still be concurrently incremented).
  const CounterMap& counters() const { return counters_; }
  const GaugeMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

  // Folds `other` into this registry: counters add, gauges take `other`'s
  // value, histograms merge bucket-wise. `other` must be quiesced.
  void MergeFrom(const MetricsRegistry& other);

  void Reset();

  // One line per metric: counters, then gauges, then histograms with
  // count/p50/p99/max.
  std::string Report() const;
  // {"counters": {...}, "gauges": {...},
  //  "latencies_ns": {"phase": {"count":..,"p50":..}}}
  std::string ToJson() const;
  // Prometheus text exposition format (version 0.0.4): counters as
  // `<prefix>_<name> v`, gauges likewise, histograms as real histogram
  // types with cumulative _bucket series (le = the power-of-two bucket's
  // inclusive upper bound) plus _sum and _count. Invalid metric-name
  // characters are sanitized to '_'; label suffixes ({...}) keep their
  // quoting but any
  // raw control characters inside them are escaped so the exposition stays
  // parseable even if a caller skipped EscapeLabelValue().
  std::string ToPrometheus(const std::string& prefix = "nearpm") const;

 private:
  mutable std::shared_mutex mu_;
  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
};

}  // namespace nearpm

#endif  // SRC_TRACE_METRICS_H_
