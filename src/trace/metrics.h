// Registry of named counters and latency histograms.
//
// The trace recorder feeds every span's duration into a histogram named
// after its phase, giving a per-phase latency breakdown of the request
// lifecycle for free; subsystems can additionally register their own
// counters (requests issued, conflicts, bytes moved...). Recording is safe
// from concurrent threads: counters are atomics and histogram buckets are
// atomic, with a shared mutex taken only to find-or-create the map node
// (std::map nodes are stable, so the returned references stay valid for the
// registry's lifetime and can be cached by hot paths for lock-free
// recording). Reports are accurate once writers have quiesced and render
// either as human-readable text or as JSON for trajectory tracking.
#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/stats.h"

namespace nearpm {

class MetricsRegistry {
 public:
  using CounterMap = std::map<std::string, std::atomic<std::uint64_t>>;
  using HistogramMap = std::map<std::string, Histogram>;

  // Named monotonic counter (created on first use). The reference stays
  // valid until Reset()/destruction; cache it to increment without any lock.
  std::atomic<std::uint64_t>& Counter(const std::string& name) {
    {
      std::shared_lock lock(mu_);
      auto it = counters_.find(name);
      if (it != counters_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    return counters_[name];
  }
  // Named latency histogram in simulated nanoseconds (created on first use).
  // Same lifetime/caching contract as Counter().
  Histogram& Latency(const std::string& name) {
    {
      std::shared_lock lock(mu_);
      auto it = histograms_.find(name);
      if (it != histograms_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mu_);
    return histograms_[name];
  }

  void AddLatency(const std::string& name, std::uint64_t ns) {
    Latency(name).Add(ns);
  }
  void Increment(const std::string& name, std::uint64_t by = 1) {
    Counter(name).fetch_add(by, std::memory_order_relaxed);
  }

  bool empty() const {
    std::shared_lock lock(mu_);
    return counters_.empty() && histograms_.empty();
  }
  // Direct views for tests and exporters. Only safe while no thread can be
  // creating new metrics (values may still be concurrently incremented).
  const CounterMap& counters() const { return counters_; }
  const HistogramMap& histograms() const { return histograms_; }

  void Reset();

  // One line per metric: counters, then histograms with count/p50/p99/max.
  std::string Report() const;
  // {"counters": {...}, "latencies_ns": {"phase": {"count":..,"p50":..}}}
  std::string ToJson() const;

 private:
  mutable std::shared_mutex mu_;
  CounterMap counters_;
  HistogramMap histograms_;
};

}  // namespace nearpm

#endif  // SRC_TRACE_METRICS_H_
