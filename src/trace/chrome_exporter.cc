#include "src/trace/chrome_exporter.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>

namespace nearpm {

namespace {

// Category string, used by trace viewers for filtering.
const char* PhaseCategory(TracePhase phase) {
  switch (phase) {
    case TracePhase::kCpuRead:
    case TracePhase::kCpuWrite:
    case TracePhase::kCpuPersist:
    case TracePhase::kCpuFence:
    case TracePhase::kCpuStall:
    case TracePhase::kCpuDrain:
      return "cpu";
    case TracePhase::kCmdPost:
    case TracePhase::kFifoEnqueue:
    case TracePhase::kDevPipeline:
    case TracePhase::kConflictStall:
      return "cmd";
    case TracePhase::kUnitExec:
    case TracePhase::kDeferredExec:
      return "exec";
    case TracePhase::kRetire:
    case TracePhase::kWritebackAccepted:
    case TracePhase::kSyncMarker:
    case TracePhase::kSyncComplete:
    case TracePhase::kSwSyncPoll:
      return "ordering";
    case TracePhase::kCrash:
    case TracePhase::kCrashOutcome:
    case TracePhase::kRecoveryReplay:
      return "failure";
    case TracePhase::kOpBegin:
    case TracePhase::kOpCommit:
    case TracePhase::kMechRecover:
      return "mechanism";
    case TracePhase::kServeEnqueue:
    case TracePhase::kServeReject:
    case TracePhase::kServeBatch:
    case TracePhase::kServeRequest:
    case TracePhase::kServeTxn:
      return "serve";
    case TracePhase::kFifoDepth:
    case TracePhase::kInflightDepth:
    case TracePhase::kServeQueueDepth:
      return "counter";
    case TracePhase::kCoherenceWb:
      return "cpu";
    case TracePhase::kNetXfer:
    case TracePhase::kNetDeliver:
      return "net";
    case TracePhase::kReplDoorbell:
      return "repl";
    case TracePhase::kPipeStage:
      return "exec";
    case TracePhase::kLsqDepth:
      return "counter";
    case TracePhase::kSloAlert:
      return "obs";
    case TracePhase::kCount:
      break;
  }
  return "?";
}

// Chrome timestamps are microseconds; keep nanosecond precision as
// fractional microseconds.
void AppendMicros(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void AppendU64(std::string& out, const char* key, std::uint64_t v,
               bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
}

}  // namespace

std::string TraceProcessName(std::uint32_t pid) {
  if (pid == kTraceHostPid) return "host CPU";
  if (pid == kTracePciePid) return "PCIe link";
  if (pid == kTraceSyncPid) return "multi-device sync";
  if (pid == kTraceServePid) return "serve front end";
  if (pid == kTraceNetPid) return "network fabric";
  if (pid == kTraceReplPid) return "replication";
  if (pid >= kTraceDevicePidBase) {
    return "NearPM device " + std::to_string(pid - kTraceDevicePidBase);
  }
  return "pid " + std::to_string(pid);
}

std::string TraceThreadName(std::uint32_t pid, std::uint32_t tid) {
  if (pid == kTraceHostPid) return "cpu thread " + std::to_string(tid);
  if (pid == kTracePciePid) return "link";
  if (pid == kTraceSyncPid) return "sync machine";
  if (pid == kTraceServePid) return "serve worker " + std::to_string(tid);
  if (pid == kTraceNetPid) return "link " + std::to_string(tid);
  if (pid == kTraceReplPid) return "node " + std::to_string(tid);
  if (pid >= kTraceDevicePidBase) {
    if (tid == kTraceDispatcherTid) return "dispatcher";
    if (tid == kTraceMaintenanceTid) return "maintenance engine";
    return "unit " + std::to_string(tid - kTraceUnitTidBase);
  }
  return "tid " + std::to_string(tid);
}

void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os,
                      const ChromeTraceOptions& options) {
  // Lay epochs out back to back: epoch k starts after the latest end time of
  // all earlier epochs plus a gap.
  std::map<std::uint32_t, std::uint64_t> epoch_end;
  for (const TraceEvent& e : events) {
    std::uint64_t& end = epoch_end[e.epoch];
    end = std::max(end, e.end());
  }
  std::map<std::uint32_t, std::uint64_t> epoch_offset;
  std::uint64_t cursor = 0;
  for (const auto& [epoch, end] : epoch_end) {
    epoch_offset[epoch] = cursor;
    cursor += end + options.epoch_gap_ns;
  }

  os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first_event = true;
  auto emit = [&](const std::string& line) {
    if (!first_event) os << ",";
    first_event = false;
    os << "\n" << line;
  };

  // Metadata: name every (pid, tid) track once.
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
  for (const TraceEvent& e : events) {
    pids.insert(e.pid);
    tracks.insert({e.pid, e.tid});
  }
  for (std::uint32_t pid : pids) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid) + ", \"tid\": 0, \"args\": {\"name\": \"" +
         TraceProcessName(pid) + "\"}}");
  }
  for (const auto& [pid, tid] : tracks) {
    emit("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(pid) + ", \"tid\": " + std::to_string(tid) +
         ", \"args\": {\"name\": \"" + TraceThreadName(pid, tid) + "\"}}");
  }

  for (const TraceEvent& e : events) {
    // Counter samples become Chrome counter-track events ("ph": "C"):
    // Perfetto renders one graph per (pid, name) series, so queue depth and
    // in-flight-table occupancy plot alongside the span lanes.
    if (TracePhaseIsCounter(e.phase)) {
      std::string line = "{\"name\": \"";
      line += TracePhaseName(e.phase);
      line += "\", \"cat\": \"";
      line += PhaseCategory(e.phase);
      line += "\", \"ph\": \"C\", \"pid\": " + std::to_string(e.pid) +
              ", \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
      AppendMicros(line, e.ts + epoch_offset[e.epoch]);
      line += ", \"args\": {\"value\": " + std::to_string(e.arg0) + "}}";
      emit(line);
      continue;
    }
    std::string line = "{\"name\": \"";
    line += TracePhaseName(e.phase);
    line += "\", \"cat\": \"";
    line += PhaseCategory(e.phase);
    line += "\", \"ph\": \"";
    line += e.is_span() ? 'X' : 'i';
    line += "\", \"pid\": " + std::to_string(e.pid) +
            ", \"tid\": " + std::to_string(e.tid) + ", \"ts\": ";
    AppendMicros(line, e.ts + epoch_offset[e.epoch]);
    if (e.is_span()) {
      line += ", \"dur\": ";
      AppendMicros(line, e.dur);
    } else {
      line += ", \"s\": \"t\"";  // instant scope: thread
    }
    line += ", \"args\": {";
    bool first_arg = true;
    AppendU64(line, "epoch", e.epoch, &first_arg);
    if (e.seq != 0) AppendU64(line, "seq", e.seq, &first_arg);
    if (!e.range.empty()) {
      AppendU64(line, "addr", e.range.begin, &first_arg);
      AppendU64(line, "size", e.range.size(), &first_arg);
    }
    if (!e.range2.empty()) {
      AppendU64(line, "addr2", e.range2.begin, &first_arg);
      AppendU64(line, "size2", e.range2.size(), &first_arg);
    }
    if (e.arg0 != 0) AppendU64(line, "arg0", e.arg0, &first_arg);
    if (e.arg1 != 0) AppendU64(line, "arg1", e.arg1, &first_arg);
    line += "}}";
    emit(line);
  }
  os << "\n]}\n";
}

void WriteChromeTrace(const TraceRecorder& recorder, std::ostream& os,
                      const ChromeTraceOptions& options) {
  WriteChromeTrace(recorder.Snapshot(), os, options);
}

bool WriteChromeTraceFile(const TraceRecorder& recorder,
                          const std::string& path,
                          const ChromeTraceOptions& options) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  WriteChromeTrace(recorder, f, options);
  return f.good();
}

}  // namespace nearpm
