// Lightweight Status / StatusOr error handling (no exceptions on hot paths).
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nearpm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kDataLoss,       // recovery found unrecoverable/inconsistent persistent state
  kUnavailable,    // device busy / not initialized
  kInternal,
};

const char* StatusCodeName(StatusCode code);

// Value-semantic error descriptor. A default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status DataLoss(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Holds either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define NEARPM_RETURN_IF_ERROR(expr)           \
  do {                                         \
    ::nearpm::Status _st = (expr);             \
    if (!_st.ok()) {                           \
      return _st;                              \
    }                                          \
  } while (false)

// Evaluates a StatusOr expression, returning its error or binding the value.
#define NEARPM_ASSIGN_OR_RETURN(lhs, expr)     \
  auto lhs##_or = (expr);                      \
  if (!lhs##_or.ok()) {                        \
    return lhs##_or.status();                  \
  }                                            \
  auto lhs = std::move(lhs##_or).value()

}  // namespace nearpm

#endif  // SRC_COMMON_STATUS_H_
