// Small statistics helpers used by the benchmark harness to report the
// mean / stddev the paper plots as bars with error whiskers.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nearpm {

// Welford online mean / variance accumulator. Single-threaded.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket latency histogram with percentile queries (power-of-two
// bucketing, values in arbitrary units). Add() is safe to call from
// concurrent threads; queries are accurate once writers have quiesced
// (concurrent queries see some valid intermediate population).
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Add(std::uint64_t value);
  std::uint64_t count() const { return total_.load(std::memory_order_relaxed); }
  // Returns an upper bound for the q-quantile (q in [0,1]).
  std::uint64_t Percentile(double q) const;
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> total_{0};
};

// Geometric mean of a set of ratios (the paper reports average speedups).
double GeoMean(const std::vector<double>& values);

}  // namespace nearpm

#endif  // SRC_COMMON_STATS_H_
