// Small statistics helpers used by the benchmark harness to report the
// mean / stddev the paper plots as bars with error whiskers.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nearpm {

// Welford online mean / variance accumulator. Single-threaded.
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket latency histogram with percentile queries (power-of-two
// bucketing, values in arbitrary units). Add() is safe to call from
// concurrent threads; queries are accurate once writers have quiesced
// (concurrent queries see some valid intermediate population).
//
// Power-of-two upper-bound semantics: a value v lands in bucket
// bit_width(v), i.e. bucket i covers [2^(i-1), 2^i - 1] (bucket 0 holds
// exactly v == 0). Percentile(q) walks the buckets to the smallest one
// containing the q-quantile sample and returns that bucket's *inclusive
// upper bound*, 2^i - 1 -- an upper bound on the true quantile, never an
// interpolation. Consequences worth knowing:
//  * Percentile is exact only for values that are themselves 2^i - 1;
//    otherwise it overshoots by at most 2x (the bucket width).
//  * Percentile(0.0) is the upper bound of the smallest populated bucket,
//    not the minimum sample; Percentile(1.0) is the upper bound of the
//    largest populated bucket, not the maximum sample.
//  * An empty histogram reports 0 for every quantile.
class Histogram {
 public:
  Histogram();
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Add(std::uint64_t value);
  std::uint64_t count() const { return total_.load(std::memory_order_relaxed); }
  // Exact sum of all added values (unlike the bucketed quantiles).
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Returns an upper bound for the q-quantile (q in [0,1]); see above.
  std::uint64_t Percentile(double q) const;
  // Adds `other`'s population (bucket-wise) into this histogram.
  void MergeFrom(const Histogram& other);
  std::string ToString() const;

  static constexpr int kBuckets = 64;
  // Population of bucket i (0 holds exactly v == 0; i > 0 covers
  // [2^(i-1), 2^i - 1]) -- for exporters that serialize the distribution.
  std::uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// Geometric mean of a set of ratios (the paper reports average speedups).
double GeoMean(const std::vector<double>& values);

}  // namespace nearpm

#endif  // SRC_COMMON_STATS_H_
