// Deterministic, seedable random number generation for workloads and crash
// injection. xoshiro256** — fast, good statistical quality, and fully
// reproducible across platforms (unlike std::mt19937 distributions).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace nearpm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method (debiased).
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nearpm

#endif  // SRC_COMMON_RNG_H_
