// Fundamental identifier and address types shared by every NearPM module.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace nearpm {

// Byte offset into the global (possibly device-interleaved) PM address space.
// The simulated "virtual address" of persistent data: pools hand out ranges of
// this space, and the NDP address-mapping table translates them to
// device-local physical offsets.
using PmAddr = std::uint64_t;

// Identifier of a PM pool created through the pmlib allocator. Pool ids are
// unique for the lifetime of a simulated machine, including across simulated
// restarts (so NDP address translations stay valid over context switches).
using PoolId = std::uint32_t;

// Application thread issuing NearPM commands. Used, together with the pool id,
// to index per-thread logging/checkpoint state (Table 2 of the paper).
using ThreadId = std::uint32_t;

// Index of a NearPM device in an interleaved set.
using DeviceId = std::uint32_t;

inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kPmPageSize = 4096;  // checkpoint/shadow granularity

// Rounds `n` up to the next multiple of `align` (align must be a power of 2).
constexpr std::uint64_t AlignUp(std::uint64_t n, std::uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

constexpr std::uint64_t AlignDown(std::uint64_t n, std::uint64_t align) {
  return n & ~(align - 1);
}

// A half-open byte range [begin, end) in the PM address space.
struct AddrRange {
  PmAddr begin = 0;
  PmAddr end = 0;

  constexpr std::uint64_t size() const { return end - begin; }
  constexpr bool empty() const { return begin >= end; }
  constexpr bool Contains(PmAddr a) const { return a >= begin && a < end; }
  constexpr bool Overlaps(const AddrRange& o) const {
    return !empty() && !o.empty() && begin < o.end && o.begin < end;
  }
  friend constexpr bool operator==(const AddrRange&, const AddrRange&) = default;
};

}  // namespace nearpm

#endif  // SRC_COMMON_TYPES_H_
