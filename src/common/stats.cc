#include "src/common/stats.h"

#include <bit>
#include <cmath>

namespace nearpm {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram() = default;

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  // Copies are snapshots: relaxed loads of a (possibly concurrently written)
  // source, plain stores into the fresh destination.
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  total_.store(other.total_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  return *this;
}

void Histogram::Add(std::uint64_t value) {
  const int bucket = value == 0 ? 0 : std::bit_width(value);
  buckets_[bucket >= kBuckets ? kBuckets - 1 : bucket].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

std::uint64_t Histogram::Percentile(double q) const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) {
    return 0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      return i == 0 ? 0 : (1ULL << i) - 1;  // bucket upper bound
    }
  }
  return ~0ULL;
}

std::string Histogram::ToString() const {
  std::string out;
  out += "p50=" + std::to_string(Percentile(0.50));
  out += " p90=" + std::to_string(Percentile(0.90));
  out += " p99=" + std::to_string(Percentile(0.99));
  out += " n=" + std::to_string(count());
  return out;
}

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace nearpm
