// In-flight memory access table (Section 5.1).
//
// Tracks the address ranges currently being read or written by NearPM units
// so the Dispatcher can (a) stall a new request that conflicts with an
// in-flight one and (b) stall an incoming host access that conflicts with an
// in-flight request -- the hardware half of Invariants 1 and 2.
#ifndef SRC_NDP_INFLIGHT_TABLE_H_
#define SRC_NDP_INFLIGHT_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace nearpm {

class InflightTable {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    AddrRange read;    // addresses the request reads
    AddrRange write;   // addresses the request writes
    SimTime completion = 0;
  };

  void Insert(const Entry& entry) { entries_.push_back(entry); }

  // Latest completion time among in-flight entries whose read or write range
  // overlaps `range` (for a writer) or whose write range overlaps (for a
  // reader). Appends the seqs of the conflicting entries to `conflicts` when
  // non-null. Returns 0 when there is no conflict.
  SimTime Conflicts(const AddrRange& range, bool access_is_write, SimTime now,
                    std::vector<std::uint64_t>* conflicts = nullptr) const;

  // Drops entries that completed at or before `now`.
  void Prune(SimTime now);

  std::size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace nearpm

#endif  // SRC_NDP_INFLIGHT_TABLE_H_
