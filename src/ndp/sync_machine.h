// Synchronization state machine of the Multi-device handler (Figure 12).
//
// For every command duplicated across devices, each device tracks whether its
// local execution and every remote execution of the same command have
// completed. The machine leaves All-Complete when the duplicated command is
// received and returns once local + all remote completion signals arrived;
// writes ordered after the synchronization may only persist after every
// participant is back in All-Complete (Invariant 3).
#ifndef SRC_NDP_SYNC_MACHINE_H_
#define SRC_NDP_SYNC_MACHINE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace nearpm {

class SyncStateMachine {
 public:
  enum class State : std::uint8_t {
    kAllComplete,  // C: no duplicated command outstanding
    kExecuting,    // E: waiting for local and/or remote completion signals
  };

  // `participants`: number of devices the command was duplicated to.
  explicit SyncStateMachine(int participants);

  State state() const { return state_; }
  int participants() const { return participants_; }

  // A duplicated command was received; moves C -> E.
  Status ReceiveCommand();
  // Local execution finished.
  Status ReceiveLocalComplete();
  // A remote device signalled completion.
  Status ReceiveRemoteComplete(DeviceId remote);

  // Abandons an in-flight command and returns to All-Complete, e.g. when the
  // coordinator aborts a cross-device transaction after a participant failed.
  // Completion signals for the abandoned command are rejected like any other
  // out-of-order signal. No-op when already All-Complete.
  void Reset();

  // True when local and all remote completions have been observed (state C).
  bool AllComplete() const { return state_ == State::kAllComplete; }

  bool local_done() const { return local_done_; }
  // Number of remote participants whose completion is still outstanding.
  int remotes_pending() const;

  std::uint64_t commands_tracked() const { return commands_tracked_; }

 private:
  void MaybeComplete();

  int participants_;
  State state_ = State::kAllComplete;
  bool local_done_ = false;
  std::vector<bool> remote_done_;
  std::uint64_t commands_tracked_ = 0;
};

}  // namespace nearpm

#endif  // SRC_NDP_SYNC_MACHINE_H_
