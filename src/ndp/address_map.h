// Address Mapping Table (Section 5.4).
//
// NearPM commands carry virtual addresses; the device translates them without
// involving the host TLB by exploiting the pool abstraction of PM libraries:
// when a pool is created, the runtime registers the pool's base translation
// with every device, and any address inside the pool translates as
// base offset + delta. The table is indexed by pool id (plus thread id for
// multi-threaded pools whose per-thread regions map separately), and stays
// valid across context switches because pool ids are system-unique.
#ifndef SRC_NDP_ADDRESS_MAP_H_
#define SRC_NDP_ADDRESS_MAP_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/pmem/interleave.h"

namespace nearpm {

class AddressMappingTable {
 public:
  explicit AddressMappingTable(const InterleaveMap* interleave)
      : interleave_(interleave) {}

  // Registers a pool: virtual range [virt_base, virt_base+size) maps to the
  // global physical range [phys_base, phys_base+size).
  Status RegisterPool(PoolId pool, std::uint64_t virt_base, PmAddr phys_base,
                      std::uint64_t size);
  Status UnregisterPool(PoolId pool);

  struct Translation {
    PmAddr global = 0;        // global physical address
    DeviceId device = 0;      // owning device of the first byte
    PmAddr local_offset = 0;  // device-local physical offset
  };

  // Translates a virtual address belonging to `pool`. Fails if the pool is
  // unknown or the address (plus size) escapes the pool -- the boundary check
  // Section 9 describes for multi-tenancy.
  StatusOr<Translation> Translate(PoolId pool, std::uint64_t virt_addr,
                                  std::uint64_t size) const;

  std::size_t pool_count() const { return pools_.size(); }

 private:
  struct PoolEntry {
    std::uint64_t virt_base = 0;
    PmAddr phys_base = 0;
    std::uint64_t size = 0;
  };

  const InterleaveMap* interleave_;
  std::unordered_map<PoolId, PoolEntry> pools_;
};

}  // namespace nearpm

#endif  // SRC_NDP_ADDRESS_MAP_H_
