// Pipelined NearPM unit pool.
//
// Each NearPM unit is modeled as a dispatch -> execute -> writeback pipeline
// with an LSQ-style bound on requests in flight inside the unit
// (dispatched but not yet written back). The stage widths and the bound come
// from hwmodel::HwConfig; the default geometry (zero-width stages, unbounded
// LSQ) collapses each unit back into the seed's single Timeline, and the
// scheduler then reproduces sim::UnitPool decision-for-decision so default
// traces stay byte-identical to the seed.
//
// Pipelined semantics:
//  * a request occupies its unit's dispatch stage for `dispatch_ns`, the
//    execute stage for the request's work time, and the writeback stage for
//    `writeback_ns`, each stage a Timeline of its own (stages of different
//    requests overlap; stages of one request chain);
//  * the unit is chosen by earliest dispatch availability (ties to the
//    lowest index, mirroring UnitPool's policy);
//  * when the LSQ is full, dispatch stalls until the oldest in-flight
//    request completes writeback (`lsq_stalled` reports the stall, and the
//    device folds it into the dispatcher's conflict-stall attribution);
//  * the request's writes remain visible to the in-flight conflict check
//    until writeback ends -- the device inserts wb_end, not exec_end, into
//    its InflightTable, so overlapping PM ranges stall behind the full
//    pipeline residency.
#ifndef SRC_NDP_PIPELINE_H_
#define SRC_NDP_PIPELINE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "src/hwmodel/hw_config.h"
#include "src/sim/timeline.h"

namespace nearpm {

// Where one request sat in its unit's pipeline. With the pipeline disabled
// the three stages degenerate: dispatch and writeback are empty
// (dispatch_end == dispatch_start == exec_start, wb_start == wb_end ==
// exec_end) and the schedule is exactly what sim::UnitPool would have
// produced.
struct PipelineSchedule {
  int unit = 0;
  SimTime dispatch_start = 0;
  SimTime dispatch_end = 0;
  SimTime exec_start = 0;
  SimTime exec_end = 0;
  SimTime wb_start = 0;
  SimTime wb_end = 0;
  // Dispatch waited for the oldest in-flight request to drain (LSQ full).
  bool lsq_stalled = false;
  // In-flight population of the unit right after this dispatch.
  std::size_t lsq_occupancy = 0;
};

class UnitPipeline {
 public:
  // `hw` must outlive the pipeline (the owning device holds the config).
  explicit UnitPipeline(const hwmodel::HwConfig* hw);

  // Schedules `work_ns` of execute-stage work starting no earlier than
  // `earliest`, on the unit that can dispatch it first.
  PipelineSchedule Schedule(SimTime earliest, double work_ns);

  // Completion (writeback end) of all work scheduled so far.
  SimTime AllIdleAt() const;

  int size() const { return static_cast<int>(units_.size()); }
  bool pipelined() const { return pipelined_; }
  void Reset();

 private:
  struct Unit {
    Timeline dispatch;
    Timeline exec;
    Timeline writeback;
    // Writeback-end times of requests in flight (dispatched, not yet
    // written back), oldest first; bounded by lsq_depth when > 0.
    std::deque<SimTime> lsq;
  };

  const hwmodel::HwConfig* hw_;
  bool pipelined_;
  std::vector<Unit> units_;
};

}  // namespace nearpm

#endif  // SRC_NDP_PIPELINE_H_
