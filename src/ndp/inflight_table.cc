#include "src/ndp/inflight_table.h"

#include <algorithm>

namespace nearpm {

SimTime InflightTable::Conflicts(const AddrRange& range, bool access_is_write,
                                 SimTime now,
                                 std::vector<std::uint64_t>* conflicts) const {
  SimTime latest = 0;
  if (range.empty()) {
    return latest;
  }
  for (const Entry& e : entries_) {
    if (e.completion <= now) {
      continue;  // already drained; Prune will drop it
    }
    // Write-write, write-read and read-write conflict; read-read does not.
    const bool hit = e.write.Overlaps(range) ||
                     (access_is_write && e.read.Overlaps(range));
    if (hit) {
      latest = std::max(latest, e.completion);
      if (conflicts != nullptr) {
        conflicts->push_back(e.seq);
      }
    }
  }
  return latest;
}

void InflightTable::Prune(SimTime now) {
  std::erase_if(entries_, [now](const Entry& e) { return e.completion <= now; });
}

}  // namespace nearpm
