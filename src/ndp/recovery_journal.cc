#include "src/ndp/recovery_journal.h"

#include <algorithm>

namespace nearpm {

void RecoveryJournal::Remove(std::uint64_t seq) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [seq](const Entry& e) { return e.request.seq == seq; });
  if (it != entries_.end()) {
    entries_.erase(it);
  }
}

void RecoveryJournal::RemoveCompletedBefore(std::uint64_t now) {
  std::erase_if(entries_,
                [now](const Entry& e) { return e.completion <= now; });
}

void RecoveryJournal::RemoveThroughSync(std::uint64_t sync_id) {
  std::erase_if(entries_,
                [sync_id](const Entry& e) { return e.after_sync < sync_id; });
}

std::vector<RecoveryJournal::Entry> RecoveryJournal::ReplaySet(
    std::uint64_t frontier) const {
  std::vector<Entry> out;
  for (const Entry& e : entries_) {
    if (e.after_sync < frontier) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace nearpm
