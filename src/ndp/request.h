// NearPM command encoding (Table 2 of the paper) and the low-level work
// items a command decomposes into on each device.
#ifndef SRC_NDP_REQUEST_H_
#define SRC_NDP_REQUEST_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/sim/cost_model.h"

namespace nearpm {

enum class NearPmOp : std::uint8_t {
  kUndologCreate,   // generate metadata + copy old data to an undo log
  kApplyLog,        // copy a redo log to the original location
  kCommitLog,       // delete/commit all logs of a transaction
  kCkpointCreate,   // generate metadata + copy a page to the checkpoint area
  kShadowCpy,       // copy an existing page to a fresh shadow page
  kRawCopy,         // generic near-memory data movement (micro-benchmark)
};

const char* NearPmOpName(NearPmOp op);

// One command as posted on the memory-mapped command path.
struct NearPmRequest {
  std::uint64_t seq = 0;  // globally unique, assigned by the runtime
  NearPmOp op = NearPmOp::kRawCopy;
  PoolId pool = 0;
  ThreadId thread = 0;
  PmAddr addr = 0;        // operand pointer (old data / redo log / page)
  std::uint64_t size = 0;
  PmAddr dst = 0;         // destination (log slot / checkpoint slot / page)
  std::uint64_t tag = 0;  // transaction id / checkpoint epoch for metadata
};

// The primitive operations a NearPM unit performs for one request on one
// device: bulk copies through the DMA engine and small literal writes
// through the metadata generator / load-store unit. Items execute in order;
// PmSpace records them in order, so a crash can truncate the sequence at any
// prefix -- which is why validity metadata is always the *last* item.
struct NdpWorkItem {
  enum class Kind : std::uint8_t { kCopy, kLiteral };
  Kind kind = Kind::kCopy;
  PmAddr src = 0;  // kCopy only
  PmAddr dst = 0;
  std::uint64_t size = 0;               // kCopy only
  std::vector<std::uint8_t> literal;    // kLiteral only
};

// Unit busy time for a sequence of work items under `cost`.
double NdpWorkNs(const CostModel& cost, const std::vector<NdpWorkItem>& work);

}  // namespace nearpm

#endif  // SRC_NDP_REQUEST_H_
