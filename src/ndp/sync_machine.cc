#include "src/ndp/sync_machine.h"

#include <algorithm>

namespace nearpm {

SyncStateMachine::SyncStateMachine(int participants)
    : participants_(participants),
      remote_done_(static_cast<size_t>(std::max(0, participants - 1)), false) {}

Status SyncStateMachine::ReceiveCommand() {
  if (state_ != State::kAllComplete) {
    return FailedPrecondition("command received while still executing");
  }
  state_ = State::kExecuting;
  local_done_ = false;
  std::fill(remote_done_.begin(), remote_done_.end(), false);
  ++commands_tracked_;
  return Status::Ok();
}

Status SyncStateMachine::ReceiveLocalComplete() {
  if (state_ != State::kExecuting) {
    return FailedPrecondition("local completion outside executing state");
  }
  if (local_done_) {
    return FailedPrecondition("duplicate local completion");
  }
  local_done_ = true;
  MaybeComplete();
  return Status::Ok();
}

Status SyncStateMachine::ReceiveRemoteComplete(DeviceId remote) {
  if (state_ != State::kExecuting) {
    return FailedPrecondition("remote completion outside executing state");
  }
  if (remote >= remote_done_.size()) {
    return InvalidArgument("remote device index out of range");
  }
  if (remote_done_[remote]) {
    return FailedPrecondition("duplicate remote completion");
  }
  remote_done_[remote] = true;
  MaybeComplete();
  return Status::Ok();
}

void SyncStateMachine::Reset() {
  state_ = State::kAllComplete;
  local_done_ = false;
  std::fill(remote_done_.begin(), remote_done_.end(), false);
}

int SyncStateMachine::remotes_pending() const {
  if (state_ != State::kExecuting) {
    return 0;
  }
  int pending = 0;
  for (bool done : remote_done_) {
    if (!done) {
      ++pending;
    }
  }
  return pending;
}

void SyncStateMachine::MaybeComplete() {
  if (!local_done_) {
    return;
  }
  for (bool done : remote_done_) {
    if (!done) {
      return;
    }
  }
  state_ = State::kAllComplete;
}

}  // namespace nearpm
