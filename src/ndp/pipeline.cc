#include "src/ndp/pipeline.h"

#include <algorithm>
#include <cassert>

namespace nearpm {

UnitPipeline::UnitPipeline(const hwmodel::HwConfig* hw)
    : hw_(hw),
      pipelined_(hw->pipeline.enabled()),
      units_(static_cast<std::size_t>(hw->units_per_device)) {
  assert(hw->units_per_device >= 1);
}

PipelineSchedule UnitPipeline::Schedule(SimTime earliest, double work_ns) {
  PipelineSchedule sched;

  if (!pipelined_) {
    // Seed semantics, reproduced decision-for-decision: pick the unit whose
    // (single) execute timeline frees first, strictly earlier wins, ties go
    // to the lowest index -- the same scan sim::UnitPool performs -- and run
    // the work as one span. Dispatch and writeback collapse to instants.
    Unit* best = &units_.front();
    for (Unit& u : units_) {
      if (u.exec.free_at() < best->exec.free_at()) {
        best = &u;
      }
    }
    sched.unit = static_cast<int>(best - units_.data());
    sched.exec_end = best->exec.Schedule(earliest, work_ns);
    sched.exec_start = sched.exec_end - NsToTime(work_ns);
    sched.dispatch_start = sched.dispatch_end = sched.exec_start;
    sched.wb_start = sched.wb_end = sched.exec_end;
    return sched;
  }

  // Pipelined path: choose by earliest dispatch availability (the dispatch
  // stage is the admission point; ties to the lowest index).
  Unit* best = &units_.front();
  for (Unit& u : units_) {
    if (u.dispatch.free_at() < best->dispatch.free_at()) {
      best = &u;
    }
  }
  sched.unit = static_cast<int>(best - units_.data());

  // LSQ admission: entries whose writeback completed by the candidate
  // dispatch time have drained; if the bound still holds the unit full,
  // dispatch waits for the oldest in-flight request.
  SimTime admit = std::max(best->dispatch.free_at(), earliest);
  while (!best->lsq.empty() && best->lsq.front() <= admit) {
    best->lsq.pop_front();
  }
  const int bound = hw_->pipeline.lsq_depth;
  while (bound > 0 && best->lsq.size() >= static_cast<std::size_t>(bound)) {
    admit = std::max(admit, best->lsq.front());
    best->lsq.pop_front();
    sched.lsq_stalled = true;
  }

  sched.dispatch_end = best->dispatch.Schedule(admit, hw_->pipeline.dispatch_ns);
  sched.dispatch_start =
      sched.dispatch_end - NsToTime(hw_->pipeline.dispatch_ns);
  sched.exec_end = best->exec.Schedule(sched.dispatch_end, work_ns);
  sched.exec_start = sched.exec_end - NsToTime(work_ns);
  sched.wb_end =
      best->writeback.Schedule(sched.exec_end, hw_->pipeline.writeback_ns);
  sched.wb_start = sched.wb_end - NsToTime(hw_->pipeline.writeback_ns);

  best->lsq.push_back(sched.wb_end);
  sched.lsq_occupancy = best->lsq.size();
  return sched;
}

SimTime UnitPipeline::AllIdleAt() const {
  SimTime t = 0;
  for (const Unit& u : units_) {
    t = std::max({t, u.dispatch.free_at(), u.exec.free_at(),
                  u.writeback.free_at()});
  }
  return t;
}

void UnitPipeline::Reset() {
  for (Unit& u : units_) {
    u.dispatch.Reset();
    u.exec.Reset();
    u.writeback.Reset();
    u.lsq.clear();
  }
}

}  // namespace nearpm
