// One NearPM device (Figures 8 and 9).
//
// The device model couples two views of every request:
//  * timing -- the request flows through the MMIO command post, the Request
//    FIFO (backpressure when its 32 entries are occupied), the Dispatcher
//    (decode + translate + in-flight conflict check) and finally one of the
//    NearPM units (metadata generator, load/store unit, DMA engine), each a
//    virtual-time resource;
//  * function -- the request's work items are applied to PmSpace, tagged with
//    the device id and request seq so a crash can roll back exactly what a
//    real power failure would lose.
#ifndef SRC_NDP_DEVICE_H_
#define SRC_NDP_DEVICE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/types.h"
#include "src/hwmodel/hw_config.h"
#include "src/ndp/inflight_table.h"
#include "src/ndp/pipeline.h"
#include "src/ndp/request.h"
#include "src/pmem/pm_space.h"
#include "src/sim/timeline.h"
#include "src/trace/recorder.h"

namespace nearpm {

struct DeviceStats {
  std::uint64_t requests = 0;
  std::uint64_t dispatcher_conflict_stalls = 0;  // NDP-NDP ordering delays
  std::uint64_t host_access_stalls = 0;          // CPU loads stalled on NDP
  std::uint64_t host_buffered_writebacks = 0;    // clwbs queued behind NDP
  std::uint64_t fifo_backpressure_stalls = 0;
  std::uint64_t lsq_stalls = 0;  // dispatch waited on a full unit LSQ
  double unit_busy_ns = 0.0;
};

class NearPmDevice {
 public:
  // `hw` supplies the full device geometry -- unit count, FIFO depth,
  // pipeline stage widths and the platform cost constants -- and must
  // outlive the device (the Runtime's options own it).
  NearPmDevice(DeviceId id, const hwmodel::HwConfig* hw, PmSpace* space);

  NearPmDevice(const NearPmDevice&) = delete;
  NearPmDevice& operator=(const NearPmDevice&) = delete;

  struct IssueResult {
    SimTime cpu_release = 0;  // when the posting CPU thread may continue
    SimTime completion = 0;   // when the device finishes executing
  };

  // Posts one request slice to this device. `read_range` / `write_range` are
  // the global address ranges the request touches on this device (either may
  // be empty). `earliest_start` lets the caller impose additional ordering
  // (e.g., a delayed cross-device synchronization the request must follow).
  // `op` only labels the request in the event trace.
  IssueResult Issue(std::uint64_t seq, SimTime cpu_now,
                    const AddrRange& read_range, const AddrRange& write_range,
                    const std::vector<NdpWorkItem>& work,
                    SimTime earliest_start = 0,
                    NearPmOp op = NearPmOp::kRawCopy);

  // Host load ordering (Invariants 1 and 2, Figure 10): returns the time at
  // which a CPU access to `range` may proceed, stalled behind any
  // conflicting in-flight request; those requests become architecturally
  // observed and are retired in PmSpace. Loads must stall -- the CPU needs
  // the data.
  SimTime HostAccessBarrier(const AddrRange& range, bool is_write,
                            SimTime now);

  // Host write-back ordering: a clwb'd line is *accepted* into the host
  // read/write queue -- which sits inside the persistence domain -- without
  // stalling the CPU. The queue drains each entry only after the conflicting
  // in-flight requests complete, and a power failure replays queue and
  // request FIFO together, so the conflicting requests are durable at any
  // later crash (retired), while the CPU's fence only waits for queue
  // acceptance.
  void HostWritebackAccepted(const AddrRange& range, SimTime now);

  // Deferred maintenance work (log deletion ordered behind a delayed
  // synchronization, Section 5.3.2): executed by the Multi-device handler's
  // own engine so it neither occupies the Request FIFO nor blocks the
  // NearPM units -- "not on the critical path". Conflicts with later
  // requests on the same addresses are still detected through the in-flight
  // table.
  IssueResult IssueDeferred(std::uint64_t seq, SimTime cpu_now,
                            const AddrRange& write_range,
                            const std::vector<NdpWorkItem>& work,
                            SimTime earliest_start,
                            NearPmOp op = NearPmOp::kCommitLog);

  // Completion time of everything issued to this device so far (used by the
  // multi-device handler to place synchronization points; deferred
  // maintenance work is excluded -- deleting recovery data of an already
  // committed transaction needs no ordering against later synchronizations).
  SimTime last_completion() const { return last_completion_; }
  // Completion of everything including deferred maintenance (drain target).
  SimTime last_any_completion() const {
    return std::max(last_completion_, deferred_.free_at());
  }

  DeviceId id() const { return id_; }
  int num_units() const { return pipe_.size(); }
  const DeviceStats& stats() const { return stats_; }

  // Attaches (or detaches, with nullptr) the event recorder.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // Attaches (or detaches) the PM-Sanitizer; every request slice this device
  // executes is then registered on the sanitizer's per-device clock.
  void set_sanitizer(analyze::PmSanitizer* san) { san_ = san; }

  void Reset();

 private:
  DeviceId id_;
  const hwmodel::HwConfig* hw_;
  const CostModel* cost_;  // &hw_->cost, cached for the timing formulas
  PmSpace* space_;
  UnitPipeline pipe_;
  Timeline deferred_;  // the multi-device handler's maintenance engine
  std::size_t fifo_capacity_;
  std::deque<SimTime> fifo_dispatch_times_;  // when each occupant leaves
  InflightTable inflight_;
  SimTime last_completion_ = 0;
  DeviceStats stats_;
  std::vector<std::uint8_t> copy_buffer_;
  TraceRecorder* trace_ = nullptr;
  analyze::PmSanitizer* san_ = nullptr;
};

}  // namespace nearpm

#endif  // SRC_NDP_DEVICE_H_
