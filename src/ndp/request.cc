#include "src/ndp/request.h"

namespace nearpm {

const char* NearPmOpName(NearPmOp op) {
  switch (op) {
    case NearPmOp::kUndologCreate:
      return "undolog_create";
    case NearPmOp::kApplyLog:
      return "applylog";
    case NearPmOp::kCommitLog:
      return "commit_log";
    case NearPmOp::kCkpointCreate:
      return "ckpoint_create";
    case NearPmOp::kShadowCpy:
      return "shadowcpy";
    case NearPmOp::kRawCopy:
      return "raw_copy";
  }
  return "unknown";
}

double NdpWorkNs(const CostModel& cost, const std::vector<NdpWorkItem>& work) {
  double ns = cost.ndp_setup_ns;
  for (const NdpWorkItem& item : work) {
    switch (item.kind) {
      case NdpWorkItem::Kind::kCopy:
        ns += static_cast<double>(item.size) * cost.ndp_dma_ns_per_byte;
        break;
      case NdpWorkItem::Kind::kLiteral:
        ns += cost.ndp_metadata_ns;
        break;
    }
  }
  return ns;
}

}  // namespace nearpm
