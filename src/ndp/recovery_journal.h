// Persistence-domain request journal (Section 5.3.3).
//
// NearPM keeps its Request FIFO, in-flight request registers and host queue
// inside the persistence domain (~7 kB, capacitor-flushed to a reserved PM
// region on power failure). We model that state as a journal of issued
// requests: an entry is added when the command is posted and removed once the
// request's completion is architecturally observed (a conflict stall, a
// polled completion, or a passed synchronization). After a failure, hardware
// recovery replays the journalled requests in issue order up to the latest
// synchronization point every device had reached; requests beyond that point
// are left to the software mechanism's recovery (their logs are still
// intact -- that is what delayed synchronization guarantees).
#ifndef SRC_NDP_RECOVERY_JOURNAL_H_
#define SRC_NDP_RECOVERY_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/ndp/request.h"

namespace nearpm {

class RecoveryJournal {
 public:
  struct Entry {
    NearPmRequest request;
    // Latest synchronization id issued before this request.
    std::uint64_t after_sync = 0;
    // Device completion time: the request leaves the FIFO when it finishes
    // executing, so a crash after this instant does not replay it (its
    // effects are already durable).
    std::uint64_t completion = 0;
  };

  void Add(const NearPmRequest& request, std::uint64_t after_sync,
           std::uint64_t completion) {
    entries_.push_back(Entry{request, after_sync, completion});
  }

  // The request's completion was observed; it is no longer in flight.
  void Remove(std::uint64_t seq);

  // Drops entries whose execution completed at or before `now` (they left
  // the request FIFO).
  void RemoveCompletedBefore(std::uint64_t now);

  // A synchronization completed: everything issued before it has persisted
  // on every device (Invariant 3) and leaves the in-flight window.
  void RemoveThroughSync(std::uint64_t sync_id);

  // Requests the hardware recovery procedure replays after a failure:
  // journalled requests issued before the `frontier` synchronization, in
  // issue order. With frontier == 0 (no sync ever reached) nothing replays.
  std::vector<Entry> ReplaySet(std::uint64_t frontier) const;

  // Everything still journalled (used by software recovery to know which
  // operations were in flight past the frontier).
  const std::deque<Entry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  std::deque<Entry> entries_;
};

}  // namespace nearpm

#endif  // SRC_NDP_RECOVERY_JOURNAL_H_
