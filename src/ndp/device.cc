#include "src/ndp/device.h"

#include <algorithm>
#include <cassert>

#include "src/analyze/sanitizer.h"

namespace nearpm {

NearPmDevice::NearPmDevice(DeviceId id, const hwmodel::HwConfig* hw,
                           PmSpace* space)
    : id_(id),
      hw_(hw),
      cost_(&hw->cost),
      space_(space),
      pipe_(hw),
      fifo_capacity_(hw->fifo_depth) {
  assert(hw_->units_per_device >= 1);
  assert(fifo_capacity_ >= 1);
}

NearPmDevice::IssueResult NearPmDevice::Issue(
    std::uint64_t seq, SimTime cpu_now, const AddrRange& read_range,
    const AddrRange& write_range, const std::vector<NdpWorkItem>& work,
    SimTime earliest_start, NearPmOp op) {
  IssueResult result;

  // 1. MMIO command post on the dedicated control path.
  const SimTime nominal_release = cpu_now + NsToTime(cost_->cmd_post_ns);
  result.cpu_release = nominal_release;

  // 2. Request FIFO backpressure: posting stalls the CPU while all entries
  //    are occupied. An entry frees when its request is dispatched to a unit.
  while (!fifo_dispatch_times_.empty() &&
         fifo_dispatch_times_.front() <= result.cpu_release) {
    fifo_dispatch_times_.pop_front();
  }
  while (fifo_dispatch_times_.size() >= fifo_capacity_) {
    result.cpu_release =
        std::max(result.cpu_release, fifo_dispatch_times_.front());
    fifo_dispatch_times_.pop_front();
    ++stats_.fifo_backpressure_stalls;
  }

  // arg1 marks where the nominal MMIO post ends and FIFO backpressure
  // begins, so the profiler can attribute the two separately.
  NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kCmdPost,
                    .pid = kTracePciePid, .ts = cpu_now,
                    .dur = result.cpu_release - cpu_now, .seq = seq,
                    .arg0 = static_cast<std::uint64_t>(op),
                    .arg1 = nominal_release);
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kFifoEnqueue,
                     .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                     .ts = result.cpu_release, .seq = seq);

  // 3. Decode + address translation + conflict check in the Dispatcher.
  const SimTime arrival =
      result.cpu_release + NsToTime(cost_->cmd_device_pipeline_ns);
  SimTime start_lb = std::max(arrival, earliest_start);
  // arg1 carries the ordered start lower bound (earliest_start clamp): the
  // gap between pipeline exit and arg1 is synchronization-ordering wait.
  NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kDevPipeline,
                    .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                    .ts = result.cpu_release,
                    .dur = arrival - result.cpu_release, .seq = seq,
                    .arg1 = start_lb);

  // 4. NDP-NDP ordering: a request conflicting with an in-flight one is
  //    buffered until the in-flight access completes (Section 5.3.1).
  const SimTime rd_conflict =
      inflight_.Conflicts(read_range, /*access_is_write=*/false, cpu_now);
  const SimTime wr_conflict =
      inflight_.Conflicts(write_range, /*access_is_write=*/true, cpu_now);
  const SimTime conflict_free_at = std::max(rd_conflict, wr_conflict);
  if (conflict_free_at > start_lb) {
    NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kConflictStall,
                      .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                      .ts = start_lb, .dur = conflict_free_at - start_lb,
                      .seq = seq);
    start_lb = conflict_free_at;
    ++stats_.dispatcher_conflict_stalls;
  }

  // 5. Execute on the earliest-available NearPM unit. With the configured
  //    pipeline enabled the request flows dispatch -> execute -> writeback
  //    and its kUnitExec span covers the full pipeline residency, so every
  //    downstream consumer (FIFO free point, conflict window, profiler)
  //    sees one consistent [dispatch, writeback] lifetime.
  const double work_ns = NdpWorkNs(*cost_, work);
  const PipelineSchedule sched = pipe_.Schedule(start_lb, work_ns);
  result.completion = sched.wb_end;
  const SimTime dispatch_time = sched.dispatch_start;
  if (sched.lsq_stalled) {
    ++stats_.lsq_stalls;
  }
  fifo_dispatch_times_.push_back(dispatch_time);
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kFifoDepth,
                     .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                     .ts = result.cpu_release,
                     .arg0 = fifo_dispatch_times_.size());
  const std::uint32_t unit_tid =
      kTraceUnitTidBase + static_cast<std::uint32_t>(sched.unit);
  NEARPM_TRACE_SPAN(
      trace_, .phase = TracePhase::kUnitExec, .pid = TraceDevicePid(id_),
      .tid = unit_tid, .ts = dispatch_time,
      .dur = result.completion - dispatch_time, .seq = seq,
      .range = write_range, .range2 = read_range,
      .arg0 = static_cast<std::uint64_t>(op), .arg1 = cpu_now);
  if (pipe_.pipelined()) {
    // Per-stage residency, nested inside the kUnitExec span. Only emitted
    // for an enabled pipeline so default-geometry traces match the seed.
    const auto stage_span = [&](PipeStage stage, SimTime ts, SimTime end) {
      if (end > ts) {
        NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kPipeStage,
                          .pid = TraceDevicePid(id_), .tid = unit_tid,
                          .ts = ts, .dur = end - ts, .seq = seq,
                          .arg0 = static_cast<std::uint64_t>(stage));
      }
    };
    stage_span(PipeStage::kDispatch, sched.dispatch_start, sched.dispatch_end);
    stage_span(PipeStage::kExecute, sched.exec_start, sched.exec_end);
    stage_span(PipeStage::kWriteback, sched.wb_start, sched.wb_end);
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kLsqDepth,
                       .pid = TraceDevicePid(id_), .tid = unit_tid,
                       .ts = dispatch_time, .arg0 = sched.lsq_occupancy);
  }

  inflight_.Prune(cpu_now);
  inflight_.Insert(
      InflightTable::Entry{seq, read_range, write_range, result.completion});
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kInflightDepth,
                     .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                     .ts = dispatch_time, .arg0 = inflight_.size());
  last_completion_ = std::max(last_completion_, result.completion);
  stats_.unit_busy_ns += work_ns;
  ++stats_.requests;
  NEARPM_SAN_HOOK(san_,
                  OnDeviceExecute(id_, seq, write_range, result.completion));

  // 6. Functional execution. Reads observe (and thereby order after) earlier
  //    NDP writes to the same lines; writes are tagged with the request and
  //    its execution window for crash rollback.
  space_->ObserveRange(read_range);
  space_->GuardRange(id_, seq, read_range);
  space_->GuardRange(id_, seq, write_range);
  space_->BeginNdpRequest(id_, seq, dispatch_time, result.completion);
  for (const NdpWorkItem& item : work) {
    switch (item.kind) {
      case NdpWorkItem::Kind::kCopy: {
        copy_buffer_.resize(item.size);
        space_->NdpRead(item.src, copy_buffer_);
        space_->NdpWrite(id_, seq, item.dst, copy_buffer_);
        break;
      }
      case NdpWorkItem::Kind::kLiteral:
        space_->NdpWrite(id_, seq, item.dst, item.literal);
        break;
    }
  }
  return result;
}

SimTime NearPmDevice::HostAccessBarrier(const AddrRange& range, bool is_write,
                                        SimTime now) {
  if (range.empty()) {
    return now;
  }
  std::vector<std::uint64_t> conflicting;
  const SimTime free_at = inflight_.Conflicts(range, is_write, now,
                                              &conflicting);
  // The CPU access is now ordered after these requests' completion.
  for (std::uint64_t seq : conflicting) {
    space_->RetireRequest(id_, seq);
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kRetire,
                       .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                       .ts = std::max(free_at, now), .seq = seq,
                       .range = range);
  }
  inflight_.Prune(now);
  if (free_at > now) {
    ++stats_.host_access_stalls;
    return free_at;
  }
  return now;
}

NearPmDevice::IssueResult NearPmDevice::IssueDeferred(
    std::uint64_t seq, SimTime cpu_now, const AddrRange& write_range,
    const std::vector<NdpWorkItem>& work, SimTime earliest_start,
    NearPmOp op) {
  IssueResult result;
  result.cpu_release = cpu_now + NsToTime(cost_->cmd_post_ns);
  const SimTime arrival =
      result.cpu_release + NsToTime(cost_->cmd_device_pipeline_ns);
  SimTime start_lb = std::max(arrival, earliest_start);
  const SimTime wr_conflict =
      inflight_.Conflicts(write_range, /*access_is_write=*/true, cpu_now);
  start_lb = std::max(start_lb, wr_conflict);
  const double work_ns = NdpWorkNs(*cost_, work);
  result.completion = deferred_.Schedule(start_lb, work_ns);
  NEARPM_TRACE_SPAN(trace_, .phase = TracePhase::kDeferredExec,
                    .pid = TraceDevicePid(id_), .tid = kTraceMaintenanceTid,
                    .ts = result.completion - NsToTime(work_ns),
                    .dur = NsToTime(work_ns), .seq = seq,
                    .range = write_range,
                    .arg0 = static_cast<std::uint64_t>(op), .arg1 = cpu_now);
  inflight_.Prune(cpu_now);
  inflight_.Insert(
      InflightTable::Entry{seq, AddrRange{}, write_range, result.completion});
  stats_.unit_busy_ns += work_ns;
  ++stats_.requests;
  NEARPM_SAN_HOOK(san_, OnDeviceExecute(id_, seq, write_range,
                                        result.completion, /*deferred=*/true));

  space_->BeginNdpRequest(id_, seq, result.completion - NsToTime(work_ns),
                          result.completion);
  for (const NdpWorkItem& item : work) {
    switch (item.kind) {
      case NdpWorkItem::Kind::kCopy: {
        copy_buffer_.resize(item.size);
        space_->NdpRead(item.src, copy_buffer_);
        space_->NdpWrite(id_, seq, item.dst, copy_buffer_);
        break;
      }
      case NdpWorkItem::Kind::kLiteral:
        space_->NdpWrite(id_, seq, item.dst, item.literal);
        break;
    }
  }
  return result;
}

void NearPmDevice::HostWritebackAccepted(const AddrRange& range, SimTime now) {
  if (range.empty()) {
    return;
  }
  std::vector<std::uint64_t> conflicting;
  inflight_.Conflicts(range, /*access_is_write=*/true, now, &conflicting);
  NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kWritebackAccepted,
                     .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                     .ts = now, .range = range, .arg0 = conflicting.size());
  for (std::uint64_t seq : conflicting) {
    space_->RetireRequest(id_, seq);
    ++stats_.host_buffered_writebacks;
    NEARPM_TRACE_EVENT(trace_, .phase = TracePhase::kRetire,
                       .pid = TraceDevicePid(id_), .tid = kTraceDispatcherTid,
                       .ts = now, .seq = seq, .range = range, .arg0 = 1);
  }
  inflight_.Prune(now);
}

void NearPmDevice::Reset() {
  pipe_.Reset();
  deferred_.Reset();
  fifo_dispatch_times_.clear();
  inflight_.Clear();
  last_completion_ = 0;
  stats_ = DeviceStats{};
}

}  // namespace nearpm
