#include "src/ndp/address_map.h"

namespace nearpm {

Status AddressMappingTable::RegisterPool(PoolId pool, std::uint64_t virt_base,
                                         PmAddr phys_base,
                                         std::uint64_t size) {
  if (size == 0) {
    return InvalidArgument("pool size must be nonzero");
  }
  auto [it, inserted] =
      pools_.emplace(pool, PoolEntry{virt_base, phys_base, size});
  if (!inserted) {
    return AlreadyExists("pool id already registered");
  }
  return Status::Ok();
}

Status AddressMappingTable::UnregisterPool(PoolId pool) {
  if (pools_.erase(pool) == 0) {
    return NotFound("pool id not registered");
  }
  return Status::Ok();
}

StatusOr<AddressMappingTable::Translation> AddressMappingTable::Translate(
    PoolId pool, std::uint64_t virt_addr, std::uint64_t size) const {
  auto it = pools_.find(pool);
  if (it == pools_.end()) {
    return NotFound("pool id not in address mapping table");
  }
  const PoolEntry& e = it->second;
  if (virt_addr < e.virt_base || virt_addr + size > e.virt_base + e.size ||
      virt_addr + size < virt_addr) {
    return OutOfRange("address escapes pool bounds");
  }
  Translation t;
  t.global = e.phys_base + (virt_addr - e.virt_base);
  t.device = interleave_->DeviceOf(t.global);
  t.local_offset = interleave_->LocalOffsetOf(t.global);
  return t;
}

}  // namespace nearpm
