#include "src/repl/repl_fuzzer.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/analyze/sanitizer.h"
#include "src/analyze/trace_analyzer.h"
#include "src/serve/router.h"

namespace nearpm {
namespace repl {
namespace {

using serve::ShardRouter;

// Key ranges are disjoint by construction so the oracles never alias:
// warmup in [1000, 2000), txn in [10000, 11000).
std::uint64_t WarmupKey(std::uint64_t seed, std::uint64_t i) {
  return 1000 +
         ShardRouter::Mix(seed ^ (0x9E3779B97F4A7C15ull * (i + 1))) % 997;
}

std::uint64_t TxnKey(std::uint64_t seed, std::uint64_t j) {
  return 10000 + j * 97 + ShardRouter::Mix(seed) % 89;
}

ReplCaseResult Fail(ReplFailureKind kind, std::string detail) {
  ReplCaseResult result;
  result.failure = kind;
  result.detail = std::move(detail);
  return result;
}

// Deterministic value payload: generation distinguishes warmup (0), the
// crashed txn (1) and post-recovery traffic (2).
std::vector<std::uint8_t> MakeValue(const ReplFuzzConfig& config,
                                    std::uint64_t seed, std::uint64_t key,
                                    std::uint64_t generation) {
  const std::uint64_t base =
      ShardRouter::Mix(seed ^ (key * 3 + 1) ^ (generation << 56));
  std::vector<std::uint8_t> value(config.value_size);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>((base >> ((i % 8) * 8)) ^ i);
  }
  return value;
}

}  // namespace

const char* ReplFailureKindName(ReplFailureKind kind) {
  switch (kind) {
    case ReplFailureKind::kNone:
      return "none";
    case ReplFailureKind::kHarness:
      return "harness";
    case ReplFailureKind::kFailoverError:
      return "failover_error";
    case ReplFailureKind::kRecoverError:
      return "recover_error";
    case ReplFailureKind::kLostCommitted:
      return "lost_committed";
    case ReplFailureKind::kTornTxn:
      return "torn_txn";
    case ReplFailureKind::kDivergentReplica:
      return "divergent_replica";
    case ReplFailureKind::kDoorbellHazard:
      return "doorbell_hazard";
    case ReplFailureKind::kPpoViolation:
      return "ppo_violation";
    case ReplFailureKind::kPostRecoveryMismatch:
      return "post_recovery_mismatch";
  }
  return "unknown";
}

const char* ReplFuzzer::PhaseName(ReplStopPhase phase) {
  switch (phase) {
    case ReplStopPhase::kNone:
      return "none";
    case ReplStopPhase::kAfterIntent:
      return "after_intent";
    case ReplStopPhase::kMidReplicate:
      return "mid_replicate";
    case ReplStopPhase::kAfterReplicate:
      return "after_replicate";
    case ReplStopPhase::kMidApply:
      return "mid_apply";
    case ReplStopPhase::kAfterApply:
      return "after_apply";
    case ReplStopPhase::kAfterSync:
      return "after_sync";
  }
  return "unknown";
}

StatusOr<ReplStopPhase> ReplFuzzer::PhaseFromName(const std::string& name) {
  for (ReplStopPhase phase :
       {ReplStopPhase::kNone, ReplStopPhase::kAfterIntent,
        ReplStopPhase::kMidReplicate, ReplStopPhase::kAfterReplicate,
        ReplStopPhase::kMidApply, ReplStopPhase::kAfterApply,
        ReplStopPhase::kAfterSync}) {
    if (name == PhaseName(phase)) {
      return phase;
    }
  }
  return InvalidArgument("unknown repl stop phase \"" + name + "\"");
}

int ReplFuzzer::ParticipantCount(const ReplFuzzCase& c) const {
  ShardRouter router(config_.groups, config_.replicas);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t j = 0; j < c.txn_pairs; ++j) {
    keys.push_back(TxnKey(c.seed, j));
  }
  return static_cast<int>(router.ParticipantsFor(keys).size());
}

// Everything Run shares across its stages: the cluster with the schedule's
// prefix executed, plus the reference data the oracles compare against.
struct ReplFuzzer::PrefixEnv {
  std::unique_ptr<ReplicatedKvService> service;
  // Final expected value per warmup key (later puts overwrite earlier).
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> warmup;
  std::vector<KvPair> pairs;  // the crashed transaction
};

Status ReplFuzzer::ExecutePrefix(const ReplFuzzCase& c,
                                 PrefixEnv* env) const {
  if (c.txn_pairs == 0 || c.txn_pairs > Shard::kMaxTxnPairs) {
    return InvalidArgument("txn_pairs out of range");
  }

  ReplOptions ro;
  ro.groups = config_.groups;
  ro.replicas = config_.replicas;
  ro.protocol = config_.protocol;
  ro.workers_per_shard = 1;
  ro.queue_capacity = c.warmup_ops + 16;
  ro.batch_max = 4;
  ro.mode = config_.mode;
  ro.enforce_ppo = config_.enforce_ppo;
  ro.skip_recovery_replay = config_.skip_recovery_replay;
  ro.break_intent_redo = config_.break_intent_redo;
  ro.skip_redo_persist = config_.skip_redo_persist;
  ro.table_slots = config_.table_slots;
  ro.value_size = config_.value_size;
  auto service_or = ReplicatedKvService::Create(ro);
  if (!service_or.ok()) {
    return service_or.status();
  }
  env->service = std::move(*service_or);
  ReplicatedKvService& svc = *env->service;

  // ---- Warmup: puts through the queue path. Every one rides the full
  // replicated commit (intent + replicate + apply + retire), so by the time
  // Pump returns they are acked and durable on every replica -- nothing
  // here may ever be lost, on any replica.
  for (std::uint64_t i = 0; i < c.warmup_ops; ++i) {
    const std::uint64_t key = WarmupKey(c.seed, i);
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = MakeValue(config_, c.seed, key, 0);
    auto fut = svc.Submit(std::move(req));
    if (!fut.ok()) {
      return fut.status();
    }
    bool replaced = false;
    for (auto& [wkey, wvalue] : env->warmup) {
      if (wkey == key) {
        wvalue = MakeValue(config_, c.seed, key, 0);
        replaced = true;
      }
    }
    if (!replaced) {
      env->warmup.emplace_back(key, MakeValue(config_, c.seed, key, 0));
    }
  }
  svc.Pump();

  // ---- The replicated transaction, abandoned mid-protocol.
  for (std::uint64_t j = 0; j < c.txn_pairs; ++j) {
    KvPair pair;
    pair.key = TxnKey(c.seed, j);
    pair.value = MakeValue(config_, c.seed, pair.key, 1);
    env->pairs.push_back(std::move(pair));
  }
  ReplStop stop;
  stop.phase = c.phase;
  stop.ordinal = c.ordinal;
  const Status txn_status = svc.ExecuteReplicatedTxn(env->pairs, stop);
  if (c.phase == ReplStopPhase::kNone) {
    if (!txn_status.ok()) {
      return Internal("txn failed: " + txn_status.ToString());
    }
  } else if (txn_status.code() != StatusCode::kUnavailable) {
    return Internal("stop did not fire: " + txn_status.ToString());
  }
  return Status::Ok();
}

ReplCaseResult ReplFuzzer::Run(const ReplFuzzCase& c) const {
  PrefixEnv env;
  Status prefix = ExecutePrefix(c, &env);
  if (!prefix.ok()) {
    return Fail(ReplFailureKind::kHarness, "harness: " + prefix.ToString());
  }
  ReplicatedKvService& svc = *env.service;
  const int nodes = svc.num_nodes();

  // ---- Power failure on the node subset the mask names, offset into each
  // crashed node's own timeline.
  const std::uint64_t mask =
      c.crash_mask & ((nodes >= 64 ? ~0ull : (1ull << nodes) - 1));
  if (mask == 0) {
    return Fail(ReplFailureKind::kHarness,
                "harness: crash mask selects no node");
  }
  std::vector<int> crash_nodes;
  std::vector<CrashPlan> plans;
  for (int n = 0; n < nodes; ++n) {
    if ((mask & (1ull << n)) == 0) {
      continue;
    }
    Shard& shard = svc.node(n);
    std::lock_guard lock(shard.mu());
    const std::uint64_t pending = shard.rt().space().PendingLineAddrs().size();
    CrashPlan plan;
    plan.crash_time = c.crash_offset == 0
                          ? 0  // right now
                          : shard.rt().stats().MaxThreadTime() + c.crash_offset;
    plan.line_survival.assign(pending, c.lines_survive);
    crash_nodes.push_back(n);
    plans.push_back(std::move(plan));
  }
  svc.CrashReplicas(crash_nodes, plans);

  if (config_.trace_sink != nullptr) {
    config_.trace_sink->clear();
    for (int n = 0; n < nodes; ++n) {
      config_.trace_sink->push_back(svc.node(n).recorder().Snapshot());
    }
  }

  // ---- Failover: every group whose routed primary died but that still has
  // a live replica promotes it, and the promoted backup must serve every
  // acked key of its group exactly -- before any node recovers.
  std::vector<bool> failed_over(svc.num_groups(), false);
  for (int g = 0; g < svc.num_groups(); ++g) {
    if (svc.alive(svc.router().PrimaryNodeFor(g))) {
      continue;
    }
    bool any_live = false;
    for (int r = 0; r < svc.options().replicas; ++r) {
      any_live = any_live || svc.alive(svc.router().NodeFor(g, r));
    }
    if (!any_live) {
      continue;  // whole group down; only RecoverAll can bring it back
    }
    const Status promoted = svc.Failover(g);
    if (!promoted.ok()) {
      return Fail(ReplFailureKind::kFailoverError,
                  "group " + std::to_string(g) + ": " + promoted.ToString());
    }
    failed_over[g] = true;
  }
  for (const auto& [key, value] : env.warmup) {
    const int g = svc.router().ShardFor(key);
    if (!failed_over[g]) {
      continue;
    }
    auto got = svc.Read(key);
    if (!got.ok() || *got != value) {
      return Fail(ReplFailureKind::kFailoverError,
                  "promoted backup of group " + std::to_string(g) +
                      " misserves acked key " + std::to_string(key) + ": " +
                      (got.ok() ? "wrong value" : got.status().ToString()));
    }
  }

  // ---- Recovery of every crashed node, then union reconciliation.
  const Status recovered = svc.RecoverAll();
  if (!recovered.ok()) {
    return Fail(ReplFailureKind::kRecoverError, recovered.ToString());
  }

  auto read_replica = [&svc](int group, int replica, std::uint64_t key) {
    Shard& shard = svc.node(group, replica);
    std::lock_guard lock(shard.mu());
    return shard.Get(shard.TxnTid(), key);
  };

  // ---- Oracle: acked warmup data survives bit-for-bit on EVERY replica.
  for (const auto& [key, value] : env.warmup) {
    const int g = svc.router().ShardFor(key);
    for (int r = 0; r < svc.options().replicas; ++r) {
      auto got = read_replica(g, r, key);
      if (!got.ok() || *got != value) {
        return Fail(ReplFailureKind::kLostCommitted,
                    "warmup key " + std::to_string(key) + " on node " +
                        std::to_string(svc.router().NodeFor(g, r)) + ": " +
                        (got.ok() ? "wrong value" : got.status().ToString()));
      }
    }
  }

  // ---- Oracle: the transaction is all-or-nothing -- and because every
  // stop phase lies after the coordinator intent drained durable, recovery
  // must land the whole transaction on every replica of every owner.
  std::uint64_t applied = 0;
  std::uint64_t expected = 0;
  for (const KvPair& pair : env.pairs) {
    const int g = svc.router().ShardFor(pair.key);
    for (int r = 0; r < svc.options().replicas; ++r) {
      ++expected;
      auto got = read_replica(g, r, pair.key);
      if (got.ok() && *got == pair.value) {
        ++applied;
      }
    }
  }
  if (applied != expected) {
    return Fail(ReplFailureKind::kTornTxn,
                "txn recovered " + std::to_string(applied) + "/" +
                    std::to_string(expected) +
                    " replica copies despite a durable intent");
  }

  // ---- Oracle: replicas of each group converged bit-for-bit.
  for (int g = 0; g < svc.num_groups(); ++g) {
    auto reference = svc.DumpReplica(g, 0);
    if (!reference.ok()) {
      return Fail(ReplFailureKind::kHarness,
                  "harness: dump: " + reference.status().ToString());
    }
    for (int r = 1; r < svc.options().replicas; ++r) {
      auto image = svc.DumpReplica(g, r);
      if (!image.ok()) {
        return Fail(ReplFailureKind::kHarness,
                    "harness: dump: " + image.status().ToString());
      }
      bool same = reference->size() == image->size();
      for (std::size_t i = 0; same && i < reference->size(); ++i) {
        same = (*reference)[i].key == (*image)[i].key &&
               (*reference)[i].value == (*image)[i].value;
      }
      if (!same) {
        return Fail(ReplFailureKind::kDivergentReplica,
                    "group " + std::to_string(g) + ": replica " +
                        std::to_string(r) + " diverges from replica 0 (" +
                        std::to_string(reference->size()) + " vs " +
                        std::to_string(image->size()) + " keys)");
      }
    }
  }

  // ---- Oracle: no doorbell raced its redo record (NPM007). Each node's
  // trace replays through the PM-Sanitizer; only the replication rule
  // counts here -- the other rules have their own drivers.
  for (int n = 0; n < nodes; ++n) {
    Shard& shard = svc.node(n);
    std::lock_guard lock(shard.mu());
    analyze::PmSanitizer san;
    analyze::AnalyzeTrace(shard.recorder().Snapshot(), &san);
    const std::uint64_t hazards = san.sink().count(analyze::RuleId::kNpm007);
    if (hazards > 0) {
      return Fail(ReplFailureKind::kDoorbellHazard,
                  "node " + std::to_string(n) + ": " +
                      std::to_string(hazards) +
                      " doorbell(s) rung before the record persisted");
    }
  }

  // ---- Oracle: the Section 4 PPO invariants hold on every node's trace.
  std::string report;
  const std::uint64_t violations = svc.PpoViolations(&report);
  if (violations > 0) {
    return Fail(ReplFailureKind::kPpoViolation,
                std::to_string(violations) + " violation(s)\n" + report);
  }

  // ---- Oracle: the recovered cluster still serves correctly.
  std::vector<KvPair> again;
  for (const KvPair& pair : env.pairs) {
    KvPair next;
    next.key = pair.key;
    next.value = MakeValue(config_, c.seed, pair.key, 2);
    again.push_back(std::move(next));
  }
  const Status again_status = svc.ExecuteReplicatedTxn(again);
  if (!again_status.ok()) {
    return Fail(ReplFailureKind::kPostRecoveryMismatch,
                "post-recovery txn: " + again_status.ToString());
  }
  for (const KvPair& pair : again) {
    auto got = svc.Read(pair.key);
    if (!got.ok() || *got != pair.value) {
      return Fail(ReplFailureKind::kPostRecoveryMismatch,
                  "post-recovery key " + std::to_string(pair.key) + ": " +
                      (got.ok() ? "wrong value" : got.status().ToString()));
    }
  }
  return ReplCaseResult{};
}

fuzz::SweepStats ReplFuzzer::Systematic(
    std::uint64_t seed, std::vector<ReplFuzzFailure>* failures) const {
  ReplFuzzCase base;
  base.seed = seed;
  const int k = ParticipantCount(base);
  const int backups = config_.replicas - 1;
  const int nodes = config_.groups * config_.replicas;
  const std::uint64_t masks = nodes >= 64 ? ~0ull : (1ull << nodes) - 1;

  std::vector<ReplFuzzCase> cases;
  for (ReplStopPhase phase :
       {ReplStopPhase::kNone, ReplStopPhase::kAfterIntent,
        ReplStopPhase::kMidReplicate, ReplStopPhase::kAfterReplicate,
        ReplStopPhase::kMidApply, ReplStopPhase::kAfterApply,
        ReplStopPhase::kAfterSync}) {
    int ordinals = 1;
    if (phase == ReplStopPhase::kMidReplicate) {
      ordinals = backups;
      if (ordinals == 0) {
        continue;  // unreplicated cluster: no mid-replicate point exists
      }
    } else if (phase == ReplStopPhase::kMidApply ||
               phase == ReplStopPhase::kAfterApply) {
      ordinals = k;
    }
    for (int ordinal = 0; ordinal < ordinals; ++ordinal) {
      for (std::uint64_t mask = 1; mask <= masks; ++mask) {
        for (bool survive : {false, true}) {
          ReplFuzzCase c = base;
          c.phase = phase;
          c.ordinal = ordinal;
          c.crash_mask = mask;
          c.lines_survive = survive;
          cases.push_back(c);
        }
      }
    }
  }

  fuzz::SweepStats stats;
  for (const ReplFuzzCase& c : cases) {
    ++stats.cases;
    ReplCaseResult result = Run(c);
    if (!result.ok()) {
      ++stats.failures;
      if (failures != nullptr) {
        failures->push_back(ReplFuzzFailure{c, std::move(result)});
      }
    }
  }
  return stats;
}

fuzz::CrashRepro ReplFuzzer::ToRepro(const ReplFuzzCase& c,
                                     const std::string& expect,
                                     const std::string& note) const {
  fuzz::CrashRepro repro;
  repro.kind = "repl";
  repro.mechanism = Mechanism::kLogging;  // the serving tier is pinned
  repro.mode = config_.mode;
  repro.enforce_ppo = config_.enforce_ppo;
  repro.break_recovery = config_.skip_recovery_replay;
  repro.seed = c.seed;
  repro.total_ops = 1;  // bank-schedule fields are inert for repl repros
  repro.crash_step = 0;
  repro.crash_time = c.crash_offset;
  repro.serve_warmup_ops = c.warmup_ops;
  repro.serve_txn_pairs = c.txn_pairs;
  repro.repl_groups = static_cast<std::uint64_t>(config_.groups);
  repro.repl_replicas = static_cast<std::uint64_t>(config_.replicas);
  repro.repl_protocol = ReplProtocolName(config_.protocol);
  repro.repl_phase = PhaseName(c.phase);
  repro.repl_ordinal = static_cast<std::uint64_t>(c.ordinal);
  repro.repl_crash_mask = c.crash_mask;
  repro.repl_survive = c.lines_survive;
  repro.repl_break_intent_redo = config_.break_intent_redo;
  repro.repl_skip_redo_persist = config_.skip_redo_persist;
  repro.expect = expect;
  repro.note = note;
  return repro;
}

ReplFuzzConfig ReplFuzzer::ConfigFromRepro(const fuzz::CrashRepro& repro) {
  ReplFuzzConfig config;
  config.groups = static_cast<int>(repro.repl_groups);
  config.replicas = static_cast<int>(repro.repl_replicas);
  if (auto protocol = ReplProtocolFromName(repro.repl_protocol);
      protocol.ok()) {
    config.protocol = *protocol;
  }
  config.mode = repro.mode;
  config.enforce_ppo = repro.enforce_ppo;
  config.skip_recovery_replay = repro.break_recovery;
  config.break_intent_redo = repro.repl_break_intent_redo;
  config.skip_redo_persist = repro.repl_skip_redo_persist;
  return config;
}

StatusOr<ReplFuzzCase> ReplFuzzer::CaseFromRepro(
    const fuzz::CrashRepro& repro) {
  auto phase = PhaseFromName(repro.repl_phase);
  if (!phase.ok()) {
    return phase.status();
  }
  ReplFuzzCase c;
  c.seed = repro.seed;
  c.warmup_ops = repro.serve_warmup_ops;
  c.txn_pairs = repro.serve_txn_pairs;
  c.phase = *phase;
  c.ordinal = static_cast<int>(repro.repl_ordinal);
  c.crash_mask = repro.repl_crash_mask;
  c.crash_offset = repro.crash_time;
  c.lines_survive = repro.repl_survive;
  return c;
}

}  // namespace repl
}  // namespace nearpm
