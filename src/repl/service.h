// ReplicatedKvService: the serving tier of src/serve stretched across
// replica groups connected by a simulated network fabric (src/net).
//
// A ShardRouter hash-partitions keys across G replica *groups*; each group
// is K full shards (src/serve/shard.h) -- one primary plus K-1 backups, all
// independent simulated machines with their own Runtime, devices and PM.
// Node ids are dense: node = group * replicas + replica.
//
// Every mutation commits through the durable-coordinator-intent machinery
// the single-copy service already uses, extended with replica shipping:
//
//   1. intent   -- the coordinator group's primary persists a redo intent
//                  carrying the full pair set (failure-atomic, drained);
//   2. replicate-- the record travels to every live backup of the group
//                  over the fabric, by one of two selectable protocols:
//                    * primary-backup (kPrimaryBackup): the framed record is
//                      shipped (kIntentShip); the backup CPU writes it
//                      failure-atomically and acks once it is durable;
//                    * one-sided redo (kOneSidedRedo): the primary writes
//                      the raw record straight into the backup's intent
//                      region (kRedoWrite, payload persisted before magic),
//                      rings a doorbell, and the backup's NDP unit replays
//                      it locally; the ack is sent the instant the record
//                      is durable -- replay stays off the ack critical path;
//   3. apply    -- after every ack, each participant group applies its
//                  slice on the primary and every live backup (the backup
//                  apply is the local NDP replay in redo mode);
//   4. sync     -- cross-group completion exchange over the fabric
//                  (kSyncSignal) through per-participant SyncStateMachines,
//                  exactly like the Invariant-3 path of src/serve;
//   5. retire   -- the intent is invalidated on every replica that holds a
//                  copy, primary last.
//
// Because a crash anywhere after step 1 leaves a durable record on at least
// one replica, recovery reconciles the *union* of surviving intents across
// the whole cluster and re-applies every pair to every replica of its
// owning group (idempotent upserts), so replicas converge bit-for-bit.
// Failover promotes the lowest live replica of a group after replaying its
// surviving records -- deterministic, and safe against duplicate replay.
#ifndef SRC_REPL_SERVICE_H_
#define SRC_REPL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/net/fabric.h"
#include "src/obs/flight_recorder.h"
#include "src/prof/request_timeline.h"
#include "src/serve/mpsc_ring.h"
#include "src/serve/router.h"
#include "src/serve/service.h"
#include "src/serve/shard.h"
#include "src/trace/metrics.h"

namespace nearpm {
namespace repl {

using serve::KvPair;
using serve::RequestKind;
using serve::ServeRequest;
using serve::ServeResult;
using serve::Shard;
using serve::ShardRouter;

enum class ReplProtocol : std::uint8_t {
  kPrimaryBackup = 0,  // acked log shipping, backup CPU writes the record
  kOneSidedRedo,       // primary writes the backup's PM; NDP replays locally
};

const char* ReplProtocolName(ReplProtocol protocol);
StatusOr<ReplProtocol> ReplProtocolFromName(const std::string& name);

struct ReplOptions {
  int groups = 4;    // replica groups (hash partitions)
  int replicas = 2;  // nodes per group: 1 primary + replicas-1 backups
  ReplProtocol protocol = ReplProtocol::kPrimaryBackup;
  int workers_per_shard = 2;
  std::size_t queue_capacity = 64;
  int batch_max = 8;
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool skip_recovery_replay = false;  // fault injection (fuzzer teeth)
  // Fault injection: recovery/failover scrubs surviving intents without
  // re-applying them. Breaks both the all-or-nothing guarantee and replica
  // convergence; the replication fuzzer must catch it.
  bool break_intent_redo = false;
  // Fault injection: one-sided redo records are landed without persisting,
  // so the doorbell (and the ack it implies) races the record -- the NPM007
  // hazard, and a crash can tear an acknowledged record.
  bool skip_redo_persist = false;
  std::uint64_t pm_size = 16ull << 20;
  std::uint32_t table_slots = 512;
  std::uint32_t value_size = 64;
  double request_parse_ns = 50.0;
  // Device geometry shared by every node's shard and by the fabric links
  // (default = seed platform).
  hwmodel::HwConfig hw;
  // Flight-recorder budget in compacted events (0 disables it). Every node
  // recorder plus the fabric recorder feeds the one shared ring, so the
  // black box spans the whole cluster including in-flight messages.
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
};

// Crash injection for the replication fuzzer: where ExecuteReplicatedTxn
// deliberately stops, leaving the replicated protocol mid-flight.
enum class ReplStopPhase : std::uint8_t {
  kNone = 0,        // run to completion
  kAfterIntent,     // primary intent durable, nothing shipped yet
  kMidReplicate,    // backups [0, ordinal] hold the record, acks unprocessed
  kAfterReplicate,  // record durable on every live coordinator replica
  kMidApply,        // participant `ordinal`'s slice puts issued, not drained
  kAfterApply,      // participants [0, ordinal] applied on every replica
  kAfterSync,       // every machine All-Complete, intent not yet retired
};

struct ReplStop {
  ReplStopPhase phase = ReplStopPhase::kNone;
  int ordinal = 0;  // backup index (kMidReplicate) / participant ordinal
};

// Quiesced-state snapshot (call after Stop()/Pump(), not mid-traffic).
struct ReplStats {
  std::uint64_t completed = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t txns = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t failovers = 0;
  std::uint64_t intent_redos = 0;
  std::uint64_t net_messages = 0;  // fabric frames, every MsgKind
  SimTime makespan_ns = 0;         // slowest node's latest virtual clock
  std::uint64_t request_p50_ns = 0;
  std::uint64_t request_p99_ns = 0;
  std::uint64_t commit_p50_ns = 0;  // replicated commit, intent to retire
  std::uint64_t commit_p99_ns = 0;
  double throughput_ops_per_sec = 0;
};

class ReplicatedKvService {
 public:
  static StatusOr<std::unique_ptr<ReplicatedKvService>> Create(
      const ReplOptions& options);
  ~ReplicatedKvService();

  ReplicatedKvService(const ReplicatedKvService&) = delete;
  ReplicatedKvService& operator=(const ReplicatedKvService&) = delete;

  const ReplOptions& options() const { return options_; }
  const ShardRouter& router() const { return router_; }
  Shard& node(int n) { return *nodes_[n]; }
  Shard& node(int group, int replica) {
    return *nodes_[router_.NodeFor(group, replica)];
  }
  int num_groups() const { return options_.groups; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  bool alive(int n) const { return alive_[n]; }
  net::Fabric& fabric() { return *fabric_; }
  TraceRecorder& fabric_recorder() { return *fabric_recorder_; }
  MetricsRegistry& metrics() { return metrics_; }
  // The cluster-wide flight recorder (null when flight_capacity == 0).
  obs::FlightRecorder* flight() { return flight_.get(); }

  // Admission: routes the request to its coordinator group's queue. A full
  // queue rejects with ResourceExhausted (caller-visible backpressure).
  StatusOr<std::future<ServeResult>> Submit(ServeRequest request);

  // ---- Threaded mode --------------------------------------------------------
  void Start();  // spawns workers_per_shard OS threads per group
  void Stop();   // closes queues, drains and joins every worker

  // ---- Deterministic mode ---------------------------------------------------
  // Drains every group queue inline. Returns requests executed. Must not
  // run concurrently with Start().
  std::uint64_t Pump();

  // The replicated commit (also the path every queued kPut/kMultiPut takes;
  // a single put is a 1-pair transaction, so it rides the same intent +
  // replicate + apply + retire machinery and replicas never diverge on it).
  // `stop` abandons the protocol mid-flight for crash injection; the
  // transaction then reports Unavailable.
  // `trace_id` tags every replica's and the fabric's events with the
  // originating request, so the cross-node timeline can be reconstructed.
  Status ExecuteReplicatedTxn(const std::vector<KvPair>& pairs,
                              const ReplStop& stop = {},
                              std::uint64_t trace_id = 0);

  // Read from the owning group's current primary (Unavailable when it is
  // down and no failover has promoted a backup yet).
  StatusOr<std::vector<std::uint8_t>> Read(std::uint64_t key);

  // ---- Failure, failover and recovery ---------------------------------------
  // Power-fails the listed nodes (plans[i] drives nodes[i]); survivors keep
  // running. Queued requests of groups whose routed primary died fail
  // Unavailable.
  void CrashReplicas(const std::vector<int>& nodes,
                     const std::vector<CrashPlan>& plans);
  // Deterministic failover: promotes the lowest live replica of `group`
  // after replaying its surviving intent records (idempotent redo from the
  // durable log), then re-routes the group to it.
  Status Failover(int group);
  // Recovers every crashed node (mechanism recovery + index rebuild), then
  // reconciles: the union of surviving intents across the whole cluster is
  // re-applied to every replica of each pair's owning group and retired.
  // All replicas of a group are bit-identical afterwards.
  Status RecoverAll();

  // PPO audit over every node's trace.
  std::uint64_t PpoViolations(std::string* report = nullptr);

  // Publishes per-node resource duty cycles (repl_duty{node="3",...}) and
  // the fabric's per-link duty cycles (node="fabric", resource="network
  // fabric / link N"), then folds the fabric's message/byte counters into
  // metrics(). Call once, quiesced.
  void ExportResourceMetrics();

  // Bit-exact live-table image of one replica (the divergence oracle
  // compares all replicas of a group).
  StatusOr<std::vector<KvPair>> DumpReplica(int group, int replica);

  // Labeled event-stream snapshots of every node recorder ("node<N>") plus
  // the fabric ("fabric"): the input BuildRequestTimeline wants. Call
  // quiesced (each node snapshot takes that node's lock).
  std::vector<TimelineSource> TimelineSources();

  ReplStats Stats() const;

 private:
  struct QueuedRequest {
    ServeRequest request;
    std::promise<ServeResult> done;
    std::uint64_t trace_id = 0;  // allocated at admission
  };

  explicit ReplicatedKvService(const ReplOptions& options);

  void WorkerLoop(int group, int worker);
  void ExecuteBatch(int group, int worker, std::vector<QueuedRequest> batch);

  // Live replica indices of a group, ascending (primary not necessarily
  // first -- use router_.PrimaryReplica).
  std::vector<int> LiveReplicas(int group) const;
  // Replays `node`'s surviving intents onto every live replica of each
  // pair's owning group, then retires them on `node`. The idempotent-redo
  // core shared by Failover and RecoverAll.
  Status RedoNodeIntents(int node);

  std::uint64_t CounterValue(const std::string& name) const;

  ReplOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> nodes_;  // index = node id
  std::vector<bool> alive_;
  std::unique_ptr<TraceRecorder> fabric_recorder_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<serve::MpscRing<QueuedRequest>>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> txn_counter_{0};
  std::vector<int> pump_rr_;
  MetricsRegistry metrics_;

  // Request trace ids, allocated at admission (1-based; 0 = untraced).
  std::atomic<std::uint64_t> trace_counter_{0};
  std::unique_ptr<obs::FlightRecorder> flight_;

  // Completion-path metric handles resolved once in the constructor (the
  // registry guarantees reference stability), so the batch and commit loops
  // bump atomics instead of doing string-keyed map lookups per request.
  std::atomic<std::uint64_t>* ctr_enqueued_ = nullptr;
  std::atomic<std::uint64_t>* ctr_rejected_ = nullptr;
  std::atomic<std::uint64_t>* ctr_completed_ = nullptr;
  std::atomic<std::uint64_t>* ctr_gets_ = nullptr;
  std::atomic<std::uint64_t>* ctr_puts_ = nullptr;
  std::atomic<std::uint64_t>* ctr_txns_ = nullptr;
  std::atomic<std::uint64_t>* ctr_batches_ = nullptr;
  std::atomic<std::uint64_t>* ctr_commits_ = nullptr;
  Histogram* request_ns_ = nullptr;
  Histogram* commit_ns_ = nullptr;
};

}  // namespace repl
}  // namespace nearpm

#endif  // SRC_REPL_SERVICE_H_
