#include "src/repl/service.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/ndp/sync_machine.h"
#include "src/prof/profile.h"
#include "src/trace/ppo_checker.h"

namespace nearpm {
namespace repl {
namespace {

// Control-message payloads on the fabric (acks, doorbells, sync signals,
// retires, promotions): a header-only frame.
constexpr std::size_t kCtrlBytes = 32;

ServeResult Unexecuted(Status status) {
  ServeResult result;
  result.status = std::move(status);
  return result;
}

}  // namespace

const char* ReplProtocolName(ReplProtocol protocol) {
  switch (protocol) {
    case ReplProtocol::kPrimaryBackup:
      return "pb";
    case ReplProtocol::kOneSidedRedo:
      return "redo";
  }
  return "?";
}

StatusOr<ReplProtocol> ReplProtocolFromName(const std::string& name) {
  if (name == "pb") return ReplProtocol::kPrimaryBackup;
  if (name == "redo") return ReplProtocol::kOneSidedRedo;
  return InvalidArgument("unknown replication protocol \"" + name +
                         "\" (want pb|redo)");
}

ReplicatedKvService::ReplicatedKvService(const ReplOptions& options)
    : options_(options), router_(options.groups, options.replicas) {
  // Resolve the completion-path metric handles once; the registry's map
  // nodes are stable, so these stay valid for the service's life.
  ctr_enqueued_ = &metrics_.Counter("repl_enqueued");
  ctr_rejected_ = &metrics_.Counter("repl_rejected");
  ctr_completed_ = &metrics_.Counter("repl_completed");
  ctr_gets_ = &metrics_.Counter("repl_gets");
  ctr_puts_ = &metrics_.Counter("repl_puts");
  ctr_txns_ = &metrics_.Counter("repl_txns");
  ctr_batches_ = &metrics_.Counter("repl_batches");
  ctr_commits_ = &metrics_.Counter("repl_commits");
  request_ns_ = &metrics_.Latency("repl_request_ns");
  commit_ns_ = &metrics_.Latency("repl_commit_ns");
}

ReplicatedKvService::~ReplicatedKvService() { Stop(); }

StatusOr<std::unique_ptr<ReplicatedKvService>> ReplicatedKvService::Create(
    const ReplOptions& options) {
  if (options.groups < 1 || options.replicas < 1) {
    return InvalidArgument("need at least one group and one replica");
  }
  if (options.workers_per_shard < 1 || options.batch_max < 1 ||
      options.queue_capacity < 1) {
    return InvalidArgument(
        "workers, batch_max and queue_capacity must be >= 1");
  }
  auto service =
      std::unique_ptr<ReplicatedKvService>(new ReplicatedKvService(options));

  serve::ShardOptions so;
  so.mode = options.mode;
  so.enforce_ppo = options.enforce_ppo;
  so.skip_recovery_replay = options.skip_recovery_replay;
  so.pm_size = options.pm_size;
  so.table_slots = options.table_slots;
  so.value_size = options.value_size;
  so.workers = options.workers_per_shard;
  so.hw = options.hw;
  const int nodes = options.groups * options.replicas;
  for (int n = 0; n < nodes; ++n) {
    auto shard = Shard::Create(so, n);
    if (!shard.ok()) {
      return shard.status();
    }
    service->nodes_.push_back(std::move(*shard));
  }
  service->alive_.assign(nodes, true);

  service->fabric_recorder_ = std::make_unique<TraceRecorder>();
  net::FabricOptions fo;
  fo.nodes = nodes;
  fo.hw = options.hw;
  fo.trace = service->fabric_recorder_.get();
  service->fabric_ = std::make_unique<net::Fabric>(fo);

  // One cluster-wide flight ring: every node's recorder plus the fabric's
  // feeds it, so the black box covers in-flight messages too.
  if (options.flight_capacity > 0) {
    service->flight_ =
        std::make_unique<obs::FlightRecorder>(options.flight_capacity);
    for (int n = 0; n < nodes; ++n) {
      service->nodes_[n]->recorder().AttachSink(
          service->flight_->RegisterSource("node" + std::to_string(n)));
    }
    service->fabric_recorder_->AttachSink(
        service->flight_->RegisterSource("fabric"));
  }

  for (int g = 0; g < options.groups; ++g) {
    service->queues_.push_back(
        std::make_unique<serve::MpscRing<QueuedRequest>>(
            options.queue_capacity));
  }
  service->pump_rr_.assign(options.groups, 0);
  return service;
}

StatusOr<std::future<ServeResult>> ReplicatedKvService::Submit(
    ServeRequest request) {
  int group;
  if (request.kind == RequestKind::kMultiPut) {
    if (request.pairs.empty()) {
      return InvalidArgument("MultiPut carries no pairs");
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(request.pairs.size());
    for (const KvPair& pair : request.pairs) {
      keys.push_back(pair.key);
    }
    group = router_.ParticipantsFor(keys).front();  // coordinator group
  } else {
    group = router_.ShardFor(request.key);
  }

  QueuedRequest item;
  item.request = std::move(request);
  // The request's identity for the rest of its life, across every replica
  // and fabric message it touches.
  item.trace_id = trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<ServeResult> done = item.done.get_future();
  if (!queues_[group]->TryPush(item)) {
    ctr_rejected_->fetch_add(1, std::memory_order_relaxed);
    return ResourceExhausted("group " + std::to_string(group) +
                             " queue full (" +
                             std::to_string(options_.queue_capacity) +
                             " requests), retry after draining");
  }
  ctr_enqueued_->fetch_add(1, std::memory_order_relaxed);
  return done;
}

void ReplicatedKvService::Start() {
  for (int g = 0; g < options_.groups; ++g) {
    for (int w = 0; w < options_.workers_per_shard; ++w) {
      workers_.emplace_back([this, g, w] { WorkerLoop(g, w); });
    }
  }
}

void ReplicatedKvService::Stop() {
  for (auto& queue : queues_) {
    queue->Close();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void ReplicatedKvService::WorkerLoop(int group, int worker) {
  serve::MpscRing<QueuedRequest>& queue = *queues_[group];
  while (true) {
    auto first = queue.Pop();
    if (!first.has_value()) {
      return;
    }
    std::vector<QueuedRequest> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
      auto more = queue.TryPop();
      if (!more.has_value()) {
        break;
      }
      batch.push_back(std::move(*more));
    }
    ExecuteBatch(group, worker, std::move(batch));
  }
}

std::uint64_t ReplicatedKvService::Pump() {
  std::uint64_t executed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int g = 0; g < options_.groups; ++g) {
      std::vector<QueuedRequest> batch;
      while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
        auto item = queues_[g]->TryPop();
        if (!item.has_value()) {
          break;
        }
        batch.push_back(std::move(*item));
      }
      if (batch.empty()) {
        continue;
      }
      progress = true;
      executed += batch.size();
      const int worker = pump_rr_[g];
      pump_rr_[g] = (pump_rr_[g] + 1) % options_.workers_per_shard;
      ExecuteBatch(g, worker, std::move(batch));
    }
  }
  return executed;
}

void ReplicatedKvService::ExecuteBatch(int group, int worker,
                                       std::vector<QueuedRequest> batch) {
  // Reads serve from the group's routed primary; every mutation goes
  // through the replicated commit (which takes its own locks).
  std::vector<QueuedRequest> gets;
  std::vector<QueuedRequest> writes;
  for (QueuedRequest& item : batch) {
    (item.request.kind == RequestKind::kGet ? gets : writes)
        .push_back(std::move(item));
  }

  if (!gets.empty()) {
    const int primary = router_.PrimaryNodeFor(group);
    if (!alive_[primary]) {
      for (QueuedRequest& item : gets) {
        item.done.set_value(Unexecuted(Unavailable(
            "group " + std::to_string(group) + " primary down")));
      }
    } else {
      Shard& shard = *nodes_[primary];
      std::lock_guard lock(shard.mu());
      const ThreadId tid = shard.WorkerTid(worker);
      Runtime& rt = shard.rt();
      const SimTime batch_start = rt.Now(tid);
      rt.Compute(tid, rt.options().hw.cost.cmd_post_ns);
      for (QueuedRequest& item : gets) {
        rt.Compute(tid, options_.request_parse_ns);
        const SimTime start = rt.Now(tid);
        // Device events the read produces inherit the request's id (the
        // shard lock serializes recorder access).
        TraceIdScope trace_scope(&shard.recorder(), item.trace_id);
        ServeResult result;
        result.shard = group;
        result.trace_id = item.trace_id;
        auto value = shard.Get(tid, item.request.key);
        if (value.ok()) {
          result.value = std::move(*value);
        }
        result.status = value.status();
        const SimTime end = rt.Now(tid);
        NEARPM_TRACE_SPAN(&shard.recorder(),
                          .phase = TracePhase::kServeRequest,
                          .pid = kTraceServePid,
                          .tid = static_cast<std::uint32_t>(tid), .ts = start,
                          .dur = end > start ? end - start : 1,
                          .seq = item.request.key);
        result.latency_ns = end - batch_start;
        request_ns_->Add(result.latency_ns);
        ctr_gets_->fetch_add(1, std::memory_order_relaxed);
        ctr_completed_->fetch_add(1, std::memory_order_relaxed);
        item.done.set_value(std::move(result));
      }
      rt.Fence(tid);
      ctr_batches_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  for (QueuedRequest& item : writes) {
    ServeResult result;
    result.shard = group;
    result.trace_id = item.trace_id;
    std::vector<KvPair> pairs;
    if (item.request.kind == RequestKind::kMultiPut) {
      pairs = item.request.pairs;
    } else {
      KvPair pair;
      pair.key = item.request.key;
      pair.value = item.request.value;
      pairs.push_back(std::move(pair));
    }
    result.status = ExecuteReplicatedTxn(pairs, {}, item.trace_id);
    (item.request.kind == RequestKind::kMultiPut ? ctr_txns_ : ctr_puts_)
        ->fetch_add(1, std::memory_order_relaxed);
    ctr_completed_->fetch_add(1, std::memory_order_relaxed);
    item.done.set_value(std::move(result));
  }
}

std::vector<int> ReplicatedKvService::LiveReplicas(int group) const {
  std::vector<int> live;
  for (int r = 0; r < options_.replicas; ++r) {
    if (alive_[router_.NodeFor(group, r)]) {
      live.push_back(r);
    }
  }
  return live;
}

Status ReplicatedKvService::ExecuteReplicatedTxn(
    const std::vector<KvPair>& pairs, const ReplStop& stop,
    std::uint64_t trace_id) {
  if (pairs.empty() || pairs.size() > Shard::kMaxTxnPairs) {
    return InvalidArgument("replicated txn must carry 1.." +
                           std::to_string(Shard::kMaxTxnPairs) + " pairs");
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(pairs.size());
  for (const KvPair& pair : pairs) {
    keys.push_back(pair.key);
  }
  const std::vector<int> participants = router_.ParticipantsFor(keys);
  const int k = static_cast<int>(participants.size());

  // Every node of every participant group, locked in ascending node order
  // (the single multi-lock path, so ordering is global and deadlock-free).
  std::vector<std::unique_lock<std::mutex>> locks;
  for (int g : participants) {
    for (int r = 0; r < options_.replicas; ++r) {
      locks.emplace_back(nodes_[router_.NodeFor(g, r)]->mu());
    }
  }

  for (int g : participants) {
    if (!alive_[router_.PrimaryNodeFor(g)]) {
      return Unavailable("group " + std::to_string(g) +
                         " primary down; failover required");
    }
  }

  // Tag every participant replica's events with the originating request
  // while their locks are held (set_active_trace is recorder-shared state,
  // serialized by the node locks). Restores to 0 on every exit path,
  // including the crash injections and error returns below.
  struct TxnTraceScopes {
    std::vector<TraceRecorder*> recorders;
    ~TxnTraceScopes() {
      for (TraceRecorder* r : recorders) {
        r->set_active_trace(0);
      }
    }
  } trace_scopes;
  if (trace_id != 0) {
    trace_scopes.recorders.reserve(participants.size() *
                                   static_cast<std::size_t>(options_.replicas));
    for (int g : participants) {
      for (int r = 0; r < options_.replicas; ++r) {
        TraceRecorder* rec = &nodes_[router_.NodeFor(g, r)]->recorder();
        rec->set_active_trace(trace_id);
        trace_scopes.recorders.push_back(rec);
      }
    }
  }

  const int cg = participants.front();
  const int cp = router_.PrimaryNodeFor(cg);
  Shard& coord = *nodes_[cp];
  const ThreadId coord_tid = coord.TxnTid();
  const std::uint64_t txn_id = ++txn_counter_;
  const SimTime txn_start = coord.Now(coord_tid);
  const bool redo = options_.protocol == ReplProtocol::kOneSidedRedo;

  // Phase 1 -- durable intent on the coordinator group's primary. From here
  // on, a crash anywhere leads recovery to redo the whole transaction on
  // every replica of every owning group.
  auto intent_slot = coord.WriteIntent(coord_tid, txn_id, pairs);
  if (!intent_slot.ok()) {
    return intent_slot.status();
  }
  coord.Drain(coord_tid);
  if (stop.phase == ReplStopPhase::kAfterIntent) {
    return Unavailable("txn stopped by crash injection: after intent");
  }

  // Phase 2 -- replicate the record to every live backup of the
  // coordinator group. slots[r] remembers where each replica holds its
  // copy; durable[r] is when that copy became durable (the ack instant).
  std::vector<int> slots(options_.replicas, -1);
  std::vector<SimTime> backup_durable(options_.replicas, 0);
  slots[router_.PrimaryReplica(cg)] = *intent_slot;
  std::vector<SimTime> ack_times;
  const std::uint64_t record_bytes = coord.IntentRecordBytes();
  int backup_ordinal = 0;
  bool replicate_stopped = false;
  for (int r = 0; r < options_.replicas && !replicate_stopped; ++r) {
    const int bn = router_.NodeFor(cg, r);
    if (r == router_.PrimaryReplica(cg) || !alive_[bn]) {
      continue;
    }
    Shard& backup = *nodes_[bn];
    if (!redo) {
      // Primary-backup: ship the framed record; the backup CPU persists it
      // failure-atomically and acks once it is durable.
      const net::Delivery ship =
          fabric_->Send(cp, bn, record_bytes, coord.Now(coord_tid),
                        net::MsgKind::kIntentShip, txn_id, trace_id);
      backup.rt().WaitUntil(backup.TxnTid(), ship.delivered);
      auto slot = backup.WriteIntent(backup.TxnTid(), txn_id, pairs);
      if (!slot.ok()) {
        return slot.status();
      }
      backup.Drain(backup.TxnTid());
      slots[r] = *slot;
      backup_durable[r] = backup.Now(backup.TxnTid());
      const net::Delivery ack =
          fabric_->Send(bn, cp, kCtrlBytes, backup_durable[r],
                        net::MsgKind::kIntentAck, txn_id, trace_id);
      ack_times.push_back(ack.delivered);
    } else {
      // One-sided redo: the primary writes the raw record into the
      // backup's intent region and rings the replay doorbell; the ack goes
      // out the instant the record is durable, independent of the replay
      // (which the backup's NDP runs locally in the apply phase).
      const net::Delivery write =
          fabric_->Send(cp, bn, record_bytes, coord.Now(coord_tid),
                        net::MsgKind::kRedoWrite, txn_id, trace_id);
      backup.rt().WaitUntil(backup.NicTid(), write.delivered);
      SimTime durable_at = 0;
      auto slot = backup.LandRedoRecord(backup.NicTid(), txn_id, pairs,
                                        !options_.skip_redo_persist,
                                        &durable_at);
      if (!slot.ok()) {
        return slot.status();
      }
      const net::Delivery bell =
          fabric_->Send(cp, bn, kCtrlBytes, coord.Now(coord_tid),
                        net::MsgKind::kDoorbell, txn_id, trace_id);
      backup.rt().WaitUntil(backup.NicTid(), bell.delivered);
      backup.RingDoorbell(backup.NicTid(), *slot, txn_id);
      slots[r] = *slot;
      backup_durable[r] = std::max(durable_at, backup.Now(backup.NicTid()));
      const net::Delivery ack =
          fabric_->Send(bn, cp, kCtrlBytes, durable_at,
                        net::MsgKind::kIntentAck, txn_id, trace_id);
      ack_times.push_back(ack.delivered);
    }
    if (stop.phase == ReplStopPhase::kMidReplicate &&
        stop.ordinal == backup_ordinal) {
      replicate_stopped = true;
    }
    ++backup_ordinal;
  }
  if (replicate_stopped) {
    return Unavailable("txn stopped by crash injection: mid replicate " +
                       std::to_string(stop.ordinal));
  }
  if (stop.phase == ReplStopPhase::kAfterReplicate) {
    return Unavailable("txn stopped by crash injection: after replicate");
  }

  // The commit point: the coordinator has every replica's durability ack.
  for (SimTime ack : ack_times) {
    coord.rt().WaitUntil(coord_tid, std::max(ack, coord.Now(coord_tid)));
  }

  // Phase 3 -- each participant group applies its slice on the primary and
  // every live backup. Non-coordinator groups first learn the slice over
  // the fabric (their backups hold no record; the coordinator intent covers
  // them on crash). In redo mode a coordinator backup's apply is the local
  // NDP replay, ordered after its record became durable.
  std::vector<SyncStateMachine> machines;
  machines.reserve(participants.size());
  for (int i = 0; i < k; ++i) {
    machines.emplace_back(k);
    NEARPM_RETURN_IF_ERROR(machines.back().ReceiveCommand());
  }
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    const int g = participants[ordinal];
    const int pg = router_.PrimaryNodeFor(g);
    std::vector<KvPair> slice;
    for (const KvPair& pair : pairs) {
      if (router_.ShardFor(pair.key) == g) {
        slice.push_back(pair);
      }
    }
    if (g != cg && pg != cp) {
      // Hand the slice to the participant group's primary.
      const net::Delivery ship =
          fabric_->Send(cp, pg, record_bytes, coord.Now(coord_tid),
                        net::MsgKind::kIntentShip, txn_id, trace_id);
      nodes_[pg]->rt().WaitUntil(nodes_[pg]->TxnTid(), ship.delivered);
    }
    for (int r : LiveReplicas(g)) {
      const int n = router_.NodeFor(g, r);
      Shard& replica = *nodes_[n];
      const ThreadId tid = replica.TxnTid();
      if (g == cg && n != cp && redo) {
        replica.rt().WaitUntil(
            tid, std::max(backup_durable[r], replica.Now(tid)));
      } else if (n != pg) {
        // Group-internal apply forwarding from the group's primary. A
        // replica already holding the record (pb coordinator backup) only
        // needs the commit trigger; the rest get the full framed slice.
        const std::size_t fwd_bytes =
            slots.size() > static_cast<std::size_t>(r) && g == cg &&
                    slots[r] >= 0
                ? kCtrlBytes
                : record_bytes;
        const net::Delivery fwd =
            fabric_->Send(pg, n, fwd_bytes,
                          nodes_[pg]->Now(nodes_[pg]->TxnTid()),
                          net::MsgKind::kIntentShip, txn_id, trace_id);
        replica.rt().WaitUntil(tid, fwd.delivered);
      }
      for (const KvPair& pair : slice) {
        NEARPM_RETURN_IF_ERROR(replica.Put(tid, pair.key, pair.value));
      }
    }
    if (stop.phase == ReplStopPhase::kMidApply && stop.ordinal == ordinal) {
      // Puts issued but nowhere drained: the crash model finds the slice's
      // device requests in flight on every replica of the group at once.
      return Unavailable("txn stopped by crash injection: mid apply " +
                         std::to_string(ordinal));
    }
    for (int r : LiveReplicas(g)) {
      Shard& replica = *nodes_[router_.NodeFor(g, r)];
      replica.Drain(replica.TxnTid());
    }
    NEARPM_RETURN_IF_ERROR(machines[ordinal].ReceiveLocalComplete());
    if (stop.phase == ReplStopPhase::kAfterApply &&
        stop.ordinal == ordinal) {
      return Unavailable("txn stopped by crash injection: after apply " +
                         std::to_string(ordinal));
    }
  }

  // Phase 4 -- cross-group completion exchange over the fabric, then all
  // participant primaries rendezvous (Invariant 3: the retire below is a
  // write ordered after this synchronization).
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    const int src = router_.PrimaryNodeFor(participants[ordinal]);
    Shard& sender = *nodes_[src];
    for (int peer = 0; peer < k; ++peer) {
      if (peer == ordinal) {
        continue;
      }
      const int dst = router_.PrimaryNodeFor(participants[peer]);
      const net::Delivery sig =
          fabric_->Send(src, dst, kCtrlBytes, sender.Now(sender.TxnTid()),
                        net::MsgKind::kSyncSignal, txn_id, trace_id);
      nodes_[dst]->rt().WaitUntil(nodes_[dst]->TxnTid(), sig.delivered);
      const DeviceId remote_index = ordinal < peer ? ordinal : ordinal - 1;
      NEARPM_RETURN_IF_ERROR(
          machines[peer].ReceiveRemoteComplete(remote_index));
    }
  }
  SimTime rendezvous = 0;
  for (int g : participants) {
    Shard& primary = *nodes_[router_.PrimaryNodeFor(g)];
    rendezvous = std::max(rendezvous, primary.Now(primary.TxnTid()));
  }
  rendezvous += coord.rt().options().hw.cost.ndp_remote_status_ns;
  for (int g : participants) {
    Shard& primary = *nodes_[router_.PrimaryNodeFor(g)];
    primary.rt().WaitUntil(primary.TxnTid(), rendezvous);
  }
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    if (!machines[ordinal].AllComplete()) {
      return Internal("participant " + std::to_string(ordinal) +
                      " not All-Complete before intent retire");
    }
  }
  if (stop.phase == ReplStopPhase::kAfterSync) {
    return Unavailable("txn stopped by crash injection: after sync");
  }

  // Phase 5 -- retire every replica's copy of the record, the coordinator
  // primary last (its intent is the authoritative one recovery redoes).
  for (int r = 0; r < options_.replicas; ++r) {
    const int bn = router_.NodeFor(cg, r);
    if (bn == cp || slots[r] < 0 || !alive_[bn]) {
      continue;
    }
    Shard& backup = *nodes_[bn];
    const net::Delivery retire =
        fabric_->Send(cp, bn, kCtrlBytes, coord.Now(coord_tid),
                      net::MsgKind::kRetire, txn_id, trace_id);
    backup.rt().WaitUntil(backup.TxnTid(), retire.delivered);
    NEARPM_RETURN_IF_ERROR(backup.InvalidateIntent(backup.TxnTid(), slots[r]));
    backup.Drain(backup.TxnTid());
  }
  NEARPM_RETURN_IF_ERROR(coord.InvalidateIntent(coord_tid, *intent_slot));
  coord.Drain(coord_tid);

  const SimTime txn_end = coord.Now(coord_tid);
  NEARPM_TRACE_SPAN(&coord.recorder(), .phase = TracePhase::kServeTxn,
                    .pid = kTraceServePid,
                    .tid = static_cast<std::uint32_t>(coord_tid),
                    .ts = txn_start,
                    .dur = txn_end > txn_start ? txn_end - txn_start : 1,
                    .seq = txn_id, .arg0 = static_cast<std::uint64_t>(k),
                    .trace = trace_id);
  commit_ns_->Add(txn_end - txn_start);
  ctr_commits_->fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

StatusOr<std::vector<std::uint8_t>> ReplicatedKvService::Read(
    std::uint64_t key) {
  const int group = router_.ShardFor(key);
  const int primary = router_.PrimaryNodeFor(group);
  if (!alive_[primary]) {
    return Unavailable("group " + std::to_string(group) +
                       " primary down; failover required");
  }
  Shard& shard = *nodes_[primary];
  std::lock_guard lock(shard.mu());
  return shard.Get(shard.TxnTid(), key);
}

void ReplicatedKvService::CrashReplicas(const std::vector<int>& crash_nodes,
                                        const std::vector<CrashPlan>& plans) {
  for (std::size_t i = 0; i < crash_nodes.size(); ++i) {
    const int n = crash_nodes[i];
    std::lock_guard lock(nodes_[n]->mu());
    nodes_[n]->Crash(i < plans.size() ? plans[i] : CrashPlan{});
    alive_[n] = false;
  }
  // Queued requests of groups whose routed primary died fail Unavailable;
  // other groups keep serving.
  for (int g = 0; g < options_.groups; ++g) {
    if (alive_[router_.PrimaryNodeFor(g)]) {
      continue;
    }
    while (auto item = queues_[g]->TryPop()) {
      item->done.set_value(
          Unexecuted(Unavailable("request lost in power failure")));
    }
  }
}

Status ReplicatedKvService::RedoNodeIntents(int n) {
  Shard& holder = *nodes_[n];
  auto intents = holder.ScanIntents(holder.TxnTid());
  if (!intents.ok()) {
    return intents.status();
  }
  for (const serve::IntentRecord& intent : *intents) {
    if (!options_.break_intent_redo) {
      for (const KvPair& pair : intent.pairs) {
        const int g = router_.ShardFor(pair.key);
        for (int r : LiveReplicas(g)) {
          Shard& replica = *nodes_[router_.NodeFor(g, r)];
          NEARPM_RETURN_IF_ERROR(
              replica.Put(replica.TxnTid(), pair.key, pair.value));
          replica.Drain(replica.TxnTid());
        }
      }
    }
    NEARPM_RETURN_IF_ERROR(
        holder.InvalidateIntent(holder.TxnTid(), intent.slot));
    holder.Drain(holder.TxnTid());
    metrics_.Increment("repl_intent_redos");
  }
  return Status::Ok();
}

Status ReplicatedKvService::Failover(int group) {
  // Quiesced path: promotion replays intents whose pairs may belong to
  // other groups, so take every node lock up front.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(nodes_.size());
  for (auto& shard : nodes_) {
    locks.emplace_back(shard->mu());
  }
  const std::vector<int> live = LiveReplicas(group);
  if (live.empty()) {
    return Unavailable("group " + std::to_string(group) +
                       " has no live replica to promote");
  }
  const int promoted = live.front();  // deterministic: lowest live index
  const int pn = router_.NodeFor(group, promoted);
  // Promotion from the durable log: the new primary replays its surviving
  // records (idempotent redo) before taking traffic, so an acked-but-not-
  // replayed one-sided record can never be served stale.
  NEARPM_RETURN_IF_ERROR(RedoNodeIntents(pn));
  router_.Promote(group, promoted);
  for (int r : live) {
    if (r == promoted) {
      continue;
    }
    const net::Delivery note = fabric_->Send(
        pn, router_.NodeFor(group, r), kCtrlBytes,
        nodes_[pn]->Now(nodes_[pn]->TxnTid()), net::MsgKind::kPromote, 0);
    Shard& peer = *nodes_[router_.NodeFor(group, r)];
    peer.rt().WaitUntil(peer.TxnTid(), note.delivered);
  }
  metrics_.Increment("repl_failovers");
  return Status::Ok();
}

Status ReplicatedKvService::RecoverAll() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(nodes_.size());
  for (auto& shard : nodes_) {
    locks.emplace_back(shard->mu());
  }
  for (int n = 0; n < num_nodes(); ++n) {
    if (alive_[n]) {
      continue;
    }
    NEARPM_RETURN_IF_ERROR(nodes_[n]->Recover());
    alive_[n] = true;
  }
  // Reconcile from the union of surviving intents across the cluster: any
  // record that survived anywhere was past its durability point, so its
  // pairs are re-applied to every replica of their owning groups
  // (idempotent upserts) before the record is retired. Replicas of a group
  // are bit-identical afterwards.
  for (int n = 0; n < num_nodes(); ++n) {
    NEARPM_RETURN_IF_ERROR(RedoNodeIntents(n));
  }
  return Status::Ok();
}

std::uint64_t ReplicatedKvService::PpoViolations(std::string* report) {
  std::uint64_t total = 0;
  for (auto& shard : nodes_) {
    std::lock_guard lock(shard->mu());
    const auto violations = PpoChecker{}.Check(shard->recorder());
    total += violations.size();
    if (report != nullptr && !violations.empty()) {
      *report += "node " + std::to_string(shard->id()) + ":\n" +
                 PpoChecker::Report(violations);
    }
  }
  return total;
}

void ReplicatedKvService::ExportResourceMetrics() {
  for (auto& shard : nodes_) {
    std::lock_guard lock(shard->mu());
    const Profile profile = BuildProfile(shard->recorder());
    nearpm::ExportResourceMetrics(
        profile, &metrics_, "repl_",
        "node=\"" + EscapeLabelValue(std::to_string(shard->id())) + "\",");
  }
  // The fabric's own track stream: one kNetXfer lane per directed link,
  // folded into per-link duty cycles.
  const Profile fabric_profile = BuildProfile(*fabric_recorder_);
  nearpm::ExportResourceMetrics(fabric_profile, &metrics_, "repl_",
                                "node=\"fabric\",");
  metrics_.MergeFrom(fabric_recorder_->metrics());
}

std::vector<TimelineSource> ReplicatedKvService::TimelineSources() {
  std::vector<TimelineSource> sources;
  sources.reserve(nodes_.size() + 1);
  for (auto& shard : nodes_) {
    std::lock_guard lock(shard->mu());
    sources.push_back({"node" + std::to_string(shard->id()),
                       shard->recorder().Snapshot()});
  }
  sources.push_back({"fabric", fabric_recorder_->Snapshot()});
  return sources;
}

StatusOr<std::vector<KvPair>> ReplicatedKvService::DumpReplica(int group,
                                                               int replica) {
  Shard& shard = *nodes_[router_.NodeFor(group, replica)];
  std::lock_guard lock(shard.mu());
  return shard.DumpTable(shard.TxnTid());
}

std::uint64_t ReplicatedKvService::CounterValue(
    const std::string& name) const {
  const auto& counters = metrics_.counters();
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

ReplStats ReplicatedKvService::Stats() const {
  ReplStats stats;
  stats.completed = CounterValue("repl_completed");
  stats.puts = CounterValue("repl_puts");
  stats.gets = CounterValue("repl_gets");
  stats.txns = CounterValue("repl_txns");
  stats.rejected = CounterValue("repl_rejected");
  stats.batches = CounterValue("repl_batches");
  stats.failovers = CounterValue("repl_failovers");
  stats.intent_redos = CounterValue("repl_intent_redos");
  stats.net_messages = fabric_->total_messages();
  for (const auto& shard : nodes_) {
    stats.makespan_ns = std::max(stats.makespan_ns, shard->MakespanNs());
  }
  const auto& histograms = metrics_.histograms();
  if (auto it = histograms.find("repl_request_ns"); it != histograms.end()) {
    stats.request_p50_ns = it->second.Percentile(0.5);
    stats.request_p99_ns = it->second.Percentile(0.99);
  }
  if (auto it = histograms.find("repl_commit_ns"); it != histograms.end()) {
    stats.commit_p50_ns = it->second.Percentile(0.5);
    stats.commit_p99_ns = it->second.Percentile(0.99);
  }
  if (stats.makespan_ns > 0) {
    stats.throughput_ops_per_sec = static_cast<double>(stats.completed) /
                                   (static_cast<double>(stats.makespan_ns) /
                                    1e9);
  }
  return stats;
}

}  // namespace repl
}  // namespace nearpm
