// Crash-state fuzzing for the replicated serving tier: the multi-node
// analogue of src/serve/serve_fuzzer.h.
//
// Every case is fully deterministic: a seeded warmup (puts committed through
// the replicated commit, so they are acked and durable on every replica),
// one replicated transaction abandoned at a chosen ReplStopPhase, then a
// power failure on an arbitrary *subset* of nodes (the crash mask -- the
// sweep enumerates every non-empty subset) with a uniform pending-line
// survival mask, failover for groups whose routed primary died, and
// RecoverAll().
//
// Oracles:
//  * a promoted backup must serve every acked key exactly (kFailoverError);
//  * recovery must succeed on every node (kRecoverError);
//  * acked warmup data must survive bit-for-bit on EVERY replica of its
//    owning group (kLostCommitted);
//  * the crashed transaction must be all-or-nothing -- and since every stop
//    phase lies after the coordinator intent became durable, recovery's
//    union reconciliation must land the whole transaction on every replica
//    (kTornTxn; catches break_intent_redo);
//  * after recovery all replicas of a group must hold bit-identical tables
//    (kDivergentReplica);
//  * replaying every node's trace through the PM-Sanitizer must report no
//    NPM007 doorbell-before-persist hazard (kDoorbellHazard; catches
//    skip_redo_persist, where the one-sided ack races the record);
//  * the recorded traces must satisfy the Section 4 PPO invariants
//    (kPpoViolation);
//  * the recovered cluster must serve fresh replicated transactions exactly
//    (kPostRecoveryMismatch).
#ifndef SRC_REPL_REPL_FUZZER_H_
#define SRC_REPL_REPL_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/repl/service.h"

namespace nearpm {
namespace repl {

struct ReplFuzzConfig {
  int groups = 2;
  int replicas = 2;
  ReplProtocol protocol = ReplProtocol::kPrimaryBackup;
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool skip_recovery_replay = false;  // ablation: broken hardware replay
  bool break_intent_redo = false;     // ablation: intents scrubbed, not redone
  bool skip_redo_persist = false;     // ablation: one-sided ack races record
  std::uint32_t table_slots = 64;
  std::uint32_t value_size = 32;
  // When set, Run() deposits each node's full trace snapshot (warmup, the
  // stopped txn, the crash) here, one vector per node -- offline rule-engine
  // replay (nearpm_analyze --corpus) runs one sanitizer per snapshot.
  std::vector<std::vector<TraceEvent>>* trace_sink = nullptr;
};

// One deterministic crash schedule. Keys and values derive from the seed;
// the stop phase pins where inside the replicated protocol the power fails
// and the crash mask pins which nodes fail (bit n = node n).
struct ReplFuzzCase {
  std::uint64_t seed = 1;
  std::uint64_t warmup_ops = 6;  // acked replicated puts before the txn
  std::uint64_t txn_pairs = 4;   // pairs in the crashed transaction
  ReplStopPhase phase = ReplStopPhase::kNone;
  int ordinal = 0;  // backup index (kMidReplicate) / participant ordinal
  std::uint64_t crash_mask = ~0ull;  // clipped to the node count; != 0
  // Failure instant as an offset from each crashed node's own clock at the
  // stop point (0 = "right now").
  std::uint64_t crash_offset = 0;
  bool lines_survive = false;  // uniform survival for every pending CPU line
};

enum class ReplFailureKind : std::uint8_t {
  kNone = 0,
  kHarness,               // the schedule itself could not be executed
  kFailoverError,         // promotion failed or a promoted backup misserved
  kRecoverError,          // RecoverAll returned an error
  kLostCommitted,         // acked data missing or wrong on some replica
  kTornTxn,               // the txn recovered partially despite its intent
  kDivergentReplica,      // replicas of one group disagree bit-for-bit
  kDoorbellHazard,        // NPM007: a doorbell raced its redo record
  kPpoViolation,          // a node trace violates a Section 4 invariant
  kPostRecoveryMismatch,  // the recovered cluster misbehaves afterwards
};

const char* ReplFailureKindName(ReplFailureKind kind);

struct ReplCaseResult {
  ReplFailureKind failure = ReplFailureKind::kNone;
  std::string detail;

  bool ok() const { return failure == ReplFailureKind::kNone; }
};

struct ReplFuzzFailure {
  ReplFuzzCase fuzz_case;
  ReplCaseResult result;
};

class ReplFuzzer {
 public:
  explicit ReplFuzzer(const ReplFuzzConfig& config) : config_(config) {}

  const ReplFuzzConfig& config() const { return config_; }

  // Executes the case end to end (warmup, txn, crash, failover, recovery,
  // oracles).
  ReplCaseResult Run(const ReplFuzzCase& c) const;

  // Participant group count of the transaction the case derives (the
  // ordinal range the *Apply stop phases can target).
  int ParticipantCount(const ReplFuzzCase& c) const;

  // Exhaustive sweep of one schedule: every stop phase, every ordinal the
  // phase can target, every non-empty node subset as the crash mask, under
  // the all-drop and all-survive masks. Appends failing cases to `failures`
  // when non-null.
  fuzz::SweepStats Systematic(std::uint64_t seed,
                              std::vector<ReplFuzzFailure>* failures) const;

  // Corpus glue (kind == "repl"): break_recovery maps to
  // skip_recovery_replay, crash_time to crash_offset.
  fuzz::CrashRepro ToRepro(const ReplFuzzCase& c, const std::string& expect,
                           const std::string& note) const;
  static ReplFuzzConfig ConfigFromRepro(const fuzz::CrashRepro& repro);
  static StatusOr<ReplFuzzCase> CaseFromRepro(const fuzz::CrashRepro& repro);

  static const char* PhaseName(ReplStopPhase phase);
  static StatusOr<ReplStopPhase> PhaseFromName(const std::string& name);

 private:
  struct PrefixEnv;

  // Warmup + the stopped transaction inside a fresh cluster; harness errors
  // surface as a non-ok Status.
  Status ExecutePrefix(const ReplFuzzCase& c, PrefixEnv* env) const;

  ReplFuzzConfig config_;
};

}  // namespace repl
}  // namespace nearpm

#endif  // SRC_REPL_REPL_FUZZER_H_
