// Deterministic crash-state exploration engine (the correctness-tooling
// analogue of a sanitizer pass).
//
// The engine drives a fixed-layout bank workload -- account transfers plus
// page-sized blob fills, so operations span both interleaved devices and
// exercise large in-flight NDP copies -- through a PersistentHeap, fails the
// power at a chosen crash point, recovers, and checks the recovered heap
// against a pure reference model:
//
//  * recovery must succeed;
//  * the recovered state must equal the reference state after some prefix
//    of the committed operations (crash consistency: atomicity + ordering;
//    a fully-applied *uncommitted* operation is the Section 2.3 lost-log
//    symptom and is flagged separately);
//  * operations after recovery must behave exactly like the model;
//  * with PPO enforced, the recorded trace must satisfy the Section 4
//    invariants (PpoChecker).
//
// A crash point is fully deterministic -- (op-stream seed, crash step,
// mid-op flag, failure instant, pending-line survival mask) -- so every
// failure replays bit-for-bit and shrinks to a minimal corpus repro.
// Systematic mode enumerates the failure instants after every
// persist-relevant trace event (EnumerateCrashPoints); sweep mode samples
// schedules from a 64-bit seed.
#ifndef SRC_FUZZ_CRASH_FUZZER_H_
#define SRC_FUZZ_CRASH_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/options.h"
#include "src/fuzz/corpus.h"
#include "src/pmlib/provider.h"

namespace nearpm {

namespace analyze {
class PmSanitizer;
}  // namespace analyze

namespace fuzz {

struct FuzzConfig {
  Mechanism mechanism = Mechanism::kLogging;
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  // Fault injection: run with the deliberately broken hardware recovery
  // (RuntimeOptions::skip_recovery_replay). The fuzzer must catch this.
  bool break_recovery = false;
  std::uint64_t pm_size = 16ull << 20;
  std::uint64_t data_size = 256ull << 10;
  int accounts = 8;
  int ckpt_epoch_ops = 4;
  // Optional PM-Sanitizer attached to every replayed environment, so corpus
  // repros and fuzz sweeps run under the eager persistency-bug analyzer.
  analyze::PmSanitizer* sanitizer = nullptr;
};

// One fully deterministic crash schedule (see file comment).
struct FuzzCase {
  std::uint64_t seed = 1;
  std::uint64_t total_ops = 6;
  std::uint64_t crash_step = 0;
  bool mid_op = false;
  std::uint64_t crash_time = 0;  // absolute instant; 0 = "right now"
  std::vector<bool> line_survival;
};

enum class FailureKind : std::uint8_t {
  kNone = 0,
  kRecoverError,          // PersistentHeap::Recover returned an error
  kStateMismatch,         // recovered state matches no committed prefix
  kUncommittedDurable,    // the uncommitted crash op survived whole (§2.3)
  kPostRecoveryMismatch,  // recovered heap diverges from the model afterwards
  kPpoViolation,          // trace violates a Section 4 invariant
};

const char* FailureKindName(FailureKind kind);

struct CaseResult {
  FailureKind failure = FailureKind::kNone;
  std::string detail;
  // Committed prefix length the recovered state matched (valid on success).
  std::uint64_t matched_prefix = 0;
  std::uint64_t committed = 0;

  bool ok() const { return failure == FailureKind::kNone; }
};

// Prefix probe: candidate failure instants and the pending-line count at
// the crash point (the survival-mask length).
struct ProbeResult {
  std::vector<std::uint64_t> candidates;
  std::uint64_t pending_lines = 0;
};

struct SweepStats {
  std::uint64_t cases = 0;
  std::uint64_t failures = 0;
};

struct FuzzFailure {
  FuzzCase fuzz_case;
  CaseResult result;
};

class CrashFuzzer {
 public:
  explicit CrashFuzzer(const FuzzConfig& config) : config_(config) {}

  const FuzzConfig& config() const { return config_; }

  // Executes the case's prefix without failing, and reports the crash-point
  // candidates reachable from it.
  ProbeResult Probe(const FuzzCase& c) const;

  // Executes the case end to end (prefix, crash, recovery, oracles).
  CaseResult Run(const FuzzCase& c) const;

  // Exhaustive sweep of one schedule: every crash step, committed and
  // mid-op, every enumerated failure instant (capped at `max_candidates`
  // per point, evenly subsampled), under the all-drop and all-survive
  // masks. Appends failures to `failures` when non-null.
  SweepStats Systematic(std::uint64_t seed, std::uint64_t ops,
                        std::size_t max_candidates,
                        std::vector<FuzzFailure>* failures) const;

  // Randomized deep sweep: `cases_per_seed` schedules per seed in
  // [first_seed, first_seed + num_seeds), with random crash instants and
  // survival masks. Fully reproducible: case `i` of seed `s` is
  // BuildSweepCase(s, i).
  SweepStats RandomSweep(std::uint64_t first_seed, std::uint64_t num_seeds,
                         int cases_per_seed,
                         std::vector<FuzzFailure>* failures) const;

  // The deterministic derivation RandomSweep uses (exposed for --replay).
  FuzzCase BuildSweepCase(std::uint64_t seed, std::uint64_t case_index) const;

  // Shrinks a failing case to the earliest failing crash step, the earliest
  // failing candidate instant and a minimal survival mask, preserving the
  // failure class. Returns the (now minimal) case; `result` receives its
  // verdict.
  FuzzCase Shrink(const FuzzCase& failing, CaseResult* result) const;

  // Corpus glue: a repro pins the config fields that matter alongside the
  // schedule, so a corpus file replays under the right mechanism/mode.
  CrashRepro ToRepro(const FuzzCase& c, const std::string& expect,
                     const std::string& note) const;
  static FuzzConfig ConfigFromRepro(const CrashRepro& repro);
  static FuzzCase CaseFromRepro(const CrashRepro& repro);

 private:
  struct Env;

  // Runs mint + the schedule prefix of `c` inside a fresh simulated
  // machine. Returns false (with result filled) on harness errors.
  bool ExecutePrefix(const FuzzCase& c, Env* env, CaseResult* result) const;
  CaseResult RunOracles(const FuzzCase& c, Env* env) const;

  FuzzConfig config_;
};

}  // namespace fuzz
}  // namespace nearpm

#endif  // SRC_FUZZ_CRASH_FUZZER_H_
