// Minimal flat-JSON support for fuzz repro files.
//
// Corpus repros are intentionally one flat object of scalars so a failing
// crash schedule stays a human-readable, hand-editable artifact. This is a
// deliberately tiny reader/writer for exactly that shape -- string, unsigned
// integer and boolean values, no nesting -- not a general JSON library (the
// repo has none, and pulling one in for five fields is not worth it).
#ifndef SRC_FUZZ_FUZZ_JSON_H_
#define SRC_FUZZ_FUZZ_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace nearpm {
namespace fuzz {

struct JsonValue {
  enum class Kind { kString, kUint, kBool };
  Kind kind = Kind::kString;
  std::string str;
  std::uint64_t num = 0;
  bool boolean = false;

  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static JsonValue Uint(std::uint64_t n) {
    JsonValue v;
    v.kind = Kind::kUint;
    v.num = n;
    return v;
  }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind = Kind::kBool;
    v.boolean = b;
    return v;
  }
};

// Key-sorted so serialization is deterministic (repro files diff cleanly).
using JsonObject = std::map<std::string, JsonValue>;

// Parses one flat JSON object. Rejects nesting, arrays, floats and negative
// numbers -- the repro schema needs none of them.
StatusOr<JsonObject> ParseJsonObject(std::string_view text);

// Pretty-prints with one "key": value per line and a trailing newline.
std::string WriteJsonObject(const JsonObject& object);

}  // namespace fuzz
}  // namespace nearpm

#endif  // SRC_FUZZ_FUZZ_JSON_H_
