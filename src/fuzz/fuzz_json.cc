#include "src/fuzz/fuzz_json.h"

#include <cctype>

namespace nearpm {
namespace fuzz {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonObject> Object() {
    JsonObject out;
    SkipWs();
    if (!Consume('{')) {
      return InvalidArgument("expected '{'");
    }
    SkipWs();
    if (Consume('}')) {
      return out;
    }
    while (true) {
      SkipWs();
      auto key = QuotedString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWs();
      if (!Consume(':')) {
        return InvalidArgument("expected ':' after key \"" + *key + "\"");
      }
      SkipWs();
      auto value = Value();
      if (!value.ok()) {
        return value.status();
      }
      out[*key] = *value;
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return InvalidArgument("expected ',' or '}' after value of \"" + *key +
                             "\"");
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgument("trailing characters after object");
    }
    return out;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<std::string> QuotedString() {
    if (!Consume('"')) {
      return InvalidArgument("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return InvalidArgument("dangling escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            c = esc;
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          default:
            return InvalidArgument("unsupported escape sequence");
        }
      }
      out.push_back(c);
    }
    if (!Consume('"')) {
      return InvalidArgument("unterminated string");
    }
    return out;
  }

  StatusOr<JsonValue> Value() {
    if (pos_ >= text_.size()) {
      return InvalidArgument("expected a value");
    }
    const char c = text_[pos_];
    if (c == '"') {
      auto s = QuotedString();
      if (!s.ok()) {
        return s.status();
      }
      return JsonValue::String(*s);
    }
    if (ConsumeWord("true")) {
      return JsonValue::Bool(true);
    }
    if (ConsumeWord("false")) {
      return JsonValue::Bool(false);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::uint64_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        n = n * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      return JsonValue::Uint(n);
    }
    return InvalidArgument("unsupported value (only strings, unsigned "
                           "integers and booleans are allowed)");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

StatusOr<JsonObject> ParseJsonObject(std::string_view text) {
  return Parser(text).Object();
}

std::string WriteJsonObject(const JsonObject& object) {
  std::string out = "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : object) {
    out.append("  ");
    AppendEscaped(key, &out);
    out.append(": ");
    switch (value.kind) {
      case JsonValue::Kind::kString:
        AppendEscaped(value.str, &out);
        break;
      case JsonValue::Kind::kUint:
        out.append(std::to_string(value.num));
        break;
      case JsonValue::Kind::kBool:
        out.append(value.boolean ? "true" : "false");
        break;
    }
    if (++i != object.size()) {
      out.push_back(',');
    }
    out.push_back('\n');
  }
  out.append("}\n");
  return out;
}

}  // namespace fuzz
}  // namespace nearpm
