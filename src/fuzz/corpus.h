// Crash-repro corpus: minimized failing (or once-failing) crash schedules,
// persisted as flat JSON so they replay as regular regression tests.
//
// A repro pins everything the fuzzer needs to re-create one crash state
// bit-for-bit: the execution-mode/mechanism pair, the op-stream seed, the
// crash step, the candidate failure instant and the pending-line survival
// mask. `expect` records the verdict the replay must reproduce:
//
//   "recoverable"  -- recovery must succeed and pass every oracle (the
//                     regression corpus: crash states that once exposed a
//                     bug and must stay fixed);
//   "violation"    -- the oracle must flag the state (teeth anchors: the
//                     Section 2.3 ablation stays *caught*, proving the
//                     fuzzer still detects real inconsistencies).
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/options.h"
#include "src/pmlib/provider.h"

namespace nearpm {
namespace fuzz {

struct CrashRepro {
  std::uint64_t version = 1;
  Mechanism mechanism = Mechanism::kLogging;
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool break_recovery = false;  // fault-injected recovery (self-test repros)
  std::uint64_t seed = 1;       // op-stream derivation seed
  std::uint64_t total_ops = 1;
  std::uint64_t crash_step = 0;
  bool mid_op = false;          // power fails before the step's CommitOp
  std::uint64_t crash_time = 0; // absolute failure instant (0 = "now")
  // One '0'/'1' per pending CPU line in ascending address order ('1' = the
  // line happened to be written back before the failure).
  std::string line_survival;
  std::string expect = "recoverable";
  std::string note;

  // ---- serve-kind repros ----------------------------------------------------
  // kind "bank" (the default, and what a file without a "kind" field means)
  // replays the single-runtime bank-ledger fuzzer above. kind "serve" replays
  // a sharded cross-shard MultiPut crash through serve::ServeFuzzer; the
  // shared fields keep their meaning (seed, mode, enforce_ppo;
  // break_recovery maps to skip_recovery_replay) and the fields below pin
  // the transaction crash point.
  std::string kind = "bank";  // "bank" | "serve" | "repl"
  std::uint64_t serve_shards = 3;
  std::uint64_t serve_warmup_ops = 6;   // committed single-shard puts first
  std::uint64_t serve_txn_pairs = 4;    // pairs in the crashed MultiPut
  std::string serve_phase = "none";     // TxnStopPhase name
  std::uint64_t serve_apply_ordinal = 0;
  bool serve_survive = false;           // uniform pending-line survival
  bool serve_break_txn_redo = false;    // fault-injected intent redo

  // ---- repl-kind repros -----------------------------------------------------
  // kind "repl" replays a replicated-cluster crash through repl::ReplFuzzer:
  // warmup through the replicated commit, one transaction abandoned at
  // repl_phase/repl_ordinal, then a power failure on the node subset in
  // repl_crash_mask (bit n = node n fails). The shared fields keep their
  // meaning (seed, mode, enforce_ppo, crash_time as offset; break_recovery
  // maps to skip_recovery_replay) and serve_warmup_ops/serve_txn_pairs size
  // the schedule.
  std::uint64_t repl_groups = 2;
  std::uint64_t repl_replicas = 2;
  std::string repl_protocol = "pb";   // ReplProtocolName: "pb" | "redo"
  std::string repl_phase = "none";    // ReplStopPhase name
  std::uint64_t repl_ordinal = 0;
  std::uint64_t repl_crash_mask = 0;  // node subset that power-fails (!= 0)
  bool repl_survive = false;          // uniform pending-line survival
  bool repl_break_intent_redo = false;   // recovery scrubs without applying
  bool repl_skip_redo_persist = false;   // one-sided records left unpersisted
};

// Name <-> enum helpers (canonical names from MechanismName/ExecModeName).
StatusOr<Mechanism> MechanismFromName(const std::string& name);
StatusOr<ExecMode> ExecModeFromName(const std::string& name);

std::string ReproToJson(const CrashRepro& repro);
StatusOr<CrashRepro> ReproFromJson(const std::string& text);

Status SaveRepro(const CrashRepro& repro, const std::string& path);
StatusOr<CrashRepro> LoadRepro(const std::string& path);

// Sorted paths of every *.json under `dir` (empty when the directory does
// not exist).
std::vector<std::string> ListCorpus(const std::string& dir);

// Stable file name for a repro: fuzz_<mech>_<mode>[_noppo]_s<seed>_....json
std::string ReproFileName(const CrashRepro& repro);

}  // namespace fuzz
}  // namespace nearpm

#endif  // SRC_FUZZ_CORPUS_H_
