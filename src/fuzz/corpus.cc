#include "src/fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/fuzz/fuzz_json.h"

namespace nearpm {
namespace fuzz {
namespace {

constexpr Mechanism kAllMechanisms[] = {
    Mechanism::kLogging, Mechanism::kRedoLogging, Mechanism::kCheckpointing,
    Mechanism::kShadowPaging};
constexpr ExecMode kAllModes[] = {
    ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
    ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed};

StatusOr<const JsonValue*> Require(const JsonObject& obj,
                                   const std::string& key,
                                   JsonValue::Kind kind) {
  auto it = obj.find(key);
  if (it == obj.end()) {
    return InvalidArgument("repro is missing field \"" + key + "\"");
  }
  if (it->second.kind != kind) {
    return InvalidArgument("repro field \"" + key + "\" has the wrong type");
  }
  return &it->second;
}

}  // namespace

StatusOr<Mechanism> MechanismFromName(const std::string& name) {
  for (Mechanism m : kAllMechanisms) {
    if (name == MechanismName(m)) {
      return m;
    }
  }
  return InvalidArgument("unknown mechanism \"" + name + "\"");
}

StatusOr<ExecMode> ExecModeFromName(const std::string& name) {
  for (ExecMode m : kAllModes) {
    if (name == ExecModeName(m)) {
      return m;
    }
  }
  return InvalidArgument("unknown execution mode \"" + name + "\"");
}

std::string ReproToJson(const CrashRepro& repro) {
  JsonObject obj;
  obj["version"] = JsonValue::Uint(repro.version);
  obj["mechanism"] = JsonValue::String(MechanismName(repro.mechanism));
  obj["mode"] = JsonValue::String(ExecModeName(repro.mode));
  obj["enforce_ppo"] = JsonValue::Bool(repro.enforce_ppo);
  obj["break_recovery"] = JsonValue::Bool(repro.break_recovery);
  obj["seed"] = JsonValue::Uint(repro.seed);
  obj["total_ops"] = JsonValue::Uint(repro.total_ops);
  obj["crash_step"] = JsonValue::Uint(repro.crash_step);
  obj["mid_op"] = JsonValue::Bool(repro.mid_op);
  obj["crash_time"] = JsonValue::Uint(repro.crash_time);
  obj["line_survival"] = JsonValue::String(repro.line_survival);
  obj["expect"] = JsonValue::String(repro.expect);
  if (!repro.note.empty()) {
    obj["note"] = JsonValue::String(repro.note);
  }
  // "kind" is omitted for bank repros so pre-serve corpus files stay
  // byte-identical round-trip.
  if (repro.kind == "serve") {
    obj["kind"] = JsonValue::String(repro.kind);
    obj["serve_shards"] = JsonValue::Uint(repro.serve_shards);
    obj["serve_warmup_ops"] = JsonValue::Uint(repro.serve_warmup_ops);
    obj["serve_txn_pairs"] = JsonValue::Uint(repro.serve_txn_pairs);
    obj["serve_phase"] = JsonValue::String(repro.serve_phase);
    obj["serve_apply_ordinal"] = JsonValue::Uint(repro.serve_apply_ordinal);
    obj["serve_survive"] = JsonValue::Bool(repro.serve_survive);
    obj["serve_break_txn_redo"] = JsonValue::Bool(repro.serve_break_txn_redo);
  } else if (repro.kind == "repl") {
    obj["kind"] = JsonValue::String(repro.kind);
    obj["serve_warmup_ops"] = JsonValue::Uint(repro.serve_warmup_ops);
    obj["serve_txn_pairs"] = JsonValue::Uint(repro.serve_txn_pairs);
    obj["repl_groups"] = JsonValue::Uint(repro.repl_groups);
    obj["repl_replicas"] = JsonValue::Uint(repro.repl_replicas);
    obj["repl_protocol"] = JsonValue::String(repro.repl_protocol);
    obj["repl_phase"] = JsonValue::String(repro.repl_phase);
    obj["repl_ordinal"] = JsonValue::Uint(repro.repl_ordinal);
    obj["repl_crash_mask"] = JsonValue::Uint(repro.repl_crash_mask);
    obj["repl_survive"] = JsonValue::Bool(repro.repl_survive);
    obj["repl_break_intent_redo"] =
        JsonValue::Bool(repro.repl_break_intent_redo);
    obj["repl_skip_redo_persist"] =
        JsonValue::Bool(repro.repl_skip_redo_persist);
  }
  return WriteJsonObject(obj);
}

StatusOr<CrashRepro> ReproFromJson(const std::string& text) {
  auto parsed = ParseJsonObject(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonObject& obj = *parsed;
  CrashRepro repro;

  auto version = Require(obj, "version", JsonValue::Kind::kUint);
  if (!version.ok()) {
    return version.status();
  }
  repro.version = (*version)->num;
  if (repro.version != 1) {
    return InvalidArgument("unsupported repro version " +
                           std::to_string(repro.version));
  }

  auto mech = Require(obj, "mechanism", JsonValue::Kind::kString);
  if (!mech.ok()) {
    return mech.status();
  }
  auto mech_value = MechanismFromName((*mech)->str);
  if (!mech_value.ok()) {
    return mech_value.status();
  }
  repro.mechanism = *mech_value;

  auto mode = Require(obj, "mode", JsonValue::Kind::kString);
  if (!mode.ok()) {
    return mode.status();
  }
  auto mode_value = ExecModeFromName((*mode)->str);
  if (!mode_value.ok()) {
    return mode_value.status();
  }
  repro.mode = *mode_value;

  struct BoolField {
    const char* key;
    bool* dst;
  };
  for (const BoolField& f :
       {BoolField{"enforce_ppo", &repro.enforce_ppo},
        BoolField{"break_recovery", &repro.break_recovery},
        BoolField{"mid_op", &repro.mid_op}}) {
    auto v = Require(obj, f.key, JsonValue::Kind::kBool);
    if (!v.ok()) {
      return v.status();
    }
    *f.dst = (*v)->boolean;
  }

  struct UintField {
    const char* key;
    std::uint64_t* dst;
  };
  for (const UintField& f :
       {UintField{"seed", &repro.seed}, UintField{"total_ops", &repro.total_ops},
        UintField{"crash_step", &repro.crash_step},
        UintField{"crash_time", &repro.crash_time}}) {
    auto v = Require(obj, f.key, JsonValue::Kind::kUint);
    if (!v.ok()) {
      return v.status();
    }
    *f.dst = (*v)->num;
  }

  auto survival = Require(obj, "line_survival", JsonValue::Kind::kString);
  if (!survival.ok()) {
    return survival.status();
  }
  repro.line_survival = (*survival)->str;
  for (char c : repro.line_survival) {
    if (c != '0' && c != '1') {
      return InvalidArgument("line_survival must be a string of 0s and 1s");
    }
  }

  auto expect = Require(obj, "expect", JsonValue::Kind::kString);
  if (!expect.ok()) {
    return expect.status();
  }
  repro.expect = (*expect)->str;
  if (repro.expect != "recoverable" && repro.expect != "violation") {
    return InvalidArgument("expect must be \"recoverable\" or \"violation\"");
  }

  if (auto it = obj.find("note"); it != obj.end()) {
    if (it->second.kind != JsonValue::Kind::kString) {
      return InvalidArgument("note must be a string");
    }
    repro.note = it->second.str;
  }

  if (auto it = obj.find("kind"); it != obj.end()) {
    if (it->second.kind != JsonValue::Kind::kString) {
      return InvalidArgument("kind must be a string");
    }
    repro.kind = it->second.str;
  }
  if (repro.kind == "serve") {
    for (const UintField& f :
         {UintField{"serve_shards", &repro.serve_shards},
          UintField{"serve_warmup_ops", &repro.serve_warmup_ops},
          UintField{"serve_txn_pairs", &repro.serve_txn_pairs},
          UintField{"serve_apply_ordinal", &repro.serve_apply_ordinal}}) {
      auto v = Require(obj, f.key, JsonValue::Kind::kUint);
      if (!v.ok()) {
        return v.status();
      }
      *f.dst = (*v)->num;
    }
    for (const BoolField& f :
         {BoolField{"serve_survive", &repro.serve_survive},
          BoolField{"serve_break_txn_redo", &repro.serve_break_txn_redo}}) {
      auto v = Require(obj, f.key, JsonValue::Kind::kBool);
      if (!v.ok()) {
        return v.status();
      }
      *f.dst = (*v)->boolean;
    }
    auto phase = Require(obj, "serve_phase", JsonValue::Kind::kString);
    if (!phase.ok()) {
      return phase.status();
    }
    repro.serve_phase = (*phase)->str;
    if (repro.serve_shards == 0 || repro.serve_txn_pairs == 0) {
      return InvalidArgument("serve repro needs shards and txn pairs >= 1");
    }
  } else if (repro.kind == "repl") {
    for (const UintField& f :
         {UintField{"serve_warmup_ops", &repro.serve_warmup_ops},
          UintField{"serve_txn_pairs", &repro.serve_txn_pairs},
          UintField{"repl_groups", &repro.repl_groups},
          UintField{"repl_replicas", &repro.repl_replicas},
          UintField{"repl_ordinal", &repro.repl_ordinal},
          UintField{"repl_crash_mask", &repro.repl_crash_mask}}) {
      auto v = Require(obj, f.key, JsonValue::Kind::kUint);
      if (!v.ok()) {
        return v.status();
      }
      *f.dst = (*v)->num;
    }
    for (const BoolField& f :
         {BoolField{"repl_survive", &repro.repl_survive},
          BoolField{"repl_break_intent_redo", &repro.repl_break_intent_redo},
          BoolField{"repl_skip_redo_persist",
                    &repro.repl_skip_redo_persist}}) {
      auto v = Require(obj, f.key, JsonValue::Kind::kBool);
      if (!v.ok()) {
        return v.status();
      }
      *f.dst = (*v)->boolean;
    }
    auto protocol = Require(obj, "repl_protocol", JsonValue::Kind::kString);
    if (!protocol.ok()) {
      return protocol.status();
    }
    repro.repl_protocol = (*protocol)->str;
    if (repro.repl_protocol != "pb" && repro.repl_protocol != "redo") {
      return InvalidArgument("repl_protocol must be \"pb\" or \"redo\"");
    }
    auto phase = Require(obj, "repl_phase", JsonValue::Kind::kString);
    if (!phase.ok()) {
      return phase.status();
    }
    repro.repl_phase = (*phase)->str;
    if (repro.repl_groups == 0 || repro.repl_replicas == 0 ||
        repro.serve_txn_pairs == 0) {
      return InvalidArgument("repl repro needs groups, replicas and txn "
                             "pairs >= 1");
    }
    if (repro.repl_crash_mask == 0) {
      return InvalidArgument("repl_crash_mask must name at least one node");
    }
  } else if (repro.kind != "bank") {
    return InvalidArgument("unknown repro kind \"" + repro.kind + "\"");
  }

  if (repro.total_ops == 0 || repro.crash_step >= repro.total_ops) {
    return InvalidArgument("crash_step must lie inside total_ops");
  }
  return repro;
}

Status SaveRepro(const CrashRepro& repro, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Unavailable("cannot open " + path + " for writing");
  }
  out << ReproToJson(repro);
  out.close();
  if (!out) {
    return Unavailable("failed writing " + path);
  }
  return Status::Ok();
}

StatusOr<CrashRepro> LoadRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto repro = ReproFromJson(text.str());
  if (!repro.ok()) {
    return InvalidArgument(path + ": " + repro.status().ToString());
  }
  return repro;
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string ReproFileName(const CrashRepro& repro) {
  if (repro.kind == "repl") {
    std::string name = "repl_";
    name += repro.repl_protocol;
    name += "_";
    name += ExecModeName(repro.mode);
    if (!repro.enforce_ppo) {
      name += "_noppo";
    }
    if (repro.break_recovery) {
      name += "_skiprec";
    }
    if (repro.repl_break_intent_redo) {
      name += "_brokenredo";
    }
    if (repro.repl_skip_redo_persist) {
      name += "_nopersist";
    }
    name += "_s" + std::to_string(repro.seed);
    name += "_" + repro.repl_phase;
    name += std::to_string(repro.repl_ordinal);
    name += "_m" + std::to_string(repro.repl_crash_mask);
    name += repro.repl_survive ? "_surv" : "_drop";
    name += ".json";
    return name;
  }
  if (repro.kind == "serve") {
    std::string name = "serve_";
    name += ExecModeName(repro.mode);
    if (!repro.enforce_ppo) {
      name += "_noppo";
    }
    if (repro.break_recovery) {
      name += "_skiprec";
    }
    if (repro.serve_break_txn_redo) {
      name += "_brokentxn";
    }
    name += "_s" + std::to_string(repro.seed);
    name += "_" + repro.serve_phase;
    name += std::to_string(repro.serve_apply_ordinal);
    name += repro.serve_survive ? "_surv" : "_drop";
    name += ".json";
    return name;
  }
  std::string name = "fuzz_";
  name += MechanismName(repro.mechanism);
  name += "_";
  name += ExecModeName(repro.mode);
  if (!repro.enforce_ppo) {
    name += "_noppo";
  }
  if (repro.break_recovery) {
    name += "_brokenrec";
  }
  name += "_s" + std::to_string(repro.seed);
  name += "_op" + std::to_string(repro.crash_step);
  name += repro.mid_op ? "m" : "c";
  name += "_t" + std::to_string(repro.crash_time);
  name += ".json";
  return name;
}

}  // namespace fuzz
}  // namespace nearpm
