#include "src/fuzz/crash_fuzzer.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/pmlib/heap.h"
#include "src/trace/crash_cursor.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace fuzz {
namespace {

constexpr std::uint64_t kInitialBalance = 1000;
constexpr std::uint64_t kAccountStride = 2048;  // spans the interleave stripes
constexpr std::uint64_t kBlobSize = 4096;       // big enough for in-flight DMA

// One workload operation. Transfers move money between two accounts (two
// small stores pages apart, so one op spans both interleaved devices); blob
// fills rewrite a page-sized object (a large undo/redo/shadow copy stays in
// flight at the crash, the Section 2.3 shape).
struct Op {
  bool blob = false;
  int from = 0;
  int to = 1;
  std::uint64_t amount = 0;
  std::uint8_t fill = 0;
};

std::vector<Op> DeriveOps(std::uint64_t seed, std::uint64_t n, int accounts) {
  Rng r(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Op op;
    op.blob = r.NextBool(0.25);
    if (op.blob) {
      // Fill bytes are 1..255: the pool starts zeroed, so every blob state
      // (including "never written") is distinguishable.
      op.fill = static_cast<std::uint8_t>(1 + r.NextBounded(255));
    } else {
      op.from = static_cast<int>(r.NextBounded(accounts));
      op.to = (op.from + 1 +
               static_cast<int>(r.NextBounded(accounts - 1))) %
              accounts;
      op.amount = r.Next() % 1000;
    }
    ops.push_back(op);
  }
  return ops;
}

// Pure reference model of the workload state.
struct ModelState {
  std::vector<std::uint64_t> balances;
  int blob_fill = 0;  // 0..255, or -1 for a torn (non-uniform) blob

  bool operator==(const ModelState& o) const {
    return balances == o.balances && blob_fill == o.blob_fill;
  }
};

void ApplyOp(ModelState* s, const Op& op) {
  if (op.blob) {
    s->blob_fill = op.fill;
    return;
  }
  const std::uint64_t moved = op.amount % (s->balances[op.from] + 1);
  s->balances[op.from] -= moved;
  s->balances[op.to] += moved;
}

std::string DescribeState(const ModelState& s) {
  std::string out = "balances=[";
  for (std::size_t i = 0; i < s.balances.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += std::to_string(s.balances[i]);
  }
  out += "] blob=";
  out += s.blob_fill < 0 ? "torn" : std::to_string(s.blob_fill);
  return out;
}

// Evenly subsamples `values` down to at most `keep` entries, always keeping
// the first and last.
std::vector<SimTime> Subsample(std::vector<SimTime> values, std::size_t keep) {
  if (keep == 0 || values.size() <= keep) {
    return values;
  }
  if (keep == 1) {
    return {values.front()};
  }
  std::vector<SimTime> out;
  out.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    out.push_back(values[i * (values.size() - 1) / (keep - 1)]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Maps a non-OK harness status (setup or op execution, not an oracle) onto
// the result. Harness failures are reported as kRecoverError with a
// "harness:" detail prefix: they mean the engine, not the machine, broke.
bool HarnessOk(const Status& s, const char* what, CaseResult* result) {
  if (s.ok()) {
    return true;
  }
  result->failure = FailureKind::kRecoverError;
  result->detail = std::string("harness: ") + what + ": " + s.ToString();
  return false;
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t case_index) {
  std::uint64_t x = seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull;
  x ^= (case_index + 1) * 0x2545F4914F6CDD1Dull;
  return x;
}

}  // namespace

const char* FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kRecoverError:
      return "recover_error";
    case FailureKind::kStateMismatch:
      return "state_mismatch";
    case FailureKind::kUncommittedDurable:
      return "uncommitted_durable";
    case FailureKind::kPostRecoveryMismatch:
      return "post_recovery_mismatch";
    case FailureKind::kPpoViolation:
      return "ppo_violation";
  }
  return "unknown";
}

struct CrashFuzzer::Env {
  std::unique_ptr<TraceRecorder> recorder;
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<PersistentHeap> heap;
  std::vector<Op> ops;
  std::vector<ModelState> ref;  // ref[k] = state after k committed ops
  std::uint64_t committed = 0;

  PmAddr AccountAddr(int i) const {
    return heap->root() + static_cast<PmAddr>(i) * kAccountStride;
  }
  PmAddr BlobAddr(int accounts) const {
    return heap->root() + static_cast<PmAddr>(accounts) * kAccountStride;
  }

  Status RunOp(const Op& op, int accounts, bool commit) {
    NEARPM_RETURN_IF_ERROR(heap->BeginOp(0));
    if (op.blob) {
      std::vector<std::uint8_t> bytes(kBlobSize, op.fill);
      NEARPM_RETURN_IF_ERROR(heap->Write(0, BlobAddr(accounts), bytes));
    } else {
      auto a = heap->Load<std::uint64_t>(0, AccountAddr(op.from));
      if (!a.ok()) {
        return a.status();
      }
      auto b = heap->Load<std::uint64_t>(0, AccountAddr(op.to));
      if (!b.ok()) {
        return b.status();
      }
      const std::uint64_t moved = op.amount % (*a + 1);
      NEARPM_RETURN_IF_ERROR(
          heap->Store<std::uint64_t>(0, AccountAddr(op.from), *a - moved));
      NEARPM_RETURN_IF_ERROR(
          heap->Store<std::uint64_t>(0, AccountAddr(op.to), *b + moved));
    }
    if (!commit) {
      return Status::Ok();  // the power fails inside this operation
    }
    return heap->CommitOp(0);
  }

  StatusOr<ModelState> ReadState(int accounts) {
    ModelState s;
    s.balances.resize(accounts);
    for (int i = 0; i < accounts; ++i) {
      auto v = heap->Load<std::uint64_t>(0, AccountAddr(i));
      if (!v.ok()) {
        return v.status();
      }
      s.balances[i] = *v;
    }
    std::vector<std::uint8_t> blob(kBlobSize);
    NEARPM_RETURN_IF_ERROR(heap->Read(0, BlobAddr(accounts), blob));
    s.blob_fill = blob[0];
    for (std::uint8_t b : blob) {
      if (b != blob[0]) {
        s.blob_fill = -1;  // torn
        break;
      }
    }
    return s;
  }
};

bool CrashFuzzer::ExecutePrefix(const FuzzCase& c, Env* env,
                                CaseResult* result) const {
  RuntimeOptions opts;
  opts.mode = config_.mode;
  opts.pm_size = config_.pm_size;
  opts.enforce_ppo = config_.enforce_ppo;
  opts.skip_recovery_replay = config_.break_recovery;
  env->recorder = std::make_unique<TraceRecorder>();
  env->rt = std::make_unique<Runtime>(opts);
  env->rt->AttachTrace(env->recorder.get());
  if (config_.sanitizer != nullptr) {
    env->rt->AttachSanitizer(config_.sanitizer);
  }

  PoolArena arena(0);
  HeapOptions ho;
  ho.mechanism = config_.mechanism;
  ho.data_size = config_.data_size;
  ho.ckpt_epoch_ops = config_.ckpt_epoch_ops;
  auto heap = PersistentHeap::Create(*env->rt, arena, ho);
  if (!heap.ok()) {
    return HarnessOk(heap.status(), "heap create", result);
  }
  env->heap = std::move(*heap);

  // Mint: one committed op giving every account its initial balance.
  Status mint = env->heap->BeginOp(0);
  for (int i = 0; mint.ok() && i < config_.accounts; ++i) {
    mint = env->heap->Store<std::uint64_t>(0, env->AccountAddr(i),
                                           kInitialBalance);
  }
  if (mint.ok()) {
    mint = env->heap->CommitOp(0);
  }
  if (!HarnessOk(mint, "mint", result)) {
    return false;
  }
  env->rt->DrainDevices(0);

  ModelState initial;
  initial.balances.assign(config_.accounts, kInitialBalance);
  initial.blob_fill = 0;  // the pool starts zeroed
  env->ref.push_back(initial);

  env->ops = DeriveOps(c.seed, c.total_ops, config_.accounts);
  for (std::uint64_t step = 0; step <= c.crash_step; ++step) {
    const bool last = step == c.crash_step;
    const bool commit = !(last && c.mid_op);
    if (!HarnessOk(env->RunOp(env->ops[step], config_.accounts, commit),
                   "workload op", result)) {
      return false;
    }
    if (commit) {
      ModelState next = env->ref.back();
      ApplyOp(&next, env->ops[step]);
      env->ref.push_back(std::move(next));
      ++env->committed;
    }
  }
  return true;
}

ProbeResult CrashFuzzer::Probe(const FuzzCase& c) const {
  ProbeResult out;
  Env env;
  CaseResult scratch;
  if (!ExecutePrefix(c, &env, &scratch)) {
    return out;
  }
  CrashCursorOptions co;
  co.epoch = env.recorder->epoch();
  co.min_time = env.rt->stats().MaxThreadTime();
  out.candidates = EnumerateCrashPoints(*env.recorder, co);
  out.pending_lines = env.rt->space().PendingLineAddrs().size();
  return out;
}

CaseResult CrashFuzzer::Run(const FuzzCase& c) const {
  Env env;
  CaseResult result;
  if (!ExecutePrefix(c, &env, &result)) {
    return result;
  }
  return RunOracles(c, &env);
}

CaseResult CrashFuzzer::RunOracles(const FuzzCase& c, Env* env) const {
  CaseResult result;
  result.committed = env->committed;

  CrashPlan plan;
  plan.crash_time = c.crash_time;  // 0 clamps to "now" inside InjectCrashAt
  plan.line_survival = c.line_survival;
  env->rt->InjectCrashAt(plan);
  env->heap->DropVolatile();

  // Oracle 1: recovery must succeed.
  Status rec = env->heap->Recover();
  if (!rec.ok()) {
    result.failure = FailureKind::kRecoverError;
    result.detail = rec.ToString();
    return result;
  }

  // Oracle 2: the recovered state equals the reference state after some
  // prefix of the committed operations.
  auto got = env->ReadState(config_.accounts);
  if (!HarnessOk(got.status(), "read recovered state", &result)) {
    return result;
  }
  bool matched = false;
  ModelState matched_state;
  for (std::uint64_t k = env->committed + 1; k-- > 0;) {
    if (*got == env->ref[k]) {
      result.matched_prefix = k;
      matched_state = env->ref[k];
      matched = true;
      break;
    }
  }
  if (!matched && config_.mechanism == Mechanism::kCheckpointing) {
    // Checkpointing recovers to the last closed epoch, and the mint itself
    // sits in a still-open epoch until ckpt_epoch_ops commits have passed:
    // rolling back to the pristine pool is a legal recovery target.
    ModelState genesis;
    genesis.balances.assign(config_.accounts, 0);
    genesis.blob_fill = 0;
    if (*got == genesis) {
      result.matched_prefix = 0;
      matched_state = genesis;
      matched = true;
    }
  }
  if (!matched) {
    if (c.mid_op) {
      ModelState full = env->ref.back();
      ApplyOp(&full, env->ops[c.crash_step]);
      if (*got == full) {
        // The op the power interrupted is durable in full although it never
        // committed -- its log/shadow vanished with the crash. This is the
        // Section 2.3 lost-recovery-data symptom.
        result.failure = FailureKind::kUncommittedDurable;
        result.detail =
            "uncommitted op " + std::to_string(c.crash_step) +
            " is fully durable after recovery: " + DescribeState(*got);
        return result;
      }
    }
    result.failure = FailureKind::kStateMismatch;
    result.detail = "recovered state matches no committed prefix (committed=" +
                    std::to_string(env->committed) +
                    "): " + DescribeState(*got) +
                    "; last committed: " + DescribeState(env->ref.back());
    return result;
  }

  // Without PPO the machine makes no ordering promises, before or after the
  // crash: the ablation's oracle is the recovery-state check above, and the
  // trace is expected to violate the invariants. Stop here.
  if (!config_.enforce_ppo) {
    return result;
  }

  // Oracle 3: the recovered heap behaves exactly like the model afterwards.
  ModelState model = matched_state;
  Rng post(c.seed ^ 0xA5EED5EED5EEDull);
  for (int i = 0; i < 5; ++i) {
    Op op;
    op.from = static_cast<int>(post.NextBounded(config_.accounts));
    op.to = (op.from + 1 +
             static_cast<int>(post.NextBounded(config_.accounts - 1))) %
            config_.accounts;
    op.amount = post.Next() % 500;
    if (!HarnessOk(env->RunOp(op, config_.accounts, /*commit=*/true),
                   "post-recovery op", &result)) {
      return result;
    }
    ApplyOp(&model, op);
  }
  env->rt->DrainDevices(0);
  auto after = env->ReadState(config_.accounts);
  if (!HarnessOk(after.status(), "read post-recovery state", &result)) {
    return result;
  }
  if (!(*after == model)) {
    result.failure = FailureKind::kPostRecoveryMismatch;
    result.detail = "post-recovery divergence: " + DescribeState(*after) +
                    "; model: " + DescribeState(model);
    return result;
  }

  // Oracle 4: the full trace (pre-crash epoch and recovery epoch) satisfies
  // the Section 4 PPO invariants.
  const auto violations = PpoChecker{}.Check(*env->recorder);
  if (!violations.empty()) {
    result.failure = FailureKind::kPpoViolation;
    result.detail = PpoChecker::Report(violations);
    return result;
  }
  return result;
}

SweepStats CrashFuzzer::Systematic(std::uint64_t seed, std::uint64_t ops,
                                   std::size_t max_candidates,
                                   std::vector<FuzzFailure>* failures) const {
  SweepStats stats;
  for (std::uint64_t step = 0; step < ops; ++step) {
    for (const bool mid : {false, true}) {
      FuzzCase base;
      base.seed = seed;
      base.total_ops = ops;
      base.crash_step = step;
      base.mid_op = mid;
      const ProbeResult probe = Probe(base);
      std::vector<SimTime> candidates =
          Subsample(probe.candidates, max_candidates);
      if (candidates.empty()) {
        candidates.push_back(0);  // "right now" always exists
      }
      for (const SimTime t : candidates) {
        for (const bool survive : {false, true}) {
          FuzzCase c = base;
          c.crash_time = t;
          c.line_survival.assign(probe.pending_lines, survive);
          const CaseResult r = Run(c);
          ++stats.cases;
          if (!r.ok()) {
            ++stats.failures;
            if (failures != nullptr) {
              failures->push_back(FuzzFailure{c, r});
            }
          }
        }
      }
    }
  }
  return stats;
}

FuzzCase CrashFuzzer::BuildSweepCase(std::uint64_t seed,
                                     std::uint64_t case_index) const {
  Rng r(MixSeed(seed, case_index));
  FuzzCase c;
  c.seed = seed;
  c.total_ops = 3 + r.NextBounded(10);
  c.crash_step = r.NextBounded(c.total_ops);
  c.mid_op = r.NextBool(0.4);
  const ProbeResult probe = Probe(c);
  if (!probe.candidates.empty()) {
    c.crash_time = probe.candidates[r.NextBounded(probe.candidates.size())];
  }
  c.line_survival.resize(probe.pending_lines);
  for (std::size_t i = 0; i < c.line_survival.size(); ++i) {
    c.line_survival[i] = r.NextBool(0.5);
  }
  return c;
}

SweepStats CrashFuzzer::RandomSweep(std::uint64_t first_seed,
                                    std::uint64_t num_seeds,
                                    int cases_per_seed,
                                    std::vector<FuzzFailure>* failures) const {
  SweepStats stats;
  for (std::uint64_t s = first_seed; s < first_seed + num_seeds; ++s) {
    for (int i = 0; i < cases_per_seed; ++i) {
      const FuzzCase c = BuildSweepCase(s, static_cast<std::uint64_t>(i));
      const CaseResult r = Run(c);
      ++stats.cases;
      if (!r.ok()) {
        ++stats.failures;
        if (failures != nullptr) {
          failures->push_back(FuzzFailure{c, r});
        }
      }
    }
  }
  return stats;
}

FuzzCase CrashFuzzer::Shrink(const FuzzCase& failing,
                             CaseResult* result) const {
  // Failure class: ordering violations shrink against ordering violations;
  // every state-corruption kind (recover error, mismatch, uncommitted
  // durable, post-recovery divergence) is one class, so the minimal repro
  // may surface the same bug under a simpler symptom.
  const auto cls = [](FailureKind k) {
    return k == FailureKind::kPpoViolation ? 1 : 0;
  };

  CaseResult orig = Run(failing);
  if (orig.ok()) {
    *result = orig;  // not reproducible; hand the case back untouched
    return failing;
  }
  FuzzCase best = failing;
  CaseResult best_result = orig;

  // 1. Drop the ops after the crash step (they never execute anyway, but a
  //    smaller schedule reads better in a repro file).
  if (best.total_ops > best.crash_step + 1) {
    FuzzCase t = best;
    t.total_ops = t.crash_step + 1;
    const CaseResult r = Run(t);
    if (!r.ok() && cls(r.failure) == cls(orig.failure)) {
      best = t;
      best_result = r;
    }
  }

  // 2. Earliest failing crash step, earliest failing candidate instant,
  //    under the two extreme survival masks.
  bool found = false;
  for (std::uint64_t step = 0; !found && step < best.crash_step; ++step) {
    for (const bool mid : {false, true}) {
      FuzzCase base;
      base.seed = best.seed;
      base.total_ops = step + 1;
      base.crash_step = step;
      base.mid_op = mid;
      const ProbeResult probe = Probe(base);
      std::vector<SimTime> candidates = Subsample(probe.candidates, 16);
      if (candidates.empty()) {
        candidates.push_back(0);
      }
      for (const SimTime t : candidates) {
        for (const bool survive : {false, true}) {
          FuzzCase c = base;
          c.crash_time = t;
          c.line_survival.assign(probe.pending_lines, survive);
          const CaseResult r = Run(c);
          if (!r.ok() && cls(r.failure) == cls(orig.failure)) {
            best = c;
            best_result = r;
            found = true;
            break;
          }
        }
        if (found) {
          break;
        }
      }
      if (found) {
        break;
      }
    }
  }

  // 3. Minimal survival mask: all-drop if it still fails, else greedily
  //    clear individual bits.
  const auto set_bits = [](const std::vector<bool>& v) {
    return std::count(v.begin(), v.end(), true);
  };
  if (set_bits(best.line_survival) > 0) {
    FuzzCase t = best;
    t.line_survival.assign(t.line_survival.size(), false);
    const CaseResult r = Run(t);
    if (!r.ok() && cls(r.failure) == cls(orig.failure)) {
      best = t;
      best_result = r;
    } else {
      for (std::size_t i = 0; i < best.line_survival.size(); ++i) {
        if (!best.line_survival[i]) {
          continue;
        }
        FuzzCase u = best;
        u.line_survival[i] = false;
        const CaseResult ru = Run(u);
        if (!ru.ok() && cls(ru.failure) == cls(orig.failure)) {
          best = u;
          best_result = ru;
        }
      }
    }
  }

  *result = best_result;
  return best;
}

CrashRepro CrashFuzzer::ToRepro(const FuzzCase& c, const std::string& expect,
                                const std::string& note) const {
  CrashRepro r;
  r.mechanism = config_.mechanism;
  r.mode = config_.mode;
  r.enforce_ppo = config_.enforce_ppo;
  r.break_recovery = config_.break_recovery;
  r.seed = c.seed;
  r.total_ops = c.total_ops;
  r.crash_step = c.crash_step;
  r.mid_op = c.mid_op;
  r.crash_time = c.crash_time;
  r.line_survival.reserve(c.line_survival.size());
  for (const bool bit : c.line_survival) {
    r.line_survival.push_back(bit ? '1' : '0');
  }
  r.expect = expect;
  r.note = note;
  return r;
}

FuzzConfig CrashFuzzer::ConfigFromRepro(const CrashRepro& repro) {
  FuzzConfig config;
  config.mechanism = repro.mechanism;
  config.mode = repro.mode;
  config.enforce_ppo = repro.enforce_ppo;
  config.break_recovery = repro.break_recovery;
  return config;
}

FuzzCase CrashFuzzer::CaseFromRepro(const CrashRepro& repro) {
  FuzzCase c;
  c.seed = repro.seed;
  c.total_ops = repro.total_ops;
  c.crash_step = repro.crash_step;
  c.mid_op = repro.mid_op;
  c.crash_time = repro.crash_time;
  c.line_survival.reserve(repro.line_survival.size());
  for (const char bit : repro.line_survival) {
    c.line_survival.push_back(bit == '1');
  }
  return c;
}

}  // namespace fuzz
}  // namespace nearpm
