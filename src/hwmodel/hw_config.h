// Config-driven device geometry (schema v1).
//
// The simulator originally evaluated one fixed NDP controller geometry: the
// VCU118 calibration of sim::CostModel plus the hard-coded "4 units, 32-entry
// FIFO" of Table 3. HwConfig makes that geometry a first-class, validated,
// versioned input so one binary can tell a design-space story instead of a
// single calibration point:
//
//  * device geometry -- NearPM units per device, Request-FIFO depth;
//  * unit microarchitecture -- dispatch/writeback pipeline stage widths and
//    an LSQ-style bound on requests in flight inside one unit;
//  * platform constants -- every sim::CostModel field, addressable by name,
//    plus friendly bandwidth (GB/s) and latency aliases for the common axes.
//
// A default-constructed HwConfig reproduces the seed platform bit-for-bit:
// `HwConfig{}.cost` is byte-identical to `CostModel{}`, the pipeline is
// disabled (zero-width stages, unbounded LSQ), and every committed baseline
// re-verifies unchanged when no config file is given. Geometry flows from
// here to every consumer -- RuntimeOptions, the devices, the replication
// fabric -- so no layer re-reads its own copy of the constants.
#ifndef SRC_HWMODEL_HW_CONFIG_H_
#define SRC_HWMODEL_HW_CONFIG_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/sim/cost_model.h"

namespace nearpm {
namespace hwmodel {

inline constexpr int kHwSchemaVersion = 1;

// Unit pipeline microarchitecture. All-zero (the default) collapses the
// pipeline into the seed's single-stage functional unit: no stage latches,
// no in-flight bound, no extra trace events.
struct PipelineConfig {
  // Fixed per-request residency of the dispatch stage (request register
  // load, operand steering into the unit). 0 = idealized, no latch.
  double dispatch_ns = 0.0;
  // Fixed per-request residency of the writeback stage (media commit +
  // status update). The request's writes stay in the in-flight table --
  // and conflicting requests stall -- until writeback completes.
  double writeback_ns = 0.0;
  // LSQ-style bound on requests a unit may hold in flight (dispatched but
  // not written back). 0 = unbounded (the seed's idealization). When full,
  // dispatch stalls until the oldest in-flight request drains.
  int lsq_depth = 0;

  bool enabled() const {
    return dispatch_ns > 0.0 || writeback_ns > 0.0 || lsq_depth > 0;
  }
};

struct HwConfig {
  int schema_version = kHwSchemaVersion;
  std::string name = "calibrated-default";

  // Device geometry (Table 3 defaults).
  int units_per_device = 4;
  std::size_t fifo_depth = 32;

  PipelineConfig pipeline;

  // Platform latency/bandwidth constants. Defaults are the seed calibration.
  CostModel cost;

  // Convenience views of the bandwidth-shaped constants.
  double AxiGbps() const { return 1.0 / cost.ndp_dma_ns_per_byte; }
  double NetGbps() const { return 1.0 / cost.net_link_ns_per_byte; }

  // First-order silicon cost proxy for the Pareto front (arbitrary units,
  // monotone in every axis a sweep varies): each unit costs 1 plus its LSQ
  // entries, the Request FIFO and the AXI/fabric bandwidth provisioning are
  // charged linearly. An unbounded LSQ is the idealized seed unit and is
  // charged as kUnboundedLsqArea entries. Stage widths trade throughput,
  // not area. Documented in DESIGN.md section 14.
  static constexpr int kUnboundedLsqArea = 16;
  double AreaProxy() const {
    const int lsq = pipeline.lsq_depth > 0 ? pipeline.lsq_depth
                                           : kUnboundedLsqArea;
    return static_cast<double>(units_per_device) *
               (1.0 + 0.03 * static_cast<double>(lsq)) +
           0.02 * static_cast<double>(fifo_depth) + 0.3 * AxiGbps() +
           0.1 * NetGbps();
  }

  // Range-checks every field (units in [1,64], FIFO in [1,4096], LSQ in
  // [0,1024], stage widths in [0, 1e6] ns, every cost constant finite and
  // >= 0, rates > 0). Parsing validates automatically; call this again
  // after mutating a parsed config by hand (the sweep grid does).
  Status Validate() const;
};

// Name -> member table of every sim::CostModel constant, in declaration
// order. The parser resolves the "cost" section through it, so adding a
// CostModel field means adding one row here (a static_assert pins the count).
struct CostField {
  const char* name;
  double CostModel::* member;
};
const CostField* CostFields(std::size_t* count);
// nullptr when `name` is not a CostModel constant.
double CostModel::* FindCostField(std::string_view name);

// Parses a config from its JSON text. The accepted grammar is a deliberately
// tiny JSON subset (objects of numbers, strings and one level of nested
// objects -- no arrays, booleans or nulls), read with no external
// dependencies. Schema:
//
//   {
//     "schema_version": 1,            // optional, must equal 1 when present
//     "name": "wide-device",          // optional label
//     "units_per_device": 8,
//     "fifo_depth": 64,
//     "pipeline": {"dispatch_ns": 20, "writeback_ns": 40, "lsq_depth": 8},
//     "bandwidth": {"axi_gbps": 8, "net_gbps": 25},     // friendly aliases
//     "latency":   {"pm_read_ns": 300, "cmd_post_ns": 80,
//                   "cmd_pipeline_ns": 400, "ndp_setup_ns": 20,
//                   "net_link_ns": 1200},
//     "cost": {"<any CostModel field>": <ns or ns/byte>}  // exact names
//   }
//
// Sections apply in a fixed order -- bandwidth, latency, then cost -- so a
// "cost" entry wins over an alias for the same constant. Unknown keys,
// malformed syntax, wrong value kinds, schema-version mismatches and
// out-of-range values are all hard errors: a sweep must never silently run
// a geometry the author did not write.
StatusOr<HwConfig> ParseHwConfig(std::string_view text);

// Reads and parses `path`. Errors are prefixed with the file name.
StatusOr<HwConfig> LoadHwConfigFile(const std::string& path);

// Canonical JSON serialization of `config`: every field explicit (cost
// constants by exact name), key order fixed. Parse(Write(c)) == c, which the
// tests use as the round-trip check, and the sweep embeds it per cell.
std::string WriteHwConfig(const HwConfig& config);

}  // namespace hwmodel
}  // namespace nearpm

#endif  // SRC_HWMODEL_HW_CONFIG_H_
