#include "src/hwmodel/hw_config.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace nearpm {
namespace hwmodel {

namespace {

// ---- CostModel field table ---------------------------------------------------

constexpr CostField kCostFields[] = {
    {"cpu_copy_base_ns", &CostModel::cpu_copy_base_ns},
    {"cpu_copy_per_line_ns", &CostModel::cpu_copy_per_line_ns},
    {"cpu_flush_line_ns", &CostModel::cpu_flush_line_ns},
    {"cpu_drain_ns", &CostModel::cpu_drain_ns},
    {"cpu_fence_ns", &CostModel::cpu_fence_ns},
    {"cpu_cached_read_ns", &CostModel::cpu_cached_read_ns},
    {"cpu_pm_read_ns", &CostModel::cpu_pm_read_ns},
    {"cpu_store_line_ns", &CostModel::cpu_store_line_ns},
    {"cpu_metadata_ns", &CostModel::cpu_metadata_ns},
    {"cpu_log_delete_ns", &CostModel::cpu_log_delete_ns},
    {"cpu_alloc_ns", &CostModel::cpu_alloc_ns},
    {"cpu_page_switch_ns", &CostModel::cpu_page_switch_ns},
    {"cmd_post_ns", &CostModel::cmd_post_ns},
    {"cmd_device_pipeline_ns", &CostModel::cmd_device_pipeline_ns},
    {"cpu_poll_round_ns", &CostModel::cpu_poll_round_ns},
    {"ndp_setup_ns", &CostModel::ndp_setup_ns},
    {"ndp_dma_ns_per_byte", &CostModel::ndp_dma_ns_per_byte},
    {"ndp_ls_per_line_ns", &CostModel::ndp_ls_per_line_ns},
    {"ndp_metadata_ns", &CostModel::ndp_metadata_ns},
    {"ndp_log_delete_ns", &CostModel::ndp_log_delete_ns},
    {"ndp_remote_status_ns", &CostModel::ndp_remote_status_ns},
    {"net_link_latency_ns", &CostModel::net_link_latency_ns},
    {"net_link_ns_per_byte", &CostModel::net_link_ns_per_byte},
    {"net_frame_bytes", &CostModel::net_frame_bytes},
    {"net_doorbell_ns", &CostModel::net_doorbell_ns},
};
constexpr std::size_t kNumCostFields =
    sizeof(kCostFields) / sizeof(kCostFields[0]);
// Every CostModel constant must have a row: the struct is doubles only, so
// its size pins the count.
static_assert(sizeof(CostModel) == kNumCostFields * sizeof(double),
              "CostModel gained a field; add it to kCostFields");

// ---- Tiny JSON-subset reader -------------------------------------------------
//
// Grammar: object of "key": value pairs where a value is a number, a quoted
// string, or (at the top level only) another object of the same shape. No
// arrays, booleans, nulls, escapes or exponents-with-signs beyond what
// strtod accepts. Errors carry the byte offset.

struct JsonScalar {
  enum class Kind { kNumber, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string str;
};

// Insertion order preserved so "applied in a fixed section order" is about
// the schema, not the author's key order within a section.
using FlatObject = std::vector<std::pair<std::string, JsonScalar>>;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Expect(char c) {
    SkipWs();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return Fail("escape sequences are not supported");
      }
      out->push_back(text[pos++]);
    }
    if (pos >= text.size()) {
      return Fail("unterminated string");
    }
    ++pos;
    return true;
  }

  bool ParseScalar(JsonScalar* out) {
    SkipWs();
    if (pos >= text.size()) {
      return Fail("expected value");
    }
    if (text[pos] == '"') {
      out->kind = JsonScalar::Kind::kString;
      return ParseString(&out->str);
    }
    const char* begin = text.data() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      return Fail("expected number");
    }
    if (!std::isfinite(v)) {
      return Fail("number is not finite");
    }
    out->kind = JsonScalar::Kind::kNumber;
    out->number = v;
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }

  // Parses { "k": scalar, ... } into `out`. Nested objects are rejected
  // (depth is handled one level up, by the schema walker).
  bool ParseFlatObject(FlatObject* out) {
    if (!Expect('{')) return false;
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Expect(':')) return false;
      SkipWs();
      if (pos < text.size() && text[pos] == '{') {
        return Fail("section '" + key + "' may not nest further");
      }
      JsonScalar value;
      if (!ParseScalar(&value)) return false;
      for (const auto& [existing, unused] : *out) {
        if (existing == key) {
          return Fail("duplicate key '" + key + "' in section");
        }
      }
      out->emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    return Expect('}');
  }
};

// One top-level entry: either a scalar or a named section of scalars.
struct TopEntry {
  std::string key;
  bool is_section = false;
  JsonScalar scalar;
  FlatObject section;
};

bool ParseTopLevel(Parser* p, std::vector<TopEntry>* out) {
  if (!p->Expect('{')) return false;
  p->SkipWs();
  if (p->pos < p->text.size() && p->text[p->pos] == '}') {
    ++p->pos;
  } else {
    while (true) {
      TopEntry entry;
      if (!p->ParseString(&entry.key)) return false;
      if (!p->Expect(':')) return false;
      p->SkipWs();
      if (p->pos < p->text.size() && p->text[p->pos] == '{') {
        entry.is_section = true;
        if (!p->ParseFlatObject(&entry.section)) return false;
      } else {
        if (!p->ParseScalar(&entry.scalar)) return false;
      }
      out->push_back(std::move(entry));
      p->SkipWs();
      if (p->pos < p->text.size() && p->text[p->pos] == ',') {
        ++p->pos;
        continue;
      }
      break;
    }
    if (!p->Expect('}')) return false;
  }
  p->SkipWs();
  if (p->pos != p->text.size()) {
    return p->Fail("trailing content after config object");
  }
  return true;
}

// ---- Schema application ------------------------------------------------------

Status WrongKind(const std::string& where, const char* want) {
  return InvalidArgument("hwconfig: '" + where + "' must be a " + want);
}

Status NumberField(const std::string& where, const JsonScalar& v,
                   double* out) {
  if (v.kind != JsonScalar::Kind::kNumber) {
    return WrongKind(where, "number");
  }
  *out = v.number;
  return Status::Ok();
}

Status IntField(const std::string& where, const JsonScalar& v, long* out) {
  double d = 0.0;
  Status st = NumberField(where, v, &d);
  if (!st.ok()) return st;
  if (d != std::floor(d)) {
    return InvalidArgument("hwconfig: '" + where + "' must be an integer");
  }
  *out = static_cast<long>(d);
  return Status::Ok();
}

Status RateField(const std::string& where, const JsonScalar& v,
                 double* ns_per_byte) {
  double gbps = 0.0;
  Status st = NumberField(where, v, &gbps);
  if (!st.ok()) return st;
  if (gbps <= 0.0) {
    return InvalidArgument("hwconfig: '" + where + "' must be > 0 GB/s");
  }
  *ns_per_byte = 1.0 / gbps;
  return Status::Ok();
}

Status ApplyPipeline(const FlatObject& section, PipelineConfig* pipe) {
  for (const auto& [key, value] : section) {
    const std::string where = "pipeline." + key;
    if (key == "dispatch_ns") {
      Status st = NumberField(where, value, &pipe->dispatch_ns);
      if (!st.ok()) return st;
    } else if (key == "writeback_ns") {
      Status st = NumberField(where, value, &pipe->writeback_ns);
      if (!st.ok()) return st;
    } else if (key == "lsq_depth") {
      long n = 0;
      Status st = IntField(where, value, &n);
      if (!st.ok()) return st;
      pipe->lsq_depth = static_cast<int>(n);
    } else {
      return InvalidArgument("hwconfig: unknown key '" + where + "'");
    }
  }
  return Status::Ok();
}

Status ApplyBandwidth(const FlatObject& section, CostModel* cost) {
  for (const auto& [key, value] : section) {
    const std::string where = "bandwidth." + key;
    if (key == "axi_gbps") {
      Status st = RateField(where, value, &cost->ndp_dma_ns_per_byte);
      if (!st.ok()) return st;
    } else if (key == "net_gbps") {
      Status st = RateField(where, value, &cost->net_link_ns_per_byte);
      if (!st.ok()) return st;
    } else {
      return InvalidArgument("hwconfig: unknown key '" + where + "'");
    }
  }
  return Status::Ok();
}

Status ApplyLatency(const FlatObject& section, CostModel* cost) {
  for (const auto& [key, value] : section) {
    const std::string where = "latency." + key;
    double* target = nullptr;
    if (key == "pm_read_ns") {
      target = &cost->cpu_pm_read_ns;
    } else if (key == "cmd_post_ns") {
      target = &cost->cmd_post_ns;
    } else if (key == "cmd_pipeline_ns") {
      target = &cost->cmd_device_pipeline_ns;
    } else if (key == "ndp_setup_ns") {
      target = &cost->ndp_setup_ns;
    } else if (key == "net_link_ns") {
      target = &cost->net_link_latency_ns;
    } else {
      return InvalidArgument("hwconfig: unknown key '" + where + "'");
    }
    Status st = NumberField(where, value, target);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status ApplyCost(const FlatObject& section, CostModel* cost) {
  for (const auto& [key, value] : section) {
    double CostModel::* member = FindCostField(key);
    if (member == nullptr) {
      return InvalidArgument("hwconfig: unknown key 'cost." + key +
                             "' (not a CostModel constant)");
    }
    Status st = NumberField("cost." + key, value, &(cost->*member));
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace

const CostField* CostFields(std::size_t* count) {
  *count = kNumCostFields;
  return kCostFields;
}

double CostModel::* FindCostField(std::string_view name) {
  for (const CostField& field : kCostFields) {
    if (name == field.name) {
      return field.member;
    }
  }
  return nullptr;
}

Status HwConfig::Validate() const {
  if (schema_version != kHwSchemaVersion) {
    return InvalidArgument(
        "hwconfig: schema_version " + std::to_string(schema_version) +
        " is not supported (this build understands version " +
        std::to_string(kHwSchemaVersion) + ")");
  }
  if (units_per_device < 1 || units_per_device > 64) {
    return InvalidArgument("hwconfig: units_per_device must be in [1, 64]");
  }
  if (fifo_depth < 1 || fifo_depth > 4096) {
    return InvalidArgument("hwconfig: fifo_depth must be in [1, 4096]");
  }
  if (pipeline.lsq_depth < 0 || pipeline.lsq_depth > 1024) {
    return InvalidArgument("hwconfig: pipeline.lsq_depth must be in [0, 1024]");
  }
  if (!(pipeline.dispatch_ns >= 0.0) || pipeline.dispatch_ns > 1e6 ||
      !(pipeline.writeback_ns >= 0.0) || pipeline.writeback_ns > 1e6) {
    return InvalidArgument(
        "hwconfig: pipeline stage widths must be in [0, 1e6] ns");
  }
  for (const CostField& field : kCostFields) {
    const double v = cost.*field.member;
    if (!std::isfinite(v) || v < 0.0) {
      return InvalidArgument(std::string("hwconfig: cost.") + field.name +
                             " must be finite and >= 0");
    }
  }
  if (cost.ndp_dma_ns_per_byte <= 0.0 || cost.net_link_ns_per_byte <= 0.0) {
    return InvalidArgument(
        "hwconfig: per-byte rates must be > 0 (infinite bandwidth is not a "
        "geometry)");
  }
  return Status::Ok();
}

StatusOr<HwConfig> ParseHwConfig(std::string_view text) {
  Parser parser;
  parser.text = text;
  std::vector<TopEntry> entries;
  if (!ParseTopLevel(&parser, &entries)) {
    return InvalidArgument("hwconfig: " + parser.error);
  }

  HwConfig config;
  // Sections are collected first and applied in schema order below, so
  // "cost" overrides an alias no matter where the author placed it.
  const FlatObject* pipeline = nullptr;
  const FlatObject* bandwidth = nullptr;
  const FlatObject* latency = nullptr;
  const FlatObject* cost = nullptr;
  std::map<std::string, int> seen;
  for (const TopEntry& entry : entries) {
    if (++seen[entry.key] > 1) {
      return InvalidArgument("hwconfig: duplicate key '" + entry.key + "'");
    }
    if (entry.key == "schema_version") {
      long v = 0;
      Status st = IntField(entry.key, entry.scalar, &v);
      if (!st.ok()) return st;
      config.schema_version = static_cast<int>(v);
    } else if (entry.key == "name") {
      if (entry.scalar.kind != JsonScalar::Kind::kString || entry.is_section) {
        return WrongKind(entry.key, "string");
      }
      config.name = entry.scalar.str;
    } else if (entry.key == "units_per_device") {
      long v = 0;
      Status st = IntField(entry.key, entry.scalar, &v);
      if (!st.ok()) return st;
      config.units_per_device = static_cast<int>(v);
    } else if (entry.key == "fifo_depth") {
      long v = 0;
      Status st = IntField(entry.key, entry.scalar, &v);
      if (!st.ok()) return st;
      if (v < 0) {
        return InvalidArgument("hwconfig: fifo_depth must be >= 0");
      }
      config.fifo_depth = static_cast<std::size_t>(v);
    } else if (entry.key == "pipeline") {
      if (!entry.is_section) return WrongKind(entry.key, "section");
      pipeline = &entry.section;
    } else if (entry.key == "bandwidth") {
      if (!entry.is_section) return WrongKind(entry.key, "section");
      bandwidth = &entry.section;
    } else if (entry.key == "latency") {
      if (!entry.is_section) return WrongKind(entry.key, "section");
      latency = &entry.section;
    } else if (entry.key == "cost") {
      if (!entry.is_section) return WrongKind(entry.key, "section");
      cost = &entry.section;
    } else {
      return InvalidArgument("hwconfig: unknown key '" + entry.key + "'");
    }
  }
  if (pipeline != nullptr) {
    Status st = ApplyPipeline(*pipeline, &config.pipeline);
    if (!st.ok()) return st;
  }
  if (bandwidth != nullptr) {
    Status st = ApplyBandwidth(*bandwidth, &config.cost);
    if (!st.ok()) return st;
  }
  if (latency != nullptr) {
    Status st = ApplyLatency(*latency, &config.cost);
    if (!st.ok()) return st;
  }
  if (cost != nullptr) {
    Status st = ApplyCost(*cost, &config.cost);
    if (!st.ok()) return st;
  }
  Status st = config.Validate();
  if (!st.ok()) return st;
  return config;
}

StatusOr<HwConfig> LoadHwConfigFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("hwconfig: cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  StatusOr<HwConfig> config = ParseHwConfig(text.str());
  if (!config.ok()) {
    return Status(config.status().code(),
                  path + ": " + config.status().message());
  }
  return config;
}

std::string WriteHwConfig(const HwConfig& config) {
  std::ostringstream out;
  // %.17g round-trips doubles exactly; trim the noise for integral values.
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  out << "{\n";
  out << "  \"schema_version\": " << config.schema_version << ",\n";
  out << "  \"name\": \"" << config.name << "\",\n";
  out << "  \"units_per_device\": " << config.units_per_device << ",\n";
  out << "  \"fifo_depth\": " << config.fifo_depth << ",\n";
  out << "  \"pipeline\": {\"dispatch_ns\": " << num(config.pipeline.dispatch_ns)
      << ", \"writeback_ns\": " << num(config.pipeline.writeback_ns)
      << ", \"lsq_depth\": " << config.pipeline.lsq_depth << "},\n";
  out << "  \"cost\": {\n";
  for (std::size_t i = 0; i < kNumCostFields; ++i) {
    out << "    \"" << kCostFields[i].name
        << "\": " << num(config.cost.*kCostFields[i].member)
        << (i + 1 < kNumCostFields ? ",\n" : "\n");
  }
  out << "  }\n";
  out << "}\n";
  return out.str();
}

}  // namespace hwmodel
}  // namespace nearpm
