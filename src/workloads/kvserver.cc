#include "src/workloads/kvserver.h"

#include <cstring>

#include "src/workloads/hashmap.h"

namespace nearpm {
namespace {

constexpr std::uint64_t kKvMagic = 0x4b565352563158ULL;
// Request front end: parse, dispatch, respond (no kernel network stack; the
// paper's servers run loopback clients).
constexpr double kRequestComputeNs = 4200.0;
constexpr double kHashComputeNs = 150.0;

}  // namespace

Status KvServerWorkload::InitTable(PersistentHeap& h) {
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kKvMagic;
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    NEARPM_ASSIGN_OR_RETURN(seg, h.Alloc(0, kPmPageSize));
    std::vector<std::uint8_t> zero(kPmPageSize, 0);
    NEARPM_RETURN_IF_ERROR(h.Write(0, seg, zero));
    root.segments[s] = seg;
  }
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  return h.CommitOp(0);
}

Status KvServerWorkload::Setup(Runtime& rt, PoolArena& arena,
                               const WorkloadConfig& config) {
  config_ = config;
  const int pools = shared_pool_ ? 1 : config.threads;
  for (int p = 0; p < pools; ++p) {
    // Every pool carries CC areas for all threads so an application thread
    // uses its own clock and log area regardless of the pool it serves.
    NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
    NEARPM_RETURN_IF_ERROR(InitTable(*heaps_.back()));
  }
  // Per-thread YCSB generators. Memcached partitions the keyspace by pool;
  // redis shares it.
  YcsbWorkloadGen::Mix mix;  // 100% update
  for (int t = 0; t < config.threads; ++t) {
    gens_.push_back(std::make_unique<YcsbWorkloadGen>(
        config.initial_keys * 2 + 16, mix, /*zipfian=*/true));
  }
  // Preload.
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    for (int t = 0; t < (shared_pool_ ? 1 : config.threads); ++t) {
      NEARPM_RETURN_IF_ERROR(
          Set(static_cast<ThreadId>(t),
              rng.NextBounded(config.initial_keys * 2 + 16)));
    }
  }
  return Status::Ok();
}

Status KvServerWorkload::RunOp(ThreadId t, Rng& rng) {
  PersistentHeap& h = HeapFor(t);
  h.rt().Compute(t, kRequestComputeNs);
  const YcsbOp op = gens_[t]->Next(rng);
  return Set(t, op.key);
}

Status KvServerWorkload::Set(ThreadId t, std::uint64_t key) {
  PersistentHeap& h = HeapFor(t);
  const ThreadId pt = PoolThread(t);
  NEARPM_RETURN_IF_ERROR(h.BeginOp(pt));
  h.rt().Compute(t, kHashComputeNs);
  const std::uint64_t bucket = HashMapWorkload::HashKey(key) % kBuckets;
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(pt, h.root()));
  const PmAddr slot_addr = root.segments[bucket / kBucketsPerSegment] +
                           (bucket % kBucketsPerSegment) * sizeof(PmAddr);
  NEARPM_ASSIGN_OR_RETURN(head, h.Load<PmAddr>(pt, slot_addr));
  PmAddr cur = head;
  while (cur != 0) {
    NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(pt, cur));
    if (node.key == key) {
      node.value = ValueForKey(key);
      NEARPM_RETURN_IF_ERROR(h.Store(pt, cur, node));
      return h.CommitOp(pt);
    }
    cur = node.next;
  }
  NEARPM_ASSIGN_OR_RETURN(node_addr, h.Alloc(pt, sizeof(Node)));
  Node node;
  node.key = key;
  node.next = head;
  node.value = ValueForKey(key);
  NEARPM_RETURN_IF_ERROR(h.Store(pt, node_addr, node));
  NEARPM_RETURN_IF_ERROR(h.Store(pt, slot_addr, node_addr));
  root.count += 1;
  NEARPM_RETURN_IF_ERROR(h.Store(pt, h.root(), root));
  return h.CommitOp(pt);
}

Status KvServerWorkload::VerifyTable(PersistentHeap& h) {
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kKvMagic) {
    return DataLoss("kvserver root magic corrupt");
  }
  std::uint64_t count = 0;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    NEARPM_ASSIGN_OR_RETURN(
        head, h.Load<PmAddr>(0, root.segments[b / kBucketsPerSegment] +
                                    (b % kBucketsPerSegment) * 8));
    PmAddr cur = head;
    std::uint64_t chain = 0;
    while (cur != 0) {
      NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, cur));
      if (HashMapWorkload::HashKey(node.key) % kBuckets != b) {
        return DataLoss("kvserver node in wrong bucket");
      }
      const Value64 expect = ValueForKey(node.key);
      if (std::memcmp(node.value.bytes, expect.bytes, kValueSize) != 0) {
        return DataLoss("kvserver value corrupt");
      }
      ++count;
      if (++chain > root.count + 1) {
        return DataLoss("kvserver chain cycle");
      }
      cur = node.next;
    }
  }
  if (count != root.count) {
    return DataLoss("kvserver count mismatch");
  }
  return Status::Ok();
}

Status KvServerWorkload::Verify() {
  for (auto& h : heaps_) {
    NEARPM_RETURN_IF_ERROR(VerifyTable(*h));
  }
  return Status::Ok();
}

}  // namespace nearpm
