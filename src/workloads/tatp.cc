#include "src/workloads/tatp.h"

namespace nearpm {
namespace {

constexpr std::uint64_t kTatpMagic = 0x54415450ULL;
constexpr double kTxComputeNs = 5200.0;

}  // namespace

std::uint64_t TatpWorkload::SubscriberRow::ComputeCrc() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v : {s_id, bit_flags, hex_flags, location, vlr}) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

Status TatpWorkload::Setup(Runtime& rt, PoolArena& arena,
                           const WorkloadConfig& config) {
  config_ = config;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kTatpMagic;
  for (std::uint64_t p = 0; p * kRowsPerPage < kSubscribers; ++p) {
    NEARPM_ASSIGN_OR_RETURN(page, h.Alloc(0, kPmPageSize));
    root.pages[p] = page;
  }
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  // Populate subscribers in batches (each its own transaction).
  for (std::uint64_t s = 0; s < kSubscribers; s += kRowsPerPage) {
    NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
    for (std::uint64_t i = s; i < s + kRowsPerPage && i < kSubscribers; ++i) {
      SubscriberRow row;
      row.s_id = i;
      row.location = i * 31;
      row.crc = row.ComputeCrc();
      NEARPM_RETURN_IF_ERROR(h.Store(0, RowAddr(root, i), row));
    }
    NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  }
  return Status::Ok();
}

Status TatpWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kTxComputeNs);
  // TATP write mix: update_subscriber_data and update_location.
  if (rng.NextBool(0.5)) {
    return UpdateSubscriberData(t, rng);
  }
  return UpdateLocation(t, rng);
}

Status TatpWorkload::UpdateSubscriberData(ThreadId t, Rng& rng) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  const std::uint64_t s_id = rng.NextBounded(kSubscribers);
  const PmAddr addr = RowAddr(root, s_id);
  NEARPM_ASSIGN_OR_RETURN(row, h.Load<SubscriberRow>(t, addr));
  row.bit_flags = rng.Next();
  row.hex_flags = rng.Next();
  row.crc = row.ComputeCrc();
  NEARPM_RETURN_IF_ERROR(h.Store(t, addr, row));
  return h.CommitOp(t);
}

Status TatpWorkload::UpdateLocation(ThreadId t, Rng& rng) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  const std::uint64_t s_id = rng.NextBounded(kSubscribers);
  const PmAddr addr = RowAddr(root, s_id);
  NEARPM_ASSIGN_OR_RETURN(row, h.Load<SubscriberRow>(t, addr));
  row.location = rng.Next();
  row.vlr = rng.Next();
  row.crc = row.ComputeCrc();
  NEARPM_RETURN_IF_ERROR(h.Store(t, addr, row));
  return h.CommitOp(t);
}

Status TatpWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kTatpMagic) {
    return DataLoss("tatp root magic corrupt");
  }
  for (std::uint64_t s = 0; s < kSubscribers; ++s) {
    NEARPM_ASSIGN_OR_RETURN(row, h.Load<SubscriberRow>(0, RowAddr(root, s)));
    if (row.s_id != s) {
      return DataLoss("tatp subscriber id corrupt");
    }
    if (row.crc != row.ComputeCrc()) {
      return DataLoss("tatp row torn (crc mismatch)");
    }
  }
  return Status::Ok();
}

}  // namespace nearpm
