// TPCC-lite: the OLTP transaction workload of Gogte et al. (SFR / PLDI'18),
// scaled to a single warehouse. NewOrder and Payment transactions over
// persistent Warehouse/District/Customer/Stock tables plus an order log.
#ifndef SRC_WORKLOADS_TPCC_H_
#define SRC_WORKLOADS_TPCC_H_

#include <cstdint>

#include "src/workloads/workload.h"

namespace nearpm {

class TpccWorkload : public Workload {
 public:
  static constexpr std::uint64_t kDistricts = 10;
  static constexpr std::uint64_t kCustomersPerDistrict = 16;
  static constexpr std::uint64_t kItems = 256;
  static constexpr std::uint64_t kMaxOrderLines = 15;
  static constexpr std::uint64_t kRowsPerPage = kPmPageSize / 64;

  struct alignas(64) WarehouseRow {
    std::uint64_t ytd = 0;
    std::uint8_t pad[56] = {};
  };
  struct alignas(64) DistrictRow {
    std::uint64_t next_o_id = 1;
    std::uint64_t ytd = 0;
    PmAddr order_head = 0;  // newest order (linked by OrderRow::prev)
    std::uint8_t pad[40] = {};
  };
  struct alignas(64) CustomerRow {
    std::int64_t balance = 0;
    std::uint64_t payments = 0;
    std::uint64_t ytd = 0;
    std::uint8_t pad[40] = {};
  };
  struct alignas(64) StockRow {
    std::int64_t quantity = 100;
    std::uint64_t s_ytd = 0;
    std::uint64_t order_cnt = 0;
    std::uint8_t pad[40] = {};
  };
  struct OrderLine {
    std::uint64_t item = 0;
    std::uint64_t qty = 0;
  };
  struct OrderRow {
    std::uint64_t o_id = 0;
    std::uint64_t d_id = 0;
    std::uint64_t c_id = 0;
    std::uint64_t n_lines = 0;
    PmAddr prev = 0;
    OrderLine lines[kMaxOrderLines] = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr warehouse = 0;
    PmAddr districts = 0;        // one page: kDistricts rows
    PmAddr customer_pages[3] = {};
    PmAddr stock_pages[4] = {};
    std::uint64_t total_payments = 0;
  };

  const char* name() const override { return "tpcc"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status NewOrder(ThreadId t, Rng& rng);
  Status Payment(ThreadId t, Rng& rng);

 private:
  PmAddr CustomerAddr(const Root& root, std::uint64_t d,
                      std::uint64_t c) const;
  PmAddr StockAddr(const Root& root, std::uint64_t item) const;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_TPCC_H_
