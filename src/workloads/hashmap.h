// Persistent chained hash map (the PMDK "hashmap_tx" example): a directory
// of bucket segments in the root page, chained nodes per bucket.
#ifndef SRC_WORKLOADS_HASHMAP_H_
#define SRC_WORKLOADS_HASHMAP_H_

#include <cstdint>

#include "src/workloads/workload.h"

namespace nearpm {

class HashMapWorkload : public Workload {
 public:
  static constexpr std::uint64_t kSegments = 16;
  static constexpr std::uint64_t kBucketsPerSegment = 512;  // 4 kB of PmAddr
  static constexpr std::uint64_t kBuckets = kSegments * kBucketsPerSegment;

  struct Node {
    std::uint64_t key = 0;
    PmAddr next = 0;
    Value64 value = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    PmAddr segments[kSegments] = {};
  };

  const char* name() const override { return "hashmap"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status Put(ThreadId t, std::uint64_t key);

  static std::uint64_t HashKey(std::uint64_t key);

 private:
  StatusOr<PmAddr> BucketSlotAddr(ThreadId t, std::uint64_t bucket);

  std::uint64_t key_space_ = 0;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_HASHMAP_H_
