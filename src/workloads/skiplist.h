// Persistent skip list (the PMDK "skiplist" example): four fixed levels,
// pseudo-random node heights, sentinel head node.
#ifndef SRC_WORKLOADS_SKIPLIST_H_
#define SRC_WORKLOADS_SKIPLIST_H_

#include <cstdint>

#include "src/workloads/workload.h"

namespace nearpm {

class SkipListWorkload : public Workload {
 public:
  static constexpr int kLevels = 4;

  struct Node {
    std::uint64_t key = 0;
    std::uint64_t height = 1;
    PmAddr next[kLevels] = {};
    Value64 value = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr head = 0;  // sentinel, present in all levels
    std::uint64_t count = 0;
  };

  const char* name() const override { return "skiplist"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status Insert(ThreadId t, std::uint64_t key, Rng& rng);

 private:
  std::uint64_t key_space_ = 0;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_SKIPLIST_H_
