#include "src/workloads/skiplist.h"

#include <cstring>

namespace nearpm {
namespace {

constexpr std::uint64_t kSkipMagic = 0x534b49504cULL;
constexpr double kHopComputeNs = 60.0;
constexpr double kOpComputeNs = 3200.0;

}  // namespace

Status SkipListWorkload::Setup(Runtime& rt, PoolArena& arena,
                               const WorkloadConfig& config) {
  config_ = config;
  key_space_ = config.initial_keys * 2 + 16;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  NEARPM_ASSIGN_OR_RETURN(head_addr, h.Alloc(0, sizeof(Node)));
  Node head;
  head.height = kLevels;
  NEARPM_RETURN_IF_ERROR(h.Store(0, head_addr, head));
  Root root;
  root.magic = kSkipMagic;
  root.head = head_addr;
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    NEARPM_RETURN_IF_ERROR(Insert(0, rng.NextBounded(key_space_), rng));
  }
  return Status::Ok();
}

Status SkipListWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kOpComputeNs);
  return Insert(t, rng.NextBounded(key_space_), rng);
}

Status SkipListWorkload::Insert(ThreadId t, std::uint64_t key, Rng& rng) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));

  // Find the predecessor at every level.
  PmAddr preds[kLevels];
  PmAddr cur = root.head;
  NEARPM_ASSIGN_OR_RETURN(cur_node, h.Load<Node>(t, cur));
  for (int level = kLevels - 1; level >= 0; --level) {
    while (cur_node.next[level] != 0) {
      h.rt().Compute(t, kHopComputeNs);
      NEARPM_ASSIGN_OR_RETURN(next, h.Load<Node>(t, cur_node.next[level]));
      if (next.key >= key) {
        break;
      }
      cur = cur_node.next[level];
      cur_node = next;
    }
    preds[level] = cur;
  }

  // Existing key: update the value in place.
  if (cur_node.next[0] != 0) {
    NEARPM_ASSIGN_OR_RETURN(candidate, h.Load<Node>(t, cur_node.next[0]));
    if (candidate.key == key) {
      candidate.value = ValueForKey(key);
      NEARPM_RETURN_IF_ERROR(h.Store(t, cur_node.next[0], candidate));
      return h.CommitOp(t);
    }
  }

  // Geometric height in [1, kLevels].
  std::uint64_t height = 1;
  while (height < kLevels && rng.NextBool(0.5)) {
    ++height;
  }

  NEARPM_ASSIGN_OR_RETURN(node_addr, h.Alloc(t, sizeof(Node)));
  Node node;
  node.key = key;
  node.height = height;
  node.value = ValueForKey(key);

  // Link bottom-up. Predecessor nodes may repeat across levels; reload each
  // time so the previous level's update is seen.
  for (std::uint64_t level = 0; level < height; ++level) {
    NEARPM_ASSIGN_OR_RETURN(pred, h.Load<Node>(t, preds[level]));
    node.next[level] = pred.next[level];
    pred.next[level] = node_addr;
    NEARPM_RETURN_IF_ERROR(h.Store(t, node_addr, node));
    NEARPM_RETURN_IF_ERROR(h.Store(t, preds[level], pred));
  }

  root.count += 1;
  NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  return h.CommitOp(t);
}

Status SkipListWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kSkipMagic || root.head == 0) {
    return DataLoss("skiplist root corrupt");
  }
  // Level 0: strictly sorted, count matches, values intact.
  std::uint64_t count = 0;
  NEARPM_ASSIGN_OR_RETURN(head, h.Load<Node>(0, root.head));
  PmAddr cur = head.next[0];
  std::uint64_t prev_key = 0;
  bool first = true;
  while (cur != 0) {
    NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, cur));
    if (!first && node.key <= prev_key) {
      return DataLoss("skiplist level-0 order violated");
    }
    const Value64 expect = ValueForKey(node.key);
    if (std::memcmp(node.value.bytes, expect.bytes, kValueSize) != 0) {
      return DataLoss("skiplist value corrupt");
    }
    if (node.height == 0 || node.height > kLevels) {
      return DataLoss("skiplist node height corrupt");
    }
    prev_key = node.key;
    first = false;
    ++count;
    cur = node.next[0];
  }
  if (count != root.count) {
    return DataLoss("skiplist count mismatch");
  }
  // Upper levels: sorted and consistent with the node heights.
  for (int level = 1; level < kLevels; ++level) {
    cur = head.next[level];
    first = true;
    prev_key = 0;
    while (cur != 0) {
      NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, cur));
      if (static_cast<int>(node.height) <= level) {
        return DataLoss("skiplist node linked above its height");
      }
      if (!first && node.key <= prev_key) {
        return DataLoss("skiplist upper-level order violated");
      }
      prev_key = node.key;
      first = false;
      cur = node.next[level];
    }
  }
  return Status::Ok();
}

}  // namespace nearpm
