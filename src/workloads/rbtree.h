// Persistent red-black tree (the PMDK "rbtree" example): CLRS insertion with
// recoloring and rotations. Node mutations are staged in a per-operation
// write cache and flushed as whole-node stores, so every mechanism (including
// redo logging's exact-range redirects) sees uniform access granularity.
#ifndef SRC_WORKLOADS_RBTREE_H_
#define SRC_WORKLOADS_RBTREE_H_

#include <cstdint>
#include <unordered_map>

#include "src/workloads/workload.h"

namespace nearpm {

class RbTreeWorkload : public Workload {
 public:
  enum Color : std::uint64_t { kBlack = 0, kRed = 1 };

  struct Node {
    std::uint64_t key = 0;
    std::uint64_t color = kRed;
    PmAddr left = 0;
    PmAddr right = 0;
    PmAddr parent = 0;
    Value64 value = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr top = 0;
    std::uint64_t count = 0;
  };

  const char* name() const override { return "rbtree"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status Insert(ThreadId t, std::uint64_t key);

 private:
  // Per-operation staging cache: reads come from the cache when present,
  // all dirty nodes flush as whole-node stores before commit.
  class NodeCache {
   public:
    NodeCache(PersistentHeap* heap, ThreadId t) : heap_(heap), t_(t) {}
    StatusOr<Node> Get(PmAddr addr);
    void Put(PmAddr addr, const Node& node);
    Status Flush();

   private:
    PersistentHeap* heap_;
    ThreadId t_;
    std::unordered_map<PmAddr, Node> cache_;
    std::unordered_map<PmAddr, bool> dirty_;
  };

  Status RotateLeft(NodeCache& c, Root& root, PmAddr x_addr);
  Status RotateRight(NodeCache& c, Root& root, PmAddr x_addr);
  Status InsertFixup(NodeCache& c, Root& root, PmAddr z_addr);
  Status VerifyNode(PmAddr addr, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t* count, int* black_height);

  std::uint64_t key_space_ = 0;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_RBTREE_H_
