// KV-server workloads: the "memcached" and "redis" configurations of the
// paper's evaluation (100% write requests from YCSB, Table 4).
//
// Both are chained-hash stores behind a request-processing front end; they
// differ in pool topology, matching Section 8.3.1: memcached gives every
// server thread its own PM pool, redis shares one pool among all threads.
#ifndef SRC_WORKLOADS_KVSERVER_H_
#define SRC_WORKLOADS_KVSERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/workloads/workload.h"
#include "src/workloads/ycsb.h"

namespace nearpm {

class KvServerWorkload : public Workload {
 public:
  static constexpr std::uint64_t kSegments = 16;
  static constexpr std::uint64_t kBucketsPerSegment = 512;
  static constexpr std::uint64_t kBuckets = kSegments * kBucketsPerSegment;

  struct Node {
    std::uint64_t key = 0;
    PmAddr next = 0;
    Value64 value = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    std::uint64_t count = 0;
    PmAddr segments[kSegments] = {};
  };

  // shared_pool=true: redis flavor; false: memcached flavor.
  explicit KvServerWorkload(bool shared_pool) : shared_pool_(shared_pool) {}

  const char* name() const override {
    return shared_pool_ ? "redis" : "memcached";
  }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status Set(ThreadId t, std::uint64_t key);

 private:
  // Heap and in-pool thread id serving application thread `t`.
  PersistentHeap& HeapFor(ThreadId t) {
    return shared_pool_ ? heap() : heap(t);
  }
  ThreadId PoolThread(ThreadId t) const { return t; }

  Status InitTable(PersistentHeap& h);
  Status VerifyTable(PersistentHeap& h);

  bool shared_pool_;
  std::vector<std::unique_ptr<YcsbWorkloadGen>> gens_;  // one per thread
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_KVSERVER_H_
