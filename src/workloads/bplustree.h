// Persistent B+-tree: the sorted-tree backend of pmemkv ("stree" engine).
// Inner nodes hold routing keys only; values live in linked leaves.
#ifndef SRC_WORKLOADS_BPLUSTREE_H_
#define SRC_WORKLOADS_BPLUSTREE_H_

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace nearpm {

class BPlusTreeWorkload : public Workload {
 public:
  static constexpr int kInnerFanout = 16;          // children per inner node
  static constexpr int kInnerKeys = kInnerFanout - 1;
  static constexpr int kLeafKeys = 7;

  struct Inner {
    std::uint64_t n = 0;  // keys in use
    std::uint64_t level = 1;
    std::uint64_t keys[kInnerKeys] = {};
    PmAddr children[kInnerFanout] = {};
  };

  struct Leaf {
    std::uint64_t n = 0;
    PmAddr next = 0;
    std::uint64_t keys[kLeafKeys] = {};
    Value64 values[kLeafKeys] = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr top = 0;
    std::uint64_t height = 0;  // 0 = top is a leaf
    std::uint64_t count = 0;
  };

  const char* name() const override { return "pmemkv"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status Put(ThreadId t, std::uint64_t key);

 private:
  struct SplitResult {
    bool split = false;
    std::uint64_t up_key = 0;
    PmAddr right = 0;
  };

  StatusOr<SplitResult> PutRecurse(ThreadId t, PmAddr addr, std::uint64_t level,
                                   std::uint64_t key, bool* inserted);
  Status VerifyLevel(PmAddr addr, std::uint64_t level, std::uint64_t lo,
                     std::uint64_t hi, std::uint64_t* count, PmAddr* leftmost);

  std::uint64_t key_space_ = 0;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_BPLUSTREE_H_
