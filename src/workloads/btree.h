// Persistent B-tree (the PMDK "btree" example): order 8, keys and 64-byte
// values stored in every node, preemptive-split insertion.
#ifndef SRC_WORKLOADS_BTREE_H_
#define SRC_WORKLOADS_BTREE_H_

#include <cstdint>

#include "src/workloads/workload.h"

namespace nearpm {

class BTreeWorkload : public Workload {
 public:
  static constexpr int kOrder = 8;               // max children
  static constexpr int kMaxKeys = kOrder - 1;    // 7
  static constexpr int kMinKeys = kOrder / 2 - 1;

  struct Node {
    std::uint64_t n = 0;
    std::uint64_t leaf = 1;
    std::uint64_t keys[kMaxKeys] = {};
    PmAddr children[kOrder] = {};
    Value64 values[kMaxKeys] = {};
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr top = 0;
    std::uint64_t count = 0;  // total keys, updated in the same op
  };

  const char* name() const override { return "btree"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  // Inserts (or updates) key -> ValueForKey(key) as one failure-atomic op.
  Status Insert(ThreadId t, std::uint64_t key);
  StatusOr<bool> Lookup(ThreadId t, std::uint64_t key, Value64* out);

 private:
  Status SplitChild(ThreadId t, PmAddr parent_addr, Node parent, int index);
  Status InsertNonFull(ThreadId t, PmAddr node_addr, std::uint64_t key);
  Status VerifyNode(PmAddr addr, std::uint64_t lo, std::uint64_t hi,
                    std::uint64_t* count);

  std::uint64_t key_space_ = 0;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_BTREE_H_
