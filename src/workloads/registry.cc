#include <memory>
#include <string>
#include <vector>

#include "src/workloads/bplustree.h"
#include "src/workloads/btree.h"
#include "src/workloads/hashmap.h"
#include "src/workloads/kvserver.h"
#include "src/workloads/rbtree.h"
#include "src/workloads/skiplist.h"
#include "src/workloads/tatp.h"
#include "src/workloads/tpcc.h"
#include "src/workloads/workload.h"

namespace nearpm {

std::unique_ptr<Workload> CreateWorkload(const std::string& name) {
  if (name == "btree") {
    return std::make_unique<BTreeWorkload>();
  }
  if (name == "rbtree") {
    return std::make_unique<RbTreeWorkload>();
  }
  if (name == "skiplist") {
    return std::make_unique<SkipListWorkload>();
  }
  if (name == "hashmap") {
    return std::make_unique<HashMapWorkload>();
  }
  if (name == "pmemkv") {
    return std::make_unique<BPlusTreeWorkload>();
  }
  if (name == "memcached") {
    return std::make_unique<KvServerWorkload>(/*shared_pool=*/false);
  }
  if (name == "redis") {
    return std::make_unique<KvServerWorkload>(/*shared_pool=*/true);
  }
  if (name == "tpcc") {
    return std::make_unique<TpccWorkload>();
  }
  if (name == "tatp") {
    return std::make_unique<TatpWorkload>();
  }
  return nullptr;
}

std::vector<std::string> EvaluatedWorkloads() {
  return {"tpcc",   "tatp",      "btree", "rbtree", "skiplist",
          "hashmap", "memcached", "redis", "pmemkv"};
}

}  // namespace nearpm
