#include "src/workloads/rbtree.h"

#include <cstring>

namespace nearpm {
namespace {

constexpr std::uint64_t kRbMagic = 0x5242545245ULL;
constexpr double kLevelComputeNs = 110.0;
constexpr double kOpComputeNs = 6500.0;

}  // namespace

StatusOr<RbTreeWorkload::Node> RbTreeWorkload::NodeCache::Get(PmAddr addr) {
  auto it = cache_.find(addr);
  if (it != cache_.end()) {
    return it->second;
  }
  NEARPM_ASSIGN_OR_RETURN(node, heap_->Load<Node>(t_, addr));
  cache_.emplace(addr, node);
  return node;
}

void RbTreeWorkload::NodeCache::Put(PmAddr addr, const Node& node) {
  cache_[addr] = node;
  dirty_[addr] = true;
}

Status RbTreeWorkload::NodeCache::Flush() {
  for (const auto& [addr, is_dirty] : dirty_) {
    if (is_dirty) {
      NEARPM_RETURN_IF_ERROR(heap_->Store(t_, addr, cache_.at(addr)));
    }
  }
  dirty_.clear();
  return Status::Ok();
}

Status RbTreeWorkload::Setup(Runtime& rt, PoolArena& arena,
                             const WorkloadConfig& config) {
  config_ = config;
  key_space_ = config.initial_keys * 2 + 16;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kRbMagic;
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    NEARPM_RETURN_IF_ERROR(Insert(0, rng.NextBounded(key_space_)));
  }
  return Status::Ok();
}

Status RbTreeWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kOpComputeNs);
  return Insert(t, rng.NextBounded(key_space_));
}

Status RbTreeWorkload::RotateLeft(NodeCache& c, Root& root, PmAddr x_addr) {
  NEARPM_ASSIGN_OR_RETURN(x, c.Get(x_addr));
  const PmAddr y_addr = x.right;
  NEARPM_ASSIGN_OR_RETURN(y, c.Get(y_addr));
  x.right = y.left;
  if (y.left != 0) {
    NEARPM_ASSIGN_OR_RETURN(yl, c.Get(y.left));
    yl.parent = x_addr;
    c.Put(y.left, yl);
  }
  y.parent = x.parent;
  if (x.parent == 0) {
    root.top = y_addr;
  } else {
    NEARPM_ASSIGN_OR_RETURN(p, c.Get(x.parent));
    if (p.left == x_addr) {
      p.left = y_addr;
    } else {
      p.right = y_addr;
    }
    c.Put(x.parent, p);
  }
  y.left = x_addr;
  x.parent = y_addr;
  c.Put(x_addr, x);
  c.Put(y_addr, y);
  return Status::Ok();
}

Status RbTreeWorkload::RotateRight(NodeCache& c, Root& root, PmAddr x_addr) {
  NEARPM_ASSIGN_OR_RETURN(x, c.Get(x_addr));
  const PmAddr y_addr = x.left;
  NEARPM_ASSIGN_OR_RETURN(y, c.Get(y_addr));
  x.left = y.right;
  if (y.right != 0) {
    NEARPM_ASSIGN_OR_RETURN(yr, c.Get(y.right));
    yr.parent = x_addr;
    c.Put(y.right, yr);
  }
  y.parent = x.parent;
  if (x.parent == 0) {
    root.top = y_addr;
  } else {
    NEARPM_ASSIGN_OR_RETURN(p, c.Get(x.parent));
    if (p.right == x_addr) {
      p.right = y_addr;
    } else {
      p.left = y_addr;
    }
    c.Put(x.parent, p);
  }
  y.right = x_addr;
  x.parent = y_addr;
  c.Put(x_addr, x);
  c.Put(y_addr, y);
  return Status::Ok();
}

Status RbTreeWorkload::InsertFixup(NodeCache& c, Root& root, PmAddr z_addr) {
  while (true) {
    NEARPM_ASSIGN_OR_RETURN(z, c.Get(z_addr));
    if (z.parent == 0) {
      break;
    }
    NEARPM_ASSIGN_OR_RETURN(parent, c.Get(z.parent));
    if (parent.color != kRed) {
      break;
    }
    // The parent is red, so the grandparent exists (the root is black).
    const PmAddr gp_addr = parent.parent;
    NEARPM_ASSIGN_OR_RETURN(gp, c.Get(gp_addr));
    if (z.parent == gp.left) {
      const PmAddr uncle_addr = gp.right;
      bool uncle_red = false;
      if (uncle_addr != 0) {
        NEARPM_ASSIGN_OR_RETURN(uncle, c.Get(uncle_addr));
        uncle_red = uncle.color == kRed;
        if (uncle_red) {
          uncle.color = kBlack;
          c.Put(uncle_addr, uncle);
        }
      }
      if (uncle_red) {
        parent.color = kBlack;
        gp.color = kRed;
        c.Put(z.parent, parent);
        c.Put(gp_addr, gp);
        z_addr = gp_addr;
        continue;
      }
      if (z_addr == parent.right) {
        const PmAddr old_parent = z.parent;
        NEARPM_RETURN_IF_ERROR(RotateLeft(c, root, old_parent));
        z_addr = old_parent;
      }
      NEARPM_ASSIGN_OR_RETURN(z2, c.Get(z_addr));
      NEARPM_ASSIGN_OR_RETURN(p2, c.Get(z2.parent));
      p2.color = kBlack;
      c.Put(z2.parent, p2);
      if (p2.parent != 0) {
        NEARPM_ASSIGN_OR_RETURN(gp2, c.Get(p2.parent));
        gp2.color = kRed;
        c.Put(p2.parent, gp2);
        NEARPM_RETURN_IF_ERROR(RotateRight(c, root, p2.parent));
      }
      break;
    }
    // Mirror image.
    const PmAddr uncle_addr = gp.left;
    bool uncle_red = false;
    if (uncle_addr != 0) {
      NEARPM_ASSIGN_OR_RETURN(uncle, c.Get(uncle_addr));
      uncle_red = uncle.color == kRed;
      if (uncle_red) {
        uncle.color = kBlack;
        c.Put(uncle_addr, uncle);
      }
    }
    if (uncle_red) {
      parent.color = kBlack;
      gp.color = kRed;
      c.Put(z.parent, parent);
      c.Put(gp_addr, gp);
      z_addr = gp_addr;
      continue;
    }
    if (z_addr == parent.left) {
      const PmAddr old_parent = z.parent;
      NEARPM_RETURN_IF_ERROR(RotateRight(c, root, old_parent));
      z_addr = old_parent;
    }
    NEARPM_ASSIGN_OR_RETURN(z2, c.Get(z_addr));
    NEARPM_ASSIGN_OR_RETURN(p2, c.Get(z2.parent));
    p2.color = kBlack;
    c.Put(z2.parent, p2);
    if (p2.parent != 0) {
      NEARPM_ASSIGN_OR_RETURN(gp2, c.Get(p2.parent));
      gp2.color = kRed;
      c.Put(p2.parent, gp2);
      NEARPM_RETURN_IF_ERROR(RotateLeft(c, root, p2.parent));
    }
    break;
  }
  // The root is always black.
  NEARPM_ASSIGN_OR_RETURN(top, c.Get(root.top));
  if (top.color != kBlack) {
    top.color = kBlack;
    c.Put(root.top, top);
  }
  return Status::Ok();
}

Status RbTreeWorkload::Insert(ThreadId t, std::uint64_t key) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  NodeCache cache(&h, t);

  // Standard BST descent.
  PmAddr parent_addr = 0;
  PmAddr cur = root.top;
  bool went_left = false;
  while (cur != 0) {
    h.rt().Compute(t, kLevelComputeNs);
    NEARPM_ASSIGN_OR_RETURN(node, cache.Get(cur));
    if (key == node.key) {
      node.value = ValueForKey(key);
      cache.Put(cur, node);
      NEARPM_RETURN_IF_ERROR(cache.Flush());
      return h.CommitOp(t);
    }
    parent_addr = cur;
    went_left = key < node.key;
    cur = went_left ? node.left : node.right;
  }

  NEARPM_ASSIGN_OR_RETURN(z_addr, h.Alloc(t, sizeof(Node)));
  Node z;
  z.key = key;
  z.value = ValueForKey(key);
  z.parent = parent_addr;
  cache.Put(z_addr, z);
  if (parent_addr == 0) {
    root.top = z_addr;
  } else {
    NEARPM_ASSIGN_OR_RETURN(parent, cache.Get(parent_addr));
    if (went_left) {
      parent.left = z_addr;
    } else {
      parent.right = z_addr;
    }
    cache.Put(parent_addr, parent);
  }
  NEARPM_RETURN_IF_ERROR(InsertFixup(cache, root, z_addr));
  root.count += 1;
  NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  NEARPM_RETURN_IF_ERROR(cache.Flush());
  return h.CommitOp(t);
}

Status RbTreeWorkload::VerifyNode(PmAddr addr, std::uint64_t lo,
                                  std::uint64_t hi, std::uint64_t* count,
                                  int* black_height) {
  if (addr == 0) {
    *black_height = 1;
    return Status::Ok();
  }
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, addr));
  if (node.key < lo || node.key >= hi) {
    return DataLoss("rbtree key out of subtree bounds");
  }
  const Value64 expect = ValueForKey(node.key);
  if (std::memcmp(node.value.bytes, expect.bytes, kValueSize) != 0) {
    return DataLoss("rbtree value corrupt");
  }
  if (node.color == kRed) {
    for (PmAddr child : {node.left, node.right}) {
      if (child != 0) {
        NEARPM_ASSIGN_OR_RETURN(cn, h.Load<Node>(0, child));
        if (cn.color == kRed) {
          return DataLoss("rbtree red-red violation");
        }
      }
    }
  }
  int left_bh = 0;
  int right_bh = 0;
  NEARPM_RETURN_IF_ERROR(VerifyNode(node.left, lo, node.key, count, &left_bh));
  NEARPM_RETURN_IF_ERROR(
      VerifyNode(node.right, node.key + 1, hi, count, &right_bh));
  if (left_bh != right_bh) {
    return DataLoss("rbtree black-height mismatch");
  }
  *black_height = left_bh + (node.color == kBlack ? 1 : 0);
  *count += 1;
  return Status::Ok();
}

Status RbTreeWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kRbMagic) {
    return DataLoss("rbtree root magic corrupt");
  }
  std::uint64_t count = 0;
  int bh = 0;
  if (root.top != 0) {
    NEARPM_ASSIGN_OR_RETURN(top, h.Load<Node>(0, root.top));
    if (top.color != kBlack) {
      return DataLoss("rbtree root is red");
    }
    if (top.parent != 0) {
      return DataLoss("rbtree root has a parent");
    }
    NEARPM_RETURN_IF_ERROR(VerifyNode(root.top, 0, ~0ULL, &count, &bh));
  }
  if (count != root.count) {
    return DataLoss("rbtree count mismatch");
  }
  return Status::Ok();
}

}  // namespace nearpm
