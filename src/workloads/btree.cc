#include "src/workloads/btree.h"

#include <cstring>

namespace nearpm {
namespace {

constexpr std::uint64_t kBTreeMagic = 0x4254524545ULL;
// App-side compute per tree level (compares, prefetch decisions).
constexpr double kLevelComputeNs = 120.0;
// App-side compute per operation (request handling around the insert).
constexpr double kOpComputeNs = 6500.0;

}  // namespace

Value64 ValueForKey(std::uint64_t key) {
  Value64 v;
  for (std::size_t i = 0; i < kValueSize; ++i) {
    v.bytes[i] = static_cast<std::uint8_t>(key * 131 + i * 17 + 5);
  }
  return v;
}

Status BTreeWorkload::Setup(Runtime& rt, PoolArena& arena,
                            const WorkloadConfig& config) {
  config_ = config;
  key_space_ = config.initial_keys * 2 + 16;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kBTreeMagic;
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    NEARPM_RETURN_IF_ERROR(Insert(0, rng.NextBounded(key_space_)));
  }
  return Status::Ok();
}

Status BTreeWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kOpComputeNs);
  return Insert(t, rng.NextBounded(key_space_));
}

Status BTreeWorkload::SplitChild(ThreadId t, PmAddr parent_addr, Node parent,
                                 int index) {
  PersistentHeap& h = heap();
  const PmAddr child_addr = parent.children[index];
  NEARPM_ASSIGN_OR_RETURN(child, h.Load<Node>(t, child_addr));
  NEARPM_ASSIGN_OR_RETURN(right_addr, h.Alloc(t, sizeof(Node)));

  Node right;
  right.leaf = child.leaf;
  right.n = kMinKeys;
  for (int i = 0; i < kMinKeys; ++i) {
    right.keys[i] = child.keys[kMinKeys + 1 + i];
    right.values[i] = child.values[kMinKeys + 1 + i];
  }
  if (!child.leaf) {
    for (int i = 0; i <= kMinKeys; ++i) {
      right.children[i] = child.children[kMinKeys + 1 + i];
    }
  }
  const std::uint64_t median_key = child.keys[kMinKeys];
  const Value64 median_value = child.values[kMinKeys];
  child.n = kMinKeys;

  for (int i = static_cast<int>(parent.n); i > index; --i) {
    parent.keys[i] = parent.keys[i - 1];
    parent.values[i] = parent.values[i - 1];
    parent.children[i + 1] = parent.children[i];
  }
  parent.keys[index] = median_key;
  parent.values[index] = median_value;
  parent.children[index + 1] = right_addr;
  parent.n += 1;

  NEARPM_RETURN_IF_ERROR(h.Store(t, right_addr, right));
  NEARPM_RETURN_IF_ERROR(h.Store(t, child_addr, child));
  NEARPM_RETURN_IF_ERROR(h.Store(t, parent_addr, parent));
  return Status::Ok();
}

Status BTreeWorkload::InsertNonFull(ThreadId t, PmAddr node_addr,
                                    std::uint64_t key) {
  PersistentHeap& h = heap();
  bool inserted = true;
  while (true) {
    h.rt().Compute(t, kLevelComputeNs);
    NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(t, node_addr));
    int i = 0;
    while (i < static_cast<int>(node.n) && key > node.keys[i]) {
      ++i;
    }
    if (i < static_cast<int>(node.n) && key == node.keys[i]) {
      node.values[i] = ValueForKey(key);
      NEARPM_RETURN_IF_ERROR(h.Store(t, node_addr, node));
      inserted = false;
      break;
    }
    if (node.leaf) {
      for (int j = static_cast<int>(node.n); j > i; --j) {
        node.keys[j] = node.keys[j - 1];
        node.values[j] = node.values[j - 1];
      }
      node.keys[i] = key;
      node.values[i] = ValueForKey(key);
      node.n += 1;
      NEARPM_RETURN_IF_ERROR(h.Store(t, node_addr, node));
      break;
    }
    NEARPM_ASSIGN_OR_RETURN(child, h.Load<Node>(t, node.children[i]));
    if (child.n == kMaxKeys) {
      NEARPM_RETURN_IF_ERROR(SplitChild(t, node_addr, node, i));
      NEARPM_ASSIGN_OR_RETURN(reloaded, h.Load<Node>(t, node_addr));
      node = reloaded;
      if (key == node.keys[i]) {
        node.values[i] = ValueForKey(key);
        NEARPM_RETURN_IF_ERROR(h.Store(t, node_addr, node));
        inserted = false;
        break;
      }
      if (key > node.keys[i]) {
        ++i;
      }
    }
    node_addr = node.children[i];
  }
  if (inserted) {
    NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
    root.count += 1;
    NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  }
  return Status::Ok();
}

Status BTreeWorkload::Insert(ThreadId t, std::uint64_t key) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  if (root.top == 0) {
    NEARPM_ASSIGN_OR_RETURN(top_addr, h.Alloc(t, sizeof(Node)));
    Node top;
    NEARPM_RETURN_IF_ERROR(h.Store(t, top_addr, top));
    root.top = top_addr;
    NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  }
  NEARPM_ASSIGN_OR_RETURN(top, h.Load<Node>(t, root.top));
  if (top.n == kMaxKeys) {
    NEARPM_ASSIGN_OR_RETURN(new_top_addr, h.Alloc(t, sizeof(Node)));
    Node new_top;
    new_top.leaf = 0;
    new_top.children[0] = root.top;
    NEARPM_RETURN_IF_ERROR(h.Store(t, new_top_addr, new_top));
    NEARPM_RETURN_IF_ERROR(SplitChild(t, new_top_addr, new_top, 0));
    root.top = new_top_addr;
    NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  }
  NEARPM_RETURN_IF_ERROR(InsertNonFull(t, root.top, key));
  return h.CommitOp(t);
}

StatusOr<bool> BTreeWorkload::Lookup(ThreadId t, std::uint64_t key,
                                     Value64* out) {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  PmAddr addr = root.top;
  while (addr != 0) {
    h.rt().Compute(t, kLevelComputeNs);
    NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(t, addr));
    int i = 0;
    while (i < static_cast<int>(node.n) && key > node.keys[i]) {
      ++i;
    }
    if (i < static_cast<int>(node.n) && key == node.keys[i]) {
      if (out != nullptr) {
        *out = node.values[i];
      }
      return true;
    }
    if (node.leaf) {
      return false;
    }
    addr = node.children[i];
  }
  return false;
}

Status BTreeWorkload::VerifyNode(PmAddr addr, std::uint64_t lo,
                                 std::uint64_t hi, std::uint64_t* count) {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, addr));
  if (node.n > kMaxKeys) {
    return DataLoss("btree node overflow");
  }
  std::uint64_t prev = lo;
  for (int i = 0; i < static_cast<int>(node.n); ++i) {
    const std::uint64_t key = node.keys[i];
    if ((i > 0 || lo > 0) && key <= prev) {
      return DataLoss("btree keys out of order");
    }
    if (key >= hi) {
      return DataLoss("btree key escapes subtree bound");
    }
    const Value64 expect = ValueForKey(key);
    if (std::memcmp(node.values[i].bytes, expect.bytes, kValueSize) != 0) {
      return DataLoss("btree value corrupt");
    }
    prev = key;
  }
  *count += node.n;
  if (!node.leaf) {
    std::uint64_t child_lo = lo;
    for (int i = 0; i <= static_cast<int>(node.n); ++i) {
      const std::uint64_t child_hi =
          i < static_cast<int>(node.n) ? node.keys[i] : hi;
      if (node.children[i] == 0) {
        return DataLoss("btree missing child");
      }
      NEARPM_RETURN_IF_ERROR(
          VerifyNode(node.children[i], child_lo, child_hi, count));
      child_lo = child_hi;
    }
  }
  return Status::Ok();
}

Status BTreeWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kBTreeMagic) {
    return DataLoss("btree root magic corrupt");
  }
  std::uint64_t count = 0;
  if (root.top != 0) {
    NEARPM_RETURN_IF_ERROR(VerifyNode(root.top, 0, ~0ULL, &count));
  }
  if (count != root.count) {
    return DataLoss("btree count mismatch: walked " + std::to_string(count) +
                    " recorded " + std::to_string(root.count));
  }
  return Status::Ok();
}

}  // namespace nearpm
