#include "src/workloads/hashmap.h"

#include <cstring>

namespace nearpm {
namespace {

constexpr std::uint64_t kHashMagic = 0x484153484dULL;
constexpr double kHashComputeNs = 150.0;  // hashing the key
constexpr double kOpComputeNs = 5500.0;

}  // namespace

std::uint64_t HashMapWorkload::HashKey(std::uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

Status HashMapWorkload::Setup(Runtime& rt, PoolArena& arena,
                              const WorkloadConfig& config) {
  config_ = config;
  key_space_ = config.initial_keys * 2 + 16;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kHashMagic;
  for (std::uint64_t s = 0; s < kSegments; ++s) {
    NEARPM_ASSIGN_OR_RETURN(seg, h.Alloc(0, kPmPageSize));
    // Zero the segment (bucket heads empty).
    std::vector<std::uint8_t> zero(kPmPageSize, 0);
    NEARPM_RETURN_IF_ERROR(h.Write(0, seg, zero));
    root.segments[s] = seg;
  }
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    NEARPM_RETURN_IF_ERROR(Put(0, rng.NextBounded(key_space_)));
  }
  return Status::Ok();
}

Status HashMapWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kOpComputeNs);
  return Put(t, rng.NextBounded(key_space_));
}

StatusOr<PmAddr> HashMapWorkload::BucketSlotAddr(ThreadId t,
                                                 std::uint64_t bucket) {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  const std::uint64_t segment = bucket / kBucketsPerSegment;
  const std::uint64_t slot = bucket % kBucketsPerSegment;
  return root.segments[segment] + slot * sizeof(PmAddr);
}

Status HashMapWorkload::Put(ThreadId t, std::uint64_t key) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  h.rt().Compute(t, kHashComputeNs);
  const std::uint64_t bucket = HashKey(key) % kBuckets;
  NEARPM_ASSIGN_OR_RETURN(slot_addr, BucketSlotAddr(t, bucket));
  NEARPM_ASSIGN_OR_RETURN(head, h.Load<PmAddr>(t, slot_addr));

  // Search the chain for an existing key.
  PmAddr cur = head;
  while (cur != 0) {
    NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(t, cur));
    if (node.key == key) {
      node.value = ValueForKey(key);
      NEARPM_RETURN_IF_ERROR(h.Store(t, cur, node));
      return h.CommitOp(t);
    }
    cur = node.next;
  }

  // Prepend a new node.
  NEARPM_ASSIGN_OR_RETURN(node_addr, h.Alloc(t, sizeof(Node)));
  Node node;
  node.key = key;
  node.next = head;
  node.value = ValueForKey(key);
  NEARPM_RETURN_IF_ERROR(h.Store(t, node_addr, node));
  NEARPM_RETURN_IF_ERROR(h.Store(t, slot_addr, node_addr));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  root.count += 1;
  NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  return h.CommitOp(t);
}

Status HashMapWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kHashMagic) {
    return DataLoss("hashmap root magic corrupt");
  }
  std::uint64_t count = 0;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t segment = b / kBucketsPerSegment;
    const std::uint64_t slot = b % kBucketsPerSegment;
    if (root.segments[segment] == 0) {
      return DataLoss("hashmap segment missing");
    }
    NEARPM_ASSIGN_OR_RETURN(
        head, h.Load<PmAddr>(0, root.segments[segment] + slot * 8));
    PmAddr cur = head;
    std::uint64_t chain = 0;
    while (cur != 0) {
      NEARPM_ASSIGN_OR_RETURN(node, h.Load<Node>(0, cur));
      if (HashKey(node.key) % kBuckets != b) {
        return DataLoss("hashmap node in wrong bucket");
      }
      const Value64 expect = ValueForKey(node.key);
      if (std::memcmp(node.value.bytes, expect.bytes, kValueSize) != 0) {
        return DataLoss("hashmap value corrupt");
      }
      ++count;
      if (++chain > root.count + 1) {
        return DataLoss("hashmap chain cycle");
      }
      cur = node.next;
    }
  }
  if (count != root.count) {
    return DataLoss("hashmap count mismatch");
  }
  return Status::Ok();
}

}  // namespace nearpm
