// YCSB-style key generator: zipfian-skewed or uniform key popularity over a
// fixed keyspace, used to drive the memcached and redis workloads with the
// paper's "100% write requests from YCSB" configuration.
#ifndef SRC_WORKLOADS_YCSB_H_
#define SRC_WORKLOADS_YCSB_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace nearpm {

class ZipfianGenerator {
 public:
  // Standard YCSB zipfian with exponent `theta` (default 0.99) over
  // [0, num_keys).
  explicit ZipfianGenerator(std::uint64_t num_keys, double theta = 0.99);

  std::uint64_t Next(Rng& rng) const;
  std::uint64_t num_keys() const { return num_keys_; }

 private:
  std::uint64_t num_keys_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

struct YcsbOp {
  enum class Kind : std::uint8_t { kInsert, kUpdate, kRead };
  Kind kind = Kind::kUpdate;
  std::uint64_t key = 0;
};

class YcsbWorkloadGen {
 public:
  struct Mix {
    double insert = 0.0;
    double update = 1.0;  // paper: 100% write
    double read = 0.0;
  };

  YcsbWorkloadGen(std::uint64_t num_keys, Mix mix, bool zipfian = true);

  YcsbOp Next(Rng& rng);

 private:
  ZipfianGenerator zipf_;
  Mix mix_;
  bool zipfian_;
  std::uint64_t next_insert_key_;
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_YCSB_H_
