// Workload interface: the nine PM applications of Table 4.
//
// Every workload builds a persistent data structure (or table schema) on a
// PersistentHeap, runs failure-atomic operations against it, and can verify
// its own structural invariants -- which makes each workload double as a
// crash-consistency test: run ops, crash, recover, Verify().
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/pmlib/heap.h"

namespace nearpm {

struct WorkloadConfig {
  Mechanism mechanism = Mechanism::kLogging;
  int threads = 1;
  std::uint64_t data_size = 8ull << 20;  // per pool
  int ckpt_epoch_ops = 8;
  std::uint64_t seed = 1;
  // Scale of the initial population (keys preloaded before measurement).
  std::uint64_t initial_keys = 1000;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Creates pools and the initial persistent state.
  virtual Status Setup(Runtime& rt, PoolArena& arena,
                       const WorkloadConfig& config) = 0;

  // Executes one failure-atomic application operation on thread `t`
  // (including its own BeginOp/CommitOp bracketing and app-side compute).
  virtual Status RunOp(ThreadId t, Rng& rng) = 0;

  // Structural invariant check; called after recovery in crash tests.
  virtual Status Verify() = 0;

  // Crash hooks (default: single-heap workloads).
  virtual void DropVolatile() {
    for (auto& heap : heaps_) {
      heap->DropVolatile();
    }
  }
  virtual Status Recover() {
    for (auto& heap : heaps_) {
      NEARPM_RETURN_IF_ERROR(heap->Recover());
    }
    return Status::Ok();
  }

  PersistentHeap& heap(std::size_t i = 0) { return *heaps_.at(i); }

 protected:
  Status MakeHeap(Runtime& rt, PoolArena& arena, const WorkloadConfig& config,
                  int threads_for_pool) {
    HeapOptions ho;
    ho.mechanism = config.mechanism;
    ho.data_size = config.data_size;
    ho.threads = threads_for_pool;
    ho.ckpt_epoch_ops = config.ckpt_epoch_ops;
    auto heap = PersistentHeap::Create(rt, arena, ho);
    if (!heap.ok()) {
      return heap.status();
    }
    heaps_.push_back(std::move(*heap));
    return Status::Ok();
  }

  WorkloadConfig config_;
  std::vector<std::unique_ptr<PersistentHeap>> heaps_;
};

// Factory for the nine evaluated workloads: "btree", "rbtree", "skiplist",
// "hashmap", "pmemkv", "memcached", "redis", "tpcc", "tatp".
std::unique_ptr<Workload> CreateWorkload(const std::string& name);

// The evaluation's workload list, in the paper's order.
std::vector<std::string> EvaluatedWorkloads();

// 64-byte application values (Table 4).
inline constexpr std::size_t kValueSize = 64;
struct Value64 {
  std::uint8_t bytes[kValueSize];
};

// Deterministic value derived from a key (lets Verify check payloads).
Value64 ValueForKey(std::uint64_t key);

}  // namespace nearpm

#endif  // SRC_WORKLOADS_WORKLOAD_H_
