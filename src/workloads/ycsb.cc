#include "src/workloads/ycsb.h"

#include <cmath>

namespace nearpm {

ZipfianGenerator::ZipfianGenerator(std::uint64_t num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  zetan_ = 0.0;
  for (std::uint64_t i = 1; i <= num_keys_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) const {
  // Gray et al.'s quick zipfian sampling as used by YCSB.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double x = static_cast<double>(num_keys_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t k = static_cast<std::uint64_t>(x);
  return k >= num_keys_ ? num_keys_ - 1 : k;
}

YcsbWorkloadGen::YcsbWorkloadGen(std::uint64_t num_keys, Mix mix, bool zipfian)
    : zipf_(num_keys),
      mix_(mix),
      zipfian_(zipfian),
      next_insert_key_(num_keys) {}

YcsbOp YcsbWorkloadGen::Next(Rng& rng) {
  YcsbOp op;
  const double r = rng.NextDouble();
  if (r < mix_.insert) {
    op.kind = YcsbOp::Kind::kInsert;
    op.key = next_insert_key_++;
    return op;
  }
  op.kind = r < mix_.insert + mix_.update ? YcsbOp::Kind::kUpdate
                                          : YcsbOp::Kind::kRead;
  op.key = zipfian_ ? zipf_.Next(rng) : rng.NextBounded(zipf_.num_keys());
  return op;
}

}  // namespace nearpm
