// TATP-lite: the telecom benchmark's write transactions (from SFR, PLDI'18).
// Single-row updates that commit immediately -- the workload the paper calls
// out for its low NDP speedup (one logging operation per transaction leaves
// no parallelism to exploit, Section 8.2.3).
#ifndef SRC_WORKLOADS_TATP_H_
#define SRC_WORKLOADS_TATP_H_

#include <cstdint>

#include "src/workloads/workload.h"

namespace nearpm {

class TatpWorkload : public Workload {
 public:
  static constexpr std::uint64_t kSubscribers = 4096;
  static constexpr std::uint64_t kRowsPerPage = kPmPageSize / 64;

  // A row is self-consistent: `crc` covers the other fields, so a torn
  // (half-updated) row is detectable without any cross-row bookkeeping --
  // which keeps the transaction at exactly one log entry, the property that
  // makes TATP the low-speedup outlier of Section 8.2.3.
  struct alignas(64) SubscriberRow {
    std::uint64_t s_id = 0;
    std::uint64_t bit_flags = 0;
    std::uint64_t hex_flags = 0;
    std::uint64_t location = 0;
    std::uint64_t vlr = 0;
    std::uint64_t crc = 0;
    std::uint8_t pad[16] = {};

    std::uint64_t ComputeCrc() const;
  };

  struct Root {
    std::uint64_t magic = 0;
    PmAddr pages[64] = {};
  };

  const char* name() const override { return "tatp"; }
  Status Setup(Runtime& rt, PoolArena& arena,
               const WorkloadConfig& config) override;
  Status RunOp(ThreadId t, Rng& rng) override;
  Status Verify() override;

  Status UpdateSubscriberData(ThreadId t, Rng& rng);
  Status UpdateLocation(ThreadId t, Rng& rng);

 private:
  PmAddr RowAddr(const Root& root, std::uint64_t s_id) const {
    return root.pages[s_id / kRowsPerPage] +
           (s_id % kRowsPerPage) * sizeof(SubscriberRow);
  }
};

}  // namespace nearpm

#endif  // SRC_WORKLOADS_TATP_H_
