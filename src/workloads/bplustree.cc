#include "src/workloads/bplustree.h"

#include <cstring>

namespace nearpm {
namespace {

constexpr std::uint64_t kBpMagic = 0x42504c5553ULL;
constexpr double kLevelComputeNs = 100.0;
constexpr double kOpComputeNs = 6500.0;  // pmemkv engine overhead

}  // namespace

Status BPlusTreeWorkload::Setup(Runtime& rt, PoolArena& arena,
                                const WorkloadConfig& config) {
  config_ = config;
  key_space_ = config.initial_keys * 2 + 16;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  NEARPM_ASSIGN_OR_RETURN(leaf_addr, h.Alloc(0, sizeof(Leaf)));
  Leaf leaf;
  NEARPM_RETURN_IF_ERROR(h.Store(0, leaf_addr, leaf));
  Root root;
  root.magic = kBpMagic;
  root.top = leaf_addr;
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  NEARPM_RETURN_IF_ERROR(h.CommitOp(0));
  Rng rng(config.seed);
  for (std::uint64_t i = 0; i < config.initial_keys; ++i) {
    NEARPM_RETURN_IF_ERROR(Put(0, rng.NextBounded(key_space_)));
  }
  return Status::Ok();
}

Status BPlusTreeWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kOpComputeNs);
  return Put(t, rng.NextBounded(key_space_));
}

StatusOr<BPlusTreeWorkload::SplitResult> BPlusTreeWorkload::PutRecurse(
    ThreadId t, PmAddr addr, std::uint64_t level, std::uint64_t key,
    bool* inserted) {
  PersistentHeap& h = heap();
  h.rt().Compute(t, kLevelComputeNs);
  SplitResult result;

  if (level == 0) {
    NEARPM_ASSIGN_OR_RETURN(leaf, h.Load<Leaf>(t, addr));
    int i = 0;
    while (i < static_cast<int>(leaf.n) && leaf.keys[i] < key) {
      ++i;
    }
    if (i < static_cast<int>(leaf.n) && leaf.keys[i] == key) {
      leaf.values[i] = ValueForKey(key);
      NEARPM_RETURN_IF_ERROR(h.Store(t, addr, leaf));
      *inserted = false;
      return result;
    }
    *inserted = true;
    if (leaf.n < kLeafKeys) {
      for (int j = static_cast<int>(leaf.n); j > i; --j) {
        leaf.keys[j] = leaf.keys[j - 1];
        leaf.values[j] = leaf.values[j - 1];
      }
      leaf.keys[i] = key;
      leaf.values[i] = ValueForKey(key);
      leaf.n += 1;
      NEARPM_RETURN_IF_ERROR(h.Store(t, addr, leaf));
      return result;
    }
    // Split the leaf: left keeps ceil(n/2), right takes the rest.
    NEARPM_ASSIGN_OR_RETURN(right_addr, h.Alloc(t, sizeof(Leaf)));
    Leaf right;
    const int half = (kLeafKeys + 1) / 2;  // 4
    right.n = kLeafKeys - half;
    for (int j = 0; j < static_cast<int>(right.n); ++j) {
      right.keys[j] = leaf.keys[half + j];
      right.values[j] = leaf.values[half + j];
    }
    right.next = leaf.next;
    leaf.n = half;
    leaf.next = right_addr;
    // Insert into whichever side now owns the key.
    if (key < right.keys[0]) {
      int j = static_cast<int>(leaf.n);
      while (j > 0 && leaf.keys[j - 1] > key) {
        leaf.keys[j] = leaf.keys[j - 1];
        leaf.values[j] = leaf.values[j - 1];
        --j;
      }
      leaf.keys[j] = key;
      leaf.values[j] = ValueForKey(key);
      leaf.n += 1;
    } else {
      int j = static_cast<int>(right.n);
      while (j > 0 && right.keys[j - 1] > key) {
        right.keys[j] = right.keys[j - 1];
        right.values[j] = right.values[j - 1];
        --j;
      }
      right.keys[j] = key;
      right.values[j] = ValueForKey(key);
      right.n += 1;
    }
    NEARPM_RETURN_IF_ERROR(h.Store(t, right_addr, right));
    NEARPM_RETURN_IF_ERROR(h.Store(t, addr, leaf));
    result.split = true;
    result.up_key = right.keys[0];
    result.right = right_addr;
    return result;
  }

  // Inner node.
  NEARPM_ASSIGN_OR_RETURN(inner, h.Load<Inner>(t, addr));
  int i = 0;
  while (i < static_cast<int>(inner.n) && key >= inner.keys[i]) {
    ++i;
  }
  NEARPM_ASSIGN_OR_RETURN(
      child_split, PutRecurse(t, inner.children[i], level - 1, key, inserted));
  if (!child_split.split) {
    return result;
  }
  // Insert the separator produced by the child split.
  if (inner.n < kInnerKeys) {
    for (int j = static_cast<int>(inner.n); j > i; --j) {
      inner.keys[j] = inner.keys[j - 1];
      inner.children[j + 1] = inner.children[j];
    }
    inner.keys[i] = child_split.up_key;
    inner.children[i + 1] = child_split.right;
    inner.n += 1;
    NEARPM_RETURN_IF_ERROR(h.Store(t, addr, inner));
    return result;
  }
  // Split this inner node. Work on a widened temporary.
  std::uint64_t keys[kInnerKeys + 1];
  PmAddr children[kInnerFanout + 1];
  for (int j = 0; j < kInnerKeys; ++j) {
    keys[j] = inner.keys[j];
  }
  for (int j = 0; j < kInnerFanout; ++j) {
    children[j] = inner.children[j];
  }
  for (int j = kInnerKeys; j > i; --j) {
    keys[j] = keys[j - 1];
  }
  for (int j = kInnerFanout; j > i + 1; --j) {
    children[j] = children[j - 1];
  }
  keys[i] = child_split.up_key;
  children[i + 1] = child_split.right;

  const int total_keys = kInnerKeys + 1;       // 16
  const int left_keys = total_keys / 2;        // 8
  const std::uint64_t up = keys[left_keys];    // promoted separator
  NEARPM_ASSIGN_OR_RETURN(right_addr, h.Alloc(t, sizeof(Inner)));
  Inner right;
  right.level = inner.level;
  right.n = total_keys - left_keys - 1;  // 7
  for (int j = 0; j < static_cast<int>(right.n); ++j) {
    right.keys[j] = keys[left_keys + 1 + j];
  }
  for (int j = 0; j <= static_cast<int>(right.n); ++j) {
    right.children[j] = children[left_keys + 1 + j];
  }
  inner.n = left_keys;
  for (int j = 0; j < left_keys; ++j) {
    inner.keys[j] = keys[j];
  }
  for (int j = 0; j <= left_keys; ++j) {
    inner.children[j] = children[j];
  }
  NEARPM_RETURN_IF_ERROR(h.Store(t, right_addr, right));
  NEARPM_RETURN_IF_ERROR(h.Store(t, addr, inner));
  result.split = true;
  result.up_key = up;
  result.right = right_addr;
  return result;
}

Status BPlusTreeWorkload::Put(ThreadId t, std::uint64_t key) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  bool inserted = false;
  NEARPM_ASSIGN_OR_RETURN(split,
                          PutRecurse(t, root.top, root.height, key, &inserted));
  bool root_dirty = false;
  if (split.split) {
    NEARPM_ASSIGN_OR_RETURN(new_top_addr, h.Alloc(t, sizeof(Inner)));
    Inner new_top;
    new_top.level = root.height + 1;
    new_top.n = 1;
    new_top.keys[0] = split.up_key;
    new_top.children[0] = root.top;
    new_top.children[1] = split.right;
    NEARPM_RETURN_IF_ERROR(h.Store(t, new_top_addr, new_top));
    root.top = new_top_addr;
    root.height += 1;
    root_dirty = true;
  }
  if (inserted) {
    root.count += 1;
    root_dirty = true;
  }
  if (root_dirty) {
    NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  }
  return h.CommitOp(t);
}

Status BPlusTreeWorkload::VerifyLevel(PmAddr addr, std::uint64_t level,
                                      std::uint64_t lo, std::uint64_t hi,
                                      std::uint64_t* count, PmAddr* leftmost) {
  PersistentHeap& h = heap();
  if (level == 0) {
    if (leftmost != nullptr && *leftmost == 0) {
      *leftmost = addr;
    }
    NEARPM_ASSIGN_OR_RETURN(leaf, h.Load<Leaf>(0, addr));
    if (leaf.n > kLeafKeys) {
      return DataLoss("bplustree leaf overflow");
    }
    for (int i = 0; i < static_cast<int>(leaf.n); ++i) {
      if (leaf.keys[i] < lo || leaf.keys[i] >= hi) {
        return DataLoss("bplustree leaf key out of bounds");
      }
      if (i > 0 && leaf.keys[i] <= leaf.keys[i - 1]) {
        return DataLoss("bplustree leaf keys unsorted");
      }
      const Value64 expect = ValueForKey(leaf.keys[i]);
      if (std::memcmp(leaf.values[i].bytes, expect.bytes, kValueSize) != 0) {
        return DataLoss("bplustree value corrupt");
      }
    }
    *count += leaf.n;
    return Status::Ok();
  }
  NEARPM_ASSIGN_OR_RETURN(inner, h.Load<Inner>(0, addr));
  if (inner.n == 0 || inner.n > kInnerKeys) {
    return DataLoss("bplustree inner key count invalid");
  }
  std::uint64_t child_lo = lo;
  for (int i = 0; i <= static_cast<int>(inner.n); ++i) {
    const std::uint64_t child_hi =
        i < static_cast<int>(inner.n) ? inner.keys[i] : hi;
    if (child_hi < child_lo) {
      return DataLoss("bplustree separators unsorted");
    }
    if (inner.children[i] == 0) {
      return DataLoss("bplustree missing child");
    }
    NEARPM_RETURN_IF_ERROR(VerifyLevel(inner.children[i], level - 1, child_lo,
                                       child_hi, count, leftmost));
    child_lo = child_hi;
  }
  return Status::Ok();
}

Status BPlusTreeWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kBpMagic || root.top == 0) {
    return DataLoss("bplustree root corrupt");
  }
  std::uint64_t count = 0;
  PmAddr leftmost = 0;
  NEARPM_RETURN_IF_ERROR(
      VerifyLevel(root.top, root.height, 0, ~0ULL, &count, &leftmost));
  if (count != root.count) {
    return DataLoss("bplustree count mismatch");
  }
  // The leaf chain covers exactly the tree's keys, in order.
  std::uint64_t chain_count = 0;
  PmAddr cur = leftmost;
  std::uint64_t prev = 0;
  bool first = true;
  while (cur != 0) {
    NEARPM_ASSIGN_OR_RETURN(leaf, h.Load<Leaf>(0, cur));
    for (int i = 0; i < static_cast<int>(leaf.n); ++i) {
      if (!first && leaf.keys[i] <= prev) {
        return DataLoss("bplustree leaf chain unsorted");
      }
      prev = leaf.keys[i];
      first = false;
      ++chain_count;
    }
    cur = leaf.next;
  }
  if (chain_count != root.count) {
    return DataLoss("bplustree leaf chain count mismatch");
  }
  return Status::Ok();
}

}  // namespace nearpm
