#include "src/workloads/tpcc.h"

#include <cstring>
#include <unordered_map>
#include <vector>

namespace nearpm {
namespace {

constexpr std::uint64_t kTpccMagic = 0x54504343ULL;
constexpr double kTxComputeNs = 16000.0;  // parsing, validation, client logic

}  // namespace

PmAddr TpccWorkload::CustomerAddr(const Root& root, std::uint64_t d,
                                  std::uint64_t c) const {
  const std::uint64_t row = d * kCustomersPerDistrict + c;
  return root.customer_pages[row / kRowsPerPage] +
         (row % kRowsPerPage) * sizeof(CustomerRow);
}

PmAddr TpccWorkload::StockAddr(const Root& root, std::uint64_t item) const {
  return root.stock_pages[item / kRowsPerPage] +
         (item % kRowsPerPage) * sizeof(StockRow);
}

Status TpccWorkload::Setup(Runtime& rt, PoolArena& arena,
                           const WorkloadConfig& config) {
  config_ = config;
  NEARPM_RETURN_IF_ERROR(MakeHeap(rt, arena, config, config.threads));
  PersistentHeap& h = heap();
  // Initialize each table page with one whole-page write (a single log slot
  // per page, as loading with large tx_add_ranges would in PMDK).
  NEARPM_RETURN_IF_ERROR(h.BeginOp(0));
  Root root;
  root.magic = kTpccMagic;
  NEARPM_ASSIGN_OR_RETURN(w, h.Alloc(0, kPmPageSize));
  root.warehouse = w;
  std::vector<std::uint8_t> page_buf(kPmPageSize, 0);
  auto fill_rows = [&page_buf](const auto& row, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      std::memcpy(page_buf.data() + i * sizeof(row), &row, sizeof(row));
    }
  };
  fill_rows(WarehouseRow{}, 1);
  NEARPM_RETURN_IF_ERROR(h.Write(0, w, page_buf));
  NEARPM_ASSIGN_OR_RETURN(d, h.Alloc(0, kPmPageSize));
  root.districts = d;
  fill_rows(DistrictRow{}, kDistricts);
  NEARPM_RETURN_IF_ERROR(h.Write(0, d, page_buf));
  const std::uint64_t customer_rows = kDistricts * kCustomersPerDistrict;
  fill_rows(CustomerRow{}, kRowsPerPage);
  for (std::uint64_t p = 0; p * kRowsPerPage < customer_rows; ++p) {
    NEARPM_ASSIGN_OR_RETURN(page, h.Alloc(0, kPmPageSize));
    root.customer_pages[p] = page;
    NEARPM_RETURN_IF_ERROR(h.Write(0, page, page_buf));
  }
  fill_rows(StockRow{}, kRowsPerPage);
  for (std::uint64_t p = 0; p * kRowsPerPage < kItems; ++p) {
    NEARPM_ASSIGN_OR_RETURN(page, h.Alloc(0, kPmPageSize));
    root.stock_pages[p] = page;
    NEARPM_RETURN_IF_ERROR(h.Write(0, page, page_buf));
  }
  NEARPM_RETURN_IF_ERROR(h.Store(0, h.root(), root));
  return h.CommitOp(0);
}

Status TpccWorkload::RunOp(ThreadId t, Rng& rng) {
  heap().rt().Compute(t, kTxComputeNs);
  // Standard-ish mix, collapsed to the two write transactions.
  if (rng.NextBool(0.51)) {
    return NewOrder(t, rng);
  }
  return Payment(t, rng);
}

Status TpccWorkload::NewOrder(ThreadId t, Rng& rng) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  const std::uint64_t d_id = rng.NextBounded(kDistricts);
  const PmAddr d_addr = root.districts + d_id * sizeof(DistrictRow);
  NEARPM_ASSIGN_OR_RETURN(district, h.Load<DistrictRow>(t, d_addr));

  NEARPM_ASSIGN_OR_RETURN(order_addr, h.Alloc(t, sizeof(OrderRow)));
  OrderRow order;
  order.o_id = district.next_o_id;
  order.d_id = d_id;
  order.c_id = rng.NextBounded(kCustomersPerDistrict);
  order.n_lines = 5 + rng.NextBounded(kMaxOrderLines - 5 + 1);
  order.prev = district.order_head;

  // Pick distinct items for the lines.
  for (std::uint64_t l = 0; l < order.n_lines; ++l) {
    order.lines[l].item = (rng.NextBounded(kItems / kMaxOrderLines) *
                               kMaxOrderLines +
                           l) %
                          kItems;
    order.lines[l].qty = 1 + rng.NextBounded(10);
    const PmAddr s_addr = StockAddr(root, order.lines[l].item);
    NEARPM_ASSIGN_OR_RETURN(stock, h.Load<StockRow>(t, s_addr));
    stock.quantity -= static_cast<std::int64_t>(order.lines[l].qty);
    if (stock.quantity < 10) {
      stock.quantity += 91;  // TPCC replenishment rule
    }
    stock.s_ytd += order.lines[l].qty;
    stock.order_cnt += 1;
    NEARPM_RETURN_IF_ERROR(h.Store(t, s_addr, stock));
  }
  NEARPM_RETURN_IF_ERROR(h.Store(t, order_addr, order));

  district.next_o_id += 1;
  district.order_head = order_addr;
  NEARPM_RETURN_IF_ERROR(h.Store(t, d_addr, district));
  return h.CommitOp(t);
}

Status TpccWorkload::Payment(ThreadId t, Rng& rng) {
  PersistentHeap& h = heap();
  NEARPM_RETURN_IF_ERROR(h.BeginOp(t));
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(t, h.root()));
  const std::uint64_t d_id = rng.NextBounded(kDistricts);
  const std::uint64_t c_id = rng.NextBounded(kCustomersPerDistrict);
  const std::uint64_t amount = 1 + rng.NextBounded(5000);

  NEARPM_ASSIGN_OR_RETURN(wh, h.Load<WarehouseRow>(t, root.warehouse));
  wh.ytd += amount;
  NEARPM_RETURN_IF_ERROR(h.Store(t, root.warehouse, wh));

  const PmAddr d_addr = root.districts + d_id * sizeof(DistrictRow);
  NEARPM_ASSIGN_OR_RETURN(district, h.Load<DistrictRow>(t, d_addr));
  district.ytd += amount;
  NEARPM_RETURN_IF_ERROR(h.Store(t, d_addr, district));

  const PmAddr c_addr = CustomerAddr(root, d_id, c_id);
  NEARPM_ASSIGN_OR_RETURN(customer, h.Load<CustomerRow>(t, c_addr));
  customer.balance -= static_cast<std::int64_t>(amount);
  customer.payments += 1;
  customer.ytd += amount;
  NEARPM_RETURN_IF_ERROR(h.Store(t, c_addr, customer));

  root.total_payments += 1;
  NEARPM_RETURN_IF_ERROR(h.Store(t, h.root(), root));
  return h.CommitOp(t);
}

Status TpccWorkload::Verify() {
  PersistentHeap& h = heap();
  NEARPM_ASSIGN_OR_RETURN(root, h.Load<Root>(0, h.root()));
  if (root.magic != kTpccMagic) {
    return DataLoss("tpcc root magic corrupt");
  }
  // Payment atomicity: warehouse YTD equals the sum of district YTDs, and
  // equals the sum of customer YTDs.
  NEARPM_ASSIGN_OR_RETURN(wh, h.Load<WarehouseRow>(0, root.warehouse));
  std::uint64_t district_ytd = 0;
  std::uint64_t payments = 0;
  std::uint64_t customer_ytd = 0;
  for (std::uint64_t d = 0; d < kDistricts; ++d) {
    NEARPM_ASSIGN_OR_RETURN(
        district,
        h.Load<DistrictRow>(0, root.districts + d * sizeof(DistrictRow)));
    district_ytd += district.ytd;
    for (std::uint64_t c = 0; c < kCustomersPerDistrict; ++c) {
      NEARPM_ASSIGN_OR_RETURN(customer,
                              h.Load<CustomerRow>(0, CustomerAddr(root, d, c)));
      payments += customer.payments;
      customer_ytd += customer.ytd;
    }
  }
  if (wh.ytd != district_ytd || wh.ytd != customer_ytd) {
    return DataLoss("tpcc payment atomicity violated");
  }
  if (payments != root.total_payments) {
    return DataLoss("tpcc payment count mismatch");
  }
  // NewOrder atomicity: per district, the order list length matches
  // next_o_id, ids descend contiguously, and the per-item stock s_ytd equals
  // the quantities recorded in order lines.
  std::unordered_map<std::uint64_t, std::uint64_t> item_qty;
  for (std::uint64_t d = 0; d < kDistricts; ++d) {
    NEARPM_ASSIGN_OR_RETURN(
        district,
        h.Load<DistrictRow>(0, root.districts + d * sizeof(DistrictRow)));
    std::uint64_t expect_id = district.next_o_id - 1;
    PmAddr cur = district.order_head;
    while (cur != 0) {
      NEARPM_ASSIGN_OR_RETURN(order, h.Load<OrderRow>(0, cur));
      if (order.o_id != expect_id || order.d_id != d) {
        return DataLoss("tpcc order chain corrupt");
      }
      if (order.n_lines < 5 || order.n_lines > kMaxOrderLines) {
        return DataLoss("tpcc order line count invalid");
      }
      for (std::uint64_t l = 0; l < order.n_lines; ++l) {
        item_qty[order.lines[l].item] += order.lines[l].qty;
      }
      --expect_id;
      cur = order.prev;
    }
    if (expect_id != 0) {
      return DataLoss("tpcc order list truncated");
    }
  }
  for (std::uint64_t i = 0; i < kItems; ++i) {
    NEARPM_ASSIGN_OR_RETURN(stock, h.Load<StockRow>(0, StockAddr(root, i)));
    const auto it = item_qty.find(i);
    const std::uint64_t expect = it == item_qty.end() ? 0 : it->second;
    if (stock.s_ytd != expect) {
      return DataLoss("tpcc stock ytd mismatch");
    }
  }
  return Status::Ok();
}

}  // namespace nearpm
