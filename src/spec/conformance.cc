#include "src/spec/conformance.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/analyze/rules.h"
#include "src/analyze/sanitizer.h"
#include "src/core/log_layout.h"
#include "src/core/options.h"
#include "src/core/runtime.h"
#include "src/fuzz/fuzz_json.h"
#include "src/pmem/pm_space.h"
#include "src/trace/crash_cursor.h"
#include "src/trace/ppo_checker.h"
#include "src/trace/recorder.h"
#include "src/trace/trace_event.h"

namespace nearpm {
namespace spec {

const char* DisagreementKindName(DisagreementKind kind) {
  switch (kind) {
    case DisagreementKind::kStateNotAllowed:
      return "state-not-allowed";
    case DisagreementKind::kCheckerFalseAlarm:
      return "checker-false-alarm";
    case DisagreementKind::kCheckerMissed:
      return "checker-missed";
    case DisagreementKind::kSanitizerFalseAlarm:
      return "sanitizer-false-alarm";
    case DisagreementKind::kSanitizerMissed:
      return "sanitizer-missed";
  }
  return "unknown";
}

bool DisagreementKindFromString(std::string_view text, DisagreementKind* out) {
  for (DisagreementKind k :
       {DisagreementKind::kStateNotAllowed, DisagreementKind::kCheckerFalseAlarm,
        DisagreementKind::kCheckerMissed, DisagreementKind::kSanitizerFalseAlarm,
        DisagreementKind::kSanitizerMissed}) {
    if (text == DisagreementKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

constexpr std::uint64_t kLineBytes = 64;

RuntimeOptions ProbeOptions(bool enforce) {
  RuntimeOptions options;
  options.mode = ExecMode::kNdpMultiDelayed;
  options.num_devices = kNumDevices;
  options.pm_size = kPmSize;
  options.interleave_stripe = kStripe;
  options.retain_crash_state = true;
  options.enforce_ppo = enforce;
  return options;
}

// Executes the first `prefix_len` instructions against a real runtime.
// Transaction ids restart at 1 per run so replays are bit-identical.
void ExecutePrefix(Runtime& rt, PoolId pool, const LitmusProgram& program,
                   std::size_t prefix_len) {
  std::uint64_t tx = 0;
  std::array<std::uint8_t, kLineBytes> buf{};
  for (std::size_t i = 0; i < prefix_len && i < program.instrs.size(); ++i) {
    const LitmusInstr& instr = program.instrs[i];
    const auto t = static_cast<ThreadId>(instr.thread);
    switch (instr.op) {
      case LOp::kWrite:
        buf.fill(instr.value);
        rt.Write(t, LocAddr(instr.loc), buf);
        break;
      case LOp::kPersist:
        rt.Persist(t, LocAddr(instr.loc), kLineBytes);
        break;
      case LOp::kFence:
        rt.Fence(t);
        break;
      case LOp::kRead:
        rt.Read(t, LocAddr(instr.loc), buf);
        break;
      case LOp::kLog:
        (void)rt.UndologCreate(pool, t, ++tx, LocAddr(instr.loc), kLineBytes,
                               SlotAddr(instr.slot));
        break;
      case LOp::kApply:
        (void)rt.ApplyLog(pool, t, SlotAddr(instr.slot), kLineBytes,
                          LocAddr(instr.loc));
        break;
      case LOp::kCommit: {
        std::vector<PmAddr> slots;
        slots.push_back(SlotAddr(instr.slot));
        if (instr.slot2 >= 0) {
          slots.push_back(SlotAddr(instr.slot2));
        }
        (void)rt.CommitLog(pool, t, slots);
        break;
      }
      case LOp::kSync:
        rt.DrainDevices(t);
        break;
    }
  }
}

// ---- Machine-state decoding -------------------------------------------------

std::uint64_t FillChecksum(std::uint8_t fill) {
  std::array<std::uint8_t, kLineBytes> buf;
  buf.fill(fill);
  return Checksum64(buf);
}

bool IsHeaderLine(int line) {
  for (int s = 0; s < kNumSlots; ++s) {
    if (line == SlotHeaderLine(s)) {
      return true;
    }
  }
  return false;
}

// Token of one persisted abstract line, mirroring AbsVal::Token. Anything
// the decoder cannot name ("?") can never be in the allowed set, so decode
// anomalies surface as state disagreements rather than silent passes.
std::string DecodeLine(const PmSpace& space, int line) {
  std::array<std::uint8_t, kLineBytes> buf{};
  space.NdpRead(LineAddr(line), buf);
  if (IsHeaderLine(line)) {
    SlotHeader header{};
    std::memcpy(&header, buf.data(), sizeof(header));
    if (header.magic == kUndoMagic && header.size == kLineBytes) {
      int target_loc = -1;
      for (int loc = 0; loc < kNumLocs; ++loc) {
        if (header.target == LocAddr(loc)) {
          target_loc = loc;
          break;
        }
      }
      int payload = -1;
      for (std::uint8_t f = 0; f <= 9; ++f) {
        if (header.checksum == FillChecksum(f)) {
          payload = f;
          break;
        }
      }
      if (target_loc < 0 || payload < 0) {
        return "?";
      }
      std::string out = "u:";
      out += LocName(target_loc);
      out += ':';
      out += static_cast<char>('0' + payload);
      return out;
    }
  }
  const bool uniform =
      std::all_of(buf.begin(), buf.end(), [&](std::uint8_t b) { return b == buf[0]; });
  if (uniform && buf[0] <= 9) {
    return std::string(1, static_cast<char>('0' + buf[0]));
  }
  return "?";
}

std::string DecodeMachineState(const PmSpace& space) {
  std::string out;
  for (int line = 0; line < kNumLines; ++line) {
    if (line > 0) {
      out += ',';
    }
    out += DecodeLine(space, line);
  }
  return out;
}

// ---- Independent trace witnesses --------------------------------------------
//
// A from-scratch reading of the invariant semantics off the raw trace. The
// witnesses arbitrate "spec predicts a race but the checker is silent": only
// a race the timing actually exhibited may be charged as a checker miss.
struct TraceWitness {
  bool inv1 = false;
  bool inv2 = false;
  bool inv3 = false;
  bool npm003 = false;
};

TraceWitness ScanWitnesses(const std::vector<TraceEvent>& events) {
  TraceWitness w;
  // The sanitizer retires requests at sync completion too (HarvestSyncs),
  // but at a host-clock instant the trace does not record; once any sync
  // completed, a trace-only NPM003 witness could blame reads the sanitizer
  // had already legitimately cleared. Stay one-sided and conservative.
  bool any_sync_complete = false;
  for (const TraceEvent& e : events) {
    if (e.phase == TracePhase::kSyncComplete) {
      any_sync_complete = true;
      break;
    }
  }
  struct Span {
    const TraceEvent* e = nullptr;
    bool retired = false;
  };
  std::vector<Span> spans;
  for (const TraceEvent& e : events) {
    switch (e.phase) {
      case TracePhase::kUnitExec:
      case TracePhase::kDeferredExec:
        if (e.phase == TracePhase::kDeferredExec) {
          bool multi = false;
          for (const Span& s : spans) {
            if (s.e->pid != e.pid) {
              multi = true;
              break;
            }
          }
          for (const Span& s : spans) {
            if (multi && s.e->phase == TracePhase::kUnitExec &&
                e.ts < s.e->end()) {
              w.inv3 = true;
            }
          }
        }
        spans.push_back(Span{&e, false});
        break;
      case TracePhase::kRetire:
        for (Span& s : spans) {
          if (s.e->seq == e.seq && s.e->pid == e.pid) {
            s.retired = true;
          }
        }
        break;
      case TracePhase::kCpuRead:
        for (const Span& s : spans) {
          if (s.e->range.Overlaps(e.range) && e.ts < s.e->end()) {
            w.inv1 = true;
            if (!s.retired && !any_sync_complete) {
              w.npm003 = true;
            }
          }
        }
        break;
      case TracePhase::kCpuPersist:
        for (const Span& s : spans) {
          const bool overlap = s.e->range.Overlaps(e.range) ||
                               s.e->range2.Overlaps(e.range);
          if (overlap && e.ts < s.e->end() && !s.retired) {
            w.inv2 = true;
          }
        }
        break;
      default:
        break;
    }
  }
  return w;
}

// ---- Per-prefix differential check ------------------------------------------

struct PrefixContext {
  const LitmusProgram& program;
  const ConformanceConfig& config;
  std::size_t prefix_len;
  std::vector<Disagreement>* out;
  ConformanceStats* stats;
};

void AddDisagreement(const PrefixContext& ctx, DisagreementKind kind,
                     std::string detail) {
  ctx.out->push_back(Disagreement{kind, ctx.program.name, ctx.program.Text(),
                                  ctx.prefix_len, std::move(detail)});
}

void CheckCheckerDifferential(const PrefixContext& ctx, const SpecExec& spec,
                              const TraceWitness& witness,
                              const std::vector<TraceEvent>& events) {
  PpoChecker checker;
  checker.require_full_history = true;
  checker.disable_invariants = ctx.config.weaken_checker;
  const std::vector<PpoViolation> violations = checker.Check(events);
  if (ctx.stats != nullptr) {
    ctx.stats->checker_violations += violations.size();
  }
  std::array<bool, 5> observed{};
  std::array<std::string, 5> first_detail;
  for (const PpoViolation& v : violations) {
    if (v.invariant >= 0 && v.invariant <= 4) {
      if (!observed[v.invariant]) {
        first_detail[v.invariant] = v.detail;
      }
      observed[v.invariant] = true;
    }
  }
  // The probe run neither wraps the ring nor crashes: invariants 0 and 4
  // can only fire as checker defects.
  for (int inv : {0, 4}) {
    if (observed[inv]) {
      AddDisagreement(ctx, DisagreementKind::kCheckerFalseAlarm,
                      "invariant " + std::to_string(inv) +
                          " on a crash-free probe run: " + first_detail[inv]);
    }
  }
  const std::array<bool, 3> predicted{spec.preds.inv1, spec.preds.inv2,
                                      spec.preds.inv3};
  const std::array<bool, 3> witnessed{witness.inv1, witness.inv2,
                                      witness.inv3};
  for (int inv = 1; inv <= 3; ++inv) {
    if (observed[inv] && !predicted[inv - 1]) {
      AddDisagreement(ctx, DisagreementKind::kCheckerFalseAlarm,
                      "checker reports invariant " + std::to_string(inv) +
                          " but the spec says the program cannot race: " +
                          first_detail[inv]);
    }
    if (predicted[inv - 1] && witnessed[inv - 1] && !observed[inv]) {
      AddDisagreement(ctx, DisagreementKind::kCheckerMissed,
                      "spec predicts and trace witnesses invariant " +
                          std::to_string(inv) + " but the checker is silent");
    }
  }
}

void CheckSanitizerDifferential(const PrefixContext& ctx, const SpecExec& spec,
                                const TraceWitness& witness,
                                const analyze::PmSanitizer& san) {
  const auto count = [&](analyze::RuleId rule) {
    return san.sink().count(rule);
  };
  if (ctx.stats != nullptr) {
    for (analyze::RuleId rule :
         {analyze::RuleId::kNpm001, analyze::RuleId::kNpm002,
          analyze::RuleId::kNpm003, analyze::RuleId::kNpm004,
          analyze::RuleId::kNpm005, analyze::RuleId::kNpm006,
          analyze::RuleId::kNpm007}) {
      ctx.stats->sanitizer_findings += count(rule);
    }
  }
  // Exact two-sided rules: the model mirrors the sanitizer's shadow and
  // per-device clock bookkeeping for these, so predicted iff observed.
  struct ExactRule {
    analyze::RuleId rule;
    bool predicted;
    const char* name;
  };
  const ExactRule exact[] = {
      {analyze::RuleId::kNpm002, spec.preds.npm002, "NPM002"},
      {analyze::RuleId::kNpm004, spec.preds.npm004, "NPM004"},
      {analyze::RuleId::kNpm005, spec.preds.npm005, "NPM005"},
      {analyze::RuleId::kNpm006, spec.preds.npm006, "NPM006"},
  };
  for (const ExactRule& r : exact) {
    const bool got = count(r.rule) > 0;
    if (got && !r.predicted) {
      AddDisagreement(ctx, DisagreementKind::kSanitizerFalseAlarm,
                      std::string(r.name) +
                          " reported but the spec says it cannot fire");
    }
    if (!got && r.predicted) {
      AddDisagreement(ctx, DisagreementKind::kSanitizerMissed,
                      std::string(r.name) +
                          " predicted by the spec but not reported");
    }
  }
  // NPM003's miss direction needs the timing witness (the race is a may).
  const bool npm003 = count(analyze::RuleId::kNpm003) > 0;
  if (npm003 && !spec.preds.npm003) {
    AddDisagreement(ctx, DisagreementKind::kSanitizerFalseAlarm,
                    "NPM003 reported but the spec says no un-stalled read "
                    "can observe an in-flight write set");
  }
  if (!npm003 && spec.preds.npm003 && witness.npm003) {
    AddDisagreement(ctx, DisagreementKind::kSanitizerMissed,
                    "spec predicts and trace witnesses NPM003 but the "
                    "sanitizer is silent");
  }
  // Litmus programs never open durable scopes or ring replication
  // doorbells: these rules firing at all is a sanitizer defect.
  if (count(analyze::RuleId::kNpm001) > 0) {
    AddDisagreement(ctx, DisagreementKind::kSanitizerFalseAlarm,
                    "NPM001 reported without any durable scope in the program");
  }
  if (count(analyze::RuleId::kNpm007) > 0) {
    AddDisagreement(ctx, DisagreementKind::kSanitizerFalseAlarm,
                    "NPM007 reported without any replication doorbell");
  }
}

void CheckCrashStates(const PrefixContext& ctx,
                      const std::vector<std::string>& allowed,
                      const std::vector<TraceEvent>& events, SimTime min_time,
                      std::size_t num_pending) {
  CrashCursorOptions cursor;
  cursor.epoch = 0;
  cursor.min_time = min_time;
  cursor.midpoints = true;
  std::vector<SimTime> times = EnumerateCrashPoints(events, cursor);
  if (times.size() > ctx.config.max_crash_candidates) {
    if (ctx.stats != nullptr) {
      ctx.stats->crash_candidates_truncated +=
          times.size() - ctx.config.max_crash_candidates;
    }
    times.resize(ctx.config.max_crash_candidates);
  }
  // Survival masks: everything dropped, everything survives, then each
  // pending line surviving alone, within the mask budget.
  std::vector<std::vector<bool>> masks;
  masks.emplace_back();  // all dropped (out-of-range indices do not survive)
  if (num_pending > 0) {
    masks.emplace_back(num_pending, true);
    for (std::size_t i = 0; i < num_pending && masks.size() < ctx.config.max_masks;
         ++i) {
      std::vector<bool> one(num_pending, false);
      one[i] = true;
      masks.push_back(std::move(one));
    }
  }
  for (const SimTime t : times) {
    for (const std::vector<bool>& mask : masks) {
      Runtime probe(ProbeOptions(ctx.config.enforce));
      const StatusOr<PoolId> pool = probe.RegisterPool(0, kPmSize);
      if (!pool.ok()) {
        AddDisagreement(ctx, DisagreementKind::kStateNotAllowed,
                        "probe pool registration failed: " +
                            pool.status().ToString());
        return;
      }
      ExecutePrefix(probe, *pool, ctx.program, ctx.prefix_len);
      CrashPlan plan;
      plan.crash_time = t;
      plan.line_survival = mask;
      (void)probe.space().Crash(plan);
      const std::string state = DecodeMachineState(probe.space());
      if (ctx.stats != nullptr) {
        ++ctx.stats->crash_states_checked;
      }
      if (!std::binary_search(allowed.begin(), allowed.end(), state)) {
        std::string mask_text;
        for (const bool b : mask) {
          mask_text += b ? '1' : '0';
        }
        AddDisagreement(
            ctx, DisagreementKind::kStateNotAllowed,
            "crash at t=" + std::to_string(t) + " mask=" +
                (mask_text.empty() ? std::string("drop-all") : mask_text) +
                " persisted [" + state + "] which is outside the " +
                std::to_string(allowed.size()) + " spec-allowed states");
        // One state disagreement per prefix is plenty for triage.
        return;
      }
    }
  }
}

void CheckRecoveryLeg(const PrefixContext& ctx) {
  Runtime probe(ProbeOptions(ctx.config.enforce));
  TraceRecorder trace;
  probe.AttachTrace(&trace);
  const StatusOr<PoolId> pool = probe.RegisterPool(0, kPmSize);
  if (!pool.ok()) {
    return;
  }
  ExecutePrefix(probe, *pool, ctx.program, ctx.prefix_len);
  if (ctx.stats != nullptr) {
    ++ctx.stats->recovery_runs;
  }
  CrashPlan plan;
  plan.crash_time = probe.stats().MaxThreadTime();
  (void)probe.InjectCrashAt(plan);
  PpoChecker checker;
  checker.require_full_history = true;
  checker.disable_invariants = ctx.config.weaken_checker;
  // Invariants 1-3 over this trace were already differentially checked on
  // the crash-free probe; the recovery leg adds exactly the invariant-4
  // obligations (replay window, no double or already-durable replay) plus
  // the full-history demand, so only those verdicts are charged here.
  for (const PpoViolation& v : checker.Check(trace.Snapshot())) {
    if (v.invariant == 0 || v.invariant == 4) {
      AddDisagreement(ctx, DisagreementKind::kCheckerFalseAlarm,
                      "hardware recovery replay rejected by invariant " +
                          std::to_string(v.invariant) + ": " + v.detail);
    }
  }
}

void CheckPrefix(const LitmusProgram& program, const ConformanceConfig& config,
                 std::size_t prefix_len, std::vector<Disagreement>* out,
                 ConformanceStats* stats) {
  const PrefixContext ctx{program, config, prefix_len, out, stats};
  if (stats != nullptr) {
    ++stats->prefixes;
  }
  const SpecExec spec =
      Simulate(program, prefix_len, config.enforce, config.mutation);
  const std::vector<std::string> allowed = AllowedStates(spec);

  Runtime probe(ProbeOptions(config.enforce));
  TraceRecorder trace;
  analyze::PmSanitizer san;
  probe.AttachTrace(&trace);
  probe.AttachSanitizer(&san);
  const StatusOr<PoolId> pool = probe.RegisterPool(0, kPmSize);
  if (!pool.ok()) {
    AddDisagreement(ctx, DisagreementKind::kStateNotAllowed,
                    "probe pool registration failed: " +
                        pool.status().ToString());
    return;
  }
  ExecutePrefix(probe, *pool, program, prefix_len);
  san.Finish(std::max(probe.Now(0), probe.Now(1)));
  const std::vector<TraceEvent> events = trace.Snapshot();
  const TraceWitness witness = ScanWitnesses(events);

  CheckCheckerDifferential(ctx, spec, witness, events);
  CheckSanitizerDifferential(ctx, spec, witness, san);
  CheckCrashStates(ctx, allowed, events, probe.stats().MaxThreadTime(),
                   probe.space().PendingLineAddrs().size());
  if (config.check_recovery) {
    CheckRecoveryLeg(ctx);
  }
}

}  // namespace

std::vector<Disagreement> CheckProgram(const LitmusProgram& program,
                                       const ConformanceConfig& config,
                                       ConformanceStats* stats) {
  std::vector<Disagreement> out;
  if (stats != nullptr) {
    ++stats->programs;
  }
  for (std::size_t k = 1; k <= program.instrs.size(); ++k) {
    CheckPrefix(program, config, k, &out, stats);
  }
  return out;
}

std::vector<Disagreement> CheckProgramBothLegs(const LitmusProgram& program,
                                               const ConformanceConfig& config,
                                               ConformanceStats* stats) {
  std::vector<Disagreement> out;
  for (const bool enforce : {true, false}) {
    ConformanceConfig leg = config;
    leg.enforce = enforce;
    std::vector<Disagreement> found = CheckProgram(program, leg, stats);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

LitmusProgram ShrinkDisagreement(const LitmusProgram& program,
                                 const ConformanceConfig& config,
                                 DisagreementKind kind) {
  const auto reproduces = [&](const LitmusProgram& candidate) {
    for (const Disagreement& d : CheckProgram(candidate, config, nullptr)) {
      if (d.kind == kind) {
        return true;
      }
    }
    return false;
  };
  LitmusProgram current = program;
  bool progress = true;
  while (progress && current.instrs.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < current.instrs.size(); ++i) {
      LitmusProgram candidate = current;
      candidate.instrs.erase(candidate.instrs.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (reproduces(candidate)) {
        current = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  current.name = program.name + "-shrunk";
  return current;
}

std::string LitmusRepro::Write() const {
  fuzz::JsonObject object;
  object["schema"] = fuzz::JsonValue::String("litmus-repro-v1");
  object["name"] = fuzz::JsonValue::String(name);
  object["text"] = fuzz::JsonValue::String(text);
  object["enforce"] = fuzz::JsonValue::Bool(enforce);
  object["mutation"] = fuzz::JsonValue::String(SpecMutationName(mutation));
  object["weaken_checker"] = fuzz::JsonValue::Uint(weaken_checker);
  object["kind"] = fuzz::JsonValue::String(DisagreementKindName(kind));
  object["detail"] = fuzz::JsonValue::String(detail);
  return fuzz::WriteJsonObject(object);
}

StatusOr<LitmusRepro> LitmusRepro::Parse(std::string_view text) {
  StatusOr<fuzz::JsonObject> object = fuzz::ParseJsonObject(text);
  if (!object.ok()) {
    return object.status();
  }
  const auto get = [&](const std::string& key) -> const fuzz::JsonValue* {
    auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  };
  const fuzz::JsonValue* schema = get("schema");
  if (schema == nullptr || schema->str != "litmus-repro-v1") {
    return InvalidArgument("litmus repro: missing or unknown schema");
  }
  LitmusRepro repro;
  const fuzz::JsonValue* field = get("name");
  if (field == nullptr) {
    return InvalidArgument("litmus repro: missing name");
  }
  repro.name = field->str;
  field = get("text");
  if (field == nullptr || field->str.empty()) {
    return InvalidArgument("litmus repro: missing program text");
  }
  repro.text = field->str;
  field = get("enforce");
  if (field != nullptr) {
    repro.enforce = field->boolean;
  }
  field = get("mutation");
  if (field != nullptr &&
      !SpecMutationFromString(field->str, &repro.mutation)) {
    return InvalidArgument("litmus repro: unknown mutation '" + field->str +
                           "'");
  }
  field = get("weaken_checker");
  if (field != nullptr) {
    repro.weaken_checker = static_cast<std::uint32_t>(field->num);
  }
  field = get("kind");
  if (field == nullptr ||
      !DisagreementKindFromString(field->str, &repro.kind)) {
    return InvalidArgument("litmus repro: missing or unknown kind");
  }
  field = get("detail");
  if (field != nullptr) {
    repro.detail = field->str;
  }
  return repro;
}

LitmusRepro MakeRepro(const LitmusProgram& program,
                      const ConformanceConfig& config,
                      const Disagreement& disagreement) {
  LitmusRepro repro;
  repro.name = program.name;
  repro.text = program.Text();
  repro.enforce = config.enforce;
  repro.mutation = config.mutation;
  repro.weaken_checker = config.weaken_checker;
  repro.kind = disagreement.kind;
  repro.detail = disagreement.detail;
  return repro;
}

Status ReplayLitmusRepro(const LitmusRepro& repro) {
  StatusOr<LitmusProgram> parsed = LitmusProgram::Parse(repro.text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  LitmusProgram program = std::move(*parsed);
  program.name = repro.name;
  ConformanceConfig recorded;
  recorded.enforce = repro.enforce;
  recorded.mutation = repro.mutation;
  recorded.weaken_checker = repro.weaken_checker;
  bool reproduced = false;
  for (const Disagreement& d : CheckProgram(program, recorded, nullptr)) {
    if (d.kind == repro.kind) {
      reproduced = true;
      break;
    }
  }
  if (!reproduced) {
    return FailedPrecondition(
        "repro '" + repro.name + "' no longer reproduces a " +
        DisagreementKindName(repro.kind) + " disagreement");
  }
  const bool recorded_is_healthy =
      repro.mutation == SpecMutation::kNone && repro.weaken_checker == 0;
  if (!recorded_is_healthy) {
    ConformanceConfig healthy;
    healthy.enforce = repro.enforce;
    const std::vector<Disagreement> clean =
        CheckProgram(program, healthy, nullptr);
    if (!clean.empty()) {
      return FailedPrecondition(
          "repro '" + repro.name +
          "' disagrees even under the healthy configuration: " +
          clean.front().detail);
    }
  }
  return Status::Ok();
}

}  // namespace spec
}  // namespace nearpm
