#include "src/spec/model.h"

#include <algorithm>
#include <cassert>

namespace nearpm {
namespace spec {

const char* SpecMutationName(SpecMutation mutation) {
  switch (mutation) {
    case SpecMutation::kNone: return "none";
    case SpecMutation::kAtomicRequests: return "atomic-requests";
    case SpecMutation::kWritesDurable: return "writes-durable";
    case SpecMutation::kNoRaces: return "no-races";
  }
  return "none";
}

bool SpecMutationFromString(std::string_view text, SpecMutation* out) {
  for (SpecMutation m :
       {SpecMutation::kNone, SpecMutation::kAtomicRequests,
        SpecMutation::kWritesDurable, SpecMutation::kNoRaces}) {
    if (text == SpecMutationName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

int LocLine(int loc) { return loc; }
int SlotHeaderLine(int slot) { return kNumLocs + 2 * slot; }
int SlotPayloadLine(int slot) { return kNumLocs + 2 * slot + 1; }

PmAddr LineAddr(int line) {
  if (line < kNumLocs) return LocAddr(line);
  const int slot = (line - kNumLocs) / 2;
  const bool payload = ((line - kNumLocs) % 2) != 0;
  return SlotAddr(slot) + (payload ? kCacheLineSize : 0);
}

int LineDevice(int line) { return DeviceOf(LineAddr(line)); }

std::string AbsVal::Token() const {
  if (!is_header) return std::string(1, static_cast<char>('0' + fill));
  std::string out = "u:";
  out += LocName(target_loc);
  out += ':';
  out += static_cast<char>('0' + payload);
  return out;
}

std::string CanonState(const std::array<AbsVal, kNumLines>& lines) {
  std::string out;
  for (int i = 0; i < kNumLines; ++i) {
    if (i > 0) out += ',';
    out += lines[i].Token();
  }
  return out;
}

namespace {

// Declared write range of an undo-log request: the whole slot (header plus
// the 4 kB payload area), mirroring the documented CC-area layout without
// depending on src/core/log_layout.h.
constexpr std::uint64_t kSlotSize = 64 + 4096;

AbsVal Fill(std::uint8_t v) { return AbsVal{false, v, -1, 0}; }

AddrRange RangeOfLine(int line) {
  const PmAddr a = LineAddr(line);
  return AddrRange{a, a + kCacheLineSize};
}

// Abstract lines overlapping a declared (concrete) range.
std::vector<int> LinesIn(const AddrRange& range) {
  std::vector<int> out;
  if (range.empty()) return out;
  for (int line = 0; line < kNumLines; ++line) {
    const PmAddr a = LineAddr(line);
    if (a < range.end && a + kCacheLineSize > range.begin) out.push_back(line);
  }
  return out;
}

bool RangesOverlap(const AddrRange& a, const AddrRange& b) {
  return !a.empty() && !b.empty() && a.Overlaps(b);
}

// Mirror of the simulated machine during one prefix execution.
struct Sim {
  const bool enforce;
  const SpecMutation mutation;
  SpecExec x;
  std::array<int, kNumLines> lw_idx;       // line -> last writer record index
  std::vector<bool> san_retired;           // per request (1-based)
  std::array<std::size_t, kNumDevices> dev_count{};
  std::uint64_t sync_counter = 0;
  std::uint64_t last_marker = 0;           // sanitizer's marker mirror
  std::uint64_t num_reqs = 0;

  Sim(bool enforce_in, SpecMutation mutation_in)
      : enforce(enforce_in), mutation(mutation_in) {
    x.enforce = enforce_in;
    x.mutation = mutation_in;
    lw_idx.fill(-1);
    san_retired.push_back(false);  // request ordinals are 1-based
  }

  bool TrackCpuState() const {
    return mutation != SpecMutation::kWritesDurable;
  }

  bool DirtyIn(const AddrRange& range) const {
    for (int line : LinesIn(range)) {
      if (x.dirty.count(line) != 0) return true;
    }
    return false;
  }

  void ErasePendingAndShadow(const AddrRange& range) {
    for (int line : LinesIn(range)) {
      x.pending.erase(line);
      x.dirty.erase(line);
    }
  }

  // Retire one slice and, transitively, its same-device dependencies
  // (PmSpace::RetireRequest).
  void RetireSlice(std::size_t idx) {
    SpecRecord& rec = x.records[idx];
    if (rec.forced) return;
    rec.forced = true;
    san_retired[rec.req] = true;
    for (std::size_t dep : rec.deps) RetireSlice(dep);
  }

  void RetireWholeRequest(std::uint64_t req) {
    for (std::size_t i = 0; i < x.records.size(); ++i) {
      if (x.records[i].req == req) RetireSlice(i);
    }
  }

  // The all-device host barrier a CPU access takes in enforce mode:
  // retires every request whose declared ranges conflict with `range`.
  void BarrierRetire(const AddrRange& range, bool access_is_write) {
    if (!enforce) return;
    std::vector<std::uint64_t> hit;
    for (const SpecRecord& rec : x.records) {
      const bool conflict =
          access_is_write
              ? RangesOverlap(range, rec.read_range) ||
                    RangesOverlap(range, rec.write_range)
              : RangesOverlap(range, rec.write_range);
      if (conflict) hit.push_back(rec.req);
    }
    for (std::uint64_t req : hit) RetireWholeRequest(req);
  }

  void RecordSyncMarker() {
    ++sync_counter;
    x.markers.push_back(dev_count);
    x.last_sync = sync_counter;
    last_marker = sync_counter;
  }

  // One request slice: appends the record, wires dependency and dispatcher
  // conflict edges, applies the functional writes.
  std::size_t AppendSlice(std::uint64_t req, int device, bool deferred,
                          std::uint64_t needs_sync, const AddrRange& rd,
                          const AddrRange& wr,
                          std::vector<SpecLineEvent> events) {
    SpecRecord rec;
    rec.req = req;
    rec.device = device;
    rec.ordinal = dev_count[device]++;
    rec.deferred = deferred;
    rec.needs_sync = needs_sync;
    rec.after_sync = sync_counter;
    rec.read_range = rd;
    rec.write_range = wr;
    for (std::size_t i = 0; i < x.records.size(); ++i) {
      const SpecRecord& prev = x.records[i];
      if (prev.device != device) continue;
      // The Dispatcher stalls a conflicting request behind its
      // predecessor's completion: observing the successor started implies
      // the predecessor's slice is durable. Deferred maintenance only
      // checks its write set against in-flight work.
      const bool conflict =
          (!deferred && RangesOverlap(rd, prev.write_range)) ||
          RangesOverlap(wr, prev.read_range) ||
          RangesOverlap(wr, prev.write_range);
      if (conflict) rec.conflicts.push_back(i);
    }
    const std::size_t idx = x.records.size();
    for (SpecLineEvent& ev : events) {
      ev.old_val = x.vol[ev.line];
      const int lw = lw_idx[ev.line];
      if (lw >= 0 && !x.records[lw].forced &&
          x.records[lw].req != req) {
        rec.deps.push_back(static_cast<std::size_t>(lw));
      }
      lw_idx[ev.line] = static_cast<int>(idx);
      x.last_writer[ev.line] = req;
      x.vol[ev.line] = ev.new_val;
      rec.events.push_back(ev);
    }
    x.records.push_back(std::move(rec));
    return idx;
  }

  // The device registers an eviction guard over *both* declared operand
  // ranges of a unit-path request (NearPmDevice::Execute calls GuardRange
  // for read_range and write_range); a later request's registration
  // overwrites earlier guards line by line. Deferred (maintenance) slices
  // register no guards.
  void GuardRanges(std::uint64_t req, const AddrRange& rd,
                   const AddrRange& wr) {
    for (int line : LinesIn(rd)) x.guards[line] = req;
    for (int line : LinesIn(wr)) x.guards[line] = req;
  }

  // The software-managed coherence write-back ahead of every NDP command in
  // enforce mode: pending operand lines are persisted (and leave the
  // sanitizer shadow) before the device may observe them. ObserveRange then
  // retires the last writer of every line the command reads.
  void PreIssue(const AddrRange& rd, const AddrRange& wr) {
    if (enforce) {
      ErasePendingAndShadow(rd);
      ErasePendingAndShadow(wr);
      for (int line : LinesIn(rd)) {
        if (lw_idx[line] >= 0) {
          RetireSlice(static_cast<std::size_t>(lw_idx[line]));
        }
      }
    } else {
      x.preds.npm002 = x.preds.npm002 || DirtyIn(rd) || DirtyIn(wr);
    }
  }

  void DoWrite(int loc, std::uint8_t value) {
    const int line = LocLine(loc);
    // CPU stores land in the cache hierarchy and never consult the devices'
    // in-flight tables -- the relaxation at the heart of PPO. Only loads and
    // persists take the host barrier.
    if (TrackCpuState()) {
      x.pending.emplace(line, x.vol[line]);  // pre-image on first dirtying
      x.dirty.insert(line);
    }
    x.vol[line] = Fill(value);
  }

  void DoPersist(int loc) {
    const AddrRange range = RangeOfLine(LocLine(loc));
    for (const SpecRecord& rec : x.records) {
      if (RangesOverlap(range, rec.read_range) ||
          RangesOverlap(range, rec.write_range)) {
        x.preds.inv2 = true;
      }
    }
    x.preds.npm005 = x.preds.npm005 || !DirtyIn(range);
    BarrierRetire(range, /*access_is_write=*/true);
    ErasePendingAndShadow(range);
  }

  void DoRead(int loc) {
    const AddrRange range = RangeOfLine(LocLine(loc));
    for (const SpecRecord& rec : x.records) {
      if (RangesOverlap(range, rec.write_range)) x.preds.inv1 = true;
    }
    BarrierRetire(range, /*access_is_write=*/false);
    for (const SpecRecord& rec : x.records) {
      if (!san_retired[rec.req] && RangesOverlap(range, rec.write_range)) {
        x.preds.npm003 = true;
      }
    }
  }

  void DoLog(int slot, int loc) {
    const AddrRange rd = RangeOfLine(LocLine(loc));
    const AddrRange wr{SlotAddr(slot), SlotAddr(slot) + kSlotSize};
    PreIssue(rd, wr);
    const std::uint64_t req = ++num_reqs;
    san_retired.push_back(false);
    const AbsVal src = x.vol[LocLine(loc)];
    const int hdr = SlotHeaderLine(slot);
    const int pay = SlotPayloadLine(slot);
    AbsVal header;
    header.is_header = true;
    header.target_loc = loc;
    header.payload = src.fill;
    // Work order is payload copy then validity header; the functional
    // execution walks devices in ascending id order.
    struct Item {
      int line;
      AbsVal val;
    };
    std::vector<Item> work = {{pay, src}, {hdr, header}};
    for (int device = 0; device < kNumDevices; ++device) {
      std::vector<SpecLineEvent> events;
      for (const Item& item : work) {
        if (LineDevice(item.line) != device) continue;
        events.push_back(SpecLineEvent{item.line, AbsVal{}, item.val});
      }
      if (events.empty()) continue;
      AppendSlice(req, device, /*deferred=*/false, 0, rd, wr,
                  std::move(events));
    }
    GuardRanges(req, rd, wr);
  }

  void DoApply(int slot, int loc) {
    const int pay = SlotPayloadLine(slot);
    const AddrRange rd = RangeOfLine(pay);
    const AddrRange wr = RangeOfLine(LocLine(loc));
    PreIssue(rd, wr);
    const std::uint64_t req = ++num_reqs;
    san_retired.push_back(false);
    std::vector<SpecLineEvent> events = {
        SpecLineEvent{LocLine(loc), AbsVal{}, x.vol[pay]}};
    AppendSlice(req, LineDevice(LocLine(loc)), /*deferred=*/false, 0, rd, wr,
                std::move(events));
    GuardRanges(req, rd, wr);
  }

  void DoCommit(const std::vector<int>& slots) {
    std::uint64_t needs_sync = 0;
    if (enforce) {
      // Delayed synchronization: one cross-device sync gates every delete
      // of this commit; the marker precedes the deferred issues.
      RecordSyncMarker();
      needs_sync = sync_counter;
    }
    for (int slot : slots) {
      const int hdr = SlotHeaderLine(slot);
      const AddrRange wr = RangeOfLine(hdr);
      const AddrRange rd{};
      const int touched = LineDevice(hdr);
      if (enforce) {
        ErasePendingAndShadow(wr);
      } else {
        x.preds.npm002 = x.preds.npm002 || DirtyIn(wr);
      }
      // NPM004: any *other* device still carrying a live, non-deferred
      // request issued since the last sync marker.
      for (const SpecRecord& rec : x.records) {
        if (rec.device == touched || rec.deferred) continue;
        if (!san_retired[rec.req] && rec.after_sync == last_marker) {
          x.preds.npm004 = true;
        }
      }
      // Invariant 3: deferred maintenance in a multi-device epoch may start
      // before an earlier unit request completes.
      bool earlier_unit = false;
      std::set<int> devs = {touched};
      for (const SpecRecord& rec : x.records) {
        if (!rec.deferred) earlier_unit = true;
        devs.insert(rec.device);
      }
      if (earlier_unit && devs.size() >= 2) x.preds.inv3 = true;
      const std::uint64_t req = ++num_reqs;
      san_retired.push_back(false);
      std::vector<SpecLineEvent> events = {
          SpecLineEvent{hdr, AbsVal{}, Fill(0)}};
      AppendSlice(req, touched, /*deferred=*/true, needs_sync, rd, wr,
                  std::move(events));
    }
  }

  void DoSync() {
    RecordSyncMarker();
    for (std::size_t i = 0; i < x.records.size(); ++i) RetireSlice(i);
  }
};

}  // namespace

SpecExec Simulate(const LitmusProgram& program, std::size_t prefix_len,
                  bool enforce, SpecMutation mutation) {
  Sim sim(enforce, mutation);
  const std::size_t n = std::min(prefix_len, program.instrs.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LitmusInstr& instr = program.instrs[i];
    switch (instr.op) {
      case LOp::kWrite: sim.DoWrite(instr.loc, instr.value); break;
      case LOp::kPersist: sim.DoPersist(instr.loc); break;
      case LOp::kFence: break;
      case LOp::kRead: sim.DoRead(instr.loc); break;
      case LOp::kLog: sim.DoLog(instr.slot, instr.loc); break;
      case LOp::kApply: sim.DoApply(instr.slot, instr.loc); break;
      case LOp::kCommit: {
        std::vector<int> slots = {instr.slot};
        if (instr.slot2 >= 0) slots.push_back(instr.slot2);
        sim.DoCommit(slots);
        break;
      }
      case LOp::kSync: sim.DoSync(); break;
    }
  }
  sim.x.preds.npm006 = !sim.x.dirty.empty();
  if (mutation == SpecMutation::kNoRaces) {
    sim.x.preds.inv1 = sim.x.preds.inv2 = sim.x.preds.inv3 = false;
    sim.x.preds.npm002 = sim.x.preds.npm003 = sim.x.preds.npm004 = false;
  }
  return sim.x;
}

namespace {

// Per-slice crash assignment: started=false is "dropped"; started with
// keep == events.size() is "durable"; anything shorter is a torn prefix.
struct Assign {
  bool started = false;
  std::uint8_t keep = 0;
};

struct Enumerator {
  const SpecExec& x;
  std::vector<Assign> asgn;
  std::set<std::string>* out;

  bool Durable(std::size_t i) const {
    return asgn[i].started && asgn[i].keep == x.records[i].events.size();
  }

  // Every pending CPU line independently survives (the cache line happened
  // to reach PM on its own) or drops with the cache; the survival choice
  // feeds the write-back guard repair, so each subset is a separate
  // CrashWith evaluation.
  void Leaf() {
    std::vector<std::pair<int, AbsVal>> pending(x.pending.begin(),
                                                x.pending.end());
    const std::size_t variants = std::size_t{1} << pending.size();
    for (std::size_t mask = 0; mask < variants; ++mask) {
      EmitWith(pending, mask);
    }
  }

  // Mirrors PmSpace::CrashWith steps 3-6 for one natural outcome assignment
  // and one pending-line survival subset.
  void EmitWith(const std::vector<std::pair<int, AbsVal>>& pending,
                std::size_t survive_mask) {
    std::vector<bool> durable(x.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
      durable[i] = x.records[i].forced || Durable(i);
    }
    const auto force_request = [&](std::uint64_t req) {
      for (std::size_t i = 0; i < x.records.size(); ++i) {
        if (x.records[i].req == req) durable[i] = true;
      }
    };
    // 3. Write-back guard repair (enforce mode only): a surviving line
    //    reached PM through the host queue, ordered behind the request
    //    guarding it and behind the line's last NDP writer -- the memory
    //    controller write-back forces *every* slice of those requests
    //    durable, without chasing their dispatcher-conflict predecessors.
    if (x.enforce) {
      for (std::size_t b = 0; b < pending.size(); ++b) {
        if ((survive_mask & (std::size_t{1} << b)) == 0) continue;
        const int line = pending[b].first;
        auto guard = x.guards.find(line);
        if (guard != x.guards.end()) force_request(guard->second);
        auto writer = x.last_writer.find(line);
        if (writer != x.last_writer.end()) force_request(writer->second);
      }
    }
    // 4. Dependency repair: a non-dropped slice forces its same-device
    //    same-line predecessors durable (reverse pass for transitivity).
    for (std::size_t i = x.records.size(); i > 0; --i) {
      if (!durable[i - 1] && !asgn[i - 1].started) continue;
      for (std::size_t dep : x.records[i - 1].deps) durable[dep] = true;
    }
    // 5. Synchronization repair: if anything issued after sync S survives
    //    anywhere, everything issued before S is durable everywhere.
    std::uint64_t frontier = 0;
    for (std::size_t i = 0; i < x.records.size(); ++i) {
      if (durable[i] || asgn[i].started) {
        frontier = std::max(frontier, x.records[i].after_sync);
      }
    }
    if (frontier > 0) {
      for (std::size_t i = 0; i < x.records.size(); ++i) {
        const SpecRecord& rec = x.records[i];
        if (rec.ordinal < x.markers[frontier - 1][rec.device]) {
          durable[i] = true;
        }
      }
    }
    // 6. Roll back non-durable slices newest-first; then resolve pending
    //    lines (machine order is pending first, rollback second, so a
    //    rolled-back line ends at the rollback value either way).
    std::array<AbsVal, kNumLines> image = x.vol;
    std::array<bool, kNumLines> rolled{};
    for (std::size_t i = x.records.size(); i > 0; --i) {
      const SpecRecord& rec = x.records[i - 1];
      if (durable[i - 1]) continue;
      const std::size_t keep = asgn[i - 1].started ? asgn[i - 1].keep : 0;
      for (std::size_t e = rec.events.size(); e > keep; --e) {
        const SpecLineEvent& ev = rec.events[e - 1];
        image[ev.line] = ev.old_val;
        rolled[ev.line] = true;
      }
    }
    for (std::size_t b = 0; b < pending.size(); ++b) {
      const auto& [line, pre] = pending[b];
      if (rolled[line]) continue;
      if ((survive_mask & (std::size_t{1} << b)) == 0) {
        image[line] = pre;
      }
    }
    out->insert(CanonState(image));
  }

  void Recurse(std::size_t i) {
    if (i == x.records.size()) {
      Leaf();
      return;
    }
    const SpecRecord& rec = x.records[i];
    const auto n = static_cast<std::uint8_t>(rec.events.size());
    auto consistent = [&](bool started) {
      if (!started) return true;
      // A started slice implies its dependency and dispatcher-conflict
      // predecessors (always earlier indices) completed.
      for (std::size_t dep : rec.deps) {
        if (!Durable(dep)) return false;
      }
      for (std::size_t c : rec.conflicts) {
        if (!Durable(c)) return false;
      }
      return true;
    };
    if (rec.forced) {
      // A retired slice is durable unconditionally; retiring never forces
      // dispatcher-conflict predecessors durable (RetireRequest only chases
      // same-device dependencies), so no consistency constraint applies.
      asgn[i] = Assign{true, n};
      Recurse(i + 1);
      return;
    }
    asgn[i] = Assign{false, 0};
    Recurse(i + 1);
    if (!consistent(true)) return;
    if (x.mutation == SpecMutation::kAtomicRequests) {
      asgn[i] = Assign{true, n};
      Recurse(i + 1);
      return;
    }
    for (std::uint8_t keep = 0; keep <= n; ++keep) {
      asgn[i] = Assign{true, keep};
      Recurse(i + 1);
    }
  }
};

}  // namespace

std::vector<std::string> AllowedStates(const SpecExec& exec) {
  std::set<std::string> states;
  Enumerator e{exec, std::vector<Assign>(exec.records.size()), &states};
  e.Recurse(0);
  return {states.begin(), states.end()};
}

}  // namespace spec
}  // namespace nearpm
