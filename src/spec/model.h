// The executable PPO specification: an operational model over abstract
// events (CPU store/persist/fence/load, NDP log write, log application,
// commit-class doorbell, cross-device sync) that enumerates every
// crash-reachable persisted state of a litmus program and predicts which
// ordering races and sanitizer findings the program *can* exhibit.
//
// The model is deliberately independent of src/pmem, src/ndp and src/core:
// it re-derives the documented crash semantics (DESIGN.md sections 4/16)
// from the litmus program alone, over ten abstract cache lines (four data
// locations plus header+payload per slot). The conformance harness
// (src/spec/conformance.h) then checks the real machine against it:
//
//  * allowed states -- every request slice independently lands in
//    {dropped, torn prefix, durable}, every pending CPU line independently
//    survives or is lost, and a free synchronization reach level picks how
//    far the delayed-sync frontier got; the repair rules (observation
//    retires, dispatcher conflicts, same-line dependencies, write-back
//    guards, the sync frontier) then constrain the combinations exactly the
//    way PmSpace::CrashWith repairs sampled outcomes.
//  * race predictions -- purely structural "may" facts (which reads/persists
//    overlap which declared request ranges, which doorbells lack syncs);
//    the harness separately confirms from the raw trace whether the timing
//    *witnessed* each race before requiring the PpoChecker / PM-Sanitizer
//    to have flagged it.
//
// SpecMutation deliberately breaks the model for the teeth tests: a
// conformance run against a mutated spec must produce disagreements, or the
// harness could not detect a divergent implementation.
#ifndef SRC_SPEC_MODEL_H_
#define SRC_SPEC_MODEL_H_

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"
#include "src/spec/litmus.h"

namespace nearpm {
namespace spec {

// Deliberate spec faults for the teeth mode. Each shrinks the model's
// allowed/predicted behavior below what the machine really does, so a
// healthy machine *must* disagree with the mutated spec.
enum class SpecMutation : std::uint8_t {
  kNone = 0,
  // Requests never tear: the model forgets partial (torn-prefix) outcomes.
  kAtomicRequests,
  // CPU stores are durable at issue: the model forgets that un-persisted
  // lines can be dropped with the cache (and the sanitizer shadow map).
  kWritesDurable,
  // The model predicts no ordering races at all: every real checker or
  // sanitizer race finding becomes a spec disagreement.
  kNoRaces,
};

const char* SpecMutationName(SpecMutation mutation);
bool SpecMutationFromString(std::string_view text, SpecMutation* out);

// Abstract cache lines: the four data locations, then header and payload
// per slot.
inline constexpr int kNumLines = kNumLocs + 2 * kNumSlots;
int LocLine(int loc);
int SlotHeaderLine(int slot);
int SlotPayloadLine(int slot);
PmAddr LineAddr(int line);
int LineDevice(int line);

// Abstract value of one line: a uniform fill pattern (data locations, slot
// payloads, freed headers read as fill 0) or a decoded slot header.
struct AbsVal {
  bool is_header = false;
  std::uint8_t fill = 0;        // !is_header: uniform fill byte
  int target_loc = -1;          // is_header: decoded target location
  std::uint8_t payload = 0;     // is_header: checksummed payload fill
  bool operator==(const AbsVal& other) const = default;
  std::string Token() const;    // "0".."9" | "u:L2:5" | "?"
};

// One device slice of one NDP request (mirrors PmSpace's RequestRecord).
struct SpecLineEvent {
  int line = 0;
  AbsVal old_val;
  AbsVal new_val;
};

struct SpecRecord {
  std::uint64_t req = 0;     // request ordinal, shared by all slices
  int device = 0;
  std::size_t ordinal = 0;   // index among this device's records
  bool deferred = false;
  std::uint64_t needs_sync = 0;  // deferred: sync that gates its start
  std::uint64_t after_sync = 0;  // sync counter at issue (frontier input)
  bool forced = false;           // retired before any crash point
  AddrRange read_range{};
  AddrRange write_range{};
  std::vector<SpecLineEvent> events;     // functional execution order
  std::vector<std::size_t> deps;         // same-device record indices
  std::vector<std::size_t> conflicts;    // same-device dispatcher conflicts
};

// Structural may-race / sanitizer predictions for one executed prefix.
struct SpecPredictions {
  bool inv1 = false;    // CPU load may overlap an in-flight write set
  bool inv2 = false;    // CPU persist may overlap an in-flight read/write set
  bool inv3 = false;    // deferred maintenance may begin before earlier units
  bool npm002 = false;  // doorbell over un-persisted operand lines
  bool npm003 = false;  // un-stalled CPU read of an in-flight write set
  bool npm004 = false;  // commit-class doorbell without cross-device sync
  bool npm005 = false;  // redundant persist (no dirty line)
  bool npm006 = false;  // unpersisted lines at end of run
};

// The abstract machine after executing a program prefix.
struct SpecExec {
  bool enforce = true;
  SpecMutation mutation = SpecMutation::kNone;
  std::array<AbsVal, kNumLines> vol{};   // cache-visible image
  std::map<int, AbsVal> pending;         // line -> pre-image (un-persisted)
  std::vector<SpecRecord> records;       // all slices, issue order
  // Marker positions per sync id (1-based): each device's record count at
  // the instant the sync was issued.
  std::vector<std::array<std::size_t, kNumDevices>> markers;
  std::uint64_t last_sync = 0;
  std::map<int, std::uint64_t> guards;      // line -> guarding request
  std::map<int, std::uint64_t> last_writer; // line -> last NDP writer request
  std::set<int> dirty;                      // sanitizer shadow (dirty lines)
  SpecPredictions preds;
};

// Executes the first `prefix_len` instructions of `program` on the abstract
// machine.
SpecExec Simulate(const LitmusProgram& program, std::size_t prefix_len,
                  bool enforce, SpecMutation mutation);

// Canonical state string: the Token() of every abstract line, comma-joined
// in line order.
std::string CanonState(const std::array<AbsVal, kNumLines>& lines);

// Every crash-reachable persisted state of the executed prefix, canonical,
// sorted and deduplicated.
std::vector<std::string> AllowedStates(const SpecExec& exec);

}  // namespace spec
}  // namespace nearpm

#endif  // SRC_SPEC_MODEL_H_
