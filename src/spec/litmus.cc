#include "src/spec/litmus.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace nearpm {
namespace spec {
namespace {

// Locations: one line at the head of four consecutive stripes.
constexpr PmAddr kLocBase = 0x1000;
// Slots: spaced >= kSlotSize (4160) apart so declared write ranges never
// overlap each other or the locations.
constexpr PmAddr kSlot0 = 0x10000;   // stripe 256 -> device 0
constexpr PmAddr kSlot1 = 0x11300;   // stripe 275 -> device 1
constexpr PmAddr kSlotX = 0x126C0;   // header in stripe 294 (device 0) at
                                     // offset 192, payload in stripe 295
                                     // (device 1): a cross-device log.

const char* const kLocNames[kNumLocs] = {"L0", "L1", "L2", "L3"};
const char* const kSlotNames[kNumSlots] = {"S0", "S1", "SX"};

bool ParseLoc(std::string_view tok, int* out) {
  for (int i = 0; i < kNumLocs; ++i) {
    if (tok == kLocNames[i]) {
      *out = i;
      return true;
    }
  }
  return false;
}

bool ParseSlot(std::string_view tok, int* out) {
  for (int i = 0; i < kNumSlots; ++i) {
    if (tok == kSlotNames[i]) {
      *out = i;
      return true;
    }
  }
  return false;
}

std::vector<std::string_view> SplitTrim(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = text.substr(start, end - start);
    while (!piece.empty() && piece.front() == ' ') piece.remove_prefix(1);
    while (!piece.empty() && piece.back() == ' ') piece.remove_suffix(1);
    if (!piece.empty()) out.push_back(piece);
    start = end + 1;
    if (end == text.size()) break;
  }
  return out;
}

}  // namespace

PmAddr LocAddr(int loc) {
  assert(loc >= 0 && loc < kNumLocs);
  return kLocBase + static_cast<PmAddr>(loc) * kStripe;
}

PmAddr SlotAddr(int slot) {
  assert(slot >= 0 && slot < kNumSlots);
  switch (slot) {
    case 0: return kSlot0;
    case 1: return kSlot1;
    default: return kSlotX;
  }
}

int DeviceOf(PmAddr addr) {
  return static_cast<int>((addr / kStripe) % kNumDevices);
}

const char* LocName(int loc) {
  assert(loc >= 0 && loc < kNumLocs);
  return kLocNames[loc];
}

const char* SlotName(int slot) {
  assert(slot >= 0 && slot < kNumSlots);
  return kSlotNames[slot];
}

std::string InstrText(const LitmusInstr& instr) {
  char buf[64];
  switch (instr.op) {
    case LOp::kWrite:
      std::snprintf(buf, sizeof(buf), "w%d %s %u", instr.thread,
                    kLocNames[instr.loc], instr.value);
      break;
    case LOp::kPersist:
      std::snprintf(buf, sizeof(buf), "p%d %s", instr.thread,
                    kLocNames[instr.loc]);
      break;
    case LOp::kFence:
      std::snprintf(buf, sizeof(buf), "f%d", instr.thread);
      break;
    case LOp::kRead:
      std::snprintf(buf, sizeof(buf), "r%d %s", instr.thread,
                    kLocNames[instr.loc]);
      break;
    case LOp::kLog:
      std::snprintf(buf, sizeof(buf), "log%d %s %s", instr.thread,
                    kSlotNames[instr.slot], kLocNames[instr.loc]);
      break;
    case LOp::kApply:
      std::snprintf(buf, sizeof(buf), "app%d %s %s", instr.thread,
                    kSlotNames[instr.slot], kLocNames[instr.loc]);
      break;
    case LOp::kCommit:
      if (instr.slot2 >= 0) {
        std::snprintf(buf, sizeof(buf), "commit%d %s,%s", instr.thread,
                      kSlotNames[instr.slot], kSlotNames[instr.slot2]);
      } else {
        std::snprintf(buf, sizeof(buf), "commit%d %s", instr.thread,
                      kSlotNames[instr.slot]);
      }
      break;
    case LOp::kSync:
      std::snprintf(buf, sizeof(buf), "sync%d", instr.thread);
      break;
  }
  return buf;
}

std::string LitmusProgram::Text() const {
  std::string out;
  for (const LitmusInstr& instr : instrs) {
    if (!out.empty()) out += "; ";
    out += InstrText(instr);
  }
  return out;
}

StatusOr<LitmusProgram> LitmusProgram::Parse(std::string_view text) {
  LitmusProgram program;
  for (std::string_view piece : SplitTrim(text, ';')) {
    std::vector<std::string_view> tok = SplitTrim(piece, ' ');
    if (tok.empty()) continue;
    std::string_view head = tok[0];
    LitmusInstr instr;
    // The mnemonic ends with the thread digit: "w0", "log1", "commit0"...
    if (head.size() < 2 || head.back() < '0' ||
        head.back() > '0' + kNumThreads - 1) {
      return InvalidArgument("litmus: bad mnemonic/thread");
    }
    instr.thread = head.back() - '0';
    std::string_view op = head.substr(0, head.size() - 1);
    auto need = [&](std::size_t n) { return tok.size() == n; };
    if (op == "w") {
      if (!need(3) || !ParseLoc(tok[1], &instr.loc)) {
        return InvalidArgument("litmus: w<t> <loc> <val>");
      }
      int value = std::atoi(std::string(tok[2]).c_str());
      if (value < 1 || value > 9) {
        return InvalidArgument("litmus: store value must be 1..9");
      }
      instr.op = LOp::kWrite;
      instr.value = static_cast<std::uint8_t>(value);
    } else if (op == "p") {
      if (!need(2) || !ParseLoc(tok[1], &instr.loc)) {
        return InvalidArgument("litmus: p<t> <loc>");
      }
      instr.op = LOp::kPersist;
    } else if (op == "f") {
      if (!need(1)) return InvalidArgument("litmus: f<t>");
      instr.op = LOp::kFence;
    } else if (op == "r") {
      if (!need(2) || !ParseLoc(tok[1], &instr.loc)) {
        return InvalidArgument("litmus: r<t> <loc>");
      }
      instr.op = LOp::kRead;
    } else if (op == "log" || op == "app") {
      if (!need(3) || !ParseSlot(tok[1], &instr.slot) ||
          !ParseLoc(tok[2], &instr.loc)) {
        return InvalidArgument("litmus: log/app<t> <slot> <loc>");
      }
      instr.op = op == "log" ? LOp::kLog : LOp::kApply;
    } else if (op == "commit") {
      if (!need(2)) {
        return InvalidArgument("litmus: commit<t> <slot>[,<slot>]");
      }
      std::vector<std::string_view> slots = SplitTrim(tok[1], ',');
      if (slots.empty() || slots.size() > 2 ||
          !ParseSlot(slots[0], &instr.slot) ||
          (slots.size() == 2 && !ParseSlot(slots[1], &instr.slot2))) {
        return InvalidArgument("litmus: bad commit slot list");
      }
      instr.op = LOp::kCommit;
    } else if (op == "sync") {
      if (!need(1)) return InvalidArgument("litmus: sync<t>");
      instr.op = LOp::kSync;
    } else {
      return InvalidArgument("litmus: unknown mnemonic");
    }
    program.instrs.push_back(instr);
  }
  if (program.instrs.empty()) {
    return InvalidArgument("litmus: empty program");
  }
  return program;
}

namespace {

LitmusInstr W(int t, int loc, int v) {
  return LitmusInstr{LOp::kWrite, t, loc, -1, -1,
                     static_cast<std::uint8_t>(v)};
}
LitmusInstr P(int t, int loc) {
  return LitmusInstr{LOp::kPersist, t, loc, -1, -1, 0};
}
LitmusInstr F(int t) { return LitmusInstr{LOp::kFence, t, -1, -1, -1, 0}; }
LitmusInstr R(int t, int loc) {
  return LitmusInstr{LOp::kRead, t, loc, -1, -1, 0};
}
LitmusInstr Log(int t, int slot, int loc) {
  return LitmusInstr{LOp::kLog, t, loc, slot, -1, 0};
}
LitmusInstr App(int t, int slot, int loc) {
  return LitmusInstr{LOp::kApply, t, loc, slot, -1, 0};
}
LitmusInstr Commit(int t, int slot, int slot2 = -1) {
  return LitmusInstr{LOp::kCommit, t, -1, slot, slot2, 0};
}
LitmusInstr Sync(int t) { return LitmusInstr{LOp::kSync, t, -1, -1, -1, 0}; }

void Add(std::vector<LitmusProgram>* out, std::string name,
         std::vector<LitmusInstr> instrs) {
  out->push_back(LitmusProgram{std::move(name), std::move(instrs)});
}

// F1: CPU persist vs NDP log write ordering, persist absent/before/after.
void FamilyPersistLog(std::vector<LitmusProgram>* out) {
  for (int pos = 0; pos < 3; ++pos) {
    for (int loc = 0; loc < 2; ++loc) {
      for (int slot = 0; slot < kNumSlots; ++slot) {
        std::vector<LitmusInstr> is;
        is.push_back(W(0, loc, 1));
        if (pos == 1) is.push_back(P(0, loc));
        is.push_back(Log(0, slot, loc));
        if (pos == 2) is.push_back(P(0, loc));
        char name[64];
        std::snprintf(name, sizeof(name), "f1-%s-%s-%s",
                      pos == 0 ? "nop" : pos == 1 ? "pre" : "post",
                      SlotName(slot), LocName(loc));
        Add(out, name, std::move(is));
      }
    }
  }
}

// F2: log -> apply -> cross-thread read of the applied target, with and
// without a persist of the source and a drain before the read (inv1 and
// NPM003 shapes; the drained variants are the negative controls).
void FamilyLogApplyRead(std::vector<LitmusProgram>* out) {
  for (int src = 0; src < 2; ++src) {
    for (int dst = 2; dst < 4; ++dst) {
      for (int slot = 0; slot < kNumSlots; ++slot) {
        for (int persist = 0; persist < 2; ++persist) {
          for (int drain = 0; drain < 2; ++drain) {
            std::vector<LitmusInstr> is;
            is.push_back(W(0, src, 2));
            if (persist) is.push_back(P(0, src));
            is.push_back(Log(0, slot, src));
            is.push_back(App(0, slot, dst));
            if (drain) is.push_back(Sync(1));
            is.push_back(R(1, dst));
            char name[64];
            std::snprintf(name, sizeof(name), "f2-%s-%s-%s%s%s",
                          LocName(src), LocName(dst), SlotName(slot),
                          persist ? "-p" : "", drain ? "-d" : "");
            Add(out, name, std::move(is));
          }
        }
      }
    }
  }
}

// F3: commit/synchronization shapes: optional second log on the same or the
// other device before the commit, optional drain before the commit.
void FamilyCommitSync(std::vector<LitmusProgram>* out) {
  for (int slot = 0; slot < 2; ++slot) {
    for (int second = 0; second < 3; ++second) {  // none / other-dev / SX
      for (int drain = 0; drain < 2; ++drain) {
        for (int loc = 0; loc < 2; ++loc) {
          std::vector<LitmusInstr> is;
          is.push_back(W(0, loc, 3));
          is.push_back(Log(0, slot, loc));
          if (second == 1) is.push_back(Log(0, 1 - slot, 1 - loc));
          if (second == 2) is.push_back(Log(0, 2, 1 - loc));
          if (drain) is.push_back(Sync(0));
          is.push_back(Commit(0, slot));
          char name[64];
          std::snprintf(name, sizeof(name), "f3-%s-2nd%d%s-%s",
                        SlotName(slot), second, drain ? "-d" : "",
                        LocName(loc));
          Add(out, name, std::move(is));
        }
      }
    }
  }
}

// F4: the invariant-2 race: persist of the log's *source* line right behind
// the log command, with and without an interposed fence.
void FamilyPersistRace(std::vector<LitmusProgram>* out) {
  for (int loc = 0; loc < 2; ++loc) {
    for (int slot = 0; slot < kNumSlots; ++slot) {
      for (int fence = 0; fence < 2; ++fence) {
        std::vector<LitmusInstr> is;
        is.push_back(W(0, loc, 4));
        is.push_back(Log(0, slot, loc));
        if (fence) is.push_back(F(0));
        is.push_back(P(0, loc));
        char name[64];
        std::snprintf(name, sizeof(name), "f4-%s-%s%s", SlotName(slot),
                      LocName(loc), fence ? "-f" : "");
        Add(out, name, std::move(is));
      }
    }
  }
}

// F5: two threads logging to one device each, with eight distinct tails,
// interleaved two ways.
void FamilyTwoThread(std::vector<LitmusProgram>* out) {
  for (int tail = 0; tail < 8; ++tail) {
    for (int mix = 0; mix < 2; ++mix) {
      std::vector<LitmusInstr> is;
      if (mix == 0) {
        is = {W(0, 0, 5), Log(0, 0, 0), W(1, 1, 6), Log(1, 1, 1)};
      } else {
        is = {W(0, 0, 5), W(1, 1, 6), Log(0, 0, 0), Log(1, 1, 1)};
      }
      switch (tail) {
        case 0: is.push_back(Commit(0, 0)); break;
        case 1: is.push_back(Commit(1, 1)); break;
        case 2:
          is.push_back(Commit(0, 0));
          is.push_back(Commit(1, 1));
          break;
        case 3: is.push_back(Sync(0)); break;
        case 4: is.push_back(P(0, 0)); break;
        case 5: is.push_back(R(1, 0)); break;
        case 6: is.push_back(App(1, 1, 3)); break;
        default: break;  // 7: bare
      }
      char name[64];
      std::snprintf(name, sizeof(name), "f5-t%d-m%d", tail, mix);
      Add(out, name, std::move(is));
    }
  }
}

// F6: the Section 2.3 torn-log shape: a log whose header and payload land
// on different devices, optionally persisted and committed.
void FamilyCrossDevice(std::vector<LitmusProgram>* out) {
  for (int loc = 0; loc < 2; ++loc) {
    for (int persist = 0; persist < 2; ++persist) {
      for (int commit = 0; commit < 2; ++commit) {
        std::vector<LitmusInstr> is;
        is.push_back(W(0, loc, 7));
        if (persist) is.push_back(P(0, loc));
        is.push_back(Log(0, 2, loc));
        if (commit) is.push_back(Commit(0, 2));
        char name[64];
        std::snprintf(name, sizeof(name), "f6-%s%s%s", LocName(loc),
                      persist ? "-p" : "", commit ? "-c" : "");
        Add(out, name, std::move(is));
      }
    }
  }
}

// F7: NPM004 deferred-maintenance boundary: commits whose "other device"
// carries a unit request, only deferred requests, or nothing.
void FamilyDeferredBoundary(std::vector<LitmusProgram>* out) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      Add(out, "f7-log" + std::string(SlotName(a)) + "-c" + SlotName(b),
          {W(0, a, 8), Log(0, a, a), Commit(0, b)});
      Add(out, "f7-c" + std::string(SlotName(a)) + "-c" + SlotName(b),
          {Commit(0, a), Commit(0, b)});
      Add(out,
          "f7-log" + std::string(SlotName(a)) + "-cc" + SlotName(b),
          {W(0, a, 8), Log(0, a, a), Commit(0, a), Commit(0, b)});
    }
  }
  // The two-slot commit: one doorbell per slot under a single sync.
  Add(out, "f7-c2-S0S1", {W(0, 0, 8), Log(0, 0, 0), Log(0, 1, 1),
                          Commit(0, 0, 1)});
  Add(out, "f7-c2-S1S0", {W(0, 1, 8), Log(0, 1, 1), Log(0, 0, 0),
                          Commit(0, 1, 0)});
}

// F8: redundant-persist lint (NPM005) positives and negatives.
void FamilyRedundantPersist(std::vector<LitmusProgram>* out) {
  for (int loc = 0; loc < 2; ++loc) {
    Add(out, "f8-bare-" + std::string(LocName(loc)), {P(0, loc)});
    Add(out, "f8-double-" + std::string(LocName(loc)),
        {W(0, loc, 8), P(0, loc), P(0, loc)});
    Add(out, "f8-wpf-" + std::string(LocName(loc)),
        {W(0, loc, 8), P(0, loc), F(0)});
  }
}

// F9: reads overlapping only a request's *read* set -- must stay silent
// (negative control for invariant 1 / NPM003).
void FamilyReadOwnSource(std::vector<LitmusProgram>* out) {
  for (int loc = 0; loc < 2; ++loc) {
    for (int slot = 0; slot < kNumSlots; ++slot) {
      for (int reader = 0; reader < 2; ++reader) {
        std::vector<LitmusInstr> is = {W(0, loc, 9), Log(0, slot, loc),
                                       R(reader, loc)};
        char name[64];
        std::snprintf(name, sizeof(name), "f9-%s-%s-r%d", SlotName(slot),
                      LocName(loc), reader);
        Add(out, name, std::move(is));
      }
    }
  }
}

}  // namespace

LitmusProgram RandomProgram(Rng& rng, std::uint64_t id) {
  LitmusProgram program;
  program.name = "rnd-" + std::to_string(id);
  const std::size_t len = 3 + rng.NextBounded(6);
  int next_value = 1;
  int ndp_ops = 0;  // bound the request count: the spec enumerates
                    // per-request crash outcomes, so deep NDP chains
                    // would blow up the allowed-state search
  for (std::size_t i = 0; i < len; ++i) {
    const int t = static_cast<int>(rng.NextBounded(kNumThreads));
    const int loc = static_cast<int>(rng.NextBounded(kNumLocs));
    const int slot = static_cast<int>(rng.NextBounded(kNumSlots));
    std::uint64_t dice = rng.NextBounded(100);
    if (dice >= 55 && dice < 95 && ndp_ops >= 4) dice = 25;  // persist instead
    if (dice >= 55 && dice < 95) ++ndp_ops;
    if (dice < 25) {
      program.instrs.push_back(W(t, loc, next_value));
      next_value = next_value == 9 ? 1 : next_value + 1;
    } else if (dice < 40) {
      program.instrs.push_back(P(t, loc));
    } else if (dice < 45) {
      program.instrs.push_back(F(t));
    } else if (dice < 55) {
      program.instrs.push_back(R(t, loc));
    } else if (dice < 75) {
      program.instrs.push_back(Log(t, slot, loc));
    } else if (dice < 85) {
      program.instrs.push_back(App(t, slot, loc));
    } else if (dice < 95) {
      if (rng.NextBounded(5) == 0) {
        program.instrs.push_back(
            Commit(t, slot, static_cast<int>(rng.NextBounded(kNumSlots))));
      } else {
        program.instrs.push_back(Commit(t, slot));
      }
    } else {
      program.instrs.push_back(Sync(t));
    }
  }
  return program;
}

std::vector<LitmusProgram> GenerateGrid(std::uint64_t seed,
                                        std::size_t min_programs) {
  std::vector<LitmusProgram> out;
  FamilyPersistLog(&out);
  FamilyLogApplyRead(&out);
  FamilyCommitSync(&out);
  FamilyPersistRace(&out);
  FamilyTwoThread(&out);
  FamilyCrossDevice(&out);
  FamilyDeferredBoundary(&out);
  FamilyRedundantPersist(&out);
  FamilyReadOwnSource(&out);
  Rng rng(seed);
  for (std::uint64_t id = 0; out.size() < min_programs; ++id) {
    out.push_back(RandomProgram(rng, id));
  }
  return out;
}

}  // namespace spec
}  // namespace nearpm
