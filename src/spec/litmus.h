// Litmus programs for the Partitioned Persist Ordering specification.
//
// A litmus program is a short straight-line program over two virtual CPU
// threads, up to four data locations and up to three undo-log slots, using
// exactly the vocabulary the PPO model is about: CPU stores, persists
// (clwb+fence), fences, loads, NDP undo-log writes, log application, the
// commit-class deferred log deletion (the cross-device synchronization
// producer) and explicit device drains. Programs serialize to a one-line
// text grammar so a whole program fits one string field of the flat repro
// JSON the fuzz corpus already uses:
//
//   w0 L0 3; p0 L0; log0 S0 L0; commit1 S0 | sync0
//
//   w<t> <loc> <val>   CPU store of a 64-byte fill pattern <val> (1..9)
//   p<t> <loc>         persist (clwb + sfence) of the location's line
//   f<t>               bare store fence
//   r<t> <loc>         CPU load of the location's line
//   log<t> <slot> <loc>  NDP undo-log write: snapshot <loc> into <slot>
//   app<t> <slot> <loc>  NDP log application: copy <slot>'s payload to <loc>
//   commit<t> <slot>[,<slot>]  commit-class deferred log deletion
//   sync<t>            drain all devices (full cross-device sync)
//
// Locations L0..L3 alternate between the two interleaved devices; slots S0
// (device 0) and S1 (device 1) keep header and payload on one device while
// SX straddles the stripe boundary so its header and payload land on
// different devices -- the Section 2.3 torn-log shape.
#ifndef SRC_SPEC_LITMUS_H_
#define SRC_SPEC_LITMUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace nearpm {
namespace spec {

inline constexpr int kNumLocs = 4;
inline constexpr int kNumSlots = 3;
inline constexpr int kNumThreads = 2;
inline constexpr int kNumDevices = 2;
inline constexpr std::uint64_t kStripe = 256;   // RuntimeOptions default
inline constexpr std::uint64_t kPmSize = 1ull << 17;

// Memory layout. Locations are single 64-byte lines, each at a distinct
// stripe so L0/L2 live on device 0 and L1/L3 on device 1. Slots are spaced
// a full kSlotSize (4160 bytes) apart because an undo-log write *declares*
// the whole slot as its write range: overlapping declared ranges would add
// dispatcher conflicts the programs do not intend. SX places its header in
// the last line of an even stripe so the payload (header + 64) falls on the
// next, odd, stripe: a single log request with slices on both devices.
PmAddr LocAddr(int loc);    // loc in [0, kNumLocs)
PmAddr SlotAddr(int slot);  // slot in [0, kNumSlots)
int DeviceOf(PmAddr addr);  // (addr / kStripe) % kNumDevices
const char* LocName(int loc);    // "L0".."L3"
const char* SlotName(int slot);  // "S0", "S1", "SX"

enum class LOp : std::uint8_t {
  kWrite,    // w<t> <loc> <val>
  kPersist,  // p<t> <loc>
  kFence,    // f<t>
  kRead,     // r<t> <loc>
  kLog,      // log<t> <slot> <loc>
  kApply,    // app<t> <slot> <loc>
  kCommit,   // commit<t> <slot>[,<slot2>]
  kSync,     // sync<t>
};

struct LitmusInstr {
  LOp op = LOp::kWrite;
  int thread = 0;       // 0 or 1
  int loc = -1;         // kWrite/kPersist/kRead/kLog/kApply
  int slot = -1;        // kLog/kApply/kCommit
  int slot2 = -1;       // kCommit with two slots
  std::uint8_t value = 0;  // kWrite fill byte (1..9)
};

struct LitmusProgram {
  std::string name;  // stable id, e.g. "f1-p0-log-S0-L0" or "rnd-42-7"
  std::vector<LitmusInstr> instrs;

  // One-line text form in the grammar above ("; "-separated).
  std::string Text() const;
  // Parses the text form. The name is not part of the text; callers carry
  // it separately (the repro JSON stores both).
  static StatusOr<LitmusProgram> Parse(std::string_view text);
};

std::string InstrText(const LitmusInstr& instr);

// The deterministic default generator grid: every hand-designed family
// instance (persist/log orderings, log-apply-read races, commit-sync
// shapes, cross-device torn logs, deferred-maintenance boundaries,
// redundant persists, two-thread interleavings) plus seeded random
// programs padding the batch to at least `min_programs`. The same seed
// always yields the same batch, in the same order.
std::vector<LitmusProgram> GenerateGrid(std::uint64_t seed,
                                        std::size_t min_programs);

// One random well-formed program of 3..8 instructions.
LitmusProgram RandomProgram(Rng& rng, std::uint64_t id);

}  // namespace spec
}  // namespace nearpm

#endif  // SRC_SPEC_LITMUS_H_
