// Differential conformance between the executable PPO spec (src/spec/model)
// and the real machine (src/core runtime + src/trace checker + src/analyze
// sanitizer). For every prefix of a litmus program the harness runs three
// independent oracles against each other:
//
//  * crash-state membership -- the machine's persisted image after
//    PmSpace::Crash at every trace-derived candidate instant (times a
//    pending-line survival mask) must be one of the spec's allowed states;
//  * checker differential -- PpoChecker violations on the probe trace must
//    match the spec's structural race predictions, with an *independent
//    trace witness* (a from-scratch re-implementation of the invariant
//    semantics) arbitrating "predicted but not observed" so that a race the
//    timing never exhibited is not charged to the checker;
//  * sanitizer differential -- PM-Sanitizer rule counts must match the
//    spec's NPM predictions rule by rule.
//
// Crash candidates are restricted to t >= the latest CPU instant of the
// prefix (CrashCursorOptions::min_time): the host barrier only retires
// *in-flight* requests (InflightTable::Conflicts skips completed entries),
// so the spec's barrier-retire rule over-forces durability for crash times
// in the CPU's past. Earlier instants are still covered -- by the shorter
// prefixes of the same program, whose own "now" is earlier.
//
// Disagreements shrink (greedy, deterministic instruction removal) into
// flat-JSON litmus repros replayable by `nearpm_litmus replay`, giving the
// suite teeth: a mutated spec or a deliberately weakened checker must
// produce disagreements, or the harness could not detect a divergence.
#ifndef SRC_SPEC_CONFORMANCE_H_
#define SRC_SPEC_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/spec/litmus.h"
#include "src/spec/model.h"

namespace nearpm {
namespace spec {

enum class DisagreementKind : std::uint8_t {
  // The machine persisted a state outside the spec's allowed set.
  kStateNotAllowed,
  // PpoChecker flagged a violation the spec says cannot happen.
  kCheckerFalseAlarm,
  // The spec predicts a race, the trace witnesses it, the checker is silent.
  kCheckerMissed,
  // PM-Sanitizer reported a rule the spec says the program cannot trigger.
  kSanitizerFalseAlarm,
  // The spec predicts (and the trace witnesses) a finding; sanitizer silent.
  kSanitizerMissed,
};

const char* DisagreementKindName(DisagreementKind kind);
bool DisagreementKindFromString(std::string_view text, DisagreementKind* out);

struct ConformanceConfig {
  // Probe-runtime enforce_ppo leg (spec and machine must agree per leg).
  bool enforce = true;
  // Teeth: run against a deliberately broken spec.
  SpecMutation mutation = SpecMutation::kNone;
  // Teeth: PpoChecker::disable_invariants bitmask (bit i-1 = invariant i).
  // Only bits 1..3 have teeth on a healthy machine: probe runs without a
  // crash never emit kRecoveryReplay, so a disabled invariant 4 is
  // indistinguishable from a healthy one.
  std::uint32_t weaken_checker = 0;
  // Crash-sweep budget per prefix: candidate instants (excess is counted in
  // stats, never silently dropped) and pending-line survival masks.
  std::size_t max_crash_candidates = 64;
  std::size_t max_masks = 6;
  // Also run the InjectCrashAt recovery leg (journal replay) and require
  // the checker to accept it (invariant 4 / full-history invariant 0).
  bool check_recovery = true;
};

struct Disagreement {
  DisagreementKind kind = DisagreementKind::kStateNotAllowed;
  std::string program_name;
  std::string program_text;
  std::size_t prefix_len = 0;
  std::string detail;
};

struct ConformanceStats {
  std::uint64_t programs = 0;
  std::uint64_t prefixes = 0;
  std::uint64_t crash_states_checked = 0;
  std::uint64_t crash_candidates_truncated = 0;
  std::uint64_t recovery_runs = 0;
  std::uint64_t checker_violations = 0;
  std::uint64_t sanitizer_findings = 0;
};

// Checks every prefix of `program` under `config`. Returns all
// disagreements found (empty = machine and spec agree). `stats` is
// accumulated into when non-null.
std::vector<Disagreement> CheckProgram(const LitmusProgram& program,
                                       const ConformanceConfig& config,
                                       ConformanceStats* stats);

// Runs both enforce_ppo legs (config.enforce is overridden per leg).
std::vector<Disagreement> CheckProgramBothLegs(const LitmusProgram& program,
                                               const ConformanceConfig& config,
                                               ConformanceStats* stats);

// Greedy deterministic shrink: repeatedly removes single instructions while
// the program still produces a disagreement of `kind` under `config`.
LitmusProgram ShrinkDisagreement(const LitmusProgram& program,
                                 const ConformanceConfig& config,
                                 DisagreementKind kind);

// One shrunk disagreement as a flat-JSON corpus artifact (schema
// "litmus-repro-v1", same style as the fuzz corpus repros).
struct LitmusRepro {
  std::string name;
  std::string text;  // litmus grammar, one line
  bool enforce = true;
  SpecMutation mutation = SpecMutation::kNone;
  std::uint32_t weaken_checker = 0;
  DisagreementKind kind = DisagreementKind::kStateNotAllowed;
  std::string detail;

  std::string Write() const;
  static StatusOr<LitmusRepro> Parse(std::string_view text);
};

LitmusRepro MakeRepro(const LitmusProgram& program,
                      const ConformanceConfig& config,
                      const Disagreement& disagreement);

// Replays a repro: the recorded configuration must reproduce a disagreement
// of the recorded kind, and (when the recorded configuration is not already
// healthy) the healthy configuration must stay clean on the same program.
Status ReplayLitmusRepro(const LitmusRepro& repro);

}  // namespace spec
}  // namespace nearpm

#endif  // SRC_SPEC_CONFORMANCE_H_
