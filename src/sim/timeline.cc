#include "src/sim/timeline.h"

namespace nearpm {

void UnitPool::Reset() {
  for (Timeline& u : units_) {
    u.Reset();
  }
}

}  // namespace nearpm
