// Virtual-time resource timelines.
//
// Every contended resource in the simulated platform (a NearPM execution
// unit, the device command pipeline, a CPU hardware thread) is a Timeline: a
// cursor recording when the resource next becomes free. Scheduling work on a
// timeline models queueing delay without a full discrete-event simulator --
// sufficient because all NearPM interactions are request/response shaped.
#ifndef SRC_SIM_TIMELINE_H_
#define SRC_SIM_TIMELINE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/sim/cost_model.h"

namespace nearpm {

inline SimTime NsToTime(double ns) {
  return static_cast<SimTime>(std::llround(ns));
}

class Timeline {
 public:
  // Schedules `duration_ns` of work starting no earlier than `earliest`.
  // Returns the completion time and advances the resource cursor.
  SimTime Schedule(SimTime earliest, double duration_ns) {
    const SimTime start = std::max(free_at_, earliest);
    free_at_ = start + NsToTime(duration_ns);
    return free_at_;
  }

  // When the resource next becomes free (lower bound for new work).
  SimTime free_at() const { return free_at_; }

  void Reset(SimTime t = 0) { free_at_ = t; }

 private:
  SimTime free_at_ = 0;
};

// A pool of identical units (e.g., the four NearPM units of one device).
// Work is assigned to the unit that can start it earliest, mirroring the
// Dispatcher's "issue a request as soon as one unit is available" policy.
class UnitPool {
 public:
  explicit UnitPool(int num_units) : units_(static_cast<size_t>(num_units)) {}

  // `unit_index`, when non-null, receives which unit the work landed on
  // (the event recorder attributes the span to that unit's track).
  SimTime Schedule(SimTime earliest, double duration_ns,
                   int* unit_index = nullptr) {
    Timeline* best = &units_.front();
    for (Timeline& u : units_) {
      if (u.free_at() < best->free_at()) {
        best = &u;
      }
    }
    if (unit_index != nullptr) {
      *unit_index = static_cast<int>(best - units_.data());
    }
    return best->Schedule(earliest, duration_ns);
  }

  // Completion time of all work scheduled so far.
  SimTime AllIdleAt() const {
    SimTime t = 0;
    for (const Timeline& u : units_) {
      t = std::max(t, u.free_at());
    }
    return t;
  }

  int size() const { return static_cast<int>(units_.size()); }
  void Reset();

 private:
  std::vector<Timeline> units_;
};

}  // namespace nearpm

#endif  // SRC_SIM_TIMELINE_H_
