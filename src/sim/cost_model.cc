#include "src/sim/cost_model.h"

// CostModel is a plain aggregate; this translation unit exists so the library
// has a home for future non-inline cost functions and keeps a stable archive
// member for the target.

namespace nearpm {

static_assert(sizeof(CostModel) > 0);

}  // namespace nearpm
