// Latency / bandwidth constants of the simulated platform.
//
// The paper prototypes NearPM on a Xilinx VCU118 over PCIe 3.0 x8 (8 GB/s),
// with on-board DRAM emulating PM at 436 ns access latency and four NearPM
// units per device behind a 4 GB/s internal AXI bus (Section 7, Table 3).
// We reproduce performance *shapes* from a first-order analytical model over
// these constants. Defaults are calibrated so that the Figure 17 copy
// micro-benchmark endpoints fall out: ~1.1x speedup at 64 B and ~5.6x at
// 16 kB.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace nearpm {

// Virtual time in nanoseconds.
using SimTime = std::uint64_t;

struct CostModel {
  // ---- CPU-side PM costs (storage-class memory behind the cache hierarchy).
  // First access of a CPU copy: demand miss to PM (436 ns measured on the
  // FPGA-emulated PM, comparable to Optane), plus the trailing sfence.
  double cpu_copy_base_ns = 600.0;
  // Amortized read + write + clwb per 64 B line of a CPU persist-copy, with
  // the limited memory-level parallelism of one core (~0.65 GB/s effective).
  double cpu_copy_per_line_ns = 99.2;
  // clwb issue (asynchronous writeback initiation) of one dirty line.
  double cpu_flush_line_ns = 6.0;
  // sfence: drain the outstanding writebacks (latency of the slowest line,
  // overlapped across lines, paid once per persist).
  double cpu_drain_ns = 150.0;
  // bare sfence with nothing outstanding.
  double cpu_fence_ns = 30.0;
  // Random cached read / uncached PM read from the CPU.
  double cpu_cached_read_ns = 4.0;
  double cpu_pm_read_ns = 436.0;
  // Store into the cache hierarchy per 64 B line (cost paid again at persist).
  double cpu_store_line_ns = 2.0;
  // CPU-side generation of one log/checkpoint metadata record
  // (object id, offset, size, checksum, valid bit) plus its persist.
  double cpu_metadata_ns = 180.0;
  // CPU-side log invalidation/deletion per log entry (write + persist).
  double cpu_log_delete_ns = 140.0;
  // Persistent allocator bookkeeping per allocation (bitmap search + persist).
  double cpu_alloc_ns = 220.0;
  // Page-table entry switch in shadow paging (8 B write + persist).
  double cpu_page_switch_ns = 120.0;

  // ---- Command path (host -> NearPM device).
  // CPU-visible cost to post one command (MMIO store to the memory-mapped
  // command path; write-combining, non-blocking).
  double cmd_post_ns = 100.0;
  // Device-side latency from posting until a NearPM unit can start: PCIe
  // traversal + Request FIFO + Dispatcher decode + address translation +
  // conflict check (Figure 8 steps 1a-5a).
  double cmd_device_pipeline_ns = 450.0;
  // One CPU polling round on a completion status word over PCIe (used by the
  // software multi-device synchronization baseline, "NearPM MD SW-sync").
  double cpu_poll_round_ns = 300.0;

  // ---- NearPM unit execution.
  // Fixed per-request setup in a unit (request register load, control
  // signals, DMA programming).
  double ndp_setup_ns = 30.0;
  // DMA engine copy throughput over the internal AXI bus (4 GB/s).
  double ndp_dma_ns_per_byte = 0.25;
  // Load/store unit: fine-grained (sub-line) data movement per 64 B.
  double ndp_ls_per_line_ns = 16.0;
  // Metadata generator: produce and persist one log/checkpoint record.
  double ndp_metadata_ns = 40.0;
  // Log deletion / commit-mark per log entry, near memory.
  double ndp_log_delete_ns = 30.0;
  // Device-to-device status-bit propagation (Multi-device handler, Fig. 11).
  double ndp_remote_status_ns = 500.0;

  // ---- Replication network (src/net). One full-duplex link per directed
  // node pair, modeled like the PCIe command path: a serialization stage on
  // the link timeline plus a fixed propagation delay. Constants approximate
  // a datacenter RDMA fabric (one-sided verbs ~2 us end-to-end, ~10 GB/s
  // per link) so the one-sided redo protocol sits in a realistic regime
  // relative to the 436 ns local PM access.
  double net_link_latency_ns = 1500.0;   // propagation + NIC traversal
  double net_link_ns_per_byte = 0.1;     // 10 GB/s serialization
  double net_frame_bytes = 64.0;         // per-message framing overhead
  // Remote doorbell ring: the one-sided writer nudges the backup's NDP
  // dispatcher after the redo record lands (an RDMA write with immediate).
  double net_doorbell_ns = 200.0;

  // ---- Derived helpers -----------------------------------------------------

  static std::uint64_t Lines(std::size_t bytes) {
    return (bytes + kCacheLineSize - 1) / kCacheLineSize;
  }

  // CPU cost to copy `bytes` of persistent data and persist the destination
  // (the data-movement half of a CPU-side crash-consistency operation).
  double CpuCopyNs(std::size_t bytes) const {
    return cpu_copy_base_ns +
           static_cast<double>(Lines(bytes)) * cpu_copy_per_line_ns;
  }

  // Time a NearPM unit is busy executing a copy of `bytes` (DMA for bulk,
  // load/store unit overhead folded into setup for small transfers).
  double NdpCopyNs(std::size_t bytes) const {
    return ndp_setup_ns + static_cast<double>(bytes) * ndp_dma_ns_per_byte;
  }

  // CPU cost to persist a range it has written: issue one clwb per line,
  // then one drain (the writebacks proceed in parallel).
  double CpuPersistNs(std::size_t bytes) const {
    return static_cast<double>(Lines(bytes)) * cpu_flush_line_ns +
           cpu_drain_ns;
  }

  // Serialization time of one framed message on a link; the propagation
  // latency is paid once on top by the fabric after serialization.
  double NetSerializeNs(std::size_t bytes) const {
    return (static_cast<double>(bytes) + net_frame_bytes) *
           net_link_ns_per_byte;
  }
};

}  // namespace nearpm

#endif  // SRC_SIM_COST_MODEL_H_
