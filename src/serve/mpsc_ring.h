// Bounded lock-free request ring with non-blocking admission and parked
// consumers: the serve layer's hot path.
//
// This replaces the mutex/condvar BoundedQueue that used to guard every
// shard's request stream. The design is the classic bounded ring with
// per-slot sequence numbers (Vyukov's bounded queue, and the same idiom as
// decaf-emu's ring-buffer + semaphore parking):
//
//   * power-of-two slot count, so `pos & mask` replaces a modulo;
//   * monotonically increasing 64-bit head (dequeue) and tail (enqueue)
//     positions that are never reduced -- a slot's lap is encoded in its
//     sequence number, so wraparound is safe without ABA;
//   * each slot carries an atomic sequence: `seq == pos` means free for the
//     producer claiming `pos`, `seq == pos + 1` means published for the
//     consumer expecting `pos`, and popping republishes `seq = pos +
//     capacity` (free for the next lap). The sequence is both the
//     full/empty test and the happens-before edge: the producer's release
//     store of `pos + 1` publishes the payload the consumer's acquire load
//     observes;
//   * head and tail live on separate cache lines, and producers keep a
//     cached copy of the consumer index so a saturated ring rejects
//     admissions without ever touching the slot or head cache lines
//     (backpressure storms stay out of the consumers' way);
//   * consumers spin briefly, then park on a counting semaphore. Producers
//     only touch the semaphore when a consumer has registered as a waiter,
//     so the uncontended push is a claim-CAS plus one release store.
//
// Naming: the dominant shape is many producers (client threads in Submit)
// and one drainer, but the pop side runs the same sequence-CAS protocol, so
// the small per-shard worker pool (workers_per_shard consumers) is safe too
// -- the ring is MPMC-correct, MPSC-tuned.
//
// Admission control semantics match the old queue exactly: TryPush never
// blocks and returns false on a full or closed ring (the item is not
// consumed), TryPop never blocks (deterministic Pump mode), Pop parks, and
// Close() wakes every parked consumer for shutdown. "Closed" is a bit CAS'd
// into the tail word itself, so an admission and a close serialize on one
// atomic: every claim that won its CAS is ordered before the close in the
// tail's modification order, and the post-close drain can never strand an
// accepted request.
//
// T must be default-constructible and move-assignable (slots hold T by
// value; a popped slot keeps the moved-from husk until its next lap).
#ifndef SRC_SERVE_MPSC_RING_H_
#define SRC_SERVE_MPSC_RING_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <semaphore>
#include <thread>
#include <utility>
#include <vector>

namespace nearpm {
namespace serve {

template <typename T>
class MpscRing {
 public:
  // Capacity rounds up to the next power of two (minimum 2) so slot lookup
  // is a mask, matching the power-of-two queue sizes the service uses.
  explicit MpscRing(std::size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? std::size_t{2}
                                                 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Approximate occupancy (exact once producers and consumers quiesce).
  std::size_t size() const {
    const std::uint64_t tail =
        enqueue_pos_.load(std::memory_order_relaxed) & ~kClosedBit;
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  // Admission: false when the ring is full or closed (the item is not
  // consumed, so the caller can retry or report backpressure).
  bool TryPush(T& item) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    while (true) {
      if (pos & kClosedBit) {
        return false;
      }
      // Fast full test against the cached consumer index: a saturated ring
      // rejects here without dirtying the slot or head cache lines. Only on
      // apparent fullness is the real head re-read (one cross-core load).
      std::uint64_t cached =
          cached_dequeue_pos_.load(std::memory_order_relaxed);
      if (pos - cached >= capacity_) {
        cached = dequeue_pos_.load(std::memory_order_acquire);
        cached_dequeue_pos_.store(cached, std::memory_order_relaxed);
        if (pos - cached >= capacity_) {
          return false;
        }
      }
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // The slot is free for exactly this position: claim it by advancing
        // the tail. Failure means another producer (or Close) moved the
        // tail; the CAS reloads `pos` and we retry.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.seq.store(pos + 1, std::memory_order_release);
          NotifyWaiter();
          return true;
        }
      } else if (dif < 0) {
        // The slot still carries last lap's value: the ring is full.
        return false;
      } else {
        // Another producer claimed this position; chase the tail.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Non-blocking consume (deterministic Pump mode).
  std::optional<T> TryPop() {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq) -
                               static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          std::optional<T> item(std::move(slot.value));
          // Republish the slot for the producer `capacity_` positions ahead
          // (the next lap); the release pairs with that producer's acquire.
          slot.seq.store(pos + capacity_, std::memory_order_release);
          return item;
        }
      } else if (dif < 0) {
        // Empty, or a producer claimed the slot but has not published yet;
        // either way there is nothing consumable at the head.
        return std::nullopt;
      } else {
        // Another consumer emptied this position; chase the head.
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Blocking consume; empty optional means the ring closed and drained.
  // Spins a few rounds first (requests usually arrive in bursts), then
  // parks on the semaphore until a producer or Close() releases it.
  std::optional<T> Pop() {
    while (true) {
      for (int spin = 0; spin < kSpinPops; ++spin) {
        if (auto item = TryPop()) {
          return item;
        }
        if (closed()) {
          return DrainClosed();
        }
        std::this_thread::yield();
      }
      // Parking protocol (the eventcount handshake): register as a waiter,
      // then re-check for work. The seq_cst fences on both sides order
      // "publish item; read waiters" against "add waiter; read item", so
      // either this consumer sees the item or the producer sees the waiter
      // -- a wakeup is never lost. Spurious semaphore permits only cost one
      // trip around the loop.
      waiters_.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (auto item = TryPop()) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        return item;
      }
      if (closed()) {
        waiters_.fetch_sub(1, std::memory_order_relaxed);
        return DrainClosed();
      }
      sem_.acquire();
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Terminal: rejects every future admission and wakes every parked
  // consumer. Items already claimed keep draining through Pop()/TryPop().
  void Close() {
    enqueue_pos_.fetch_or(kClosedBit, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t waiters = waiters_.load(std::memory_order_relaxed);
    sem_.release(static_cast<std::ptrdiff_t>(waiters) + 1);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  // Bit 63 of the tail word: positions are claim counts and can never reach
  // it, so the bit doubles as the closed flag without a second atomic.
  static constexpr std::uint64_t kClosedBit = 1ull << 63;
  static constexpr int kSpinPops = 4;

  bool closed() const {
    return (enqueue_pos_.load(std::memory_order_seq_cst) & kClosedBit) != 0;
  }

  void NotifyWaiter() {
    // Fence-then-load pairs with the waiter registration in Pop(); the
    // semaphore is untouched unless someone is actually parked.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      sem_.release();
    }
  }

  // Post-close drain: every claim CAS'd into the tail before the closed bit
  // is visible here, so spin through any producer that claimed a slot but
  // has not published its sequence yet -- an accepted request is never
  // stranded by shutdown.
  std::optional<T> DrainClosed() {
    while (true) {
      if (auto item = TryPop()) {
        return item;
      }
      const std::uint64_t tail =
          enqueue_pos_.load(std::memory_order_acquire) & ~kClosedBit;
      if (dequeue_pos_.load(std::memory_order_acquire) >= tail) {
        return std::nullopt;
      }
      std::this_thread::yield();
    }
  }

  const std::size_t capacity_;
  const std::uint64_t mask_;
  std::vector<Slot> slots_;
  // Head, tail, the producers' cached head and the waiter count each get
  // their own cache line: producers ping-pong only the tail, consumers only
  // the head.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> cached_dequeue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> waiters_{0};
  std::counting_semaphore<> sem_{0};
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_MPSC_RING_H_
