#include "src/serve/service.h"

#include <algorithm>
#include <utility>

#include "src/ndp/sync_machine.h"
#include "src/prof/profile.h"
#include "src/trace/ppo_checker.h"

namespace nearpm {
namespace serve {
namespace {

ServeResult Unexecuted(Status status) {
  ServeResult result;
  result.status = std::move(status);
  return result;
}

}  // namespace

KvService::KvService(const ServeOptions& options)
    : options_(options), router_(options.shards) {}

KvService::~KvService() { Stop(); }

StatusOr<std::unique_ptr<KvService>> KvService::Create(
    const ServeOptions& options) {
  if (options.shards < 1) {
    return InvalidArgument("service needs at least one shard");
  }
  if (options.workers_per_shard < 1 || options.batch_max < 1 ||
      options.queue_capacity < 1) {
    return InvalidArgument(
        "workers, batch_max and queue_capacity must be >= 1");
  }
  auto service = std::unique_ptr<KvService>(new KvService(options));
  ShardOptions so;
  so.mode = options.mode;
  so.enforce_ppo = options.enforce_ppo;
  so.skip_recovery_replay = options.skip_recovery_replay;
  so.pm_size = options.pm_size;
  so.table_slots = options.table_slots;
  so.value_size = options.value_size;
  so.workers = options.workers_per_shard;
  for (int s = 0; s < options.shards; ++s) {
    auto shard = Shard::Create(so, s);
    if (!shard.ok()) {
      return shard.status();
    }
    service->shards_.push_back(std::move(*shard));
    service->queues_.push_back(
        std::make_unique<BoundedQueue<QueuedRequest>>(options.queue_capacity));
  }
  service->pump_rr_.assign(options.shards, 0);
  return service;
}

StatusOr<std::future<ServeResult>> KvService::Submit(ServeRequest request) {
  int shard_id;
  if (request.kind == RequestKind::kMultiPut) {
    if (request.pairs.empty()) {
      return InvalidArgument("MultiPut carries no pairs");
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(request.pairs.size());
    for (const KvPair& pair : request.pairs) {
      keys.push_back(pair.key);
    }
    shard_id = router_.ParticipantsFor(keys).front();  // coordinator
  } else {
    shard_id = router_.ShardFor(request.key);
  }

  QueuedRequest item;
  item.request = std::move(request);
  std::future<ServeResult> done = item.done.get_future();
  const std::size_t depth = queues_[shard_id]->size();
  if (!queues_[shard_id]->TryPush(item)) {
    metrics_.Increment("serve_rejected");
    return ResourceExhausted("shard " + std::to_string(shard_id) +
                             " queue full (" +
                             std::to_string(options_.queue_capacity) +
                             " requests), retry after draining");
  }
  metrics_.Increment("serve_enqueued");
  metrics_.AddLatency("serve_queue_depth", depth);
  return done;
}

void KvService::Start() {
  for (int s = 0; s < num_shards(); ++s) {
    for (int w = 0; w < options_.workers_per_shard; ++w) {
      workers_.emplace_back([this, s, w] { WorkerLoop(s, w); });
    }
  }
}

void KvService::Stop() {
  for (auto& queue : queues_) {
    queue->Close();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void KvService::WorkerLoop(int shard_id, int worker) {
  BoundedQueue<QueuedRequest>& queue = *queues_[shard_id];
  while (true) {
    auto first = queue.Pop();  // blocks; empty optional = closed + drained
    if (!first.has_value()) {
      return;
    }
    std::vector<QueuedRequest> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
      auto more = queue.TryPop();
      if (!more.has_value()) {
        break;
      }
      batch.push_back(std::move(*more));
    }
    ExecuteBatch(shard_id, worker, std::move(batch));
  }
}

std::uint64_t KvService::Pump() {
  std::uint64_t executed = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_shards(); ++s) {
      std::vector<QueuedRequest> batch;
      while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
        auto item = queues_[s]->TryPop();
        if (!item.has_value()) {
          break;
        }
        batch.push_back(std::move(*item));
      }
      if (batch.empty()) {
        continue;
      }
      progress = true;
      executed += batch.size();
      const int worker = pump_rr_[s];
      pump_rr_[s] = (pump_rr_[s] + 1) % options_.workers_per_shard;
      ExecuteBatch(s, worker, std::move(batch));
    }
  }
  return executed;
}

Status KvService::ExecuteLocal(Shard& shard, ThreadId tid, QueuedRequest& item,
                               SimTime batch_start) {
  Runtime& rt = shard.rt();
  const SimTime start = rt.Now(tid);
  rt.Compute(tid, options_.request_parse_ns);

  ServeResult result;
  result.shard = shard.id();
  switch (item.request.kind) {
    case RequestKind::kPut:
      result.status = shard.Put(tid, item.request.key, item.request.value);
      metrics_.Increment("serve_puts");
      break;
    case RequestKind::kGet: {
      auto value = shard.Get(tid, item.request.key);
      if (value.ok()) {
        result.value = std::move(*value);
      }
      result.status = value.status();
      metrics_.Increment("serve_gets");
      break;
    }
    case RequestKind::kMultiPut:
      result.status = Internal("MultiPut routed to the local batch path");
      break;
  }

  const SimTime end = rt.Now(tid);
  NEARPM_TRACE_SPAN(&shard.recorder(), .phase = TracePhase::kServeRequest,
                    .pid = kTraceServePid,
                    .tid = static_cast<std::uint32_t>(tid), .ts = start,
                    .dur = end > start ? end - start : 1,
                    .seq = item.request.key);
  result.latency_ns = end - batch_start;
  metrics_.AddLatency("serve_request_ns", result.latency_ns);
  metrics_.Increment("serve_completed");
  Status status = result.status;
  item.done.set_value(std::move(result));
  return status;
}

void KvService::ExecuteBatch(int shard_id, int worker,
                             std::vector<QueuedRequest> batch) {
  Shard& shard = *shards_[shard_id];
  const ThreadId tid = shard.WorkerTid(worker);

  std::vector<QueuedRequest> locals;
  std::vector<QueuedRequest> txns;
  for (QueuedRequest& item : batch) {
    (item.request.kind == RequestKind::kMultiPut ? txns : locals)
        .push_back(std::move(item));
  }

  if (!locals.empty()) {
    std::lock_guard lock(shard.mu());
    Runtime& rt = shard.rt();
    const SimTime batch_start = rt.Now(tid);
    // The amortization: one submission doorbell and one fence cover the
    // whole batch (batch_max = 1 degenerates to per-request costs).
    rt.Compute(tid, rt.options().cost.cmd_post_ns);
    NEARPM_TRACE_EVENT(&shard.recorder(), .phase = TracePhase::kServeEnqueue,
                       .pid = kTraceServePid,
                       .tid = static_cast<std::uint32_t>(tid),
                       .ts = batch_start, .arg0 = locals.size());
    // Residual backlog after this batch was picked up: the shard-queue
    // occupancy series the profiler and Perfetto counter track render.
    NEARPM_TRACE_EVENT(&shard.recorder(),
                       .phase = TracePhase::kServeQueueDepth,
                       .pid = kTraceServePid,
                       .tid = static_cast<std::uint32_t>(tid),
                       .ts = batch_start, .arg0 = queues_[shard_id]->size());
    for (QueuedRequest& item : locals) {
      (void)ExecuteLocal(shard, tid, item, batch_start);
    }
    rt.Fence(tid);
    const SimTime batch_end = rt.Now(tid);
    NEARPM_TRACE_SPAN(&shard.recorder(), .phase = TracePhase::kServeBatch,
                      .pid = kTraceServePid,
                      .tid = static_cast<std::uint32_t>(tid), .ts = batch_start,
                      .dur = batch_end > batch_start ? batch_end - batch_start
                                                     : 1,
                      .arg0 = locals.size());
    metrics_.Increment("serve_batches");
    metrics_.AddLatency("serve_batch_size", locals.size());
  }

  for (QueuedRequest& item : txns) {
    ServeResult result;
    result.shard = shard_id;
    result.status = ExecuteMultiPut(item.request.pairs);
    metrics_.Increment("serve_completed");
    item.done.set_value(std::move(result));
  }
}

Status KvService::ExecuteMultiPut(const std::vector<KvPair>& pairs,
                                  const TxnStop& stop) {
  if (pairs.empty() || pairs.size() > Shard::kMaxTxnPairs) {
    return InvalidArgument("MultiPut must carry 1.." +
                           std::to_string(Shard::kMaxTxnPairs) + " pairs");
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(pairs.size());
  for (const KvPair& pair : pairs) {
    keys.push_back(pair.key);
  }
  const std::vector<int> participants = router_.ParticipantsFor(keys);
  const int k = static_cast<int>(participants.size());

  // Participant locks in ascending shard order: the only multi-lock path in
  // the service, so lock ordering is global and deadlock-free.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(participants.size());
  for (int p : participants) {
    locks.emplace_back(shards_[p]->mu());
  }

  Shard& coord = *shards_[participants.front()];
  const ThreadId coord_tid = coord.TxnTid();
  const std::uint64_t txn_id = ++txn_counter_;
  const SimTime txn_start = coord.Now(coord_tid);

  // Phase 1 -- durable intent on the coordinator. Drained before any slice
  // applies: after this point a crash anywhere leads recovery to redo the
  // whole transaction; before it, to none of it. All-or-nothing either way.
  auto intent_slot = coord.WriteIntent(coord_tid, txn_id, pairs);
  if (!intent_slot.ok()) {
    return intent_slot.status();
  }
  coord.Drain(coord_tid);
  if (stop.phase == TxnStopPhase::kAfterIntent) {
    return Unavailable("txn stopped by crash injection: after intent");
  }

  // Phase 2 -- duplicate the command to every participant's sync machine
  // (Figure 12: each device tracks local + remote completion).
  std::vector<SyncStateMachine> machines;
  machines.reserve(participants.size());
  for (int i = 0; i < k; ++i) {
    machines.emplace_back(k);
    NEARPM_RETURN_IF_ERROR(machines.back().ReceiveCommand());
  }

  // Phase 3 -- each participant applies its slice failure-atomically, drains
  // it durable and signals local completion.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    Shard& shard = *shards_[participants[ordinal]];
    const ThreadId tid = shard.TxnTid();
    for (const KvPair& pair : pairs) {
      if (router_.ShardFor(pair.key) != shard.id()) {
        continue;
      }
      NEARPM_RETURN_IF_ERROR(shard.Put(tid, pair.key, pair.value));
    }
    if (stop.phase == TxnStopPhase::kMidApply &&
        stop.apply_ordinal == ordinal) {
      // Puts issued but neither drained nor signalled: the crash model sees
      // the slice's device requests still in flight.
      return Unavailable("txn stopped by crash injection: mid apply " +
                         std::to_string(ordinal));
    }
    shard.Drain(tid);
    NEARPM_RETURN_IF_ERROR(machines[ordinal].ReceiveLocalComplete());
    if (stop.phase == TxnStopPhase::kAfterApply &&
        stop.apply_ordinal == ordinal) {
      return Unavailable("txn stopped by crash injection: after apply " +
                         std::to_string(ordinal));
    }
  }

  // Phase 4 -- completion exchange: every participant learns every remote
  // completion, and all clocks rendezvous at the slowest participant plus
  // one remote status exchange.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    for (int peer = 0; peer < k; ++peer) {
      if (peer == ordinal) {
        continue;
      }
      const DeviceId remote_index = peer < ordinal ? peer : peer - 1;
      NEARPM_RETURN_IF_ERROR(
          machines[ordinal].ReceiveRemoteComplete(remote_index));
    }
  }
  SimTime rendezvous = 0;
  for (int p : participants) {
    rendezvous = std::max(rendezvous, shards_[p]->Now(shards_[p]->TxnTid()));
  }
  rendezvous += coord.rt().options().cost.ndp_remote_status_ns;
  for (int p : participants) {
    shards_[p]->rt().WaitUntil(shards_[p]->TxnTid(), rendezvous);
  }

  // Invariant 3: the retire write below is ordered after the cross-shard
  // synchronization, so it must not issue until every participant is back
  // in All-Complete.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    if (!machines[ordinal].AllComplete()) {
      return Internal("participant " + std::to_string(ordinal) +
                      " not All-Complete before intent retire");
    }
  }
  if (stop.phase == TxnStopPhase::kAfterSync) {
    return Unavailable("txn stopped by crash injection: after sync");
  }

  // Phase 5 -- retire the intent (the write ordered after the sync).
  NEARPM_RETURN_IF_ERROR(coord.InvalidateIntent(coord_tid, *intent_slot));
  coord.Drain(coord_tid);

  const SimTime txn_end = coord.Now(coord_tid);
  NEARPM_TRACE_SPAN(&coord.recorder(), .phase = TracePhase::kServeTxn,
                    .pid = kTraceServePid,
                    .tid = static_cast<std::uint32_t>(coord_tid),
                    .ts = txn_start,
                    .dur = txn_end > txn_start ? txn_end - txn_start : 1,
                    .seq = txn_id, .arg0 = static_cast<std::uint64_t>(k));
  metrics_.Increment("serve_txns");
  metrics_.AddLatency("serve_txn_ns", txn_end - txn_start);
  return Status::Ok();
}

void KvService::CrashAll(const std::vector<CrashPlan>& plans) {
  for (int s = 0; s < num_shards(); ++s) {
    std::lock_guard lock(shards_[s]->mu());
    shards_[s]->Crash(s < static_cast<int>(plans.size()) ? plans[s]
                                                         : CrashPlan{});
  }
  // The power failure also loses every admitted-but-unexecuted request.
  for (auto& queue : queues_) {
    while (auto item = queue->TryPop()) {
      item->done.set_value(
          Unexecuted(Unavailable("request lost in power failure")));
    }
  }
}

Status KvService::RecoverAll() {
  // Quiesced path (no workers running): take every shard lock up front.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu());
  }
  for (auto& shard : shards_) {
    NEARPM_RETURN_IF_ERROR(shard->Recover());
  }
  // Cross-shard intent redo: any transaction whose intent survived was past
  // its durability point, so recovery re-applies every pair (idempotent
  // upsert) before retiring the intent -- all-or-nothing across shards.
  for (auto& coord : shards_) {
    const ThreadId coord_tid = coord->TxnTid();
    auto intents = coord->ScanIntents(coord_tid);
    if (!intents.ok()) {
      return intents.status();
    }
    for (const IntentRecord& intent : *intents) {
      if (!options_.break_txn_redo) {
        for (const KvPair& pair : intent.pairs) {
          Shard& owner = *shards_[router_.ShardFor(pair.key)];
          NEARPM_RETURN_IF_ERROR(
              owner.Put(owner.TxnTid(), pair.key, pair.value));
          owner.Drain(owner.TxnTid());
        }
      }
      NEARPM_RETURN_IF_ERROR(coord->InvalidateIntent(coord_tid, intent.slot));
      coord->Drain(coord_tid);
      metrics_.Increment("serve_txn_redos");
    }
  }
  return Status::Ok();
}

std::uint64_t KvService::PpoViolations(std::string* report) {
  std::uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu());
    const auto violations = PpoChecker{}.Check(shard->recorder());
    total += violations.size();
    if (report != nullptr && !violations.empty()) {
      *report += "shard " + std::to_string(shard->id()) + ":\n" +
                 PpoChecker::Report(violations);
    }
  }
  return total;
}

void KvService::ExportResourceMetrics() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu());
    const Profile profile = BuildProfile(shard->recorder());
    nearpm::ExportResourceMetrics(
        profile, &metrics_, "serve_",
        "shard=\"" + EscapeLabelValue(std::to_string(shard->id())) + "\",");
  }
}

std::uint64_t KvService::CounterValue(const std::string& name) const {
  const auto& counters = metrics_.counters();
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

ServeStats KvService::Stats() const {
  ServeStats stats;
  stats.completed = CounterValue("serve_completed");
  stats.puts = CounterValue("serve_puts");
  stats.gets = CounterValue("serve_gets");
  stats.txns = CounterValue("serve_txns");
  stats.rejected = CounterValue("serve_rejected");
  stats.batches = CounterValue("serve_batches");
  for (const auto& shard : shards_) {
    stats.makespan_ns = std::max(stats.makespan_ns, shard->MakespanNs());
  }
  const auto& histograms = metrics_.histograms();
  if (auto it = histograms.find("serve_request_ns"); it != histograms.end()) {
    stats.request_p50_ns = it->second.Percentile(0.5);
    stats.request_p99_ns = it->second.Percentile(0.99);
  }
  if (stats.makespan_ns > 0) {
    stats.throughput_ops_per_sec = static_cast<double>(stats.completed) /
                                   (static_cast<double>(stats.makespan_ns) /
                                    1e9);
  }
  return stats;
}

}  // namespace serve
}  // namespace nearpm
