#include "src/serve/service.h"

#include <algorithm>
#include <utility>

#include "src/ndp/sync_machine.h"
#include "src/prof/profile.h"
#include "src/trace/ppo_checker.h"

namespace nearpm {
namespace serve {
namespace {

ServeResult Unexecuted(Status status) {
  ServeResult result;
  result.status = std::move(status);
  return result;
}

}  // namespace

KvService::KvService(const ServeOptions& options)
    : options_(options),
      router_(options.shards),
      worker_metrics_(static_cast<std::size_t>(options.shards) *
                      static_cast<std::size_t>(options.workers_per_shard)) {}

KvService::~KvService() { Stop(); }

StatusOr<std::unique_ptr<KvService>> KvService::Create(
    const ServeOptions& options) {
  if (options.shards < 1) {
    return InvalidArgument("service needs at least one shard");
  }
  if (options.workers_per_shard < 1 || options.batch_max < 1 ||
      options.queue_capacity < 1) {
    return InvalidArgument(
        "workers, batch_max and queue_capacity must be >= 1");
  }
  if (options.slo_enabled) {
    NEARPM_RETURN_IF_ERROR(options.slo.Validate());
  }
  auto service = std::unique_ptr<KvService>(new KvService(options));
  ShardOptions so;
  so.mode = options.mode;
  so.enforce_ppo = options.enforce_ppo;
  so.skip_recovery_replay = options.skip_recovery_replay;
  so.pm_size = options.pm_size;
  so.table_slots = options.table_slots;
  so.value_size = options.value_size;
  so.workers = options.workers_per_shard;
  so.hw = options.hw;
  for (int s = 0; s < options.shards; ++s) {
    auto shard = Shard::Create(so, s);
    if (!shard.ok()) {
      return shard.status();
    }
    service->shards_.push_back(std::move(*shard));
    service->queues_.push_back(
        std::make_unique<MpscRing<QueuedRequest>>(options.queue_capacity));
  }
  service->pump_rr_.assign(options.shards, 0);

  // Live observability: one flight ring fed by every shard recorder, one
  // sliding window per (shard, worker) -- mirroring the WorkerMetrics
  // layout so the hot path touches only writer-private state -- and the
  // optional watchdog over the merged view.
  if (options.flight_capacity > 0) {
    service->flight_ =
        std::make_unique<obs::FlightRecorder>(options.flight_capacity);
    for (int s = 0; s < options.shards; ++s) {
      service->shards_[s]->recorder().AttachSink(
          service->flight_->RegisterSource("shard" + std::to_string(s)));
    }
  }
  obs::WindowOptions wo;
  wo.window_ns = static_cast<SimTime>(options.slo.window_ns);
  wo.slow_k = options.slo.slow_k;
  const std::size_t blocks = static_cast<std::size_t>(options.shards) *
                             static_cast<std::size_t>(options.workers_per_shard);
  service->windows_.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    service->windows_.emplace_back(wo);
  }
  service->window_ptrs_.reserve(blocks);
  for (const obs::SlidingWindow& win : service->windows_) {
    service->window_ptrs_.push_back(&win);
  }
  if (options.slo_enabled) {
    obs::WatchdogOptions wd;
    wd.spec = options.slo;
    wd.flight = service->flight_.get();
    wd.dump_path = options.slo_dump_path;
    service->watchdog_ = std::make_unique<obs::SloWatchdog>(wd);
  }
  return service;
}

StatusOr<std::future<ServeResult>> KvService::Submit(ServeRequest request) {
  int shard_id;
  if (request.kind == RequestKind::kMultiPut) {
    if (request.pairs.empty()) {
      return InvalidArgument("MultiPut carries no pairs");
    }
    std::vector<std::uint64_t> keys;
    keys.reserve(request.pairs.size());
    for (const KvPair& pair : request.pairs) {
      keys.push_back(pair.key);
    }
    shard_id = router_.ParticipantsFor(keys).front();  // coordinator
  } else {
    shard_id = router_.ShardFor(request.key);
  }

  // Cheap pre-check before paying for the promise/future pair: a full ring
  // rejects most attempts here, without allocating the completion channel
  // the push would only throw away. TryPush below stays authoritative.
  MpscRing<QueuedRequest>& queue = *queues_[shard_id];
  const std::size_t depth = queue.size();
  if (depth >= queue.capacity()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhausted("shard " + std::to_string(shard_id) +
                             " queue full (" +
                             std::to_string(queue.capacity()) +
                             " requests), retry after draining");
  }
  QueuedRequest item;
  item.request = std::move(request);
  // The request's identity for the rest of its life: stamped on every trace
  // event it produces, on any node (a rejected push burns an id; ids only
  // need to be unique, not dense).
  item.trace_id = trace_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<ServeResult> done = item.done.get_future();
  if (!queue.TryPush(item)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhausted("shard " + std::to_string(shard_id) +
                             " queue full (" +
                             std::to_string(queue.capacity()) +
                             " requests), retry after draining");
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.Add(depth);
  return done;
}

void KvService::Start() {
  for (int s = 0; s < num_shards(); ++s) {
    for (int w = 0; w < options_.workers_per_shard; ++w) {
      workers_.emplace_back([this, s, w] { WorkerLoop(s, w); });
    }
  }
}

void KvService::Stop() {
  for (auto& queue : queues_) {
    queue->Close();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void KvService::WorkerLoop(int shard_id, int worker) {
  MpscRing<QueuedRequest>& queue = *queues_[shard_id];
  std::vector<QueuedRequest> batch;  // reused across batches
  batch.reserve(static_cast<std::size_t>(options_.batch_max));
  while (true) {
    auto first = queue.Pop();  // blocks; empty optional = closed + drained
    if (!first.has_value()) {
      return;
    }
    batch.clear();
    batch.push_back(std::move(*first));
    while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
      auto more = queue.TryPop();
      if (!more.has_value()) {
        break;
      }
      batch.push_back(std::move(*more));
    }
    ExecuteBatch(shard_id, worker, batch);
  }
}

std::uint64_t KvService::Pump() {
  std::uint64_t executed = 0;
  std::vector<QueuedRequest> batch;  // reused across batches
  batch.reserve(static_cast<std::size_t>(options_.batch_max));
  bool progress = true;
  while (progress) {
    progress = false;
    for (int s = 0; s < num_shards(); ++s) {
      batch.clear();
      while (batch.size() < static_cast<std::size_t>(options_.batch_max)) {
        auto item = queues_[s]->TryPop();
        if (!item.has_value()) {
          break;
        }
        batch.push_back(std::move(*item));
      }
      if (batch.empty()) {
        continue;
      }
      progress = true;
      executed += batch.size();
      const int worker = pump_rr_[s];
      pump_rr_[s] = (pump_rr_[s] + 1) % options_.workers_per_shard;
      ExecuteBatch(s, worker, batch);
    }
  }
  return executed;
}

Status KvService::ExecuteLocal(Shard& shard, ThreadId tid, QueuedRequest& item,
                               SimTime batch_start, WorkerMetrics& wm,
                               obs::SlidingWindow& win) {
  Runtime& rt = shard.rt();
  const SimTime start = rt.Now(tid);
  rt.Compute(tid, options_.request_parse_ns);

  // Every event the shard records while this request executes -- queue,
  // device pipeline, PM writes -- inherits its trace id (the caller holds
  // shard.mu(), which serializes all recorder access).
  TraceIdScope trace_scope(&shard.recorder(), item.trace_id);

  ServeResult result;
  result.shard = shard.id();
  result.trace_id = item.trace_id;
  switch (item.request.kind) {
    case RequestKind::kPut:
      result.status = shard.Put(tid, item.request.key, item.request.value);
      wm.puts.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestKind::kGet: {
      auto value = shard.Get(tid, item.request.key);
      if (value.ok()) {
        result.value = std::move(*value);
      }
      result.status = value.status();
      wm.gets.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    case RequestKind::kMultiPut:
      result.status = Internal("MultiPut routed to the local batch path");
      break;
  }

  const SimTime end = rt.Now(tid);
  NEARPM_TRACE_SPAN(&shard.recorder(), .phase = TracePhase::kServeRequest,
                    .pid = kTraceServePid,
                    .tid = static_cast<std::uint32_t>(tid), .ts = start,
                    .dur = end > start ? end - start : 1,
                    .seq = item.request.key);
  result.latency_ns = end - batch_start;
  wm.request_ns.Add(result.latency_ns);
  wm.completed.fetch_add(1, std::memory_order_relaxed);
  Status status = result.status;
  win.RecordLatency(end, result.latency_ns, !status.ok(), item.trace_id);
  item.done.set_value(std::move(result));
  return status;
}

void KvService::ExecuteBatch(int shard_id, int worker,
                             std::vector<QueuedRequest>& batch) {
  Shard& shard = *shards_[shard_id];
  const ThreadId tid = shard.WorkerTid(worker);
  WorkerMetrics& wm = worker_metrics(shard_id, worker);
  obs::SlidingWindow& win = window(shard_id, worker);

  // Split in place: locals run under one lock/doorbell/fence, transactions
  // after (they take their participants' locks themselves). No per-batch
  // scratch vectors -- this runs once per batch_max requests, but the
  // allocations still showed up at ring speed.
  std::size_t locals = 0;
  for (const QueuedRequest& item : batch) {
    locals += item.request.kind != RequestKind::kMultiPut ? 1u : 0u;
  }

  if (locals > 0) {
    std::lock_guard lock(shard.mu());
    Runtime& rt = shard.rt();
    const SimTime batch_start = rt.Now(tid);
    // The amortization: one submission doorbell and one fence cover the
    // whole batch (batch_max = 1 degenerates to per-request costs).
    rt.Compute(tid, rt.options().hw.cost.cmd_post_ns);
    NEARPM_TRACE_EVENT(&shard.recorder(), .phase = TracePhase::kServeEnqueue,
                       .pid = kTraceServePid,
                       .tid = static_cast<std::uint32_t>(tid),
                       .ts = batch_start, .arg0 = locals);
    // Residual backlog after this batch was picked up: the shard-queue
    // occupancy series the profiler and Perfetto counter track render.
    const std::uint64_t backlog = queues_[shard_id]->size();
    NEARPM_TRACE_EVENT(&shard.recorder(),
                       .phase = TracePhase::kServeQueueDepth,
                       .pid = kTraceServePid,
                       .tid = static_cast<std::uint32_t>(tid),
                       .ts = batch_start, .arg0 = backlog);
    win.RecordDepth(batch_start, backlog);
    for (QueuedRequest& item : batch) {
      if (item.request.kind == RequestKind::kMultiPut) {
        continue;
      }
      (void)ExecuteLocal(shard, tid, item, batch_start, wm, win);
    }
    rt.Fence(tid);
    const SimTime batch_end = rt.Now(tid);
    NEARPM_TRACE_SPAN(&shard.recorder(), .phase = TracePhase::kServeBatch,
                      .pid = kTraceServePid,
                      .tid = static_cast<std::uint32_t>(tid), .ts = batch_start,
                      .dur = batch_end > batch_start ? batch_end - batch_start
                                                     : 1,
                      .arg0 = locals);
    wm.batches.fetch_add(1, std::memory_order_relaxed);
    wm.batch_size.Add(locals);
    // Batch boundary = SLO evaluation point; still under the shard lock, so
    // a breach's kSloAlert instant can land on this shard's trace.
    SloCheck(batch_end, &shard.recorder());
  }

  if (locals == batch.size()) {
    return;
  }
  SimTime txn_last_end = 0;
  for (QueuedRequest& item : batch) {
    if (item.request.kind != RequestKind::kMultiPut) {
      continue;
    }
    // The coordinator is this shard (Submit routed the request here), so
    // its clock brackets the transaction for the window's latency sample.
    // Clock reads take the shard lock: a peer worker's transaction on this
    // shard advances the same TxnTid clock concurrently.
    const ThreadId coord_tid = shard.TxnTid();
    SimTime txn_start;
    {
      std::lock_guard lock(shard.mu());
      txn_start = shard.Now(coord_tid);
    }
    ServeResult result;
    result.shard = shard_id;
    result.trace_id = item.trace_id;
    result.status = ExecuteMultiPut(item.request.pairs, {}, item.trace_id);
    SimTime txn_end;
    {
      std::lock_guard lock(shard.mu());
      txn_end = shard.Now(coord_tid);
    }
    result.latency_ns = txn_end > txn_start ? txn_end - txn_start : 0;
    txn_last_end = txn_end;
    wm.completed.fetch_add(1, std::memory_order_relaxed);
    win.RecordLatency(txn_end, result.latency_ns, !result.status.ok(),
                      item.trace_id);
    item.done.set_value(std::move(result));
  }
  if (watchdog_ != nullptr) {
    std::lock_guard lock(shard.mu());
    SloCheck(txn_last_end, &shard.recorder());
  }
}

void KvService::SloCheck(SimTime now, TraceRecorder* recorder) {
  if (watchdog_ == nullptr) {
    return;
  }
  const std::uint64_t stalled = rejected_.load(std::memory_order_relaxed);
  const std::uint64_t attempted =
      stalled + enqueued_.load(std::memory_order_relaxed);
  watchdog_->MaybeCheck(now, window_ptrs_, stalled, attempted, recorder);
}

obs::WindowStats KvService::WindowSnapshot(SimTime now) const {
  return obs::SlidingWindow::Merge(window_ptrs_, now);
}

bool KvService::DumpFlightRecord(std::ostream& os) const {
  if (flight_ == nullptr) {
    return false;
  }
  obs::WriteFlightDump(os, *flight_, nullptr);
  return true;
}

std::vector<TimelineSource> KvService::TimelineSources() {
  std::vector<TimelineSource> sources;
  sources.reserve(shards_.size());
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu());
    sources.push_back({"shard" + std::to_string(shard->id()),
                       shard->recorder().Snapshot()});
  }
  return sources;
}

Status KvService::ExecuteMultiPut(const std::vector<KvPair>& pairs,
                                  const TxnStop& stop,
                                  std::uint64_t trace_id) {
  if (pairs.empty() || pairs.size() > Shard::kMaxTxnPairs) {
    return InvalidArgument("MultiPut must carry 1.." +
                           std::to_string(Shard::kMaxTxnPairs) + " pairs");
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(pairs.size());
  for (const KvPair& pair : pairs) {
    keys.push_back(pair.key);
  }
  const std::vector<int> participants = router_.ParticipantsFor(keys);
  const int k = static_cast<int>(participants.size());

  // Participant locks in ascending shard order: the only multi-lock path in
  // the service, so lock ordering is global and deadlock-free.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(participants.size());
  for (int p : participants) {
    locks.emplace_back(shards_[p]->mu());
  }

  Shard& coord = *shards_[participants.front()];
  const ThreadId coord_tid = coord.TxnTid();
  const std::uint64_t txn_id = ++txn_counter_;
  const SimTime txn_start = coord.Now(coord_tid);

  // Tag every participant's events with the originating request while their
  // locks are held (set_active_trace is recorder-shared state, serialized by
  // shard.mu()). Restores to 0 on every exit path, including the crash
  // injections and error returns above each phase.
  struct TxnTraceScopes {
    std::vector<TraceRecorder*> recorders;
    ~TxnTraceScopes() {
      for (TraceRecorder* r : recorders) {
        r->set_active_trace(0);
      }
    }
  } trace_scopes;
  if (trace_id != 0) {
    trace_scopes.recorders.reserve(participants.size());
    for (int p : participants) {
      TraceRecorder* r = &shards_[p]->recorder();
      r->set_active_trace(trace_id);
      trace_scopes.recorders.push_back(r);
    }
  }

  // Phase 1 -- durable intent on the coordinator. Drained before any slice
  // applies: after this point a crash anywhere leads recovery to redo the
  // whole transaction; before it, to none of it. All-or-nothing either way.
  auto intent_slot = coord.WriteIntent(coord_tid, txn_id, pairs);
  if (!intent_slot.ok()) {
    return intent_slot.status();
  }
  coord.Drain(coord_tid);
  if (stop.phase == TxnStopPhase::kAfterIntent) {
    return Unavailable("txn stopped by crash injection: after intent");
  }

  // Phase 2 -- duplicate the command to every participant's sync machine
  // (Figure 12: each device tracks local + remote completion).
  std::vector<SyncStateMachine> machines;
  machines.reserve(participants.size());
  for (int i = 0; i < k; ++i) {
    machines.emplace_back(k);
    NEARPM_RETURN_IF_ERROR(machines.back().ReceiveCommand());
  }

  // Phase 3 -- each participant applies its slice failure-atomically, drains
  // it durable and signals local completion.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    Shard& shard = *shards_[participants[ordinal]];
    const ThreadId tid = shard.TxnTid();
    for (const KvPair& pair : pairs) {
      if (router_.ShardFor(pair.key) != shard.id()) {
        continue;
      }
      NEARPM_RETURN_IF_ERROR(shard.Put(tid, pair.key, pair.value));
    }
    if (stop.phase == TxnStopPhase::kMidApply &&
        stop.apply_ordinal == ordinal) {
      // Puts issued but neither drained nor signalled: the crash model sees
      // the slice's device requests still in flight.
      return Unavailable("txn stopped by crash injection: mid apply " +
                         std::to_string(ordinal));
    }
    shard.Drain(tid);
    NEARPM_RETURN_IF_ERROR(machines[ordinal].ReceiveLocalComplete());
    if (stop.phase == TxnStopPhase::kAfterApply &&
        stop.apply_ordinal == ordinal) {
      return Unavailable("txn stopped by crash injection: after apply " +
                         std::to_string(ordinal));
    }
  }

  // Phase 4 -- completion exchange: every participant learns every remote
  // completion, and all clocks rendezvous at the slowest participant plus
  // one remote status exchange.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    for (int peer = 0; peer < k; ++peer) {
      if (peer == ordinal) {
        continue;
      }
      const DeviceId remote_index = peer < ordinal ? peer : peer - 1;
      NEARPM_RETURN_IF_ERROR(
          machines[ordinal].ReceiveRemoteComplete(remote_index));
    }
  }
  SimTime rendezvous = 0;
  for (int p : participants) {
    rendezvous = std::max(rendezvous, shards_[p]->Now(shards_[p]->TxnTid()));
  }
  rendezvous += coord.rt().options().hw.cost.ndp_remote_status_ns;
  for (int p : participants) {
    shards_[p]->rt().WaitUntil(shards_[p]->TxnTid(), rendezvous);
  }

  // Invariant 3: the retire write below is ordered after the cross-shard
  // synchronization, so it must not issue until every participant is back
  // in All-Complete.
  for (int ordinal = 0; ordinal < k; ++ordinal) {
    if (!machines[ordinal].AllComplete()) {
      return Internal("participant " + std::to_string(ordinal) +
                      " not All-Complete before intent retire");
    }
  }
  if (stop.phase == TxnStopPhase::kAfterSync) {
    return Unavailable("txn stopped by crash injection: after sync");
  }

  // Phase 5 -- retire the intent (the write ordered after the sync).
  NEARPM_RETURN_IF_ERROR(coord.InvalidateIntent(coord_tid, *intent_slot));
  coord.Drain(coord_tid);

  const SimTime txn_end = coord.Now(coord_tid);
  NEARPM_TRACE_SPAN(&coord.recorder(), .phase = TracePhase::kServeTxn,
                    .pid = kTraceServePid,
                    .tid = static_cast<std::uint32_t>(coord_tid),
                    .ts = txn_start,
                    .dur = txn_end > txn_start ? txn_end - txn_start : 1,
                    .seq = txn_id, .arg0 = static_cast<std::uint64_t>(k),
                    .trace = trace_id);
  txns_.fetch_add(1, std::memory_order_relaxed);
  txn_ns_.Add(txn_end - txn_start);
  return Status::Ok();
}

void KvService::CrashAll(const std::vector<CrashPlan>& plans) {
  for (int s = 0; s < num_shards(); ++s) {
    std::lock_guard lock(shards_[s]->mu());
    shards_[s]->Crash(s < static_cast<int>(plans.size()) ? plans[s]
                                                         : CrashPlan{});
  }
  // The power failure also loses every admitted-but-unexecuted request.
  for (auto& queue : queues_) {
    while (auto item = queue->TryPop()) {
      item->done.set_value(
          Unexecuted(Unavailable("request lost in power failure")));
    }
  }
}

Status KvService::RecoverAll() {
  // Quiesced path (no workers running): take every shard lock up front.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard->mu());
  }
  for (auto& shard : shards_) {
    NEARPM_RETURN_IF_ERROR(shard->Recover());
  }
  // Cross-shard intent redo: any transaction whose intent survived was past
  // its durability point, so recovery re-applies every pair (idempotent
  // upsert) before retiring the intent -- all-or-nothing across shards.
  for (auto& coord : shards_) {
    const ThreadId coord_tid = coord->TxnTid();
    auto intents = coord->ScanIntents(coord_tid);
    if (!intents.ok()) {
      return intents.status();
    }
    for (const IntentRecord& intent : *intents) {
      if (!options_.break_txn_redo) {
        for (const KvPair& pair : intent.pairs) {
          Shard& owner = *shards_[router_.ShardFor(pair.key)];
          NEARPM_RETURN_IF_ERROR(
              owner.Put(owner.TxnTid(), pair.key, pair.value));
          owner.Drain(owner.TxnTid());
        }
      }
      NEARPM_RETURN_IF_ERROR(coord->InvalidateIntent(coord_tid, intent.slot));
      coord->Drain(coord_tid);
      txn_redos_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

std::uint64_t KvService::PpoViolations(std::string* report) {
  std::uint64_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu());
    const auto violations = PpoChecker{}.Check(shard->recorder());
    total += violations.size();
    if (report != nullptr && !violations.empty()) {
      *report += "shard " + std::to_string(shard->id()) + ":\n" +
                 PpoChecker::Report(violations);
    }
  }
  return total;
}

void KvService::ExportResourceMetrics() {
  PublishMetrics();
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu());
    const Profile profile = BuildProfile(shard->recorder());
    nearpm::ExportResourceMetrics(
        profile, &metrics_, "serve_",
        "shard=\"" + EscapeLabelValue(std::to_string(shard->id())) + "\",");
  }
}

ServeStats KvService::Stats() const {
  // One pass over the per-worker blocks; no registry lookups (the old
  // implementation walked the counter map once per stat name).
  ServeStats stats;
  Histogram request_ns;
  for (const WorkerMetrics& wm : worker_metrics_) {
    stats.completed += wm.completed.load(std::memory_order_relaxed);
    stats.puts += wm.puts.load(std::memory_order_relaxed);
    stats.gets += wm.gets.load(std::memory_order_relaxed);
    stats.batches += wm.batches.load(std::memory_order_relaxed);
    request_ns.MergeFrom(wm.request_ns);
  }
  stats.txns = txns_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    stats.makespan_ns = std::max(stats.makespan_ns, shard->MakespanNs());
  }
  stats.request_p50_ns = request_ns.Percentile(0.5);
  stats.request_p99_ns = request_ns.Percentile(0.99);
  if (stats.makespan_ns > 0) {
    stats.throughput_ops_per_sec = static_cast<double>(stats.completed) /
                                   (static_cast<double>(stats.makespan_ns) /
                                    1e9);
  }
  return stats;
}

void KvService::PublishMetrics() {
  // Merge the worker blocks, then *store* the totals under the historical
  // registry names: publishing is idempotent, so scrapes never double-count.
  std::uint64_t completed = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t batches = 0;
  Histogram request_ns;
  Histogram batch_size;
  for (const WorkerMetrics& wm : worker_metrics_) {
    completed += wm.completed.load(std::memory_order_relaxed);
    puts += wm.puts.load(std::memory_order_relaxed);
    gets += wm.gets.load(std::memory_order_relaxed);
    batches += wm.batches.load(std::memory_order_relaxed);
    request_ns.MergeFrom(wm.request_ns);
    batch_size.MergeFrom(wm.batch_size);
  }
  metrics_.Counter("serve_completed").store(completed);
  metrics_.Counter("serve_puts").store(puts);
  metrics_.Counter("serve_gets").store(gets);
  metrics_.Counter("serve_batches").store(batches);
  metrics_.Counter("serve_txns").store(txns_.load(std::memory_order_relaxed));
  metrics_.Counter("serve_txn_redos")
      .store(txn_redos_.load(std::memory_order_relaxed));
  metrics_.Counter("serve_rejected")
      .store(rejected_.load(std::memory_order_relaxed));
  metrics_.Counter("serve_enqueued")
      .store(enqueued_.load(std::memory_order_relaxed));
  metrics_.Latency("serve_request_ns") = request_ns;
  metrics_.Latency("serve_batch_size") = batch_size;
  metrics_.Latency("serve_queue_depth") = queue_depth_;
  metrics_.Latency("serve_txn_ns") = txn_ns_;

  // The live view: sliding-window aggregates as of the slowest shard's
  // clock, published as gauges (they describe "now", not "ever").
  SimTime now = 0;
  for (const auto& shard : shards_) {
    now = std::max(now, shard->MakespanNs());
  }
  const obs::WindowStats win = WindowSnapshot(now);
  metrics_.SetGauge("serve_window_qps", win.Qps());
  metrics_.SetGauge("serve_window_error_rate", win.ErrorRate());
  metrics_.SetGauge("serve_window_count", static_cast<double>(win.count));
  metrics_.SetGauge("serve_window_p50_ns",
                    static_cast<double>(win.latency.Percentile(0.5)));
  metrics_.SetGauge("serve_window_p99_ns",
                    static_cast<double>(win.latency.Percentile(0.99)));
  metrics_.SetGauge("serve_window_depth_max",
                    static_cast<double>(win.depth_max));
  if (watchdog_ != nullptr) {
    metrics_.Counter("serve_slo_checks").store(watchdog_->checks());
    metrics_.Counter("serve_slo_alerts").store(watchdog_->alert_count());
  }
}

}  // namespace serve
}  // namespace nearpm
