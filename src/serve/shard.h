// One serving shard: an independent simulated machine (Runtime + NearPM
// devices + PersistentHeap) holding a hash-partitioned slice of the KV space.
//
// Persistent layout inside the heap's data window (all through failure-atomic
// undo-logged operations, so committed == durable):
//
//   [ table_slots x (8-byte tag | value) ]   the KV table, linear probing;
//                                            tag = key + 1, 0 = empty
//   [ kIntentSlots x intent slot ]           cross-shard transaction intents
//                                            (coordinator-side redo records)
//
// The volatile key -> slot index is rebuilt from the tags after recovery.
// A shard is driven by its service under the shard mutex: the Runtime, the
// heap and the trace recorder are single-threaded objects, so every worker
// (OS thread or pump iteration) serializes on mu() before touching them.
#ifndef SRC_SERVE_SHARD_H_
#define SRC_SERVE_SHARD_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/runtime.h"
#include "src/pmlib/heap.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace serve {

struct ShardOptions {
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool skip_recovery_replay = false;  // fault injection (fuzzer teeth)
  std::uint64_t pm_size = 16ull << 20;
  std::uint32_t table_slots = 512;  // KV capacity per shard (power of two)
  std::uint32_t value_size = 64;    // fixed value payload per key
  int workers = 2;                  // virtual worker threads on this shard
  // Device geometry for this shard's simulated machine (default = seed).
  hwmodel::HwConfig hw;
};

struct KvPair {
  std::uint64_t key = 0;
  std::vector<std::uint8_t> value;
};

// A decoded cross-shard transaction intent (see Shard::WriteIntent).
struct IntentRecord {
  int slot = 0;
  std::uint64_t txn_id = 0;
  std::vector<KvPair> pairs;
};

class Shard {
 public:
  // Up to this many pairs per cross-shard transaction: the whole intent
  // record must fit one undo-log slot payload (kMaxLogData) so persisting it
  // stays a single failure-atomic write.
  static constexpr std::uint64_t kMaxTxnPairs = 8;
  static constexpr int kIntentSlots = 4;

  static StatusOr<std::unique_ptr<Shard>> Create(const ShardOptions& options,
                                                 int shard_id);

  int id() const { return id_; }
  const ShardOptions& options() const { return options_; }
  Runtime& rt() { return *rt_; }
  TraceRecorder& recorder() { return *recorder_; }
  std::mutex& mu() { return mu_; }

  // Virtual-thread ids on this shard's runtime: one clock per worker plus a
  // dedicated clock for cross-shard transactions and recovery.
  ThreadId WorkerTid(int worker) const { return worker; }
  ThreadId TxnTid() const { return options_.workers; }

  // ---- KV operations (callers hold mu()) ------------------------------------
  // Failure-atomic upsert; the value is padded/truncated to value_size.
  Status Put(ThreadId t, std::uint64_t key,
             const std::vector<std::uint8_t>& value);
  // Crash-injection hook for the serve fuzzer: issues an upsert's data
  // writes but never commits, leaving the undo log open on thread `t`. The
  // next crash must roll the writes back (the volatile index is not
  // updated); nothing else may run on `t` afterwards.
  Status PutUncommitted(ThreadId t, std::uint64_t key,
                        const std::vector<std::uint8_t>& value);
  StatusOr<std::vector<std::uint8_t>> Get(ThreadId t, std::uint64_t key);
  std::uint64_t live_keys() const { return index_.size(); }

  // ---- Cross-shard transaction intents (coordinator side) -------------------
  // Persists a redo record for `pairs` as one failure-atomic write and
  // returns the intent slot. The caller must drain the devices before
  // applying any slice, so the intent is durable first.
  StatusOr<int> WriteIntent(ThreadId t, std::uint64_t txn_id,
                            const std::vector<KvPair>& pairs);
  Status InvalidateIntent(ThreadId t, int slot);
  // Valid intents surviving in PM (used by recovery).
  StatusOr<std::vector<IntentRecord>> ScanIntents(ThreadId t);

  // ---- Replication hooks (src/repl) -----------------------------------------
  // Dedicated virtual clock standing in for the NIC's one-sided write engine.
  // Raw stores only: it has no undo-log area, so no heap operation may ever
  // run on it.
  ThreadId NicTid() const { return options_.workers + 1; }
  // Intent-slot geometry, public so a remote primary can aim one-sided
  // writes at this shard's slots.
  std::uint64_t IntentRecordBytes() const { return IntentBytes(); }
  PmAddr IntentSlotAddr(int slot) const { return IntentAddr(slot); }

  // One-sided landing of a redo record into a free intent slot with raw
  // stores on `t` (no undo bracketing): the payload is written and persisted
  // BEFORE the magic word, so a torn record is self-invalidating -- if the
  // magic is durable, the payload already was. With persist=false the lines
  // stay pending in the write queue (fault injection: a doorbell rung now
  // races the record, the NPM007 hazard, and a crash may tear it). On
  // success *durable_at (optional) is the shard clock after the final
  // persist -- the instant the record is durable and the ack may be sent.
  StatusOr<int> LandRedoRecord(ThreadId t, std::uint64_t txn_id,
                               const std::vector<KvPair>& pairs, bool persist,
                               SimTime* durable_at);
  // Rings the NDP replay doorbell for a landed record: emits the
  // kReplDoorbell audit event (range = the record) and notifies an attached
  // sanitizer, which checks the record is durable before the ring (NPM007).
  void RingDoorbell(ThreadId t, int slot, std::uint64_t txn_id);
  // Local replay of a decoded intent: failure-atomic upsert of every pair,
  // then retire the slot. Idempotent, so recovery may replay freely.
  Status ApplyIntentRecord(ThreadId t, const IntentRecord& record);
  // Bit-exact image of the live table, ascending by key (the divergent-
  // replica oracle compares these across a replica group).
  StatusOr<std::vector<KvPair>> DumpTable(ThreadId t);

  // ---- Failure and recovery -------------------------------------------------
  CrashReport Crash(const CrashPlan& plan);
  // Mechanism recovery + volatile index rebuild (not the cross-shard intent
  // redo -- that is the service's job, it spans shards).
  Status Recover();

  void Drain(ThreadId t) { rt_->DrainDevices(t); }
  SimTime Now(ThreadId t) const { return rt_->Now(t); }
  SimTime MakespanNs() const { return rt_->stats().MaxThreadTime(); }

 private:
  Shard(const ShardOptions& options, int shard_id);

  std::uint64_t EntrySize() const { return 8 + options_.value_size; }
  PmAddr EntryAddr(std::uint32_t slot) const {
    return heap_->root() + slot * EntrySize();
  }
  std::uint64_t IntentBytes() const {
    return 24 + kMaxTxnPairs * (8 + options_.value_size);
  }
  PmAddr IntentAddr(int slot) const {
    return intent_base_ + static_cast<PmAddr>(slot) * IntentBytes();
  }

  // Finds the slot holding `key`, or the free slot an insert would claim.
  StatusOr<std::uint32_t> SlotFor(std::uint64_t key, bool* exists) const;
  Status RebuildIndex(ThreadId t);

  ShardOptions options_;
  int id_;
  Status table_full_;  // prebuilt: returned per miss once the table is full
  std::mutex mu_;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<Runtime> rt_;
  std::unique_ptr<PersistentHeap> heap_;
  PmAddr intent_base_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  // key -> slot
  std::vector<bool> occupied_;
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_SHARD_H_
