// Bounded MPMC request queue with non-blocking admission.
//
// Admission control is the producer side: TryPush never blocks, so a full
// queue surfaces as an immediate rejection the caller can turn into a
// caller-visible ResourceExhausted (backpressure) instead of unbounded
// buffering. The consumer side blocks (worker threads) or polls
// (deterministic pump mode). Close() wakes every blocked consumer for
// shutdown.
#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace nearpm {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  // Admission: false when the queue is full or closed (the item is not
  // consumed, so the caller can retry or report backpressure).
  bool TryPush(T& item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Non-blocking consume (deterministic pump mode).
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocking consume; empty optional means the queue closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_QUEUE_H_
