#include "src/serve/shard.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/serve/router.h"

namespace nearpm {
namespace serve {
namespace {

// Nonzero magic marking a valid (committed, not yet retired) intent slot.
constexpr std::uint64_t kIntentMagic = 0x53525645494E5431ull;  // "SRVEINT1"

std::uint64_t ReadU64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteU64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

Shard::Shard(const ShardOptions& options, int shard_id)
    : options_(options),
      id_(shard_id),
      table_full_(
          ResourceExhausted("shard " + std::to_string(shard_id) +
                            " table full")) {}

StatusOr<std::unique_ptr<Shard>> Shard::Create(const ShardOptions& options,
                                               int shard_id) {
  if (options.table_slots == 0) {
    return InvalidArgument("shard table needs at least one slot");
  }
  if (options.value_size == 0 || options.value_size > 256) {
    return InvalidArgument("value_size must be in [1, 256]");
  }
  if (options.workers < 1) {
    return InvalidArgument("a shard needs at least one worker");
  }
  auto shard = std::unique_ptr<Shard>(new Shard(options, shard_id));

  RuntimeOptions ro;
  ro.mode = options.mode;
  ro.pm_size = options.pm_size;
  ro.enforce_ppo = options.enforce_ppo;
  ro.skip_recovery_replay = options.skip_recovery_replay;
  ro.hw = options.hw;
  ro.max_threads = std::max(16, options.workers + 2);
  shard->recorder_ = std::make_unique<TraceRecorder>();
  shard->rt_ = std::make_unique<Runtime>(ro);
  shard->rt_->AttachTrace(shard->recorder_.get());

  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(options.table_slots) * shard->EntrySize();
  const std::uint64_t intent_off = AlignUp(table_bytes, kCacheLineSize);
  const std::uint64_t needed =
      intent_off + kIntentSlots * shard->IntentBytes();

  PoolArena arena(0);
  HeapOptions ho;
  // The serving layer is pinned to undo logging: a committed operation is
  // durable at CommitOp, which anchors the cross-shard intent protocol
  // (epoch-granular mechanisms could roll a committed intent back).
  ho.mechanism = Mechanism::kLogging;
  ho.data_size = AlignUp(needed, kPmPageSize);
  ho.threads = options.workers + 1;  // workers + the txn/recovery clock
  auto heap = PersistentHeap::Create(*shard->rt_, arena, ho);
  if (!heap.ok()) {
    return heap.status();
  }
  shard->heap_ = std::move(*heap);
  shard->intent_base_ = shard->heap_->root() + intent_off;
  shard->occupied_.assign(options.table_slots, false);
  return shard;
}

StatusOr<std::uint32_t> Shard::SlotFor(std::uint64_t key, bool* exists) const {
  if (auto it = index_.find(key); it != index_.end()) {
    *exists = true;
    return it->second;
  }
  *exists = false;
  // index_ and occupied_ are updated in lockstep, so a full table is an O(1)
  // size check -- without it every miss on a full table walks all
  // table_slots entries, which is what a saturated shard spends its time on.
  // The status is prebuilt once: a saturated shard returns it per miss, and
  // rebuilding the message each time is a string-concatenation chain.
  if (index_.size() >= options_.table_slots) {
    return table_full_;
  }
  const std::uint32_t start =
      static_cast<std::uint32_t>(ShardRouter::Mix(key) % options_.table_slots);
  for (std::uint32_t probe = 0; probe < options_.table_slots; ++probe) {
    const std::uint32_t slot = (start + probe) % options_.table_slots;
    if (!occupied_[slot]) {
      return slot;
    }
  }
  return table_full_;
}

Status Shard::Put(ThreadId t, std::uint64_t key,
                  const std::vector<std::uint8_t>& value) {
  bool exists = false;
  auto slot = SlotFor(key, &exists);
  if (!slot.ok()) {
    return slot.status();
  }
  std::vector<std::uint8_t> padded(options_.value_size, 0);
  std::memcpy(padded.data(), value.data(),
              std::min<std::size_t>(value.size(), padded.size()));

  NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
  NEARPM_RETURN_IF_ERROR(
      heap_->Store<std::uint64_t>(t, EntryAddr(*slot), key + 1));
  NEARPM_RETURN_IF_ERROR(heap_->Write(t, EntryAddr(*slot) + 8, padded));
  NEARPM_RETURN_IF_ERROR(heap_->CommitOp(t));
  index_[key] = *slot;
  occupied_[*slot] = true;
  return Status::Ok();
}

Status Shard::PutUncommitted(ThreadId t, std::uint64_t key,
                             const std::vector<std::uint8_t>& value) {
  bool exists = false;
  auto slot = SlotFor(key, &exists);
  if (!slot.ok()) {
    return slot.status();
  }
  std::vector<std::uint8_t> padded(options_.value_size, 0);
  std::memcpy(padded.data(), value.data(),
              std::min<std::size_t>(value.size(), padded.size()));
  NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
  NEARPM_RETURN_IF_ERROR(
      heap_->Store<std::uint64_t>(t, EntryAddr(*slot), key + 1));
  return heap_->Write(t, EntryAddr(*slot) + 8, padded);
  // Deliberately no CommitOp: recovery must undo everything above.
}

StatusOr<std::vector<std::uint8_t>> Shard::Get(ThreadId t, std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return NotFound("key " + std::to_string(key) + " not on shard " +
                    std::to_string(id_));
  }
  std::vector<std::uint8_t> value(options_.value_size);
  NEARPM_RETURN_IF_ERROR(heap_->Read(t, EntryAddr(it->second) + 8, value));
  return value;
}

StatusOr<int> Shard::WriteIntent(ThreadId t, std::uint64_t txn_id,
                                 const std::vector<KvPair>& pairs) {
  if (pairs.empty() || pairs.size() > kMaxTxnPairs) {
    return InvalidArgument("transaction must carry 1.." +
                           std::to_string(kMaxTxnPairs) + " pairs");
  }
  int slot = -1;
  for (int s = 0; s < kIntentSlots; ++s) {
    auto magic = heap_->Load<std::uint64_t>(t, IntentAddr(s));
    if (!magic.ok()) {
      return magic.status();
    }
    if (*magic != kIntentMagic) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    return ResourceExhausted("all intent slots busy on shard " +
                             std::to_string(id_));
  }

  std::vector<std::uint8_t> record(IntentBytes(), 0);
  WriteU64(record.data(), kIntentMagic);
  WriteU64(record.data() + 8, txn_id);
  WriteU64(record.data() + 16, pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::uint8_t* p = record.data() + 24 + i * (8 + options_.value_size);
    WriteU64(p, pairs[i].key);
    std::memcpy(p + 8, pairs[i].value.data(),
                std::min<std::size_t>(pairs[i].value.size(),
                                      options_.value_size));
  }

  // One failure-atomic write of the whole record: either the committed
  // intent (magic and all) survives a crash, or undo rollback erases it.
  NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
  NEARPM_RETURN_IF_ERROR(heap_->Write(t, IntentAddr(slot), record));
  NEARPM_RETURN_IF_ERROR(heap_->CommitOp(t));
  return slot;
}

StatusOr<int> Shard::LandRedoRecord(ThreadId t, std::uint64_t txn_id,
                                    const std::vector<KvPair>& pairs,
                                    bool persist, SimTime* durable_at) {
  if (pairs.empty() || pairs.size() > kMaxTxnPairs) {
    return InvalidArgument("redo record must carry 1.." +
                           std::to_string(kMaxTxnPairs) + " pairs");
  }
  int slot = -1;
  for (int s = 0; s < kIntentSlots; ++s) {
    if (rt_->Load<std::uint64_t>(t, IntentAddr(s)) != kIntentMagic) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    return ResourceExhausted("all intent slots busy on shard " +
                             std::to_string(id_));
  }

  std::vector<std::uint8_t> record(IntentBytes(), 0);
  WriteU64(record.data() + 8, txn_id);
  WriteU64(record.data() + 16, pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::uint8_t* p = record.data() + 24 + i * (8 + options_.value_size);
    WriteU64(p, pairs[i].key);
    std::memcpy(p + 8, pairs[i].value.data(),
                std::min<std::size_t>(pairs[i].value.size(),
                                      options_.value_size));
  }

  const PmAddr base = IntentAddr(slot);
  rt_->Write(t, base + 8,
             {record.data() + 8, static_cast<std::size_t>(IntentBytes() - 8)});
  if (persist) {
    rt_->Persist(t, base + 8, IntentBytes() - 8);
  }
  rt_->Store<std::uint64_t>(t, base, kIntentMagic);
  if (persist) {
    rt_->Persist(t, base, 8);
  }
  if (durable_at != nullptr) {
    *durable_at = rt_->Now(t);
  }
  return slot;
}

void Shard::RingDoorbell(ThreadId t, int slot, std::uint64_t txn_id) {
  const AddrRange range{IntentAddr(slot), IntentAddr(slot) + IntentBytes()};
  NEARPM_TRACE_EVENT(recorder_.get(), .phase = TracePhase::kReplDoorbell,
                     .pid = kTraceReplPid,
                     .tid = static_cast<std::uint32_t>(id_),
                     .ts = rt_->Now(t), .seq = txn_id, .range = range,
                     .arg0 = static_cast<std::uint64_t>(slot));
  if (analyze::PmSanitizer* san = rt_->sanitizer()) {
    san->OnReplDoorbell(t, range, rt_->Now(t));
  }
}

Status Shard::ApplyIntentRecord(ThreadId t, const IntentRecord& record) {
  for (const KvPair& pair : record.pairs) {
    NEARPM_RETURN_IF_ERROR(Put(t, pair.key, pair.value));
  }
  rt_->DrainDevices(t);
  NEARPM_RETURN_IF_ERROR(InvalidateIntent(t, record.slot));
  rt_->DrainDevices(t);
  return Status::Ok();
}

StatusOr<std::vector<KvPair>> Shard::DumpTable(ThreadId t) {
  std::vector<KvPair> pairs;
  for (std::uint32_t slot = 0; slot < options_.table_slots; ++slot) {
    auto tag = heap_->Load<std::uint64_t>(t, EntryAddr(slot));
    if (!tag.ok()) {
      return tag.status();
    }
    if (*tag == 0) {
      continue;
    }
    KvPair pair;
    pair.key = *tag - 1;
    pair.value.resize(options_.value_size);
    NEARPM_RETURN_IF_ERROR(heap_->Read(t, EntryAddr(slot) + 8, pair.value));
    pairs.push_back(std::move(pair));
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const KvPair& a, const KvPair& b) { return a.key < b.key; });
  return pairs;
}

Status Shard::InvalidateIntent(ThreadId t, int slot) {
  NEARPM_RETURN_IF_ERROR(heap_->BeginOp(t));
  NEARPM_RETURN_IF_ERROR(
      heap_->Store<std::uint64_t>(t, IntentAddr(slot), std::uint64_t{0}));
  return heap_->CommitOp(t);
}

StatusOr<std::vector<IntentRecord>> Shard::ScanIntents(ThreadId t) {
  std::vector<IntentRecord> records;
  std::vector<std::uint8_t> buffer(IntentBytes());
  for (int s = 0; s < kIntentSlots; ++s) {
    NEARPM_RETURN_IF_ERROR(heap_->Read(t, IntentAddr(s), buffer));
    if (ReadU64(buffer.data()) != kIntentMagic) {
      continue;
    }
    IntentRecord record;
    record.slot = s;
    record.txn_id = ReadU64(buffer.data() + 8);
    const std::uint64_t count = ReadU64(buffer.data() + 16);
    if (count == 0 || count > kMaxTxnPairs) {
      return Internal("corrupt intent slot " + std::to_string(s) +
                      " on shard " + std::to_string(id_) + ": pair count " +
                      std::to_string(count));
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t* p =
          buffer.data() + 24 + i * (8 + options_.value_size);
      KvPair pair;
      pair.key = ReadU64(p);
      pair.value.assign(p + 8, p + 8 + options_.value_size);
      record.pairs.push_back(std::move(pair));
    }
    records.push_back(std::move(record));
  }
  return records;
}

CrashReport Shard::Crash(const CrashPlan& plan) {
  CrashReport report = rt_->InjectCrashAt(plan);
  heap_->DropVolatile();
  index_.clear();
  std::fill(occupied_.begin(), occupied_.end(), false);
  return report;
}

Status Shard::Recover() {
  NEARPM_RETURN_IF_ERROR(heap_->Recover());
  return RebuildIndex(TxnTid());
}

Status Shard::RebuildIndex(ThreadId t) {
  index_.clear();
  std::fill(occupied_.begin(), occupied_.end(), false);
  for (std::uint32_t slot = 0; slot < options_.table_slots; ++slot) {
    auto tag = heap_->Load<std::uint64_t>(t, EntryAddr(slot));
    if (!tag.ok()) {
      return tag.status();
    }
    if (*tag != 0) {
      index_[*tag - 1] = slot;
      occupied_[slot] = true;
    }
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace nearpm
