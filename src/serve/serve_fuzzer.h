// Crash-state fuzzing for the sharded serving layer: the cross-shard
// analogue of src/fuzz/crash_fuzzer.h.
//
// Every case is fully deterministic: a seeded warmup (committed and drained
// single-shard puts through the queue/batch path), a committed-but-undrained
// tail (puts whose device requests are still in flight at the failure, so
// hardware journal replay has real work to do), then one cross-shard
// MultiPut abandoned at a chosen TxnStopPhase, a power failure on every
// shard with a uniform pending-line survival mask, and RecoverAll().
//
// Oracles:
//  * recovery must succeed on every shard;
//  * drained warmup data must survive bit-for-bit (kLostCommitted);
//  * every undrained tail key must be atomic -- absent or exactly its new
//    value, never torn (kTornWrite);
//  * a deliberately uncommitted put left open at the failure (undo log
//    durable, CommitOp never issued) must be rolled back
//    (kUncommittedDurable; this is what catches the skip_recovery_replay
//    ablation, which scrubs the log without applying it);
//  * the crashed MultiPut must be all-or-nothing across shards, and since
//    every stop phase lies after the intent became durable, recovery's
//    intent redo must make it all-or-ALL (kTornTxn; catches break_txn_redo);
//  * the recorded traces must satisfy the Section 4 PPO invariants
//    (kPpoViolation; catches the enforce_ppo ablation);
//  * the recovered service must serve fresh puts, gets and MultiPuts
//    exactly (kPostRecoveryMismatch).
#ifndef SRC_SERVE_SERVE_FUZZER_H_
#define SRC_SERVE_SERVE_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/serve/service.h"

namespace nearpm {
namespace serve {

struct ServeFuzzConfig {
  int shards = 3;
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool skip_recovery_replay = false;  // ablation: broken hardware replay
  bool break_txn_redo = false;        // ablation: intents scrubbed, not redone
  std::uint32_t table_slots = 64;
  std::uint32_t value_size = 32;
  // When set, Run() deposits each shard's full trace snapshot (warmup, the
  // stopped txn, the crash) here, one vector per shard -- each shard is its
  // own address space, so offline rule-engine replay (nearpm_analyze
  // --corpus) runs one sanitizer per snapshot.
  std::vector<std::vector<TraceEvent>>* trace_sink = nullptr;
};

// One deterministic crash schedule. Keys and values derive from the seed;
// the stop phase pins where inside the cross-shard protocol the power fails.
struct ServeFuzzCase {
  std::uint64_t seed = 1;
  std::uint64_t warmup_ops = 6;  // committed + drained before the txn
  std::uint64_t txn_pairs = 4;   // pairs in the crashed MultiPut
  TxnStopPhase phase = TxnStopPhase::kNone;
  int apply_ordinal = 0;       // participant ordinal for the *Apply phases
  // Failure instant as an offset from each shard's own clock at the stop
  // point (0 = "right now"). Shard timelines are independent, so an offset
  // lands the failure inside every shard's in-flight window at once --
  // Probe() enumerates the interesting offsets from the shard traces.
  std::uint64_t crash_offset = 0;
  bool lines_survive = false;  // uniform survival for every pending CPU line
};

enum class ServeFailureKind : std::uint8_t {
  kNone = 0,
  kHarness,               // the schedule itself could not be executed
  kRecoverError,          // RecoverAll returned an error
  kLostCommitted,         // drained warmup data missing or wrong
  kTornWrite,             // an undrained tail put recovered half-applied
  kUncommittedDurable,    // an open (uncommitted) put was not rolled back
  kTornTxn,               // the MultiPut recovered partially across shards
  kPpoViolation,          // a shard trace violates a Section 4 invariant
  kPostRecoveryMismatch,  // the recovered service misbehaves afterwards
};

const char* ServeFailureKindName(ServeFailureKind kind);

struct ServeCaseResult {
  ServeFailureKind failure = ServeFailureKind::kNone;
  std::string detail;

  bool ok() const { return failure == ServeFailureKind::kNone; }
};

struct ServeFuzzFailure {
  ServeFuzzCase fuzz_case;
  ServeCaseResult result;
};

class ServeFuzzer {
 public:
  explicit ServeFuzzer(const ServeFuzzConfig& config) : config_(config) {}

  const ServeFuzzConfig& config() const { return config_; }

  // Executes the case end to end (warmup, tail, txn, crash, recovery,
  // oracles).
  ServeCaseResult Run(const ServeFuzzCase& c) const;

  // Executes the case's prefix without failing and enumerates the candidate
  // failure offsets reachable from its stop point (union over every shard
  // of that shard's candidate instants relative to its own clock).
  StatusOr<std::vector<SimTime>> Probe(const ServeFuzzCase& c) const;

  // Participant shard count of the MultiPut the case derives (the ordinal
  // range the *Apply stop phases can target).
  int ParticipantCount(const ServeFuzzCase& c) const;

  // Exhaustive sweep of one schedule: every stop phase, every participant
  // ordinal for the *Apply phases, crashing "right now" plus at up to
  // `max_candidates` enumerated in-flight offsets, under the all-drop and
  // all-survive masks. Appends failing cases to `failures` when non-null.
  fuzz::SweepStats Systematic(std::uint64_t seed, std::size_t max_candidates,
                              std::vector<ServeFuzzFailure>* failures) const;

  // Corpus glue (kind == "serve"): shares the bank repro format, mapping
  // break_recovery to skip_recovery_replay.
  fuzz::CrashRepro ToRepro(const ServeFuzzCase& c, const std::string& expect,
                           const std::string& note) const;
  static ServeFuzzConfig ConfigFromRepro(const fuzz::CrashRepro& repro);
  static StatusOr<ServeFuzzCase> CaseFromRepro(const fuzz::CrashRepro& repro);

  static const char* PhaseName(TxnStopPhase phase);
  static StatusOr<TxnStopPhase> PhaseFromName(const std::string& name);

 private:
  struct PrefixEnv;

  // Warmup + tail + the stopped MultiPut inside a fresh service; harness
  // errors surface as a non-ok Status.
  Status ExecutePrefix(const ServeFuzzCase& c, PrefixEnv* env) const;

  ServeFuzzConfig config_;
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_SERVE_FUZZER_H_
