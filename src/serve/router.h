// ShardRouter: hash-partitions the key space across N serving shards.
//
// Every shard is an independent Runtime + NearPM device group, so routing is
// the only place the service decides which simulated machine owns a key. The
// split must be stable (recovery re-routes the same keys to the same shards)
// and well mixed (adjacent keys land on different shards, so a MultiPut over
// a small key neighbourhood still exercises the cross-shard path), hence a
// splitmix64 finalizer rather than a plain modulo of the raw key.
//
// With replication (src/repl), a "shard" index names a *replica group* of K
// nodes; node ids are dense (group * replicas + replica) and the router also
// tracks which replica of each group currently serves as primary. Promotion
// is volatile routing state: a full-cluster restart re-derives it from the
// surviving replicas, which is deterministic (lowest surviving index wins).
#ifndef SRC_SERVE_ROUTER_H_
#define SRC_SERVE_ROUTER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nearpm {
namespace serve {

class ShardRouter {
 public:
  explicit ShardRouter(int num_shards, int replicas = 1)
      : num_shards_(num_shards), replicas_(replicas < 1 ? 1 : replicas),
        primary_(static_cast<std::size_t>(num_shards < 0 ? 0 : num_shards),
                 0) {}

  int num_shards() const { return num_shards_; }

  // ---- Replica-group addressing (src/repl) ----------------------------------
  int replicas() const { return replicas_; }
  int num_nodes() const { return num_shards_ * replicas_; }
  int NodeFor(int group, int replica) const {
    return group * replicas_ + replica;
  }
  int GroupOf(int node) const { return node / replicas_; }
  int ReplicaOf(int node) const { return node % replicas_; }

  // The replica of `group` requests are currently routed to.
  int PrimaryReplica(int group) const {
    return primary_[static_cast<std::size_t>(group)];
  }
  int PrimaryNodeFor(int group) const {
    return NodeFor(group, PrimaryReplica(group));
  }
  // Failover: re-route the group to a promoted backup.
  void Promote(int group, int replica) {
    primary_[static_cast<std::size_t>(group)] = replica;
  }

  int ShardFor(std::uint64_t key) const {
    return static_cast<int>(Mix(key) % static_cast<std::uint64_t>(num_shards_));
  }

  // Distinct participating shards of a multi-key operation, ascending. The
  // coordinator of a cross-shard transaction is the first entry.
  std::vector<int> ParticipantsFor(
      const std::vector<std::uint64_t>& keys) const {
    std::vector<int> shards;
    shards.reserve(keys.size());
    for (std::uint64_t key : keys) {
      shards.push_back(ShardFor(key));
    }
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    return shards;
  }

  static std::uint64_t Mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

 private:
  int num_shards_;
  int replicas_ = 1;
  std::vector<int> primary_;  // per group: replica currently routed to
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_ROUTER_H_
