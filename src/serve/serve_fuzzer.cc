#include "src/serve/serve_fuzzer.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/serve/router.h"
#include "src/trace/crash_cursor.h"

namespace nearpm {
namespace serve {
namespace {

// Committed-but-undrained puts issued right before the transaction, so the
// failure catches their device requests in flight (hardware journal replay
// territory -- exactly what skip_recovery_replay breaks).
constexpr std::uint64_t kTailOps = 3;

// Key ranges are disjoint by construction so the oracles never alias:
// warmup < 2000, txn in [10000, 11000), tail in [20000, 21000).
std::uint64_t WarmupKey(std::uint64_t seed, std::uint64_t i) {
  return 1000 +
         ShardRouter::Mix(seed ^ (0x9E3779B97F4A7C15ull * (i + 1))) % 997;
}

std::uint64_t TxnKey(std::uint64_t seed, std::uint64_t j) {
  return 10000 + j * 97 + ShardRouter::Mix(seed) % 89;
}

std::uint64_t TailKey(std::uint64_t seed, std::uint64_t j) {
  return 20000 + j * 131 + ShardRouter::Mix(seed ^ 0xABCDull) % 101;
}

ServeCaseResult Fail(ServeFailureKind kind, std::string detail) {
  ServeCaseResult result;
  result.failure = kind;
  result.detail = std::move(detail);
  return result;
}

// Deterministic value payload: generation distinguishes warmup (0), the
// crashed txn (1) and post-recovery traffic (2).
std::vector<std::uint8_t> MakeValue(const ServeFuzzConfig& config,
                                    std::uint64_t seed, std::uint64_t key,
                                    std::uint64_t generation) {
  const std::uint64_t base =
      ShardRouter::Mix(seed ^ (key * 3 + 1) ^ (generation << 56));
  std::vector<std::uint8_t> value(config.value_size);
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<std::uint8_t>((base >> ((i % 8) * 8)) ^ i);
  }
  return value;
}

}  // namespace

const char* ServeFailureKindName(ServeFailureKind kind) {
  switch (kind) {
    case ServeFailureKind::kNone:
      return "none";
    case ServeFailureKind::kHarness:
      return "harness";
    case ServeFailureKind::kRecoverError:
      return "recover_error";
    case ServeFailureKind::kLostCommitted:
      return "lost_committed";
    case ServeFailureKind::kTornWrite:
      return "torn_write";
    case ServeFailureKind::kUncommittedDurable:
      return "uncommitted_durable";
    case ServeFailureKind::kTornTxn:
      return "torn_txn";
    case ServeFailureKind::kPpoViolation:
      return "ppo_violation";
    case ServeFailureKind::kPostRecoveryMismatch:
      return "post_recovery_mismatch";
  }
  return "unknown";
}

const char* ServeFuzzer::PhaseName(TxnStopPhase phase) {
  switch (phase) {
    case TxnStopPhase::kNone:
      return "none";
    case TxnStopPhase::kAfterIntent:
      return "after_intent";
    case TxnStopPhase::kMidApply:
      return "mid_apply";
    case TxnStopPhase::kAfterApply:
      return "after_apply";
    case TxnStopPhase::kAfterSync:
      return "after_sync";
  }
  return "unknown";
}

StatusOr<TxnStopPhase> ServeFuzzer::PhaseFromName(const std::string& name) {
  for (TxnStopPhase phase :
       {TxnStopPhase::kNone, TxnStopPhase::kAfterIntent,
        TxnStopPhase::kMidApply, TxnStopPhase::kAfterApply,
        TxnStopPhase::kAfterSync}) {
    if (name == PhaseName(phase)) {
      return phase;
    }
  }
  return InvalidArgument("unknown txn stop phase \"" + name + "\"");
}

int ServeFuzzer::ParticipantCount(const ServeFuzzCase& c) const {
  ShardRouter router(config_.shards);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t j = 0; j < c.txn_pairs; ++j) {
    keys.push_back(TxnKey(c.seed, j));
  }
  return static_cast<int>(router.ParticipantsFor(keys).size());
}

// Everything Run and Probe share: the service with the schedule's prefix
// executed, plus the reference data the oracles compare against.
struct ServeFuzzer::PrefixEnv {
  std::unique_ptr<KvService> service;
  // Final expected value per warmup key (later puts overwrite earlier).
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> warmup;
  std::vector<std::uint64_t> tail_keys;
  std::vector<KvPair> pairs;       // the crashed MultiPut
  std::uint64_t open_key = 0;      // the deliberately uncommitted put
};

Status ServeFuzzer::ExecutePrefix(const ServeFuzzCase& c,
                                  PrefixEnv* env) const {
  if (c.txn_pairs == 0 || c.txn_pairs > Shard::kMaxTxnPairs) {
    return InvalidArgument("txn_pairs out of range");
  }

  ServeOptions so;
  so.shards = config_.shards;
  so.workers_per_shard = 1;
  so.queue_capacity = c.warmup_ops + kTailOps + 16;
  so.batch_max = 4;
  so.mode = config_.mode;
  so.enforce_ppo = config_.enforce_ppo;
  so.skip_recovery_replay = config_.skip_recovery_replay;
  so.break_txn_redo = config_.break_txn_redo;
  so.table_slots = config_.table_slots;
  so.value_size = config_.value_size;
  auto service_or = KvService::Create(so);
  if (!service_or.ok()) {
    return service_or.status();
  }
  env->service = std::move(*service_or);
  KvService& svc = *env->service;

  // ---- Warmup: committed puts through the queue/batch path, then drained
  // durable on every shard, so nothing here may ever be lost.
  for (std::uint64_t i = 0; i < c.warmup_ops; ++i) {
    const std::uint64_t key = WarmupKey(c.seed, i);
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = MakeValue(config_, c.seed, key, 0);
    auto fut = svc.Submit(std::move(req));
    if (!fut.ok()) {
      return fut.status();
    }
    bool replaced = false;
    for (auto& [wkey, wvalue] : env->warmup) {
      if (wkey == key) {
        wvalue = MakeValue(config_, c.seed, key, 0);
        replaced = true;
      }
    }
    if (!replaced) {
      env->warmup.emplace_back(key, MakeValue(config_, c.seed, key, 0));
    }
  }
  svc.Pump();
  for (int s = 0; s < svc.num_shards(); ++s) {
    std::lock_guard lock(svc.shard(s).mu());
    svc.shard(s).Drain(svc.shard(s).TxnTid());
  }

  // ---- Tail: committed but deliberately NOT drained, so the failure finds
  // their device requests in flight.
  for (std::uint64_t j = 0; j < kTailOps; ++j) {
    const std::uint64_t key = TailKey(c.seed, j);
    ServeRequest req;
    req.kind = RequestKind::kPut;
    req.key = key;
    req.value = MakeValue(config_, c.seed, key, 0);
    auto fut = svc.Submit(std::move(req));
    if (!fut.ok()) {
      return fut.status();
    }
    env->tail_keys.push_back(key);
  }
  svc.Pump();

  // ---- The cross-shard MultiPut, abandoned mid-protocol.
  for (std::uint64_t j = 0; j < c.txn_pairs; ++j) {
    KvPair pair;
    pair.key = TxnKey(c.seed, j);
    pair.value = MakeValue(config_, c.seed, pair.key, 1);
    env->pairs.push_back(std::move(pair));
  }

  // ---- One deliberately uncommitted upsert, parked on the coordinator
  // shard. The txn path drains that shard before every stop phase, so at
  // the failure the open op's undo records and data writes are all durable
  // and recovery must roll the data back -- the key ends up absent unless
  // the mechanism-side replay was skipped. Key range [30000, ...) is
  // disjoint from warmup, tail and txn keys.
  {
    std::vector<std::uint64_t> keys;
    for (const KvPair& pair : env->pairs) {
      keys.push_back(pair.key);
    }
    const int coordinator = svc.router().ParticipantsFor(keys).front();
    std::uint64_t key = 30000 + ShardRouter::Mix(c.seed ^ 0x5EEDull) % 211;
    while (svc.router().ShardFor(key) != coordinator) {
      ++key;
    }
    env->open_key = key;
    Shard& shard = svc.shard(coordinator);
    std::lock_guard lock(shard.mu());
    NEARPM_RETURN_IF_ERROR(shard.PutUncommitted(
        shard.WorkerTid(0), key, MakeValue(config_, c.seed, key, 0)));
  }

  TxnStop stop;
  stop.phase = c.phase;
  stop.apply_ordinal = c.apply_ordinal;
  const Status txn_status = svc.ExecuteMultiPut(env->pairs, stop);
  if (c.phase == TxnStopPhase::kNone) {
    if (!txn_status.ok()) {
      return Internal("txn failed: " + txn_status.ToString());
    }
  } else if (txn_status.code() != StatusCode::kUnavailable) {
    return Internal("stop did not fire: " + txn_status.ToString());
  }
  return Status::Ok();
}

StatusOr<std::vector<SimTime>> ServeFuzzer::Probe(
    const ServeFuzzCase& c) const {
  PrefixEnv env;
  NEARPM_RETURN_IF_ERROR(ExecutePrefix(c, &env));
  KvService& svc = *env.service;

  // Each shard's candidates relative to its own clock: offset 0 is "right
  // now" everywhere, larger offsets land inside the in-flight windows of
  // every shard simultaneously.
  std::vector<SimTime> offsets;
  for (int s = 0; s < svc.num_shards(); ++s) {
    Shard& shard = svc.shard(s);
    std::lock_guard lock(shard.mu());
    const SimTime now = shard.rt().stats().MaxThreadTime();
    CrashCursorOptions co;
    co.epoch = shard.recorder().epoch();
    co.min_time = now;
    for (SimTime t : EnumerateCrashPoints(shard.recorder(), co)) {
      if (t > now) {
        offsets.push_back(t - now);
      }
    }
  }
  std::sort(offsets.begin(), offsets.end());
  offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
  return offsets;
}

ServeCaseResult ServeFuzzer::Run(const ServeFuzzCase& c) const {
  PrefixEnv env;
  Status prefix = ExecutePrefix(c, &env);
  if (!prefix.ok()) {
    return Fail(ServeFailureKind::kHarness, "harness: " + prefix.ToString());
  }
  KvService& svc = *env.service;

  // ---- Power failure on every shard, offset into each shard's own
  // timeline so the instant lands inside its in-flight window.
  std::vector<CrashPlan> plans(svc.num_shards());
  for (int s = 0; s < svc.num_shards(); ++s) {
    Shard& shard = svc.shard(s);
    std::lock_guard lock(shard.mu());
    const std::uint64_t pending = shard.rt().space().PendingLineAddrs().size();
    plans[s].crash_time =
        c.crash_offset == 0
            ? 0  // right now
            : shard.rt().stats().MaxThreadTime() + c.crash_offset;
    plans[s].line_survival.assign(pending, c.lines_survive);
  }
  svc.CrashAll(plans);

  if (config_.trace_sink != nullptr) {
    config_.trace_sink->clear();
    for (int s = 0; s < svc.num_shards(); ++s) {
      config_.trace_sink->push_back(svc.shard(s).recorder().Snapshot());
    }
  }

  const Status recovered = svc.RecoverAll();
  if (!recovered.ok()) {
    return Fail(ServeFailureKind::kRecoverError, recovered.ToString());
  }

  auto read = [&svc](std::uint64_t key) {
    Shard& shard = svc.shard(svc.router().ShardFor(key));
    std::lock_guard lock(shard.mu());
    return shard.Get(shard.TxnTid(), key);
  };

  // ---- Oracle: drained warmup data survives bit-for-bit.
  for (const auto& [key, value] : env.warmup) {
    auto got = read(key);
    if (!got.ok() || *got != value) {
      return Fail(ServeFailureKind::kLostCommitted,
                  "warmup key " + std::to_string(key) + ": " +
                      (got.ok() ? "wrong value" : got.status().ToString()));
    }
  }

  // ---- Oracle: tail puts are atomic. Each key is either absent (the
  // in-flight request was legitimately lost) or carries exactly its value;
  // anything else is a torn write.
  for (std::uint64_t key : env.tail_keys) {
    auto got = read(key);
    if (got.ok() && *got != MakeValue(config_, c.seed, key, 0)) {
      return Fail(ServeFailureKind::kTornWrite,
                  "tail key " + std::to_string(key) + " recovered torn");
    }
    if (!got.ok() && got.status().code() != StatusCode::kNotFound) {
      return Fail(ServeFailureKind::kHarness,
                  "harness: tail read: " + got.status().ToString());
    }
  }

  // ---- Oracle: the open put rolled back. Its undo records were durable at
  // the failure (the coordinator drained after they were issued), so
  // recovery must erase the data writes; any surviving value means the
  // rollback was skipped.
  if (env.open_key != 0) {
    auto got = read(env.open_key);
    if (got.ok()) {
      return Fail(ServeFailureKind::kUncommittedDurable,
                  "uncommitted key " + std::to_string(env.open_key) +
                      " survived recovery");
    }
    if (got.status().code() != StatusCode::kNotFound) {
      return Fail(ServeFailureKind::kHarness,
                  "harness: uncommitted read: " + got.status().ToString());
    }
  }

  // ---- Oracle: the MultiPut is all-or-nothing -- and because every stop
  // phase lies after the intent drained durable, recovery's redo must land
  // the whole transaction on every participant.
  std::uint64_t applied = 0;
  for (const KvPair& pair : env.pairs) {
    auto got = read(pair.key);
    if (got.ok() && *got == pair.value) {
      ++applied;
    }
  }
  if (applied != env.pairs.size()) {
    return Fail(ServeFailureKind::kTornTxn,
                "txn recovered " + std::to_string(applied) + "/" +
                    std::to_string(env.pairs.size()) +
                    " pairs despite a durable intent");
  }

  // ---- Oracle: the Section 4 PPO invariants hold on every shard's trace.
  std::string report;
  const std::uint64_t violations = svc.PpoViolations(&report);
  if (violations > 0) {
    return Fail(ServeFailureKind::kPpoViolation,
                std::to_string(violations) + " violation(s)\n" + report);
  }

  // ---- Oracle: the recovered service still serves correctly.
  std::vector<KvPair> again;
  for (const KvPair& pair : env.pairs) {
    KvPair next;
    next.key = pair.key;
    next.value = MakeValue(config_, c.seed, pair.key, 2);
    again.push_back(std::move(next));
  }
  const Status again_status = svc.ExecuteMultiPut(again);
  if (!again_status.ok()) {
    return Fail(ServeFailureKind::kPostRecoveryMismatch,
                "post-recovery MultiPut: " + again_status.ToString());
  }
  for (const KvPair& pair : again) {
    auto got = read(pair.key);
    if (!got.ok() || *got != pair.value) {
      return Fail(ServeFailureKind::kPostRecoveryMismatch,
                  "post-recovery key " + std::to_string(pair.key) + ": " +
                      (got.ok() ? "wrong value" : got.status().ToString()));
    }
  }
  return ServeCaseResult{};
}

fuzz::SweepStats ServeFuzzer::Systematic(
    std::uint64_t seed, std::size_t max_candidates,
    std::vector<ServeFuzzFailure>* failures) const {
  ServeFuzzCase base;
  base.seed = seed;
  const int k = ParticipantCount(base);

  std::vector<ServeFuzzCase> cases;
  for (TxnStopPhase phase :
       {TxnStopPhase::kNone, TxnStopPhase::kAfterIntent,
        TxnStopPhase::kMidApply, TxnStopPhase::kAfterApply,
        TxnStopPhase::kAfterSync}) {
    const bool per_ordinal = phase == TxnStopPhase::kMidApply ||
                             phase == TxnStopPhase::kAfterApply;
    const int ordinals = per_ordinal ? k : 1;
    for (int ordinal = 0; ordinal < ordinals; ++ordinal) {
      ServeFuzzCase probe_case = base;
      probe_case.phase = phase;
      probe_case.apply_ordinal = ordinal;

      // "Right now" plus an even subsample of the enumerated in-flight
      // instants reachable from this stop point.
      std::vector<std::uint64_t> instants{0};
      if (max_candidates > 0) {
        auto candidates = Probe(probe_case);
        if (candidates.ok() && !candidates->empty()) {
          const std::size_t take =
              std::min(max_candidates, candidates->size());
          for (std::size_t i = 0; i < take; ++i) {
            instants.push_back(
                (*candidates)[i * candidates->size() / take]);
          }
        }
      }
      for (std::uint64_t instant : instants) {
        for (bool survive : {false, true}) {
          ServeFuzzCase c = probe_case;
          c.crash_offset = instant;
          c.lines_survive = survive;
          cases.push_back(c);
        }
      }
    }
  }

  fuzz::SweepStats stats;
  for (const ServeFuzzCase& c : cases) {
    ++stats.cases;
    ServeCaseResult result = Run(c);
    if (!result.ok()) {
      ++stats.failures;
      if (failures != nullptr) {
        failures->push_back(ServeFuzzFailure{c, std::move(result)});
      }
    }
  }
  return stats;
}

fuzz::CrashRepro ServeFuzzer::ToRepro(const ServeFuzzCase& c,
                                      const std::string& expect,
                                      const std::string& note) const {
  fuzz::CrashRepro repro;
  repro.kind = "serve";
  repro.mechanism = Mechanism::kLogging;  // the serving layer is pinned
  repro.mode = config_.mode;
  repro.enforce_ppo = config_.enforce_ppo;
  repro.break_recovery = config_.skip_recovery_replay;
  repro.seed = c.seed;
  repro.total_ops = 1;  // bank-schedule fields are inert for serve repros
  repro.crash_step = 0;
  repro.crash_time = c.crash_offset;
  repro.serve_shards = static_cast<std::uint64_t>(config_.shards);
  repro.serve_warmup_ops = c.warmup_ops;
  repro.serve_txn_pairs = c.txn_pairs;
  repro.serve_phase = PhaseName(c.phase);
  repro.serve_apply_ordinal = static_cast<std::uint64_t>(c.apply_ordinal);
  repro.serve_survive = c.lines_survive;
  repro.serve_break_txn_redo = config_.break_txn_redo;
  repro.expect = expect;
  repro.note = note;
  return repro;
}

ServeFuzzConfig ServeFuzzer::ConfigFromRepro(const fuzz::CrashRepro& repro) {
  ServeFuzzConfig config;
  config.shards = static_cast<int>(repro.serve_shards);
  config.mode = repro.mode;
  config.enforce_ppo = repro.enforce_ppo;
  config.skip_recovery_replay = repro.break_recovery;
  config.break_txn_redo = repro.serve_break_txn_redo;
  return config;
}

StatusOr<ServeFuzzCase> ServeFuzzer::CaseFromRepro(
    const fuzz::CrashRepro& repro) {
  auto phase = PhaseFromName(repro.serve_phase);
  if (!phase.ok()) {
    return phase.status();
  }
  ServeFuzzCase c;
  c.seed = repro.seed;
  c.warmup_ops = repro.serve_warmup_ops;
  c.txn_pairs = repro.serve_txn_pairs;
  c.phase = *phase;
  c.apply_ordinal = static_cast<int>(repro.serve_apply_ordinal);
  c.crash_offset = repro.crash_time;
  c.lines_survive = repro.serve_survive;
  return c;
}

}  // namespace serve
}  // namespace nearpm
