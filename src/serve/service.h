// KvService: the sharded serving front end (the paper's storage-class
// "service" shape: many independent NearPM machines behind one API).
//
// A ShardRouter hash-partitions keys across N shards, each an independent
// Runtime + device group (src/serve/shard.h). Requests are admitted into
// per-shard bounded queues (admission control: a full queue rejects with
// ResourceExhausted -- caller-visible backpressure, never unbounded
// buffering) and drained in batches: one front-end doorbell charge and one
// fence per batch instead of per request, the classic amortization knob.
//
// Requests are admitted into per-shard lock-free MPSC rings
// (src/serve/mpsc_ring.h) and metrics are recorded into per-worker local
// counter blocks, so the hot path performs no mutex acquisition and no
// registry lookup: admission is a claim-CAS plus a release store, and each
// completion bumps a cache-line-private relaxed atomic. The MetricsRegistry
// is populated only on PublishMetrics()/ExportResourceMetrics() (scrape
// time), and Stats() is a single merge pass over the worker blocks.
//
// Two execution modes share the queue/batch path:
//   * Start()/Stop(): real OS worker threads per shard (the CLI smoke mode);
//   * Pump(): deterministic inline draining on the calling thread (the
//     benchmark and crash-fuzzer mode -- same code path, reproducible
//     simulated timings).
//
// Cross-shard MultiPut follows the paper's Invariant 3 end to end: the
// coordinator persists a redo intent (failure-atomic, drained durable),
// every participant applies its slice and signals a per-participant
// SyncStateMachine, remote completions are exchanged, and only when every
// machine is back in All-Complete is the intent retired -- a write ordered
// after the synchronization. A crash anywhere in between recovers
// all-or-nothing via RecoverAll()'s intent redo.
#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/obs/watchdog.h"
#include "src/prof/request_timeline.h"
#include "src/serve/mpsc_ring.h"
#include "src/serve/router.h"
#include "src/serve/shard.h"
#include "src/trace/metrics.h"

namespace nearpm {
namespace serve {

struct ServeOptions {
  int shards = 4;
  int workers_per_shard = 2;
  std::size_t queue_capacity = 64;
  int batch_max = 8;  // requests drained per doorbell/fence
  ExecMode mode = ExecMode::kNdpMultiDelayed;
  bool enforce_ppo = true;
  bool skip_recovery_replay = false;  // fault injection (fuzzer teeth)
  // Fault injection for the serve fuzzer's self-test: recovery scrubs
  // surviving transaction intents without re-applying them, breaking the
  // all-or-nothing guarantee. The fuzzer must catch this.
  bool break_txn_redo = false;
  std::uint64_t pm_size = 16ull << 20;
  std::uint32_t table_slots = 512;
  std::uint32_t value_size = 64;
  double request_parse_ns = 50.0;  // front-end CPU cost per request
  // Device geometry shared by every shard (default = seed platform).
  hwmodel::HwConfig hw;

  // ---- Live observability ---------------------------------------------------
  // Flight-recorder budget in compacted events (0 disables it). Every shard
  // recorder feeds the one shared ring, so the last N events the whole
  // service produced are always dumpable.
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
  // SLO watchdog: when enabled, `slo` is evaluated at batch boundaries over
  // the per-worker sliding windows; a breach dumps the flight record to
  // `slo_dump_path` (empty = in-memory alert only). The window shape
  // (window_ns, slow_k) always comes from `slo`, watchdog or not.
  bool slo_enabled = false;
  obs::SloSpec slo;
  std::string slo_dump_path;
};

enum class RequestKind : std::uint8_t { kGet, kPut, kMultiPut };

struct ServeRequest {
  RequestKind kind = RequestKind::kPut;
  std::uint64_t key = 0;
  std::vector<std::uint8_t> value;  // kPut payload
  std::vector<KvPair> pairs;        // kMultiPut payload
};

struct ServeResult {
  Status status = Status::Ok();
  std::vector<std::uint8_t> value;  // kGet payload
  // Simulated time from batch pickup to this request's completion (queueing
  // behind batch peers included).
  SimTime latency_ns = 0;
  int shard = -1;
  // Request trace id allocated at admission: the handle `nearpm_trace
  // --request` takes to reconstruct this request's cross-node timeline.
  std::uint64_t trace_id = 0;
};

// Crash injection for the serve fuzzer: where ExecuteMultiPut deliberately
// stops, leaving the cross-shard protocol mid-flight.
enum class TxnStopPhase : std::uint8_t {
  kNone = 0,     // run to completion
  kAfterIntent,  // intent durable, no slice applied yet
  kMidApply,     // apply_ordinal's puts issued but not drained or signalled
  kAfterApply,   // participants [0, apply_ordinal] applied + local-complete
  kAfterSync,    // every participant All-Complete, intent not yet retired
};

struct TxnStop {
  TxnStopPhase phase = TxnStopPhase::kNone;
  int apply_ordinal = 0;  // kAfterApply: last participant ordinal applied
};

// Hot-path metrics block, one per (shard, worker): written only by its
// owning worker (relaxed atomics on a private cache line, so a concurrent
// Stats() merge reads torn-free values), merged on scrape. This is what
// keeps the MetricsRegistry -- shared_mutex plus string-keyed map lookup --
// entirely off the request path.
struct alignas(64) WorkerMetrics {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> batches{0};
  Histogram request_ns;  // batch pickup -> completion, simulated ns
  Histogram batch_size;
};

// Quiesced-state snapshot (call after Stop()/Pump(), not mid-traffic).
struct ServeStats {
  std::uint64_t completed = 0;
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t txns = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  SimTime makespan_ns = 0;  // slowest shard's latest virtual clock
  std::uint64_t request_p50_ns = 0;
  std::uint64_t request_p99_ns = 0;
  double throughput_ops_per_sec = 0;  // completed / makespan
};

class KvService {
 public:
  static StatusOr<std::unique_ptr<KvService>> Create(
      const ServeOptions& options);
  ~KvService();

  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  const ServeOptions& options() const { return options_; }
  const ShardRouter& router() const { return router_; }
  Shard& shard(int s) { return *shards_[s]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  MetricsRegistry& metrics() { return metrics_; }

  // Admission: routes the request (MultiPut -> its coordinator shard),
  // enqueues it and returns the completion future. A full queue rejects
  // immediately with ResourceExhausted; nothing was enqueued and the caller
  // may retry after draining.
  StatusOr<std::future<ServeResult>> Submit(ServeRequest request);

  // ---- Threaded mode --------------------------------------------------------
  void Start();  // spawns workers_per_shard OS threads per shard
  void Stop();   // closes queues, drains and joins every worker

  // ---- Deterministic mode ---------------------------------------------------
  // Drains every queue inline (round-robin across shards, rotating the
  // virtual worker clock per batch). Returns requests executed. Must not
  // run concurrently with Start().
  std::uint64_t Pump();

  // Direct cross-shard transaction (also the path queued kMultiPut requests
  // take). `stop` deliberately abandons the protocol mid-flight for crash
  // injection; the transaction then reports Unavailable. `trace_id` tags
  // every participant's events with the originating request.
  Status ExecuteMultiPut(const std::vector<KvPair>& pairs,
                         const TxnStop& stop = {}, std::uint64_t trace_id = 0);

  // ---- Failure and recovery -------------------------------------------------
  // Power-fails every shard (plans[s] drives shard s) and drops volatile
  // service state. Queued-but-unexecuted requests fail Unavailable.
  void CrashAll(const std::vector<CrashPlan>& plans);
  // Mechanism recovery on every shard, then cross-shard intent redo: every
  // surviving intent is re-applied to every owner shard (idempotent upsert)
  // and retired, restoring the all-or-nothing guarantee.
  Status RecoverAll();

  // PPO audit over every shard's trace. Returns the total violation count;
  // appends human-readable reports to `report` when non-null.
  std::uint64_t PpoViolations(std::string* report = nullptr);

  // Folds every shard's trace through the profiler and publishes per-shard
  // resource gauges into metrics(): unit/dispatcher duty cycles and sampled
  // queue/FIFO occupancy, labeled serve_duty{shard="0",resource="..."}.
  // Also publishes the per-worker counter blocks (PublishMetrics). Call
  // quiesced (after Stop()/Pump()), like Stats().
  void ExportResourceMetrics();

  // Folds the per-worker blocks and service-level atomics into metrics()
  // under the historical names (serve_completed, serve_request_ns, ...).
  // Idempotent: counters are stored, not added, so scraping twice does not
  // double-count. Call quiesced.
  void PublishMetrics();

  // One merge pass over the worker blocks + service atomics; never touches
  // the registry (no per-counter name lookups).
  ServeStats Stats() const;

  // ---- Live observability ---------------------------------------------------
  // The shared flight recorder (null when flight_capacity == 0).
  obs::FlightRecorder* flight() { return flight_.get(); }
  // The SLO watchdog (null unless slo_enabled).
  obs::SloWatchdog* watchdog() { return watchdog_.get(); }
  // Merged sliding-window view across every (shard, worker) window at sim
  // time `now` (pass Stats().makespan_ns for "end of run"). Safe mid-run.
  obs::WindowStats WindowSnapshot(SimTime now) const;
  // Writes the schema-versioned flight dump (no alert context) to `os`.
  // Returns false when the flight recorder is disabled.
  bool DumpFlightRecord(std::ostream& os) const;
  // Labeled event-stream snapshots of every shard recorder ("shard<N>"),
  // the input BuildRequestTimeline wants. Call quiesced (takes each shard's
  // lock).
  std::vector<TimelineSource> TimelineSources();

 private:
  struct QueuedRequest {
    ServeRequest request;
    std::promise<ServeResult> done;
    std::uint64_t trace_id = 0;  // allocated at admission
  };

  explicit KvService(const ServeOptions& options);

  WorkerMetrics& worker_metrics(int shard_id, int worker) {
    return worker_metrics_[static_cast<std::size_t>(shard_id) *
                               static_cast<std::size_t>(
                                   options_.workers_per_shard) +
                           static_cast<std::size_t>(worker)];
  }

  void WorkerLoop(int shard_id, int worker);
  // Executes one batch in place (the caller's buffer is reused across
  // batches): single-shard requests under the shard lock with one doorbell +
  // one fence, then cross-shard transactions (which take their participants'
  // locks themselves).
  void ExecuteBatch(int shard_id, int worker,
                    std::vector<QueuedRequest>& batch);
  Status ExecuteLocal(Shard& shard, ThreadId tid, QueuedRequest& item,
                      SimTime batch_start, WorkerMetrics& wm,
                      obs::SlidingWindow& win);

  obs::SlidingWindow& window(int shard_id, int worker) {
    return windows_[static_cast<std::size_t>(shard_id) *
                        static_cast<std::size_t>(options_.workers_per_shard) +
                    static_cast<std::size_t>(worker)];
  }
  // Watchdog breach check at a batch boundary. The caller must hold
  // `recorder`'s shard lock (the alert instant lands on that trace).
  void SloCheck(SimTime now, TraceRecorder* recorder);

  ServeOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<MpscRing<QueuedRequest>>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> txn_counter_{0};
  std::vector<int> pump_rr_;  // per-shard rotating worker clock (Pump mode)

  // Hot-path metrics: per-worker blocks plus service-level atomics for the
  // paths without a worker identity (admission, direct ExecuteMultiPut,
  // recovery). The registry below is scrape-time only.
  std::vector<WorkerMetrics> worker_metrics_;
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> txns_{0};
  std::atomic<std::uint64_t> txn_redos_{0};
  Histogram queue_depth_;  // sampled at admission
  Histogram txn_ns_;
  MetricsRegistry metrics_;

  // Live observability: request trace ids are allocated at admission from
  // this counter (per-service, 1-based; 0 means untraced everywhere). The
  // windows vector is sized like worker_metrics_ and never resized, so the
  // cached pointer set below stays valid for the watchdog's merges.
  std::atomic<std::uint64_t> trace_counter_{0};
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<obs::SlidingWindow> windows_;
  std::vector<const obs::SlidingWindow*> window_ptrs_;
  std::unique_ptr<obs::SloWatchdog> watchdog_;
};

}  // namespace serve
}  // namespace nearpm

#endif  // SRC_SERVE_SERVICE_H_
