// Simulated replication network fabric.
//
// The fabric is a mesh of directed point-to-point links between replica
// nodes, each modeled exactly like the PCIe command path: a sim::Timeline
// per link serializes framed messages (payload + frame overhead at the
// link's bytes/ns rate, messages queue behind each other), then a fixed
// propagation latency is paid before delivery. All constants live in
// sim::CostModel (net_*), so experiments can sweep link speed the same way
// they sweep PM latency.
//
// Every Send() is observable: a kNetXfer span occupies the directed link's
// trace track (pid = kTraceNetPid, tid = link index) -- the profiler folds
// these into per-link duty cycles -- and a kNetDeliver instant lands on the
// destination node's replication track. Per-kind message/byte counters feed
// the attached recorder's MetricsRegistry.
//
// The fabric only advances virtual time; it moves no bytes itself. Callers
// (src/repl) couple the returned delivery time into the receiver's clock
// with Runtime::WaitUntil and perform the actual PM effects there.
#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/hwmodel/hw_config.h"
#include "src/sim/timeline.h"
#include "src/trace/recorder.h"

namespace nearpm {
namespace net {

// Replication RPC vocabulary. One message = one frame on a link.
enum class MsgKind : std::uint8_t {
  kIntentShip = 0,  // primary-backup: framed intent/log record to a backup
  kIntentAck,       // backup -> primary: record durable (+ applied, for pb)
  kRedoWrite,       // one-sided: redo record written into the backup's PM
  kDoorbell,        // one-sided: doorbell ring after the record is durable
  kSyncSignal,      // cross-group completion exchange (sync machines)
  kRetire,          // intent invalidation shipped to a backup
  kPromote,         // failover: promotion announcement to survivors
  kCount,
};

const char* MsgKindName(MsgKind kind);

struct FabricOptions {
  int nodes = 1;
  // Platform geometry; the fabric reads the net_* constants out of hw.cost.
  // Sharing the runtime's HwConfig keeps link speed and device speed one
  // coherent design point (the seed kept a second, default-constructed
  // CostModel here, silently pinning the fabric to the calibration even
  // when the runtime's constants changed).
  hwmodel::HwConfig hw;
  // Optional observer for kNetXfer/kNetDeliver events and message counters.
  // Not owned; may be null. Typically the fabric gets its own recorder so
  // link tracks do not interleave with any single node's trace.
  TraceRecorder* trace = nullptr;
};

// The outcome of one message send.
struct Delivery {
  SimTime sent = 0;       // serialization started on the link
  SimTime delivered = 0;  // message available at the destination
  int link = -1;          // directed link index (src * nodes + dst)
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Occupies the src->dst link with one framed message of `bytes` payload
  // starting no earlier than `earliest` (the sender's clock). Thread-safe:
  // worker threads of different shards may share the fabric. `trace` is the
  // originating request's trace id, stamped on the kNetXfer/kNetDeliver
  // events so a cross-node request timeline can follow the message (the
  // fabric recorder is shared by all senders, so the id must ride the call,
  // not a recorder-local scope).
  Delivery Send(int src, int dst, std::size_t bytes, SimTime earliest,
                MsgKind kind, std::uint64_t seq = 0, std::uint64_t trace = 0);

  int nodes() const { return nodes_; }
  int LinkIndex(int src, int dst) const { return src * nodes_ + dst; }

  // When the directed link next becomes free (its Timeline cursor).
  SimTime LinkFreeAt(int src, int dst) const;

  std::uint64_t MessagesSent(MsgKind kind) const;
  std::uint64_t BytesSent(MsgKind kind) const;
  std::uint64_t total_messages() const;

  const CostModel& cost() const { return options_.hw.cost; }
  TraceRecorder* trace() const { return options_.trace; }

  // Forgets all link occupancy (fresh virtual clocks after a crash epoch).
  void Reset();

 private:
  FabricOptions options_;
  int nodes_;
  mutable std::mutex mu_;
  std::vector<Timeline> links_;  // nodes * nodes, directed
  std::uint64_t messages_[static_cast<int>(MsgKind::kCount)] = {};
  std::uint64_t bytes_[static_cast<int>(MsgKind::kCount)] = {};
  // Per-kind registry counters resolved once at construction (the registry
  // guarantees reference stability), so Send() increments two atomics
  // instead of performing two string-keyed map lookups per message.
  std::atomic<std::uint64_t>* msg_counters_[static_cast<int>(MsgKind::kCount)] =
      {};
  std::atomic<std::uint64_t>* byte_counters_[static_cast<int>(
      MsgKind::kCount)] = {};
};

}  // namespace net
}  // namespace nearpm

#endif  // SRC_NET_FABRIC_H_
