#include "src/net/fabric.h"

#include <algorithm>

namespace nearpm {
namespace net {

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kIntentShip:
      return "intent_ship";
    case MsgKind::kIntentAck:
      return "intent_ack";
    case MsgKind::kRedoWrite:
      return "redo_write";
    case MsgKind::kDoorbell:
      return "doorbell";
    case MsgKind::kSyncSignal:
      return "sync_signal";
    case MsgKind::kRetire:
      return "retire";
    case MsgKind::kPromote:
      return "promote";
    case MsgKind::kCount:
      break;
  }
  return "?";
}

Fabric::Fabric(const FabricOptions& options)
    : options_(options), nodes_(std::max(options.nodes, 1)) {
  links_.resize(static_cast<std::size_t>(nodes_) * nodes_);
  if (options_.trace != nullptr) {
    // Resolve the per-kind counters once; the registry's map nodes are
    // stable, so the cached references stay valid for the fabric's life.
    MetricsRegistry& metrics = options_.trace->metrics();
    for (int k = 0; k < static_cast<int>(MsgKind::kCount); ++k) {
      const char* name = MsgKindName(static_cast<MsgKind>(k));
      msg_counters_[k] = &metrics.Counter(std::string("net_msgs_") + name);
      byte_counters_[k] = &metrics.Counter(std::string("net_bytes_") + name);
    }
  }
}

Delivery Fabric::Send(int src, int dst, std::size_t bytes, SimTime earliest,
                      MsgKind kind, std::uint64_t seq, std::uint64_t trace_id) {
  std::lock_guard lock(mu_);
  Delivery d;
  d.link = LinkIndex(src, dst);
  Timeline& link = links_[static_cast<std::size_t>(d.link)];
  d.sent = std::max(link.free_at(), earliest);
  const SimTime serialized =
      link.Schedule(earliest, options_.hw.cost.NetSerializeNs(bytes));
  d.delivered = serialized + NsToTime(options_.hw.cost.net_link_latency_ns);

  ++messages_[static_cast<int>(kind)];
  bytes_[static_cast<int>(kind)] += bytes;

  TraceRecorder* trace = options_.trace;
  NEARPM_TRACE_SPAN(trace, .phase = TracePhase::kNetXfer, .pid = kTraceNetPid,
                    .tid = static_cast<std::uint32_t>(d.link), .ts = d.sent,
                    .dur = serialized > d.sent ? serialized - d.sent : 1,
                    .seq = seq, .arg0 = static_cast<std::uint64_t>(kind),
                    .arg1 = bytes, .trace = trace_id);
  NEARPM_TRACE_EVENT(trace, .phase = TracePhase::kNetDeliver,
                     .pid = kTraceReplPid,
                     .tid = static_cast<std::uint32_t>(dst),
                     .ts = d.delivered, .seq = seq,
                     .arg0 = static_cast<std::uint64_t>(kind),
                     .arg1 = bytes, .trace = trace_id);
  if (trace != nullptr) {
    // Cached handles resolved at construction: no registry lookup here.
    msg_counters_[static_cast<int>(kind)]->fetch_add(
        1, std::memory_order_relaxed);
    byte_counters_[static_cast<int>(kind)]->fetch_add(
        bytes, std::memory_order_relaxed);
  }
  return d;
}

SimTime Fabric::LinkFreeAt(int src, int dst) const {
  std::lock_guard lock(mu_);
  return links_[static_cast<std::size_t>(LinkIndex(src, dst))].free_at();
}

std::uint64_t Fabric::MessagesSent(MsgKind kind) const {
  std::lock_guard lock(mu_);
  return messages_[static_cast<int>(kind)];
}

std::uint64_t Fabric::BytesSent(MsgKind kind) const {
  std::lock_guard lock(mu_);
  return bytes_[static_cast<int>(kind)];
}

std::uint64_t Fabric::total_messages() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t m : messages_) {
    total += m;
  }
  return total;
}

void Fabric::Reset() {
  std::lock_guard lock(mu_);
  for (Timeline& link : links_) {
    link.Reset();
  }
}

}  // namespace net
}  // namespace nearpm
