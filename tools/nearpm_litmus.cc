// nearpm_litmus: litmus-test conformance driver for the executable PPO
// specification (src/spec).
//
// Modes (one per run):
//
//   --generate           print the deterministic litmus batch and exit
//   --corpus=DIR         replay every litmus repro JSON under DIR and check
//                        that it still reproduces its recorded disagreement
//                        (and that the healthy configuration stays clean)
//   --replay=FILE        replay exactly one repro file
//   (default)            conformance run: every program of the batch, every
//                        prefix, crash-point sweep x survival masks, checker
//                        and sanitizer differentials
//
// Batch selection: --seed (default 1) and --count (default 64) feed the
// deterministic generator; --systematic raises the batch to at least 500
// programs (the CI gate). --enforce=both|on|off picks the runtime legs.
//
// Teeth: --mutate-spec=NAME breaks the spec (atomic-requests,
// writes-durable, no-races), --weaken-checker=MASK disables PpoChecker
// invariants (bit i-1 = invariant i; only bits 1..3 have teeth on a healthy
// machine). --expect-disagreements inverts the exit code: the run succeeds
// only if at least one disagreement was found, shrunk and (with --out=DIR)
// persisted -- CI uses this to prove the differential oracle can actually
// catch a divergent implementation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/spec/conformance.h"
#include "src/spec/litmus.h"
#include "src/spec/model.h"

namespace nearpm {
namespace spec {
namespace {

struct CliOptions {
  bool generate = false;
  std::string corpus_dir;
  std::string replay_file;
  std::uint64_t seed = 1;
  std::uint64_t count = 64;
  bool systematic = false;
  std::string enforce = "both";
  std::string mutate_spec = "none";
  std::uint64_t weaken_checker = 0;
  bool expect_disagreements = false;
  std::string out_dir;
  std::uint64_t max_candidates = 64;
  std::uint64_t max_masks = 6;
  bool recovery = true;
  std::uint64_t max_shrinks = 2;
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--generate] [--corpus=DIR] [--replay=FILE]\n"
               "          [--seed=N] [--count=N] [--systematic]\n"
               "          [--enforce=both|on|off] [--mutate-spec=NAME]\n"
               "          [--weaken-checker=MASK] [--expect-disagreements]\n"
               "          [--out=DIR] [--max-candidates=N] [--max-masks=N]\n"
               "          [--no-recovery] [--max-shrinks=N]\n",
               argv0);
  return 2;
}

std::string SanitizeFileName(std::string name) {
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) {
      c = '_';
    }
  }
  return name;
}

bool WriteRepro(const std::string& dir, const LitmusRepro& repro) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + SanitizeFileName(repro.name) + "-" +
                           DisagreementKindName(repro.kind) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << repro.Write();
  std::printf("  wrote %s\n", path.c_str());
  return true;
}

int ReplayOne(const std::filesystem::path& path, std::uint64_t* failures) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    ++*failures;
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const StatusOr<LitmusRepro> repro = LitmusRepro::Parse(buffer.str());
  if (!repro.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.string().c_str(),
                 repro.status().ToString().c_str());
    ++*failures;
    return 1;
  }
  const Status status = ReplayLitmusRepro(*repro);
  if (!status.ok()) {
    std::printf("FAIL  %s: %s\n", path.string().c_str(),
                status.ToString().c_str());
    ++*failures;
    return 1;
  }
  std::printf("ok    %s (%s, %s)\n", path.string().c_str(),
              repro->name.c_str(), DisagreementKindName(repro->kind));
  return 0;
}

int RunCorpus(const CliOptions& cli) {
  std::uint64_t failures = 0;
  std::uint64_t replayed = 0;
  if (!cli.replay_file.empty()) {
    ++replayed;
    ReplayOne(cli.replay_file, &failures);
  } else {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(cli.corpus_dir, ec)) {
      if (entry.path().extension() == ".json") {
        files.push_back(entry.path());
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot list %s: %s\n", cli.corpus_dir.c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      ++replayed;
      ReplayOne(path, &failures);
    }
  }
  std::printf("litmus corpus: %llu replayed, %llu failed\n",
              static_cast<unsigned long long>(replayed),
              static_cast<unsigned long long>(failures));
  if (replayed == 0) {
    std::fprintf(stderr, "no repro files found\n");
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

int RunConformance(const CliOptions& cli) {
  SpecMutation mutation = SpecMutation::kNone;
  if (!SpecMutationFromString(cli.mutate_spec, &mutation)) {
    std::fprintf(stderr, "unknown --mutate-spec=%s\n", cli.mutate_spec.c_str());
    return 2;
  }
  std::vector<bool> legs;
  if (cli.enforce == "both") {
    legs = {true, false};
  } else if (cli.enforce == "on") {
    legs = {true};
  } else if (cli.enforce == "off") {
    legs = {false};
  } else {
    std::fprintf(stderr, "unknown --enforce=%s\n", cli.enforce.c_str());
    return 2;
  }

  const std::size_t min_programs =
      cli.systematic ? std::max<std::size_t>(cli.count, 500) : cli.count;
  const std::vector<LitmusProgram> batch =
      GenerateGrid(cli.seed, min_programs);
  std::printf(
      "litmus conformance: %zu programs, legs=%s, mutation=%s, "
      "weaken-checker=0x%llx\n",
      batch.size(), cli.enforce.c_str(), SpecMutationName(mutation),
      static_cast<unsigned long long>(cli.weaken_checker));

  ConformanceStats stats;
  std::uint64_t disagreeing_programs = 0;
  std::uint64_t shrunk = 0;
  bool shrink_budget_left = true;
  for (const LitmusProgram& program : batch) {
    for (const bool enforce : legs) {
      ConformanceConfig config;
      config.enforce = enforce;
      config.mutation = mutation;
      config.weaken_checker = static_cast<std::uint32_t>(cli.weaken_checker);
      config.max_crash_candidates = cli.max_candidates;
      config.max_masks = cli.max_masks;
      config.check_recovery = cli.recovery;
      const std::vector<Disagreement> found =
          CheckProgram(program, config, &stats);
      if (found.empty()) {
        continue;
      }
      ++disagreeing_programs;
      const Disagreement& first = found.front();
      std::printf("%s %s [enforce=%d prefix=%zu] %s: %s\n",
                  cli.expect_disagreements ? "teeth" : "DISAGREE",
                  program.name.c_str(), enforce ? 1 : 0, first.prefix_len,
                  DisagreementKindName(first.kind), first.detail.c_str());
      if (shrink_budget_left && shrunk < cli.max_shrinks) {
        const LitmusProgram small =
            ShrinkDisagreement(program, config, first.kind);
        ++shrunk;
        std::printf("  shrunk to: %s\n", small.Text().c_str());
        Disagreement kept = first;
        for (const Disagreement& d : CheckProgram(small, config, nullptr)) {
          if (d.kind == first.kind) {
            kept = d;
            break;
          }
        }
        if (!cli.out_dir.empty()) {
          WriteRepro(cli.out_dir, MakeRepro(small, config, kept));
        }
      }
      break;  // one disagreeing leg per program is enough signal
    }
    // Teeth mode only needs enough repros to prove the oracle bites.
    if (cli.expect_disagreements && shrunk >= cli.max_shrinks) {
      shrink_budget_left = false;
      break;
    }
  }

  std::printf(
      "litmus conformance: %llu programs, %llu prefixes, %llu crash states, "
      "%llu candidates truncated, %llu recovery runs, %llu checker "
      "violations, %llu sanitizer findings, %llu disagreeing programs\n",
      static_cast<unsigned long long>(stats.programs),
      static_cast<unsigned long long>(stats.prefixes),
      static_cast<unsigned long long>(stats.crash_states_checked),
      static_cast<unsigned long long>(stats.crash_candidates_truncated),
      static_cast<unsigned long long>(stats.recovery_runs),
      static_cast<unsigned long long>(stats.checker_violations),
      static_cast<unsigned long long>(stats.sanitizer_findings),
      static_cast<unsigned long long>(disagreeing_programs));
  if (cli.expect_disagreements) {
    if (disagreeing_programs == 0) {
      std::fprintf(stderr,
                   "expected disagreements but the differential found none: "
                   "the oracle has no teeth\n");
      return 1;
    }
    std::printf("teeth confirmed: the differential catches the fault\n");
    return 0;
  }
  return disagreeing_programs == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (MatchFlag(argv[i], "--generate", &value)) {
      cli.generate = true;
    } else if (MatchFlag(argv[i], "--corpus", &value) && value != nullptr) {
      cli.corpus_dir = value;
    } else if (MatchFlag(argv[i], "--replay", &value) && value != nullptr) {
      cli.replay_file = value;
    } else if (MatchFlag(argv[i], "--seed", &value) && value != nullptr) {
      if (!ParseUint(value, &cli.seed)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--count", &value) && value != nullptr) {
      if (!ParseUint(value, &cli.count)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--systematic", &value)) {
      cli.systematic = true;
    } else if (MatchFlag(argv[i], "--enforce", &value) && value != nullptr) {
      cli.enforce = value;
    } else if (MatchFlag(argv[i], "--mutate-spec", &value) &&
               value != nullptr) {
      cli.mutate_spec = value;
    } else if (MatchFlag(argv[i], "--weaken-checker", &value) &&
               value != nullptr) {
      if (!ParseUint(value, &cli.weaken_checker)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--expect-disagreements", &value)) {
      cli.expect_disagreements = true;
    } else if (MatchFlag(argv[i], "--out", &value) && value != nullptr) {
      cli.out_dir = value;
    } else if (MatchFlag(argv[i], "--max-candidates", &value) &&
               value != nullptr) {
      if (!ParseUint(value, &cli.max_candidates)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--max-masks", &value) && value != nullptr) {
      if (!ParseUint(value, &cli.max_masks)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--no-recovery", &value)) {
      cli.recovery = false;
    } else if (MatchFlag(argv[i], "--max-shrinks", &value) &&
               value != nullptr) {
      if (!ParseUint(value, &cli.max_shrinks)) return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (cli.generate) {
    const std::size_t min_programs =
        cli.systematic ? std::max<std::size_t>(cli.count, 500) : cli.count;
    for (const LitmusProgram& p : GenerateGrid(cli.seed, min_programs)) {
      std::printf("%-24s %s\n", p.name.c_str(), p.Text().c_str());
    }
    return 0;
  }
  if (!cli.corpus_dir.empty() || !cli.replay_file.empty()) {
    return RunCorpus(cli);
  }
  return RunConformance(cli);
}

}  // namespace
}  // namespace spec
}  // namespace nearpm

int main(int argc, char** argv) { return nearpm::spec::Main(argc, argv); }
