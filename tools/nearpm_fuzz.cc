// nearpm_fuzz: command-line driver for the crash-state fuzzer.
//
// Modes (combinable flags, one run = one mode):
//
//   --seeds=N            randomized deep sweep over N seeds (default 20)
//   --systematic=OPS     exhaustive crash-point sweep of one OPS-long
//                        schedule per configuration
//   --replay=SEED:CASE   re-run exactly one sweep case (the fuzzer's output
//                        names failures this way)
//   --corpus=DIR         replay every minimized repro under DIR and check
//                        its recorded expectation
//   --repl               systematic replicated-cluster sweep instead of the
//                        single-machine fuzzer: every stop phase of the
//                        replicated commit x every non-empty node subset
//                        power-failed, for --protocol=pb|redo|all;
//                        --break-intent-redo / --skip-redo-persist seed the
//                        recovery/persist ablations (combine with
//                        --expect-failures for the CI teeth check)
//
// Configuration selection: --mechanism / --mode accept one canonical name
// or "all" (default), --enforce-ppo=0 runs the Section 2.3 ablation,
// --break-recovery fault-injects the hardware recovery. Failing schedules
// are shrunk to a minimal repro; --out=DIR persists them as corpus JSON.
// --expect-failures inverts the exit code: the run succeeds only if the
// fuzzer caught at least one violation in every configuration (CI uses this
// to prove the oracle has teeth).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/fuzz/crash_fuzzer.h"
#include "src/repl/repl_fuzzer.h"
#include "src/serve/serve_fuzzer.h"

namespace nearpm {
namespace fuzz {
namespace {

struct CliOptions {
  std::uint64_t seeds = 20;
  std::uint64_t first_seed = 1;
  int cases_per_seed = 3;
  std::uint64_t systematic_ops = 0;  // 0 = off
  std::size_t max_candidates = 24;
  std::string mechanism = "all";
  std::string mode = "all";
  bool enforce_ppo = true;
  bool break_recovery = false;
  bool expect_failures = false;
  bool have_replay = false;
  std::uint64_t replay_seed = 0;
  std::uint64_t replay_case = 0;
  std::string corpus_dir;
  std::string out_dir;
  int max_shrinks = 3;  // shrunk + reported failures per configuration
  bool repl = false;
  std::string protocol = "all";
  int repl_groups = 2;
  int repl_replicas = 2;
  bool break_intent_redo = false;
  bool skip_redo_persist = false;
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds=N] [--first-seed=S] [--cases-per-seed=K]\n"
      "          [--systematic=OPS] [--max-candidates=N]\n"
      "          [--mechanism=logging|redo_logging|checkpointing|"
      "shadow_paging|all]\n"
      "          [--mode=baseline|nearpm_sd|nearpm_md_swsync|nearpm_md|all]\n"
      "          [--enforce-ppo=0|1] [--break-recovery]\n"
      "          [--replay=SEED:CASE] [--corpus=DIR] [--out=DIR]\n"
      "          [--expect-failures]\n"
      "          [--repl [--protocol=pb|redo|all] [--repl-groups=G]\n"
      "           [--repl-replicas=K] [--break-intent-redo]\n"
      "           [--skip-redo-persist]]\n",
      argv0);
  return 2;
}

std::string MaskToString(const std::vector<bool>& mask) {
  std::string s;
  s.reserve(mask.size());
  for (const bool b : mask) {
    s.push_back(b ? '1' : '0');
  }
  return s.empty() ? "-" : s;
}

void PrintCase(const char* tag, const FuzzCase& c, const CaseResult& r) {
  std::printf("  %s seed=%" PRIu64 " ops=%" PRIu64 " crash_step=%" PRIu64
              "%s time=%" PRIu64 " mask=%s: %s%s%s\n",
              tag, c.seed, c.total_ops, c.crash_step, c.mid_op ? "m" : "c",
              c.crash_time, MaskToString(c.line_survival).c_str(),
              FailureKindName(r.failure), r.detail.empty() ? "" : ": ",
              r.detail.c_str());
}

struct Combo {
  Mechanism mechanism;
  ExecMode mode;
};

int ReplayCorpus(const CliOptions& cli) {
  const std::vector<std::string> files = ListCorpus(cli.corpus_dir);
  if (files.empty()) {
    std::fprintf(stderr, "no corpus files under %s\n", cli.corpus_dir.c_str());
    return 1;
  }
  int bad = 0;
  for (const std::string& path : files) {
    auto repro = LoadRepro(path);
    if (!repro.ok()) {
      std::printf("ERROR %s: %s\n", path.c_str(),
                  repro.status().ToString().c_str());
      ++bad;
      continue;
    }
    bool run_ok = false;
    const char* got = "";
    std::string detail;
    if (repro->kind == "serve") {
      serve::ServeFuzzer fuzzer(serve::ServeFuzzer::ConfigFromRepro(*repro));
      auto c = serve::ServeFuzzer::CaseFromRepro(*repro);
      if (!c.ok()) {
        std::printf("ERROR %s: %s\n", path.c_str(),
                    c.status().ToString().c_str());
        ++bad;
        continue;
      }
      const serve::ServeCaseResult r = fuzzer.Run(*c);
      run_ok = r.ok();
      got = serve::ServeFailureKindName(r.failure);
      detail = r.detail;
    } else if (repro->kind == "repl") {
      repl::ReplFuzzer fuzzer(repl::ReplFuzzer::ConfigFromRepro(*repro));
      auto c = repl::ReplFuzzer::CaseFromRepro(*repro);
      if (!c.ok()) {
        std::printf("ERROR %s: %s\n", path.c_str(),
                    c.status().ToString().c_str());
        ++bad;
        continue;
      }
      const repl::ReplCaseResult r = fuzzer.Run(*c);
      run_ok = r.ok();
      got = repl::ReplFailureKindName(r.failure);
      detail = r.detail;
    } else {
      CrashFuzzer fuzzer(CrashFuzzer::ConfigFromRepro(*repro));
      const FuzzCase c = CrashFuzzer::CaseFromRepro(*repro);
      const CaseResult r = fuzzer.Run(c);
      run_ok = r.ok();
      got = FailureKindName(r.failure);
      detail = r.detail;
    }
    const bool want_failure = repro->expect == "violation";
    const bool pass = want_failure ? !run_ok : run_ok;
    std::printf("%s %s (%s/%s expect=%s got=%s)\n", pass ? "OK  " : "FAIL",
                path.c_str(), MechanismName(repro->mechanism),
                ExecModeName(repro->mode), repro->expect.c_str(), got);
    if (!pass) {
      if (!detail.empty()) {
        std::printf("  %s\n", detail.c_str());
      }
      ++bad;
    }
  }
  std::printf("corpus: %zu repros, %d failures\n", files.size(), bad);
  return bad == 0 ? 0 : 1;
}

// Systematic replicated-cluster sweep: every stop phase of the replicated
// commit x every targetable ordinal x every non-empty crashed-node subset,
// for each selected protocol. Failures are already minimal schedules (one
// txn, one stop point, one subset), so they are saved to --out directly.
int RunReplSweep(const CliOptions& cli) {
  std::vector<repl::ReplProtocol> protocols;
  if (cli.protocol == "all") {
    protocols = {repl::ReplProtocol::kPrimaryBackup,
                 repl::ReplProtocol::kOneSidedRedo};
  } else {
    auto p = repl::ReplProtocolFromName(cli.protocol);
    if (!p.ok()) {
      std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
      return 2;
    }
    protocols = {*p};
  }

  SweepStats total;
  int configs_with_failures = 0;
  for (const repl::ReplProtocol protocol : protocols) {
    repl::ReplFuzzConfig config;
    config.groups = cli.repl_groups;
    config.replicas = cli.repl_replicas;
    config.protocol = protocol;
    config.enforce_ppo = cli.enforce_ppo;
    config.skip_recovery_replay = cli.break_recovery;
    config.break_intent_redo = cli.break_intent_redo;
    config.skip_redo_persist = cli.skip_redo_persist;
    repl::ReplFuzzer fuzzer(config);

    std::vector<repl::ReplFuzzFailure> failures;
    const SweepStats stats = fuzzer.Systematic(cli.first_seed, &failures);
    total.cases += stats.cases;
    total.failures += stats.failures;
    if (stats.failures > 0) {
      ++configs_with_failures;
    }
    std::printf("[repl/%s %dx%d] %" PRIu64 " cases, %" PRIu64 " failures\n",
                repl::ReplProtocolName(protocol), cli.repl_groups,
                cli.repl_replicas, stats.cases, stats.failures);
    int shown = 0;
    for (const repl::ReplFuzzFailure& f : failures) {
      if (shown >= cli.max_shrinks) {
        std::printf("  (%zu more failures not shown)\n",
                    failures.size() - static_cast<std::size_t>(shown));
        break;
      }
      ++shown;
      std::printf("  FAIL seed=%" PRIu64 " phase=%s ordinal=%d mask=%" PRIu64
                  " %s: %s: %s\n",
                  f.fuzz_case.seed,
                  repl::ReplFuzzer::PhaseName(f.fuzz_case.phase),
                  f.fuzz_case.ordinal, f.fuzz_case.crash_mask,
                  f.fuzz_case.lines_survive ? "surv" : "drop",
                  repl::ReplFailureKindName(f.result.failure),
                  f.result.detail.c_str());
      if (!cli.out_dir.empty()) {
        const CrashRepro repro =
            fuzzer.ToRepro(f.fuzz_case, "violation", f.result.detail);
        const std::string path = cli.out_dir + "/" + ReproFileName(repro);
        const Status saved = SaveRepro(repro, path);
        if (saved.ok()) {
          std::printf("  repro: %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "  cannot save repro: %s\n",
                       saved.ToString().c_str());
        }
      }
    }
  }

  std::printf("total: %" PRIu64 " cases, %" PRIu64
              " failures across %zu protocol(s)\n",
              total.cases, total.failures, protocols.size());
  if (cli.expect_failures) {
    if (configs_with_failures == static_cast<int>(protocols.size())) {
      return 0;
    }
    std::fprintf(stderr,
                 "expected violations in every protocol, but %zu stayed "
                 "green\n",
                 protocols.size() - static_cast<std::size_t>(
                                        configs_with_failures));
    return 1;
  }
  return total.failures == 0 ? 0 : 1;
}

}  // namespace

int FuzzMain(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (MatchFlag(arg, "--seeds", &value) && value != nullptr) {
      if (!ParseUint(value, &cli.seeds)) return Usage(argv[0]);
    } else if (MatchFlag(arg, "--first-seed", &value) && value != nullptr) {
      if (!ParseUint(value, &cli.first_seed)) return Usage(argv[0]);
    } else if (MatchFlag(arg, "--cases-per-seed", &value) && value != nullptr) {
      std::uint64_t n = 0;
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.cases_per_seed = static_cast<int>(n);
    } else if (MatchFlag(arg, "--systematic", &value)) {
      cli.systematic_ops = 6;
      if (value != nullptr && !ParseUint(value, &cli.systematic_ops)) {
        return Usage(argv[0]);
      }
    } else if (MatchFlag(arg, "--max-candidates", &value) && value != nullptr) {
      std::uint64_t n = 0;
      if (!ParseUint(value, &n)) return Usage(argv[0]);
      cli.max_candidates = static_cast<std::size_t>(n);
    } else if (MatchFlag(arg, "--mechanism", &value) && value != nullptr) {
      cli.mechanism = value;
    } else if (MatchFlag(arg, "--mode", &value) && value != nullptr) {
      cli.mode = value;
    } else if (MatchFlag(arg, "--enforce-ppo", &value) && value != nullptr) {
      cli.enforce_ppo = std::strcmp(value, "0") != 0;
    } else if (MatchFlag(arg, "--break-recovery", &value)) {
      cli.break_recovery = true;
    } else if (MatchFlag(arg, "--expect-failures", &value)) {
      cli.expect_failures = true;
    } else if (MatchFlag(arg, "--replay", &value) && value != nullptr) {
      const char* colon = std::strchr(value, ':');
      if (colon == nullptr) return Usage(argv[0]);
      const std::string seed_text(value, colon);
      if (!ParseUint(seed_text.c_str(), &cli.replay_seed) ||
          !ParseUint(colon + 1, &cli.replay_case)) {
        return Usage(argv[0]);
      }
      cli.have_replay = true;
    } else if (MatchFlag(arg, "--corpus", &value) && value != nullptr) {
      cli.corpus_dir = value;
    } else if (MatchFlag(arg, "--out", &value) && value != nullptr) {
      cli.out_dir = value;
    } else if (MatchFlag(arg, "--repl", &value)) {
      cli.repl = true;
    } else if (MatchFlag(arg, "--protocol", &value) && value != nullptr) {
      cli.protocol = value;
    } else if (MatchFlag(arg, "--repl-groups", &value) && value != nullptr) {
      std::uint64_t n = 0;
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.repl_groups = static_cast<int>(n);
    } else if (MatchFlag(arg, "--repl-replicas", &value) && value != nullptr) {
      std::uint64_t n = 0;
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.repl_replicas = static_cast<int>(n);
    } else if (MatchFlag(arg, "--break-intent-redo", &value)) {
      cli.break_intent_redo = true;
    } else if (MatchFlag(arg, "--skip-redo-persist", &value)) {
      cli.skip_redo_persist = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  if (!cli.corpus_dir.empty()) {
    return ReplayCorpus(cli);
  }
  if (cli.repl) {
    return RunReplSweep(cli);
  }

  std::vector<Mechanism> mechanisms;
  if (cli.mechanism == "all") {
    mechanisms = {Mechanism::kLogging, Mechanism::kRedoLogging,
                  Mechanism::kCheckpointing, Mechanism::kShadowPaging};
  } else {
    auto m = MechanismFromName(cli.mechanism);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return Usage(argv[0]);
    }
    mechanisms = {*m};
  }
  std::vector<ExecMode> modes;
  if (cli.mode == "all") {
    modes = {ExecMode::kCpuBaseline, ExecMode::kNdpSingleDevice,
             ExecMode::kNdpMultiSwSync, ExecMode::kNdpMultiDelayed};
  } else {
    auto m = ExecModeFromName(cli.mode);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return Usage(argv[0]);
    }
    modes = {*m};
  }

  SweepStats total;
  int configs_with_failures = 0;
  int configs = 0;
  for (const Mechanism mech : mechanisms) {
    for (const ExecMode mode : modes) {
      ++configs;
      FuzzConfig config;
      config.mechanism = mech;
      config.mode = mode;
      config.enforce_ppo = cli.enforce_ppo;
      config.break_recovery = cli.break_recovery;
      CrashFuzzer fuzzer(config);

      std::vector<FuzzFailure> failures;
      SweepStats stats;
      if (cli.have_replay) {
        const FuzzCase c =
            fuzzer.BuildSweepCase(cli.replay_seed, cli.replay_case);
        const CaseResult r = fuzzer.Run(c);
        ++stats.cases;
        if (!r.ok()) {
          ++stats.failures;
          failures.push_back(FuzzFailure{c, r});
        }
        PrintCase(r.ok() ? "ok" : "FAIL", c, r);
        if (!cli.out_dir.empty() && r.ok()) {
          // A green replayed case saved explicitly becomes a regression
          // anchor: the corpus test keeps proving it recovers cleanly.
          const CrashRepro repro = fuzzer.ToRepro(c, "recoverable",
                                                  "sweep regression anchor");
          const std::string path = cli.out_dir + "/" + ReproFileName(repro);
          const Status saved = SaveRepro(repro, path);
          if (saved.ok()) {
            std::printf("  repro: %s\n", path.c_str());
          } else {
            std::fprintf(stderr, "  cannot save repro: %s\n",
                         saved.ToString().c_str());
          }
        }
      } else {
        if (cli.systematic_ops > 0) {
          const SweepStats s = fuzzer.Systematic(
              cli.first_seed, cli.systematic_ops, cli.max_candidates,
              &failures);
          stats.cases += s.cases;
          stats.failures += s.failures;
        }
        if (cli.seeds > 0) {
          const SweepStats s = fuzzer.RandomSweep(
              cli.first_seed, cli.seeds, cli.cases_per_seed, &failures);
          stats.cases += s.cases;
          stats.failures += s.failures;
        }
      }
      total.cases += stats.cases;
      total.failures += stats.failures;
      if (stats.failures > 0) {
        ++configs_with_failures;
      }

      std::printf("[%s/%s] %" PRIu64 " cases, %" PRIu64 " failures\n",
                  MechanismName(mech), ExecModeName(mode), stats.cases,
                  stats.failures);
      int shrunk = 0;
      for (const FuzzFailure& f : failures) {
        if (shrunk >= cli.max_shrinks) {
          std::printf("  (%zu more failures not shown)\n",
                      failures.size() - static_cast<std::size_t>(shrunk));
          break;
        }
        ++shrunk;
        PrintCase("FAIL", f.fuzz_case, f.result);
        CaseResult min_result;
        const FuzzCase minimal = fuzzer.Shrink(f.fuzz_case, &min_result);
        PrintCase("  min", minimal, min_result);
        if (!cli.out_dir.empty() && !min_result.ok()) {
          const CrashRepro repro =
              fuzzer.ToRepro(minimal, "violation", min_result.detail);
          const std::string path = cli.out_dir + "/" + ReproFileName(repro);
          const Status saved = SaveRepro(repro, path);
          if (saved.ok()) {
            std::printf("  repro: %s\n", path.c_str());
          } else {
            std::fprintf(stderr, "  cannot save repro: %s\n",
                         saved.ToString().c_str());
          }
        }
      }
    }
  }

  std::printf("total: %" PRIu64 " cases, %" PRIu64
              " failures across %d configurations\n",
              total.cases, total.failures, configs);
  if (cli.expect_failures) {
    // Teeth check: every configuration must have tripped the oracle.
    if (configs_with_failures == configs) {
      return 0;
    }
    std::fprintf(stderr,
                 "expected violations in every configuration, but %d of %d "
                 "stayed green\n",
                 configs - configs_with_failures, configs);
    return 1;
  }
  return total.failures == 0 ? 0 : 1;
}

}  // namespace fuzz
}  // namespace nearpm

int main(int argc, char** argv) {
  return nearpm::fuzz::FuzzMain(argc, argv);
}
