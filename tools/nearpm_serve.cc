// nearpm_serve: threaded smoke driver for the sharded KV serving layer.
//
// Spins up the service with real OS worker threads, pushes a deterministic
// request mix (puts, gets, periodic cross-shard MultiPuts) through the
// bounded queues, then reports throughput, latency percentiles, queue
// pressure and the PPO audit. Exit code is nonzero when the service made no
// progress or any shard's trace violates a Section 4 invariant -- CI runs
// this as the serve smoke gate.
//
//   --shards=N          serving shards (default 4)
//   --workers=N         OS worker threads per shard (default 4)
//   --requests=N        requests to submit (default 2000)
//   --multiput-every=N  every Nth request becomes a cross-shard MultiPut
//                       (0 disables; default 50)
//   --batch=N           requests per doorbell/fence (default 8)
//   --queue=N           per-shard queue capacity (default 64)
//   --json-out=FILE     machine-readable stats (single JSON object)
//   --metrics-out=FILE  Prometheus text exposition: serve counters, latency
//                       quantiles, per-shard duty-cycle/occupancy gauges
//   --replicas=K        replicated mode: --shards becomes the replica-group
//                       count and every group runs 1 primary + K-1 backups
//                       over the simulated fabric (default 1 = single copy)
//   --protocol=pb|redo  replication protocol in replicated mode: acked
//                       primary-backup log shipping or one-sided redo
//                       (primary writes the backup's PM, NDP replays)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/repl/service.h"
#include "src/serve/service.h"

namespace nearpm {
namespace serve {
namespace {

struct CliOptions {
  int shards = 4;
  int workers = 4;
  std::uint64_t requests = 2000;
  std::uint64_t multiput_every = 50;
  int batch = 8;
  std::size_t queue = 64;
  std::string json_out;
  std::string metrics_out;
  int replicas = 1;
  std::string protocol = "pb";
};

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--shards=N] [--workers=N] [--requests=N]\n"
               "          [--multiput-every=N] [--batch=N] [--queue=N]\n"
               "          [--json-out=FILE] [--metrics-out=FILE]\n"
               "          [--replicas=K] [--protocol=pb|redo]\n",
               argv0);
  return 2;
}

std::vector<std::uint8_t> ValueFor(std::uint64_t key, std::uint32_t size) {
  std::vector<std::uint8_t> value(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    value[i] = static_cast<std::uint8_t>(key * 7 + i);
  }
  return value;
}

// Replicated smoke: the same deterministic request mix pushed through the
// replicated serving tier (src/repl) with OS worker threads. Every write is
// a replicated commit, so progress here exercises the fabric, both commit
// protocols, and the cross-replica retire path end to end.
int ReplServeMain(const CliOptions& cli) {
  auto protocol = repl::ReplProtocolFromName(cli.protocol);
  if (!protocol.ok()) {
    std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
    return 2;
  }
  repl::ReplOptions ro;
  ro.groups = cli.shards;
  ro.replicas = cli.replicas;
  ro.protocol = *protocol;
  ro.workers_per_shard = cli.workers;
  ro.queue_capacity = cli.queue;
  ro.batch_max = cli.batch;
  auto svc = repl::ReplicatedKvService::Create(ro);
  if (!svc.ok()) {
    std::fprintf(stderr, "cannot create replicated service: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }

  (*svc)->Start();
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(cli.requests);
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < cli.requests; ++i) {
    serve::ServeRequest req;
    if (cli.multiput_every > 0 && i % cli.multiput_every == 0) {
      req.kind = serve::RequestKind::kMultiPut;
      for (std::uint64_t j = 0; j < 4; ++j) {
        const std::uint64_t key = 100000 + i + j * 31;
        req.pairs.push_back(
            serve::KvPair{key, ValueFor(key, ro.value_size)});
      }
    } else if (i % 3 == 2) {
      req.kind = serve::RequestKind::kGet;
      req.key = i / 2;
    } else {
      req.kind = serve::RequestKind::kPut;
      req.key = i;
      req.value = ValueFor(i, ro.value_size);
    }
    bool admitted = false;
    for (int attempt = 0; attempt < 1000 && !admitted; ++attempt) {
      serve::ServeRequest copy = req;
      auto fut = (*svc)->Submit(std::move(copy));
      if (fut.ok()) {
        futures.push_back(std::move(*fut));
        admitted = true;
      } else {
        ++rejected;
        std::this_thread::yield();
      }
    }
  }
  for (auto& fut : futures) {
    fut.get();
  }
  (*svc)->Stop();

  std::string report;
  const std::uint64_t violations = (*svc)->PpoViolations(&report);
  const repl::ReplStats stats = (*svc)->Stats();

  std::printf("repl smoke: %d groups x %d replicas (%s) x %d workers, "
              "batch_max=%d, queue=%zu\n",
              cli.shards, cli.replicas, repl::ReplProtocolName(*protocol),
              cli.workers, cli.batch, cli.queue);
  std::printf("  submitted:  %" PRIu64 " (%" PRIu64 " rejected by admission)\n",
              cli.requests, rejected);
  std::printf("  completed:  %" PRIu64 " (%" PRIu64 " puts, %" PRIu64
              " gets, %" PRIu64 " txns, %" PRIu64 " batches)\n",
              stats.completed, stats.puts, stats.gets, stats.txns,
              stats.batches);
  std::printf("  fabric:     %" PRIu64 " messages\n", stats.net_messages);
  std::printf("  makespan:   %" PRIu64 " simulated ns\n", stats.makespan_ns);
  std::printf("  latency:    p50=%" PRIu64 " ns, p99=%" PRIu64 " ns\n",
              stats.request_p50_ns, stats.request_p99_ns);
  std::printf("  commit:     p50=%" PRIu64 " ns, p99=%" PRIu64 " ns\n",
              stats.commit_p50_ns, stats.commit_p99_ns);
  std::printf("  throughput: %.0f ops/simulated-second\n",
              stats.throughput_ops_per_sec);
  std::printf("  PPO audit:  %" PRIu64 " violation(s)\n", violations);
  if (violations > 0) {
    std::printf("%s", report.c_str());
  }

  if (!cli.json_out.empty()) {
    std::ofstream out(cli.json_out, std::ios::trunc);
    out << "{\n"
        << "  \"groups\": " << cli.shards << ",\n"
        << "  \"replicas\": " << cli.replicas << ",\n"
        << "  \"protocol\": \"" << repl::ReplProtocolName(*protocol)
        << "\",\n"
        << "  \"workers_per_shard\": " << cli.workers << ",\n"
        << "  \"completed\": " << stats.completed << ",\n"
        << "  \"rejected\": " << rejected << ",\n"
        << "  \"txns\": " << stats.txns << ",\n"
        << "  \"batches\": " << stats.batches << ",\n"
        << "  \"net_messages\": " << stats.net_messages << ",\n"
        << "  \"makespan_ns\": " << stats.makespan_ns << ",\n"
        << "  \"request_p50_ns\": " << stats.request_p50_ns << ",\n"
        << "  \"request_p99_ns\": " << stats.request_p99_ns << ",\n"
        << "  \"commit_p50_ns\": " << stats.commit_p50_ns << ",\n"
        << "  \"commit_p99_ns\": " << stats.commit_p99_ns << ",\n"
        << "  \"throughput_ops_per_sec\": " << stats.throughput_ops_per_sec
        << ",\n"
        << "  \"ppo_violations\": " << violations << "\n"
        << "}\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_out.c_str());
      return 1;
    }
  }

  if (!cli.metrics_out.empty()) {
    (*svc)->ExportResourceMetrics();
    MetricsRegistry merged;
    merged.MergeFrom((*svc)->metrics());
    for (int n = 0; n < (*svc)->num_nodes(); ++n) {
      merged.MergeFrom((*svc)->node(n).recorder().metrics());
    }
    std::ofstream out(cli.metrics_out, std::ios::trunc);
    out << merged.ToPrometheus();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.metrics_out.c_str());
      return 1;
    }
  }

  if (stats.completed == 0 || stats.throughput_ops_per_sec <= 0) {
    std::fprintf(stderr, "FAIL: the replicated service made no progress\n");
    return 1;
  }
  if (stats.net_messages == 0) {
    std::fprintf(stderr, "FAIL: no replication traffic on the fabric\n");
    return 1;
  }
  if (violations > 0) {
    std::fprintf(stderr, "FAIL: PPO invariant violations\n");
    return 1;
  }
  return 0;
}

int ServeMain(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    std::uint64_t n = 0;
    if (MatchFlag(argv[i], "--shards", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.shards = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--workers", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.workers = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--requests", &value)) {
      if (!ParseUint(value, &cli.requests)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--multiput-every", &value)) {
      if (!ParseUint(value, &cli.multiput_every)) return Usage(argv[0]);
    } else if (MatchFlag(argv[i], "--batch", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.batch = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--queue", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.queue = static_cast<std::size_t>(n);
    } else if (MatchFlag(argv[i], "--json-out", &value)) {
      cli.json_out = value;
    } else if (MatchFlag(argv[i], "--metrics-out", &value)) {
      cli.metrics_out = value;
    } else if (MatchFlag(argv[i], "--replicas", &value)) {
      if (!ParseUint(value, &n) || n == 0) return Usage(argv[0]);
      cli.replicas = static_cast<int>(n);
    } else if (MatchFlag(argv[i], "--protocol", &value)) {
      cli.protocol = value;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  if (cli.replicas > 1) {
    return ReplServeMain(cli);
  }

  ServeOptions so;
  so.shards = cli.shards;
  so.workers_per_shard = cli.workers;
  so.queue_capacity = cli.queue;
  so.batch_max = cli.batch;
  auto svc = KvService::Create(so);
  if (!svc.ok()) {
    std::fprintf(stderr, "cannot create service: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }

  (*svc)->Start();
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(cli.requests);
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < cli.requests; ++i) {
    ServeRequest req;
    if (cli.multiput_every > 0 && i % cli.multiput_every == 0) {
      req.kind = RequestKind::kMultiPut;
      for (std::uint64_t j = 0; j < 4; ++j) {
        const std::uint64_t key = 100000 + i + j * 31;
        req.pairs.push_back(KvPair{key, ValueFor(key, so.value_size)});
      }
    } else if (i % 3 == 2) {
      req.kind = RequestKind::kGet;
      req.key = i / 2;  // half the gets hit earlier puts, half miss
    } else {
      req.kind = RequestKind::kPut;
      req.key = i;
      req.value = ValueFor(i, so.value_size);
    }
    // Backpressure loop: a full queue rejects immediately; yield to the
    // workers and retry a few times before dropping the request.
    bool admitted = false;
    for (int attempt = 0; attempt < 1000 && !admitted; ++attempt) {
      ServeRequest copy = req;
      auto fut = (*svc)->Submit(std::move(copy));
      if (fut.ok()) {
        futures.push_back(std::move(*fut));
        admitted = true;
      } else {
        ++rejected;
        std::this_thread::yield();
      }
    }
  }
  for (auto& fut : futures) {
    fut.get();  // Get misses are fine; only completion matters here
  }
  (*svc)->Stop();

  std::string report;
  const std::uint64_t violations = (*svc)->PpoViolations(&report);
  const ServeStats stats = (*svc)->Stats();

  std::printf("serve smoke: %d shards x %d workers, batch_max=%d, queue=%zu\n",
              cli.shards, cli.workers, cli.batch, cli.queue);
  std::printf("  submitted:  %" PRIu64 " (%" PRIu64 " rejected by admission)\n",
              cli.requests, rejected);
  std::printf("  completed:  %" PRIu64 " (%" PRIu64 " puts, %" PRIu64
              " gets, %" PRIu64 " txns, %" PRIu64 " batches)\n",
              stats.completed, stats.puts, stats.gets, stats.txns,
              stats.batches);
  std::printf("  makespan:   %" PRIu64 " simulated ns\n", stats.makespan_ns);
  std::printf("  latency:    p50=%" PRIu64 " ns, p99=%" PRIu64 " ns\n",
              stats.request_p50_ns, stats.request_p99_ns);
  std::printf("  throughput: %.0f ops/simulated-second\n",
              stats.throughput_ops_per_sec);
  std::printf("  PPO audit:  %" PRIu64 " violation(s)\n", violations);
  if (violations > 0) {
    std::printf("%s", report.c_str());
  }

  if (!cli.json_out.empty()) {
    std::ofstream out(cli.json_out, std::ios::trunc);
    out << "{\n"
        << "  \"shards\": " << cli.shards << ",\n"
        << "  \"workers_per_shard\": " << cli.workers << ",\n"
        << "  \"completed\": " << stats.completed << ",\n"
        << "  \"rejected\": " << rejected << ",\n"
        << "  \"txns\": " << stats.txns << ",\n"
        << "  \"batches\": " << stats.batches << ",\n"
        << "  \"makespan_ns\": " << stats.makespan_ns << ",\n"
        << "  \"request_p50_ns\": " << stats.request_p50_ns << ",\n"
        << "  \"request_p99_ns\": " << stats.request_p99_ns << ",\n"
        << "  \"throughput_ops_per_sec\": " << stats.throughput_ops_per_sec
        << ",\n"
        << "  \"ppo_violations\": " << violations << "\n"
        << "}\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_out.c_str());
      return 1;
    }
  }

  if (!cli.metrics_out.empty()) {
    // Fold every shard's trace into per-resource gauges, then merge the
    // shard recorders' phase counters/histograms into one exposition.
    (*svc)->ExportResourceMetrics();
    MetricsRegistry merged;
    merged.MergeFrom((*svc)->metrics());
    for (int s = 0; s < (*svc)->num_shards(); ++s) {
      merged.MergeFrom((*svc)->shard(s).recorder().metrics());
    }
    std::ofstream out(cli.metrics_out, std::ios::trunc);
    out << merged.ToPrometheus();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.metrics_out.c_str());
      return 1;
    }
  }

  if (stats.completed == 0 || stats.throughput_ops_per_sec <= 0) {
    std::fprintf(stderr, "FAIL: the service made no progress\n");
    return 1;
  }
  if (violations > 0) {
    std::fprintf(stderr, "FAIL: PPO invariant violations\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace nearpm

int main(int argc, char** argv) {
  return nearpm::serve::ServeMain(argc, argv);
}
